/**
 * @file
 * Compression workbench: compare the four codecs on a file or on
 * synthetic log data (the interactive version of Table 5).
 *
 * Usage: compression_tool [path-to-file]
 * Without an argument, each synthetic dataset is compressed with every
 * codec and a ratio/throughput table is printed. With a file, the same
 * table is produced for that file's contents.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/text.h"
#include "common/wall_timer.h"
#include "compress/compressor.h"
#include "loggen/log_generator.h"

using namespace mithril;

namespace {

void
reportOne(const std::string &label, const std::string &text)
{
    std::printf("%s (%s):\n", label.c_str(),
                humanBytes(static_cast<double>(text.size())).c_str());
    std::printf("  %-8s %-8s %-14s %-14s %s\n", "codec", "ratio",
                "compress", "decompress", "verified");
    for (const auto &codec : compress::allCompressors()) {
        WallTimer timer;
        compress::Bytes compressed =
            codec->compress(compress::asBytes(text));
        double c_secs = timer.seconds();

        timer.reset();
        compress::Bytes output;
        Status st = codec->decompress(compressed, &output);
        double d_secs = timer.seconds();

        bool ok = st.isOk() && output.size() == text.size() &&
                  std::equal(output.begin(), output.end(),
                             asByteSpan(text).begin());
        std::printf("  %-8s %6.2fx %14s %14s %s\n",
                    codec->name().c_str(),
                    compress::compressionRatio(text.size(),
                                               compressed.size()),
                    humanBandwidth(text.size() / std::max(c_secs, 1e-9))
                        .c_str(),
                    humanBandwidth(text.size() / std::max(d_secs, 1e-9))
                        .c_str(),
                    ok ? "yes" : "NO");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        reportOne(argv[1], ss.str());
        return 0;
    }
    for (const auto &spec : loggen::hpc4Datasets()) {
        loggen::LogGenerator gen(spec);
        reportOne(spec.name, gen.generate(4 << 20));
    }
    std::printf("(software speeds; the FPGA LZAH decompressor is "
                "deterministic at 3.2 GB/s per pipeline)\n");
    return 0;
}
