/**
 * @file
 * Concurrent batched queries: the paper's claim that multiple queries
 * execute concurrently at no performance loss (Sections 4, 7.4.2).
 *
 * Runs 1, 2, 4, and 8 queries batched into single accelerator passes
 * over a synthetic dataset and prints modeled effective throughput per
 * batch size, alongside the per-query match counts — the programmatic
 * version of Table 6's MithriLog rows.
 */
#include <cstdio>
#include <vector>

#include "common/text.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "query/parser.h"

using namespace mithril;

int
main()
{
    loggen::LogGenerator gen(loggen::datasetByName("Liberty2"));
    std::string text = gen.generate(8 << 20);

    core::MithriLog system;
    if (!system.ingestText(text).isOk() || !system.flush().isOk()) {
        return 1;
    }
    std::printf("ingested %s (%llu lines), LZAH ratio %.2fx\n",
                humanBytes(static_cast<double>(system.rawBytes())).c_str(),
                static_cast<unsigned long long>(system.lineCount()),
                system.compressionRatio());

    // Token vocabulary of the synthetic Liberty2-like syslog bodies.
    const char *query_texts[] = {
        "error | errors",
        "failed & !timeout",
        "\"pbs_mom:\" | \"kernel:\"",
        "cache | memory",
        "link & !down",
        "panic | killed",
        "connection & refused",
        "exceeded | dropped",
    };
    std::vector<query::Query> all;
    for (const char *qt : query_texts) {
        query::Query q;
        Status st = query::parseQuery(qt, &q);
        if (!st.isOk()) {
            std::fprintf(stderr, "parse '%s': %s\n", qt,
                         st.toString().c_str());
            return 1;
        }
        all.push_back(std::move(q));
    }

    std::printf("\n%-8s %-14s %-14s %s\n", "batch", "modeled time",
                "effective BW", "per-query matches");
    for (size_t batch : {1u, 2u, 4u, 8u}) {
        std::span<const query::Query> queries(all.data(), batch);
        core::QueryResult result;
        Status st = system.runFullScan(queries, &result);
        if (!st.isOk()) {
            std::fprintf(stderr, "batch %zu: %s\n", batch,
                         st.toString().c_str());
            continue;
        }
        std::string counts;
        for (uint64_t c : result.matched_per_query) {
            counts += std::to_string(c) + " ";
        }
        std::printf("%-8zu %10.3f ms %-14s %s\n", batch,
                    result.total_time.toSeconds() * 1e3,
                    humanBandwidth(result.effectiveThroughput(
                        system.rawBytes())).c_str(),
                    counts.c_str());
    }
    std::printf("\nNote the constant time and bandwidth across batch "
                "sizes: the filter\nevaluates all programmed queries "
                "on every line in the same pass.\n");
    return 0;
}
