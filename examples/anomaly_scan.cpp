/**
 * @file
 * Anomaly scan: the intro's motivating use case — find rare, suspect
 * lines in a large log quickly.
 *
 * Extracts the template library with FT-tree, identifies the rarest
 * templates and the lines that match *no* known template (classic
 * anomaly candidates), and uses the accelerator to pull severity
 * spikes. Combines template extraction, negated queries, and the
 * time-sliced index.
 */
#include <cstdio>
#include <map>
#include <string>

#include "common/text.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "query/parser.h"
#include "templates/ft_tree.h"

using namespace mithril;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "Spirit2";
    loggen::LogGenerator gen(loggen::datasetByName(name));
    std::string text = gen.generate(4 << 20);

    core::MithriLog system;
    if (!system.ingestText(text).isOk() || !system.flush().isOk()) {
        return 1;
    }
    std::printf("scanning %s of %s-like logs for anomalies\n\n",
                humanBytes(static_cast<double>(system.rawBytes())).c_str(),
                name.c_str());

    // 1. Severity-word spikes via the accelerator (syslog-style
    //    messages carry lowercase condition words in their bodies).
    std::printf("severity profile:\n");
    for (const char *sev :
         {"error", "failure", "failed", "panic", "timeout", "killed"}) {
        core::QueryResult r;
        if (system.run(query::Query::allOf(
                std::vector<std::string>{sev}), &r).isOk()) {
            std::printf("  %-8s %8llu lines (%.3f ms modeled)\n", sev,
                        static_cast<unsigned long long>(r.matched_lines),
                        r.total_time.toSeconds() * 1e3);
        }
    }

    // 2. Template rarity: rare templates are anomaly candidates.
    templates::FtTree tree = templates::FtTree::build(text, {});
    auto tpls = tree.extractTemplates();
    std::map<uint64_t, size_t> by_support;
    for (size_t i = 0; i < tpls.size(); ++i) {
        by_support.emplace(tpls[i].support, i);
    }
    std::printf("\nrarest templates (library of %zu):\n", tpls.size());
    size_t shown = 0;
    for (const auto &[support, idx] : by_support) {
        if (shown++ >= 3) {
            break;
        }
        query::Query q = templates::templateToQuery(tpls[idx]);
        core::QueryResult r;
        if (system.run(q, &r).isOk() && !r.lines.empty()) {
            std::printf("  support %llu: %s\n",
                        static_cast<unsigned long long>(support),
                        r.lines[0].text.substr(0, 76).c_str());
        }
    }

    // 3. Lines matching no template: classify the unmatched residue.
    uint64_t unmatched = 0;
    forEachLine(text, [&](std::string_view line) {
        if (tree.classify(line) == SIZE_MAX) {
            ++unmatched;
        }
    });
    std::printf("\nlines outside the template library: %llu of %llu "
                "(%.2f%%)\n",
                static_cast<unsigned long long>(unmatched),
                static_cast<unsigned long long>(system.lineCount()),
                100.0 * unmatched / system.lineCount());

    // 4. A negated-heavy hunt: failure lines NOT from the kernel
    //    daemon (the expensive query class of Section 7.5).
    core::QueryResult r;
    Status st = system.run(
        "(panic | failure | failed) & !\"kernel:\" & !\"rts:\"", &r);
    if (st.isOk()) {
        std::printf("\nnon-kernel failure lines: %llu "
                    "(scanned %llu/%llu pages, %.3f ms modeled)\n",
                    static_cast<unsigned long long>(r.matched_lines),
                    static_cast<unsigned long long>(r.pages_scanned),
                    static_cast<unsigned long long>(r.pages_total),
                    r.total_time.toSeconds() * 1e3);
    }
    return 0;
}
