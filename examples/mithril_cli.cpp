/**
 * @file
 * mithril_cli — a small command-line front end over the full API.
 *
 * Subcommands:
 *   generate <dataset> <MB> <out.log>    synthesize a dataset to a file
 *   ingest   <in.log> <out.img>          build a device image from logs
 *   query    <in.img> "<query>"          run one query over an image
 *   svc      <in.log> "<query>"          sharded service: concurrent
 *                                        ingest into N shards, query
 *                                        fan-out, deterministic merge
 *   templates <in.log> [N]               FT-tree library (top N shown)
 *   stat     <in.img>                    image statistics
 *   soak                                 open-loop soak: seeded mixed
 *                                        ingest+query traffic against
 *                                        the service, SLO quantiles
 *
 * Global flags (any subcommand; most useful with `query`):
 *   --shards=<N>           (svc/soak) independent MithriLog partitions
 *   --threads=<M>          (svc/soak) worker threads in the pool
 *   --shape=<s>            (soak) arrival shape:
 *                          steady|bursty|diurnal
 *   --duration=<sec>       (soak) virtual seconds of offered traffic
 *   --seed=<n>             (soak) arrival-schedule seed
 *   --qps=<n>              (soak) offered query rate (virtual)
 *   --metrics-out=<path>   write a JSON metrics snapshot on exit
 *   --trace-out=<path>     write a Chrome-trace (Perfetto) span file
 *   --fault-plan=<spec>    attach a deterministic fault-injection plan
 *                          to the device before running (ingest and
 *                          query); spec example:
 *                          "seed=3,ber=1e-6,timeout=0.01"
 *                          (keys: seed ber ecc timeout garble torn
 *                          drop cut_after retries backoff_us)
 *   --crash-at=<N>         (ingest) power-cut the device on its Nth
 *                          page program; the dead device's NAND is
 *                          dumped to <out.img> as a raw device image
 *                          and `crash: acknowledged=<lines>` reports
 *                          the durable prefix. With --fault-plan
 *                          write_base=<W>, N addresses the *global*
 *                          write ordinal of a multi-life history.
 *   --recover              (query/stat) mount <in.img> as a raw
 *                          crash image via journal replay instead of
 *                          loading a clean host image;
 *                          (ingest) recover <out.img> first, re-open
 *                          its journal under a fresh generation, and
 *                          resume ingest into the recovered store —
 *                          composes with --crash-at for a second cut
 *   --ip=<addr|cidr>       (query/svc) AND a typed address predicate
 *                          onto the query (incident-response tier,
 *                          DESIGN.md §15); e.g. --ip=10.0.0.0/8
 *   --id=<hex>             (query/svc) AND a typed hex-id predicate
 *                          (8..64 nibbles, prefix match allowed)
 *   --window=<t0>,<t1>     (query/svc) AND a typed time window;
 *                          epoch seconds or RFC 3339 timestamps
 *   --no-typed-index       (ingest/query) skip typed posting lists:
 *                          typed predicates fall back to the exact
 *                          full-scan baseline
 *
 * Example session:
 *   mithril_cli generate Spirit2 8 /tmp/spirit.log
 *   mithril_cli ingest /tmp/spirit.log /tmp/spirit.img
 *   mithril_cli query /tmp/spirit.img "error & !timeout" \
 *       --metrics-out=/tmp/m.json --trace-out=/tmp/t.json
 *
 * Crash drill (two generations):
 *   mithril_cli ingest /tmp/spirit.log /tmp/crash.img --crash-at=7
 *   mithril_cli query /tmp/crash.img "error" --recover
 *   mithril_cli ingest /tmp/more.log /tmp/crash.img --recover
 *   mithril_cli query /tmp/crash.img "error"
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/text.h"
#include "common/wall_timer.h"
#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "loggen/log_generator.h"
#include "obs/report.h"
#include "soak/soak_driver.h"
#include "svc/log_service.h"
#include "templates/ft_tree.h"

using namespace mithril;

namespace {

/** Destinations of the --metrics-out / --trace-out flags. */
struct ObsOut {
    std::string metrics_path;
    std::string trace_path;

    /** Writes whatever the user asked for; reports but does not fail
     *  the command on write errors. */
    int
    write(const core::MithriLog &system) const
    {
        return write(system.metrics(), system.tracer());
    }

    int
    write(const obs::MetricsRegistry &metrics,
          const obs::Tracer &tracer) const
    {
        int rc = 0;
        if (!metrics_path.empty()) {
            Status st = obs::writeMetricsJson(metrics, metrics_path);
            if (!st.isOk()) {
                std::fprintf(stderr, "metrics-out: %s\n",
                             st.toString().c_str());
                rc = 1;
            } else {
                std::printf("metrics written to %s\n",
                            metrics_path.c_str());
            }
        }
        if (!trace_path.empty()) {
            Status st = tracer.writeChromeTrace(trace_path);
            if (!st.isOk()) {
                std::fprintf(stderr, "trace-out: %s\n",
                             st.toString().c_str());
                rc = 1;
            } else {
                std::printf("trace written to %s (open in "
                            "ui.perfetto.dev)\n",
                            trace_path.c_str());
            }
        }
        return rc;
    }
};

ObsOut g_obs;
std::string g_fault_spec;
std::string g_flag_ip;
std::string g_flag_id;
std::string g_flag_window;
bool g_no_typed_index = false;
uint64_t g_crash_at = 0;
bool g_recover = false;
uint64_t g_checkpoint_every = 0;
size_t g_shards = 4;
size_t g_threads = 4;
std::string g_soak_shape = "steady";
double g_soak_duration = 0.1;
uint64_t g_soak_seed = 1;
double g_soak_qps = 40.0;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  mithril_cli generate <dataset> <MB> <out.log>\n"
                 "  mithril_cli ingest <in.log> <out.img>\n"
                 "  mithril_cli query <in.img> \"<query>\"\n"
                 "  mithril_cli svc <in.log> \"<query>\"\n"
                 "  mithril_cli templates <in.log> [N]\n"
                 "  mithril_cli stat <in.img>\n"
                 "  mithril_cli checkpoint <in.img>\n"
                 "  mithril_cli soak\n"
                 "flags: --metrics-out=<path>  --trace-out=<path>\n"
                 "       --shards=<N> --threads=<M>  (svc/soak) "
                 "service shape, default 4x4\n"
                 "       --shape=steady|bursty|diurnal --duration=<s>\n"
                 "       --seed=<n> --qps=<n>  (soak) arrival "
                 "schedule\n"
                 "       --fault-plan=<spec>   e.g. "
                 "\"seed=3,ber=1e-6,timeout=0.01\"\n"
                 "       --crash-at=<N>        (ingest) power cut on "
                 "the Nth page program\n"
                 "       --checkpoint-every=<N> (ingest/svc/soak) "
                 "checkpoint per N data pages\n"
                 "       --recover             (query/stat) mount a "
                 "raw crash image;\n"
                 "                             (ingest) recover, "
                 "reopen, resume ingest\n"
                 "       --ip=<addr|cidr> --id=<hex> "
                 "--window=<t0>,<t1>\n"
                 "                             (query/svc) AND typed "
                 "predicates onto the query\n"
                 "       --no-typed-index      (ingest/query) disable "
                 "typed posting lists\n"
                 "datasets: BGL2 Liberty2 Spirit2 Thunderbird\n");
    return 2;
}

/** ANDs the --ip/--id/--window typed predicates onto the positional
 *  query; an empty positional query with typed flags is a pure typed
 *  lookup. */
std::string
withTypedFlags(const std::string &query_text)
{
    std::string q = query_text;
    auto conjoin = [&q](const std::string &pred) {
        if (!q.empty()) {
            q += " & ";
        }
        q += pred;
    };
    if (!g_flag_ip.empty()) {
        conjoin("ip:" + g_flag_ip);
    }
    if (!g_flag_id.empty()) {
        conjoin("id:" + g_flag_id);
    }
    if (!g_flag_window.empty()) {
        conjoin("time:[" + g_flag_window + "]");
    }
    return q;
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

int
cmdGenerate(const std::string &dataset, const std::string &mb,
            const std::string &path)
{
    loggen::LogGenerator gen(loggen::datasetByName(dataset));
    uint64_t bytes = std::stoull(mb) << 20;
    std::string text = gen.generate(bytes);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    out << text;
    std::printf("wrote %s of %s-like logs to %s (%llu lines)\n",
                humanBytes(static_cast<double>(text.size())).c_str(),
                dataset.c_str(), path.c_str(),
                static_cast<unsigned long long>(gen.linesEmitted()));
    return 0;
}

/** Mounts an image: journal-replay recovery (--recover) or a clean
 *  host-image load. Emits the crash_recovery BENCH_JSON record so the
 *  recovery cost is tracked across PRs. */
Status
mountImage(core::MithriLog *system, const std::string &img_path)
{
    if (!g_recover) {
        return system->loadImage(img_path);
    }
    WallTimer timer;
    Status st = system->recover(img_path);
    if (!st.isOk()) {
        return st;
    }
    obs::MetricsRegistry &m = system->metrics();
    uint64_t generations = system->recoveredGenerations();
    obs::JsonRecord("crash_recovery")
        .field("wall_seconds", timer.seconds())
        .field("modeled_ps",
               m.counter("recovery.modeled_ps").value())
        .field("lines_recovered",
               m.counter("recovery.lines_recovered").value())
        .field("pages_committed",
               m.counter("recovery.pages_committed").value())
        .field("pages_discarded",
               m.counter("recovery.pages_discarded").value())
        .field("records_replayed",
               m.counter("recovery.records_replayed").value())
        .field("snapshot_records", system->recoveredSnapshotRecords())
        .field("chain_records", system->recoveredChainRecords())
        .field("pages_swept",
               m.counter("recovery.pages_swept").value())
        .field("generation", system->recoveredGeneration())
        .field("reopens", generations > 0 ? generations - 1 : 0)
        .emit();
    return Status::ok();
}

int
cmdIngest(const std::string &log_path, const std::string &img_path)
{
    std::string text;
    if (!readFile(log_path, &text)) {
        return 1;
    }
    core::MithriLogConfig mc;
    mc.checkpoint_every_pages = g_checkpoint_every;
    mc.use_typed_index = !g_no_typed_index;
    core::MithriLog system(mc);
    if (g_recover) {
        // Resume-after-crash: <out.img> is an existing raw crash
        // image. Replay its longest clean prefix, then fall through to
        // normal ingest — reopen() below re-opens the journal under a
        // fresh generation.
        Status st = mountImage(&system, img_path);
        if (!st.isOk()) {
            std::fprintf(stderr, "recover: %s\n", st.toString().c_str());
            return 1;
        }
    }
    // The write-side plan must attach *before* ingest so page programs
    // and the --crash-at power cut hit the durable commit protocol —
    // but *after* recovery, which replays the previous life's pages
    // unfaulted (reopen's own journal programs are write draws 1, 2,
    // or write_base+1, write_base+2 under a global ordinal base).
    std::unique_ptr<fault::FaultPlan> plan;
    if (!g_fault_spec.empty() || g_crash_at > 0) {
        fault::FaultPlanConfig fc;
        Status ps = fault::FaultPlan::parse(g_fault_spec, &fc);
        if (!ps.isOk()) {
            std::fprintf(stderr, "fault-plan: %s\n",
                         ps.toString().c_str());
            return 2;
        }
        if (g_crash_at > 0) {
            fc.power_cut_after_writes = g_crash_at;
        }
        plan = std::make_unique<fault::FaultPlan>(fc);
        system.ssd().attachFaultPlan(plan.get());
    }
    WallTimer timer;
    Status st = Status::ok();
    if (g_recover) {
        st = system.reopen();
    }
    if (st.isOk()) {
        st = system.ingestText(text);
    }
    if (st.isOk()) {
        st = system.seal();
    }
    if (st.code() == StatusCode::kUnavailable) {
        // Power cut mid-ingest: dump the dead device's NAND so recovery
        // can be exercised, and report the acknowledged durable prefix.
        Status dump = system.saveDeviceImage(img_path);
        if (!dump.isOk()) {
            std::fprintf(stderr, "device dump: %s\n",
                         dump.toString().c_str());
            return 1;
        }
        std::printf("crash: acknowledged=%llu\n",
                    static_cast<unsigned long long>(
                        system.durableLineCount()));
        obs::JsonRecord("cli_crash")
            .field("cut_after", g_crash_at)
            .field("acknowledged_lines", system.durableLineCount())
            .field("device_pages", system.ssd().store().pageCount())
            .field("generation", system.journalGeneration())
            .emit();
        return g_obs.write(system);
    }
    if (!st.isOk()) {
        std::fprintf(stderr, "ingest: %s\n", st.toString().c_str());
        return 1;
    }
    st = system.saveImage(img_path);
    if (!st.isOk()) {
        std::fprintf(stderr, "save: %s\n", st.toString().c_str());
        return 1;
    }
    uint64_t flushes = system.metrics().counter("ssd.flushes").value();
    uint64_t journal_writes =
        system.metrics().counter("journal.page_writes").value();
    // Journaling overhead: the durability barriers plus the journal's
    // own page programs, in modeled device time.
    uint64_t overhead_ps =
        flushes * system.ssd().config().flush_latency.ps() +
        journal_writes *
            SimTime::transfer(storage::kPageSize,
                              system.ssd().config().internal_bw_bps)
                .ps();
    std::printf("ingested %llu lines -> %llu pages (LZAH %.2fx) in "
                "%.2fs; image at %s\n",
                static_cast<unsigned long long>(system.lineCount()),
                static_cast<unsigned long long>(system.dataPageCount()),
                system.compressionRatio(), timer.seconds(),
                img_path.c_str());
    obs::JsonRecord("cli_ingest")
        .field("lines", system.lineCount())
        .field("data_pages", system.dataPageCount())
        .field("device_writes",
               system.metrics().counter("ssd.pages_written").value())
        .field("journal_records",
               system.metrics().counter("journal.records").value())
        .field("barriers", flushes)
        .field("journal_overhead_ps", overhead_ps)
        .field("checkpoints", system.checkpoints())
        .field("chain_records", system.journalChainRecords())
        .field("snapshot_records", system.journalSnapshotRecords())
        .field("segments_freed",
               system.ssd().store().segmentsFreed())
        .field("wall_seconds", timer.seconds())
        .emit();
    return g_obs.write(system);
}

int
cmdQuery(const std::string &img_path, const std::string &query_text)
{
    core::MithriLogConfig mc;
    mc.use_typed_index = !g_no_typed_index;
    core::MithriLog system(mc);
    std::string effective = withTypedFlags(query_text);
    Status st = mountImage(&system, img_path);
    if (!st.isOk()) {
        std::fprintf(stderr, "load: %s\n", st.toString().c_str());
        return 1;
    }
    // The plan attaches after the image load so injection hits only
    // the query path, not the (host-side) image restore.
    std::unique_ptr<fault::FaultPlan> plan;
    if (!g_fault_spec.empty()) {
        fault::FaultPlanConfig fc;
        st = fault::FaultPlan::parse(g_fault_spec, &fc);
        if (!st.isOk()) {
            std::fprintf(stderr, "fault-plan: %s\n",
                         st.toString().c_str());
            return 2;
        }
        plan = std::make_unique<fault::FaultPlan>(fc);
        system.ssd().attachFaultPlan(plan.get());
    }
    core::QueryResult r;
    st = system.run(effective, &r);
    if (!st.isOk()) {
        std::fprintf(stderr, "query: %s\n", st.toString().c_str());
        return 1;
    }
    std::printf("%llu matches (%llu/%llu pages%s%s%s%s%s); modeled "
                "%.3f ms, effective %s\n",
                static_cast<unsigned long long>(r.matched_lines),
                static_cast<unsigned long long>(r.pages_scanned),
                static_cast<unsigned long long>(r.pages_total),
                r.planned_full_scan ? ", planner: full scan" : "",
                r.used_fallback ? ", software fallback" : "",
                r.degraded_index_scan ? ", degraded: index" : "",
                r.degraded_software_scan ? ", degraded: software" : "",
                r.degraded_typed_scan ? ", degraded: typed scan" : "",
                r.total_time.toSeconds() * 1e3,
                humanBandwidth(r.effectiveThroughput(system.rawBytes()))
                    .c_str());
    std::printf("breakdown: %s\n", r.breakdown.toJson().c_str());
    for (size_t i = 0; i < r.lines.size() && i < 10; ++i) {
        std::printf("%s\n", r.lines[i].text.c_str());
    }
    if (r.lines.size() > 10) {
        std::printf("... and %zu more\n", r.lines.size() - 10);
    }
    return g_obs.write(system);
}

/** End-to-end pass through the service layer: concurrent ingest of
 *  the log file into --shards partitions, one query fanned out over
 *  all of them, deterministic merge. */
int
cmdSvc(const std::string &log_path, const std::string &query_text)
{
    std::string text;
    if (!readFile(log_path, &text)) {
        return 1;
    }
    svc::LogServiceConfig cfg;
    cfg.shards = g_shards;
    cfg.threads = g_threads;
    cfg.fault_spec = g_fault_spec;
    cfg.checkpoint_every_pages = g_checkpoint_every;
    if (!g_fault_spec.empty()) {
        // Validate up front: LogService asserts on a malformed spec.
        fault::FaultPlanConfig fc;
        Status ps = fault::FaultPlan::parse(g_fault_spec, &fc);
        if (!ps.isOk()) {
            std::fprintf(stderr, "fault-plan: %s\n",
                         ps.toString().c_str());
            return 2;
        }
    }
    svc::LogService service(cfg);

    WallTimer timer;
    size_t start = 0;
    uint64_t backpressure_waits = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        std::string_view line(text.data() + start, end - start);
        Status st = service.append(line);
        if (st.code() == StatusCode::kResourceExhausted) {
            ++backpressure_waits;
            service.drain(); // admission reopens once applied
            continue;        // retry the same line
        }
        if (!st.isOk()) {
            std::fprintf(stderr, "append: %s\n", st.toString().c_str());
            return 1;
        }
        start = end + 1;
    }
    Status st = service.flush();
    if (!st.isOk()) {
        std::fprintf(stderr, "flush: %s\n", st.toString().c_str());
        return 1;
    }
    double ingest_seconds = timer.seconds();

    svc::ServiceQueryResult r;
    st = service.query(withTypedFlags(query_text), &r);
    if (!st.isOk()) {
        std::fprintf(stderr, "query: %s\n", st.toString().c_str());
        return 1;
    }
    std::printf("service %zu shards x %zu threads: ingested %llu "
                "lines in %.2fs (%llu backpressure waits)\n",
                service.shardCount(), service.threadCount(),
                static_cast<unsigned long long>(service.lineCount()),
                ingest_seconds,
                static_cast<unsigned long long>(backpressure_waits));
    std::printf("%llu matches (%llu/%llu pages over all shards); "
                "modeled fan-out %.3f ms, imbalance %.1f%%\n",
                static_cast<unsigned long long>(r.matched_lines),
                static_cast<unsigned long long>(r.pages_scanned),
                static_cast<unsigned long long>(r.pages_total),
                r.total_time.toSeconds() * 1e3, r.shardImbalancePct());
    for (size_t i = 0; i < r.lines.size() && i < 10; ++i) {
        std::printf("%s\n", r.lines[i].text.c_str());
    }
    if (r.lines.size() > 10) {
        std::printf("... and %zu more\n", r.lines.size() - 10);
    }
    obs::JsonRecord("cli_svc")
        .field("shards", static_cast<uint64_t>(service.shardCount()))
        .field("threads", static_cast<uint64_t>(service.threadCount()))
        .field("lines", service.lineCount())
        .field("ingest_wall_seconds", ingest_seconds)
        .field("backpressure_waits", backpressure_waits)
        .field("matched_lines", r.matched_lines)
        .field("fanout_modeled_ps", r.total_time.ps())
        .field("shard_imbalance_pct", r.shardImbalancePct())
        .field("readonly_shards",
               static_cast<uint64_t>(service.readonlyShards()))
        .field("checkpoints",
               service.metrics().counter("svc.checkpoints").value())
        .emit();
    return g_obs.write(service.metrics(), service.tracer());
}

/** Open-loop soak run: a seeded arrival schedule of mixed ingest and
 *  query traffic against the service layer, reported as modeled
 *  (SimTime-domain) tail quantiles — deterministic for a given seed,
 *  shape, and service shape. */
int
cmdSoak()
{
    soak::SoakConfig cfg;
    Status st = soak::parseShape(g_soak_shape, &cfg.shape);
    if (!st.isOk()) {
        std::fprintf(stderr, "shape: %s\n", st.toString().c_str());
        return 2;
    }
    cfg.seed = g_soak_seed;
    cfg.duration_s = g_soak_duration;
    cfg.query_qps = g_soak_qps;
    cfg.shards = g_shards;
    cfg.threads = g_threads;
    cfg.checkpoint_every_pages = g_checkpoint_every;

    // Calibrate the offered rate to the measured closed-loop capacity
    // so the run is loaded but stable on any model parameters.
    double capacity = 0.0;
    st = soak::estimateIngestCapacity(cfg, &capacity);
    if (!st.isOk()) {
        std::fprintf(stderr, "capacity: %s\n", st.toString().c_str());
        return 1;
    }
    cfg.ingest_lps = capacity * 0.7;

    soak::SoakDriver driver(cfg);
    soak::SoakReport report;
    st = driver.run(&report);
    if (!st.isOk()) {
        std::fprintf(stderr, "soak: %s\n", st.toString().c_str());
        return 1;
    }

    std::printf("soak %s %.2fs seed %llu, %zu shards x %zu threads, "
                "offered %.0f lines/s + %.0f q/s\n",
                g_soak_shape.c_str(), cfg.duration_s,
                static_cast<unsigned long long>(cfg.seed), cfg.shards,
                cfg.threads, cfg.ingest_lps, cfg.query_qps);
    std::printf("offered %llu accepted %llu dropped %llu (drop rate "
                "%.2f%%), %llu queries, %llu matches\n",
                static_cast<unsigned long long>(report.offered_lines),
                static_cast<unsigned long long>(report.accepted_lines),
                static_cast<unsigned long long>(report.dropped_lines),
                report.drop_rate * 100.0,
                static_cast<unsigned long long>(
                    report.completed_queries),
                static_cast<unsigned long long>(report.matched_lines));
    std::printf("ingest e2e p50/p99/p999: %.1f / %.1f / %.1f us "
                "(modeled)\n",
                static_cast<double>(report.ingest_e2e_ps.p50) / 1e6,
                static_cast<double>(report.ingest_e2e_ps.p99) / 1e6,
                static_cast<double>(report.ingest_e2e_ps.p999) / 1e6);
    std::printf("query  e2e p50/p99/p999: %.1f / %.1f / %.1f us "
                "(modeled)\n",
                static_cast<double>(report.query_e2e_ps.p50) / 1e6,
                static_cast<double>(report.query_e2e_ps.p99) / 1e6,
                static_cast<double>(report.query_e2e_ps.p999) / 1e6);

    obs::JsonRecord("cli_soak")
        .field("shape", g_soak_shape)
        .field("duration_s", cfg.duration_s)
        .field("seed", cfg.seed)
        .field("shards", static_cast<uint64_t>(cfg.shards))
        .field("threads", static_cast<uint64_t>(cfg.threads))
        .field("capacity_lps", capacity)
        .field("offered_lps", cfg.ingest_lps)
        .field("query_qps", cfg.query_qps)
        .field("offered_lines", report.offered_lines)
        .field("accepted_lines", report.accepted_lines)
        .field("dropped_lines", report.dropped_lines)
        .field("drop_rate", report.drop_rate)
        .field("completed_queries", report.completed_queries)
        .field("matched_lines", report.matched_lines)
        .field("ingest_e2e_p50_ps", report.ingest_e2e_ps.p50)
        .field("ingest_e2e_p99_ps", report.ingest_e2e_ps.p99)
        .field("ingest_e2e_p999_ps", report.ingest_e2e_ps.p999)
        .field("query_e2e_p50_ps", report.query_e2e_ps.p50)
        .field("query_e2e_p99_ps", report.query_e2e_ps.p99)
        .field("query_e2e_p999_ps", report.query_e2e_ps.p999)
        .emit();
    return g_obs.write(driver.metrics(), driver.service().tracer());
}

int
cmdTemplates(const std::string &log_path, size_t show)
{
    std::string text;
    if (!readFile(log_path, &text)) {
        return 1;
    }
    templates::FtTree tree = templates::FtTree::build(text, {});
    auto tpls = tree.extractTemplates();
    std::printf("%zu templates (showing %zu):\n", tpls.size(),
                std::min(show, tpls.size()));
    for (size_t i = 0; i < tpls.size() && i < show; ++i) {
        std::string joined;
        for (const std::string &tok : tpls[i].tokens) {
            joined += tok + " ";
        }
        std::printf("  %6llu  %s\n",
                    static_cast<unsigned long long>(tpls[i].support),
                    joined.c_str());
    }
    return 0;
}

/** Offline storage maintenance on a saved image: load, run one
 *  checkpoint (journal truncation + segment GC), save back in place.
 *  Works on sealed ingest images — the seal survives via the
 *  superblock flag — and bounds what a later --recover mount replays. */
int
cmdCheckpoint(const std::string &img_path)
{
    core::MithriLog system;
    Status st = system.loadImage(img_path);
    if (!st.isOk()) {
        std::fprintf(stderr, "load: %s\n", st.toString().c_str());
        return 1;
    }
    uint64_t chain_before = system.journalChainRecords();
    uint64_t segments_freed_before =
        system.ssd().store().segmentsFreed();
    WallTimer timer;
    st = system.checkpoint();
    if (!st.isOk()) {
        std::fprintf(stderr, "checkpoint: %s\n",
                     st.toString().c_str());
        return 1;
    }
    st = system.saveImage(img_path);
    if (!st.isOk()) {
        std::fprintf(stderr, "save: %s\n", st.toString().c_str());
        return 1;
    }
    uint64_t segments_freed =
        system.ssd().store().segmentsFreed() - segments_freed_before;
    std::printf("checkpointed %s: chain %llu -> %llu records "
                "(snapshot %llu), %llu segment(s) reclaimed\n",
                img_path.c_str(),
                static_cast<unsigned long long>(chain_before),
                static_cast<unsigned long long>(
                    system.journalChainRecords()),
                static_cast<unsigned long long>(
                    system.journalSnapshotRecords()),
                static_cast<unsigned long long>(segments_freed));
    obs::JsonRecord("cli_checkpoint")
        .field("chain_records_before", chain_before)
        .field("chain_records_after", system.journalChainRecords())
        .field("snapshot_records", system.journalSnapshotRecords())
        .field("segments_freed", segments_freed)
        .field("checkpoints", system.checkpoints())
        .field("wall_seconds", timer.seconds())
        .emit();
    return g_obs.write(system);
}

int
cmdStat(const std::string &img_path)
{
    core::MithriLog system;
    Status st = mountImage(&system, img_path);
    if (!st.isOk()) {
        std::fprintf(stderr, "load: %s\n", st.toString().c_str());
        return 1;
    }
    std::printf("lines:            %llu\n",
                static_cast<unsigned long long>(system.lineCount()));
    std::printf("raw bytes:        %s\n",
                humanBytes(static_cast<double>(system.rawBytes()))
                    .c_str());
    std::printf("data pages:       %llu\n",
                static_cast<unsigned long long>(system.dataPageCount()));
    std::printf("compression:      %.2fx\n", system.compressionRatio());
    std::printf("device pages:     %llu\n",
                static_cast<unsigned long long>(
                    system.ssd().store().pageCount()));
    std::printf("index memory:     %s\n",
                humanBytes(static_cast<double>(
                    system.index().memoryFootprint())).c_str());
    std::printf("index snapshots:  %zu\n",
                system.index().snapshots().size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the observability flags anywhere on the line; the
    // subcommands then see only their positional arguments.
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        std::string_view a = argv[i];
        if (a.rfind("--metrics-out=", 0) == 0) {
            g_obs.metrics_path = a.substr(strlen("--metrics-out="));
        } else if (a.rfind("--trace-out=", 0) == 0) {
            g_obs.trace_path = a.substr(strlen("--trace-out="));
        } else if (a.rfind("--fault-plan=", 0) == 0) {
            g_fault_spec = a.substr(strlen("--fault-plan="));
        } else if (a.rfind("--crash-at=", 0) == 0) {
            g_crash_at = std::stoull(
                std::string(a.substr(strlen("--crash-at="))));
        } else if (a == "--recover") {
            g_recover = true;
        } else if (a.rfind("--checkpoint-every=", 0) == 0) {
            g_checkpoint_every = std::stoull(
                std::string(a.substr(strlen("--checkpoint-every="))));
        } else if (a.rfind("--shards=", 0) == 0) {
            g_shards = std::stoull(
                std::string(a.substr(strlen("--shards="))));
        } else if (a.rfind("--threads=", 0) == 0) {
            g_threads = std::stoull(
                std::string(a.substr(strlen("--threads="))));
        } else if (a.rfind("--shape=", 0) == 0) {
            g_soak_shape = a.substr(strlen("--shape="));
        } else if (a.rfind("--duration=", 0) == 0) {
            g_soak_duration = std::stod(
                std::string(a.substr(strlen("--duration="))));
        } else if (a.rfind("--seed=", 0) == 0) {
            g_soak_seed = std::stoull(
                std::string(a.substr(strlen("--seed="))));
        } else if (a.rfind("--qps=", 0) == 0) {
            g_soak_qps = std::stod(
                std::string(a.substr(strlen("--qps="))));
        } else if (a.rfind("--ip=", 0) == 0) {
            g_flag_ip = a.substr(strlen("--ip="));
        } else if (a.rfind("--id=", 0) == 0) {
            g_flag_id = a.substr(strlen("--id="));
        } else if (a.rfind("--window=", 0) == 0) {
            g_flag_window = a.substr(strlen("--window="));
        } else if (a == "--no-typed-index") {
            g_no_typed_index = true;
        } else {
            args.push_back(argv[i]);
        }
    }
    argc = static_cast<int>(args.size());
    argv = args.data();

    if (argc < 2) {
        return usage();
    }
    std::string cmd = argv[1];
    if (cmd == "generate" && argc == 5) {
        return cmdGenerate(argv[2], argv[3], argv[4]);
    }
    if (cmd == "ingest" && argc == 4) {
        return cmdIngest(argv[2], argv[3]);
    }
    if (cmd == "query" && (argc == 3 || argc == 4)) {
        // With only typed flags the positional query may be omitted:
        //   mithril_cli query in.img --ip=10.0.0.0/8
        if (argc == 3 && g_flag_ip.empty() && g_flag_id.empty() &&
            g_flag_window.empty()) {
            return usage();
        }
        return cmdQuery(argv[2], argc == 4 ? argv[3] : "");
    }
    if (cmd == "svc" && argc == 4) {
        return cmdSvc(argv[2], argv[3]);
    }
    if (cmd == "templates" && (argc == 3 || argc == 4)) {
        return cmdTemplates(argv[2],
                            argc == 4 ? std::stoull(argv[3]) : 10);
    }
    if (cmd == "stat" && argc == 3) {
        return cmdStat(argv[2]);
    }
    if (cmd == "checkpoint" && argc == 3) {
        return cmdCheckpoint(argv[2]);
    }
    if (cmd == "soak" && argc == 2) {
        return cmdSoak();
    }
    return usage();
}
