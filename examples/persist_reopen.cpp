/**
 * @file
 * Persistence: build a MithriLog device image, save it, reopen it in a
 * fresh system, and keep querying/ingesting — the operational flow of
 * a log store that survives restarts.
 *
 * Usage: persist_reopen [image-path]  (default: /tmp/mithrilog.img)
 */
#include <cstdio>
#include <string>

#include "common/text.h"
#include "common/wall_timer.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"

using namespace mithril;

int
main(int argc, char **argv)
{
    std::string path = argc > 1 ? argv[1] : "/tmp/mithrilog.img";

    // Phase 1: ingest and save.
    {
        loggen::LogGenerator gen(loggen::datasetByName("Spirit2"));
        core::MithriLog system;
        if (!system.ingestText(gen.generate(4 << 20)).isOk()) {
            return 1;
        }
        WallTimer timer;
        Status st = system.saveImage(path);
        if (!st.isOk()) {
            std::fprintf(stderr, "save failed: %s\n",
                         st.toString().c_str());
            return 1;
        }
        std::printf("saved %llu lines (%llu pages) to %s in %.2fs\n",
                    static_cast<unsigned long long>(system.lineCount()),
                    static_cast<unsigned long long>(
                        system.dataPageCount()),
                    path.c_str(), timer.seconds());
    }

    // Phase 2: reopen in a fresh system and query.
    core::MithriLog reopened;
    WallTimer timer;
    Status st = reopened.loadImage(path);
    if (!st.isOk()) {
        std::fprintf(stderr, "load failed: %s\n", st.toString().c_str());
        return 1;
    }
    std::printf("reopened in %.2fs: %llu lines, index memory %s\n",
                timer.seconds(),
                static_cast<unsigned long long>(reopened.lineCount()),
                humanBytes(static_cast<double>(
                    reopened.index().memoryFootprint())).c_str());

    core::QueryResult r;
    st = reopened.run("error | failed | panic", &r);
    if (st.isOk()) {
        std::printf("query over the reopened image: %llu matches, "
                    "%.3f ms modeled (%llu/%llu pages)\n",
                    static_cast<unsigned long long>(r.matched_lines),
                    r.total_time.toSeconds() * 1e3,
                    static_cast<unsigned long long>(r.pages_scanned),
                    static_cast<unsigned long long>(r.pages_total));
    }

    // Phase 3: the reopened store keeps accepting logs.
    if (!reopened.ingestText("post-restart sentinel line PROOF\n")
             .isOk() ||
        !reopened.flush().isOk()) {
        return 1;
    }
    st = reopened.run("PROOF", &r);
    if (st.isOk() && r.matched_lines == 1) {
        std::printf("post-restart ingest works: sentinel found\n");
    }
    std::remove(path.c_str());
    return 0;
}
