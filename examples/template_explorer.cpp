/**
 * @file
 * Template explorer: the paper's template-based log discovery workflow
 * (Sections 4.3, 7.1).
 *
 * Extracts a template library from a log with the FT-tree method,
 * prints the library, converts templates to union-of-intersections
 * queries, and runs them through the accelerator — including a batched
 * run of several templates in one pass.
 *
 * Usage: template_explorer [dataset-name] (BGL2, Liberty2, Spirit2,
 * Thunderbird; default BGL2)
 */
#include <cstdio>
#include <string>

#include "common/text.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "templates/ft_tree.h"

using namespace mithril;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "BGL2";
    loggen::LogGenerator gen(loggen::datasetByName(name));
    std::string text = gen.generate(4 << 20);
    std::printf("dataset %s: %s synthetic log text\n", name.c_str(),
                humanBytes(static_cast<double>(text.size())).c_str());

    // Extract the template library with FT-tree.
    templates::FtTreeConfig cfg;
    cfg.max_depth = 8;
    templates::FtTree tree = templates::FtTree::build(text, cfg);
    auto tpls = tree.extractTemplates();
    std::printf("FT-tree: %zu templates from %zu tree nodes\n\n",
                tpls.size(), tree.nodeCount());

    for (size_t i = 0; i < tpls.size() && i < 10; ++i) {
        std::string tokens, negs;
        for (const std::string &t : tpls[i].tokens) {
            tokens += t + " ";
        }
        for (const std::string &n : tpls[i].negations) {
            negs += "!" + n + " ";
        }
        std::printf("  template %2zu (support %6llu): %s%s\n", i,
                    static_cast<unsigned long long>(tpls[i].support),
                    tokens.c_str(), negs.c_str());
    }
    if (tpls.size() > 10) {
        std::printf("  ... and %zu more\n", tpls.size() - 10);
    }

    // Ingest and run template queries on the accelerator.
    core::MithriLog system;
    if (!system.ingestText(text).isOk() || !system.flush().isOk()) {
        return 1;
    }

    std::printf("\nper-template retrieval (first 5):\n");
    for (size_t i = 0; i < tpls.size() && i < 5; ++i) {
        query::Query q = templates::templateToQuery(tpls[i]);
        core::QueryResult result;
        Status st = system.run(q, &result);
        if (!st.isOk()) {
            std::printf("  template %zu: %s\n", i,
                        st.toString().c_str());
            continue;
        }
        std::printf("  template %zu -> %llu lines in %.3f ms "
                    "(query: %s)\n",
                    i,
                    static_cast<unsigned long long>(result.matched_lines),
                    result.total_time.toSeconds() * 1e3,
                    q.toString().substr(0, 60).c_str());
    }

    // Batched execution: up to 8 templates in one accelerator pass.
    size_t n = std::min<size_t>(8, tpls.size());
    query::Query joined =
        templates::templatesToQuery(std::span(tpls.data(), n));
    core::QueryResult result;
    Status st = system.run(joined, &result);
    if (st.isOk()) {
        std::printf("\nbatched %zu templates in one pass: %llu lines, "
                    "%.3f ms modeled\n",
                    n,
                    static_cast<unsigned long long>(result.matched_lines),
                    result.total_time.toSeconds() * 1e3);
    } else {
        std::printf("\nbatched compile failed (%s); templates too "
                    "large for one program\n", st.toString().c_str());
    }
    return 0;
}
