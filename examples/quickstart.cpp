/**
 * @file
 * Quickstart: ingest a log, run queries, read the results.
 *
 * Demonstrates the minimal MithriLog flow:
 *   1. create a system (simulated near-storage SSD + accelerator),
 *   2. ingest newline-separated log text,
 *   3. run boolean token queries,
 *   4. inspect matches and the modeled performance breakdown.
 *
 * Usage: quickstart [path-to-log-file]
 * Without an argument, a small synthetic HPC log is generated.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/text.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"

using namespace mithril;

int
main(int argc, char **argv)
{
    // 1. Obtain some log text.
    std::string text;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    } else {
        loggen::LogGenerator gen(loggen::datasetByName("BGL2"));
        text = gen.generate(4 << 20);
        std::printf("generated %s of synthetic BGL2-like logs\n",
                    humanBytes(static_cast<double>(text.size())).c_str());
    }

    // 2. Ingest: lines are LZAH-compressed into 4 KB pages and indexed.
    core::MithriLog system;
    Status st = system.ingestText(text);
    if (!st.isOk()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    st = system.flush();
    if (!st.isOk()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    std::printf("ingested %llu lines into %llu pages "
                "(compression %.2fx, index memory %s)\n",
                static_cast<unsigned long long>(system.lineCount()),
                static_cast<unsigned long long>(system.dataPageCount()),
                system.compressionRatio(),
                humanBytes(static_cast<double>(
                    system.index().memoryFootprint())).c_str());

    // 3. Run queries: plain AND/OR/NOT over whole tokens.
    const char *queries[] = {
        "KERNEL & INFO",
        "FATAL & !INFO",
        "\"error\" | \"failure\"",
    };
    for (const char *q : queries) {
        core::QueryResult result;
        st = system.run(q, &result);
        if (!st.isOk()) {
            std::fprintf(stderr, "query '%s' failed: %s\n", q,
                         st.toString().c_str());
            continue;
        }
        std::printf("\nquery: %s\n", q);
        std::printf("  matched %llu of %llu lines; scanned %llu/%llu "
                    "pages\n",
                    static_cast<unsigned long long>(result.matched_lines),
                    static_cast<unsigned long long>(system.lineCount()),
                    static_cast<unsigned long long>(result.pages_scanned),
                    static_cast<unsigned long long>(result.pages_total));
        std::printf("  modeled time: %.3f ms (index %.3f ms, "
                    "storage %.3f ms, compute %.3f ms)\n",
                    result.total_time.toSeconds() * 1e3,
                    result.index_time.toSeconds() * 1e3,
                    result.storage_time.toSeconds() * 1e3,
                    result.compute_time.toSeconds() * 1e3);
        std::printf("  effective throughput: %s\n",
                    humanBandwidth(result.effectiveThroughput(
                        system.rawBytes())).c_str());
        // 4. The same attribution, machine-readable: Table-7's
        // index/storage/compute split plus the index's page-pruning
        // account (candidates, false positives).
        std::printf("  breakdown: %s\n",
                    result.breakdown.toJson().c_str());
        for (size_t i = 0; i < result.lines.size() && i < 3; ++i) {
            std::printf("  > %s\n", result.lines[i].text.c_str());
        }
    }
    return 0;
}
