#!/usr/bin/env bash
# One-command CI gate: every layer of the static-analysis + test stack.
#
#   tools/ci_check.sh [--fast]
#
# Runs, in order (stopping at the first failure):
#   1. werror build      full tree, -Wall -Wextra -Werror
#   2. unit + bench tests ctest over the werror build
#   3. fault matrix      tools/fault_matrix.sh — end-to-end queries
#      under corruption/timeout/mixed fault plans stay exactly correct
#   4. crash matrix      tools/crash_matrix.sh — power-cut at every
#      device program; recovery never loses acknowledged data and
#      never fabricates a match
#   5. mg crash matrix   tools/crash_matrix.sh --rounds=2 — resume the
#      recovered store under a fresh journal generation, cut again,
#      recover again; the contract holds at every (cut1, cut2) pair of
#      the bounded grid
#   6. ckpt crash matrix tools/crash_matrix.sh --checkpoint — the same
#      cut grid with the background checkpoint policy on, so cuts land
#      inside snapshot writes, epoch bumps, and migrations; the final
#      recovery must show bounded replay (snapshot + short chain tail)
#   7. tsan tier         the svc-labelled concurrency tests under
#      -fsanitize=thread (skipped where the toolchain lacks TSan)
#   8. soak SLO smoke    a short deterministic open-loop soak run whose
#      soak_slo record must repeat byte-identically and pass its
#      end-to-end p99 gate
#   9. typed-query smoke bench_typed_query — the incident scenario's
#      typed_query records must repeat byte-identically, carry the
#      schema keys, and show the typed tier reading fewer device bytes
#      than the full scan for byte-identical match sets
#  10. thread safety     tools/run_tsa.sh — Clang -Wthread-safety over
#      src/, plus its fixture selftest (skipped where clang++ is not
#      installed)
#  11. domain lint       tools/mithril_lint.py (and its self-test)
#  12. clang-tidy        tools/run_tidy.sh (skipped if not installed)
#  13. ubsan build+test  full tree under -fsanitize=undefined
#      (skipped with --fast)
#
# This is the command ROADMAP's tier-1 verify can grow into: a tree
# that passes ci_check.sh passes every gate a future PR is held to.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

JOBS="$(nproc 2> /dev/null || echo 4)"

step() { printf '\n=== ci_check: %s ===\n' "$*"; }

step "werror build (preset: werror)"
cmake --preset werror > /dev/null
cmake --build --preset werror -j "$JOBS"

step "unit + bench tests"
ctest --test-dir build-werror --output-on-failure -j "$JOBS"

step "fault matrix (tools/fault_matrix.sh)"
tools/fault_matrix.sh build-werror/examples/mithril_cli \
    build-werror/fault_matrix_ci

step "crash matrix (tools/crash_matrix.sh)"
tools/crash_matrix.sh build-werror/examples/mithril_cli \
    build-werror/crash_matrix_ci

step "multi-generation crash matrix (crash_matrix.sh --rounds=2)"
tools/crash_matrix.sh --rounds=2 build-werror/examples/mithril_cli \
    build-werror/crash_matrix_mg_ci

step "checkpointed crash matrix (crash_matrix.sh --checkpoint)"
tools/crash_matrix.sh --checkpoint build-werror/examples/mithril_cli \
    build-werror/crash_matrix_ckpt_ci

step "tsan tier (svc concurrency tests, preset: tsan)"
# Probe the toolchain the same way lint_tidy handles a missing
# clang-tidy: a graceful SKIP (exit 77 convention) where the sanitizer
# runtime is not shipped, a hard gate where it is.
if echo 'int main(){return 0;}' \
    | c++ -x c++ -fsanitize=thread -o /tmp/ci_tsan_probe.$$ - \
        > /dev/null 2>&1; then
    rm -f "/tmp/ci_tsan_probe.$$"
    cmake --preset tsan > /dev/null
    cmake --build --preset tsan -j "$JOBS" --target svc_test
    ctest --test-dir build-tsan -L svc --output-on-failure -j "$JOBS"
else
    echo "thread sanitizer unavailable: SKIPPED (77)"
fi

step "soak SLO smoke (bench_soak_slo, deterministic)"
SOAK_DIR="build-werror/soak_ci"
mkdir -p "$SOAK_DIR"
SOAK_FLAGS="--shape=bursty --duration=0.05 --seed=7 --qps=30"
# shellcheck disable=SC2086  # flags are intentionally word-split
build-werror/bench/bench_soak_slo $SOAK_FLAGS \
    --json-out="$SOAK_DIR/records_a.json" \
    --metrics-out="$SOAK_DIR/metrics.json" > /dev/null
# shellcheck disable=SC2086
build-werror/bench/bench_soak_slo $SOAK_FLAGS \
    --json-out="$SOAK_DIR/records_b.json" > /dev/null
cmp "$SOAK_DIR/records_a.json" "$SOAK_DIR/records_b.json" \
    || { echo "soak records differ across identical runs"; exit 1; }
build-werror/bench/json_check "$SOAK_DIR/metrics.json" \
    soak.ingest_e2e.sim_ps soak.query_e2e.sim_ps \
    svc.batch_apply.sim_ps journal.commit.sim_ps
build-werror/bench/json_check "$SOAK_DIR/records_a.json" \
    soak_slo ingest_e2e_p99_ps slo_pass
echo "soak SLO smoke: deterministic, schema-clean, SLO pass"

step "typed-query smoke (bench_typed_query, deterministic)"
TYPED_DIR="build-werror/typed_ci"
mkdir -p "$TYPED_DIR"
build-werror/bench/bench_typed_query \
    --json-out="$TYPED_DIR/records_a.json" \
    --metrics-out="$TYPED_DIR/metrics.json" > /dev/null
build-werror/bench/bench_typed_query \
    --json-out="$TYPED_DIR/records_b.json" > /dev/null
cmp "$TYPED_DIR/records_a.json" "$TYPED_DIR/records_b.json" \
    || { echo "typed records differ across identical runs"; exit 1; }
build-werror/bench/json_check "$TYPED_DIR/metrics.json" \
    typed.postings typed.pages_written typed.pages_read \
    typed.lookups core.typed_queries
build-werror/bench/json_check "$TYPED_DIR/records_a.json" \
    typed_query matched_lines typed_index_bytes \
    typed_device_bytes full_scan_device_bytes byte_reduction
echo "typed-query smoke: deterministic, schema-clean, bytes reduced"

step "thread-safety analysis (tools/run_tsa.sh)"
if tools/run_tsa.sh; then
    tools/run_tsa.sh --selftest
else
    rc=$?
    if [ "$rc" -eq 77 ]; then
        echo "clang++ unavailable: SKIPPED"
    else
        exit "$rc"
    fi
fi

step "domain lint (mithril_lint.py + selftest)"
python3 tools/mithril_lint.py
python3 tests/lint/lint_selftest.py > /dev/null
echo "lint selftest: ok"

step "clang-tidy"
if tools/run_tidy.sh build-werror; then
    :
else
    rc=$?
    if [ "$rc" -eq 77 ]; then
        echo "clang-tidy unavailable: SKIPPED"
    else
        exit "$rc"
    fi
fi

if [ "$FAST" -eq 1 ]; then
    step "ubsan tier skipped (--fast)"
else
    step "ubsan build + tests (preset: ubsan)"
    cmake --preset ubsan > /dev/null
    cmake --build --preset ubsan -j "$JOBS"
    ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
fi

step "ALL GATES PASSED"
