#!/usr/bin/env bash
# Layer 2 of the static-analysis gate: clang-tidy over every first-party
# translation unit, using the curated check set in .clang-tidy.
#
# Usage: tools/run_tidy.sh [build-dir]
#
# The build dir must contain compile_commands.json (the top-level
# CMakeLists.txt exports it unconditionally). Exit codes:
#   0   zero findings
#   1   findings (or tool failure)
#   77  clang-tidy not installed — reported as SKIPPED by CTest
#       (SKIP_RETURN_CODE), so the lint suite stays green on boxes
#       without LLVM while still running everywhere it can.
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
    for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                     clang-tidy-15 clang-tidy-14; do
        if command -v "$candidate" > /dev/null 2>&1; then
            TIDY="$candidate"
            break
        fi
    done
fi
if [ -z "$TIDY" ]; then
    echo "run_tidy: clang-tidy not found (set CLANG_TIDY=...); skipping" >&2
    exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_tidy: $BUILD_DIR/compile_commands.json missing;" \
         "configure with cmake -B $BUILD_DIR -S . first" >&2
    exit 1
fi

# First-party TUs only: generated/third-party code is not ours to
# lint, and the deliberately-bad lint fixtures are not in the compile
# database.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'bench/*.cc' \
                     'examples/*.cpp' 'tests/**/*.cc' \
                     ':!tests/lint/fixtures')
if [ "${#FILES[@]}" -eq 0 ]; then
    echo "run_tidy: no source files found" >&2
    exit 1
fi

echo "run_tidy: $TIDY over ${#FILES[@]} files"
JOBS="$(nproc 2> /dev/null || echo 4)"
printf '%s\n' "${FILES[@]}" |
    xargs -P "$JOBS" -n 8 "$TIDY" -p "$BUILD_DIR" --quiet
rc=$?
if [ $rc -eq 0 ]; then
    echo "run_tidy: clean"
fi
exit $rc
