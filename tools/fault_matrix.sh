#!/usr/bin/env bash
# Fault-matrix acceptance gate.
#
# Runs one end-to-end query (generate -> ingest -> query) under a
# matrix of deterministic fault plans — clean, silent corruption,
# command timeouts, and a mixed plan — and asserts:
#
#   1. every faulted run reports exactly the clean run's match count
#      (retry + CRC-reread recovery, or a documented degraded path —
#      never silently wrong results);
#   2. the faulted runs' --metrics-out snapshots carry the fault.*
#      injection counters and the degradation counters the robustness
#      layer promises;
#   3. the clean run draws no faults at all (null-plan hot path).
#
# Usage: fault_matrix.sh <path-to-mithril_cli> [workdir]
set -euo pipefail

CLI="$1"
WORK="${2:-$(mktemp -d)}"
QUERY="error"
mkdir -p "$WORK"

"$CLI" generate Spirit2 2 "$WORK/fm.log" > /dev/null
"$CLI" ingest "$WORK/fm.log" "$WORK/fm.img" > /dev/null

# run_query <name> <plan-spec-or-empty> [query]  -> prints match count
run_query() {
    local name="$1" plan="$2" q="${3:-$QUERY}"
    local args=("query" "$WORK/fm.img" "$q"
                "--metrics-out=$WORK/$name.json")
    if [[ -n "$plan" ]]; then
        args+=("--fault-plan=$plan")
    fi
    "$CLI" "${args[@]}" > "$WORK/$name.out"
    awk 'NR==1 { print $1 }' "$WORK/$name.out"
}

# counter <name> <key>  -> value from the run's metrics snapshot
counter() {
    python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
print(int(snap["counters"].get(sys.argv[2], 0)))
' "$WORK/$1.json" "$2"
}

clean=$(run_query clean "")
corruption=$(run_query corruption "seed=3,ber=1e-6,garble=0.002")
timeout=$(run_query timeout "seed=5,timeout=0.01")
mixed=$(run_query mixed "seed=7,ber=1e-6,ecc=0.002,timeout=0.01,garble=0.001")

echo "matches: clean=$clean corruption=$corruption" \
     "timeout=$timeout mixed=$mixed"

fail=0
for name in corruption timeout mixed; do
    got=$(eval echo "\$$name")
    if [[ "$got" != "$clean" ]]; then
        echo "FAIL: $name plan returned $got matches, clean=$clean"
        fail=1
    fi
    draws=$(counter "$name" fault.draws)
    if [[ "$draws" -eq 0 ]]; then
        echo "FAIL: $name plan drew no faults (plan not attached?)"
        fail=1
    fi
    for key in fault.timeouts fault.uncorrectable fault.bits_flipped \
               fault.blocks_garbled ssd.read_retries \
               core.degraded_index_scans core.degraded_software_scans \
               core.pages_dropped; do
        python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
sys.exit(0 if sys.argv[2] in snap["counters"] else 1)
' "$WORK/$name.json" "$key" || {
            echo "FAIL: $name metrics missing $key"
            fail=1
        }
    done
done

# Typed-predicate tier (DESIGN.md §15): the same clean-equal contract
# for an incident-response query riding the typed posting lists. The
# generator's pool is 10.x addresses, so the /8 block is guaranteed to
# match; corrupted posting pages must degrade to the exact typed scan,
# never return silently short results.
TQUERY="ip:10.0.0.0/8 & error"
tclean=$(run_query tclean "" "$TQUERY")
tcorruption=$(run_query tcorruption "seed=3,ber=1e-6,garble=0.002" \
                        "$TQUERY")
tmixed=$(run_query tmixed \
                   "seed=7,ber=1e-6,ecc=0.002,timeout=0.01,garble=0.001" \
                   "$TQUERY")
echo "typed matches: clean=$tclean corruption=$tcorruption" \
     "mixed=$tmixed"
if [[ "$tclean" -eq 0 ]]; then
    echo "FAIL: typed query matched nothing on the clean image"
    fail=1
fi
for name in tcorruption tmixed; do
    got=$(eval echo "\$$name")
    if [[ "$got" != "$tclean" ]]; then
        echo "FAIL: typed $name returned $got matches, clean=$tclean"
        fail=1
    fi
done
if [[ $(counter tclean core.typed_queries) -eq 0 ]]; then
    echo "FAIL: typed query did not route through the typed tier"
    fail=1
fi

# Injection must actually have happened somewhere in the matrix.
injected=$(( $(counter timeout fault.timeouts) \
           + $(counter corruption fault.bits_flipped) \
           + $(counter corruption fault.blocks_garbled) \
           + $(counter mixed fault.uncorrectable) ))
if [[ "$injected" -eq 0 ]]; then
    echo "FAIL: matrix injected nothing; rates or seeds are broken"
    fail=1
fi

if [[ $(counter clean fault.draws) -ne 0 ]]; then
    echo "FAIL: clean run drew faults without a plan"
    fail=1
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "fault matrix OK ($clean keyword / $tclean typed matches under" \
     "every plan)"
