#!/usr/bin/env bash
# Layer 4 of the static-analysis gate: Clang thread-safety analysis
# (-Wthread-safety) over every first-party translation unit, proving
# the capability annotations in common/thread_annotations.h hold —
# every MITHRIL_GUARDED_BY field touched under its lock, every
# MITHRIL_REQUIRES method called with the lock held (DESIGN.md §13).
#
# Usage: tools/run_tsa.sh                 # gate: whole tree must pass
#        tools/run_tsa.sh --fixture FILE  # compile one file (exit =
#                                         # compiler exit; WILL_FAIL
#                                         # fixtures use this)
#        tools/run_tsa.sh --selftest      # every tsa fixture must FAIL
#
# Syntax-only compile: the annotations are attributes, so no objects
# are needed to check them. Only the thread-safety group is promoted
# to errors (-Werror=thread-safety), deliberately not blanket -Werror:
# the gcc -Werror tier already keeps general warnings at zero, and
# clang-vs-gcc warning drift must not be able to break this gate.
#
# Exit codes:
#   0   analysis clean (or, with --selftest, all fixtures rejected)
#   1   findings / fixture compiled when it must not
#   77  clang++ not installed — reported as SKIPPED by CTest
#       (SKIP_RETURN_CODE), same contract as run_tidy.sh.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

CXX="${CLANGXX:-}"
if [ -z "$CXX" ]; then
    for candidate in clang++ clang++-18 clang++-17 clang++-16 \
                     clang++-15 clang++-14; do
        if command -v "$candidate" > /dev/null 2>&1; then
            CXX="$candidate"
            break
        fi
    done
fi
if [ -z "$CXX" ]; then
    echo "run_tsa: clang++ not found (set CLANGXX=...); skipping" >&2
    exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -Wall -Wextra
       -Wthread-safety -Werror=thread-safety -I src)

mode="${1:-}"
case "$mode" in
--fixture)
    file="${2:?usage: run_tsa.sh --fixture FILE}"
    exec "$CXX" "${FLAGS[@]}" "$file"
    ;;
--selftest)
    # Each fixture encodes one analysis failure mode; compiling clean
    # would mean the gate can no longer see that mistake.
    rc=0
    for f in tests/tsa/fixtures/tsa_bad_*.cc; do
        if "$CXX" "${FLAGS[@]}" "$f" > /dev/null 2>&1; then
            echo "run_tsa: $f compiled but must be rejected" >&2
            rc=1
        else
            echo "run_tsa: $f rejected (expected)"
        fi
    done
    [ $rc -eq 0 ] && echo "run_tsa: selftest ok"
    exit $rc
    ;;
"") ;;
*)
    echo "run_tsa: unknown option $mode" >&2
    exit 2
    ;;
esac

mapfile -t FILES < <(git ls-files 'src/**/*.cc')
if [ "${#FILES[@]}" -eq 0 ]; then
    echo "run_tsa: no source files found" >&2
    exit 1
fi

echo "run_tsa: $CXX -Wthread-safety over ${#FILES[@]} files"
rc=0
for f in "${FILES[@]}"; do
    "$CXX" "${FLAGS[@]}" "$f" || rc=1
done
if [ $rc -eq 0 ]; then
    echo "run_tsa: clean"
fi
exit $rc
