#!/usr/bin/env python3
"""mithril-lint: domain-invariant linter for the MithriLog tree.

Layer 3 of the static-analysis gate (DESIGN.md §8). Enforces
repo-specific invariants no generic tool knows about:

  cycle-to-time      cycle counts may only be converted to time or
                     throughput inside src/common/simtime.h and src/sim/;
                     everywhere else they must flow through SimTime so
                     modeled GB/s stays structurally derived.
  dropped-status     a call to an unambiguously Status-returning function
                     used as a bare statement (belt and braces on top of
                     the [[nodiscard]] + -Werror compiler layer).
  direct-statset     StatSet is a deprecated shim; new code reports into
                     mithril::obs::MetricsRegistry.
  banned-rand-time   rand()/srand()/time()/std::random_device break
                     bit-for-bit reproducibility; use common/rng.h.
  raw-new-delete     no naked new/delete outside arena code; use
                     containers or smart pointers.
  cast-outside-bits  reinterpret_cast/const_cast only inside the audited
                     helpers in src/common/bits.h.
  fault-gating       fault-injection hooks must only be reachable
                     through an attached mithril::fault::FaultPlan —
                     no #ifdef fault gates, no static mutable fault
                     toggles, no drawRead()/drawWrite() outside a
                     plan object —
                     so a build with no plan attached is provably
                     fault-free and every injection is seed-replayable.
  thread-ownership   threads may only be created inside src/svc/ (the
                     service layer owns all concurrency; core stays
                     single-threaded by construction) and tests/svc/;
                     elsewhere requires a justified allow().
  raw-mutex          raw std lock primitives (std::mutex, lock_guard,
                     unique_lock, condition_variable, ...) only inside
                     src/common/mutex.h; everything else uses the
                     annotated mithril::Mutex/MutexLock/CondVar so
                     -Wthread-safety (the lint_tsa gate) can see every
                     lock. Locks moved from a location rule to this
                     compile-checked one — an annotated Mutex may live
                     anywhere, because the analysis checks its use.
  lock-order         same-file nesting of MutexLock acquisitions (plus
                     the declared transient noteBatch* calls) must
                     match the declared lock-order table (DESIGN.md
                     §13): a shard's queue mutex may take the svc idle
                     mutex; no other pair may nest.
  atomics-discipline memory_order_relaxed only inside the audited
                     lock-free files (obs histograms/metrics handles,
                     svc routing counters), and every relaxed line must
                     carry a `relaxed:` justification comment on the
                     line or within the 6 lines above.
  generation-bump    the journal generation stamp may only be minted
                     by the two chain-head writers, Journal::format()
                     and Journal::reopen(); any other write would fork
                     the generation chain that crash recovery's
                     budget-pinned replay walks.
  checkpoint-epoch   the superblock epoch and snapshot head may only
                     be written by the checkpoint protocol's own
                     publishers (Journal::format/checkpoint/reopen/
                     writeSuperblock); any other write could publish a
                     half-built snapshot or tear the ping-pong
                     superblock's atomic epoch bump.
  typed-extractor    typed-field parsing (addresses, MACs, hex ids,
                     timestamps) lives in src/typed/ so ingest-time
                     extraction and query-time predicates normalize
                     byte-identically (DESIGN.md §15); no libc inet_*
                     or bespoke parseIp*/extractMac*-style helpers
                     anywhere else.
  adhoc-latency      datapath latency samples must go through the
                     obs::Histogram / span APIs (StageLatency,
                     StageTimer, setSimDuration); feeding elapsed()/
                     seconds()/WallTimer arithmetic straight into a
                     counter or gauge loses the distribution and the
                     quantile exporters never see it.
  header-guard       include guards must be MITHRIL_<PATH>_H.
  include-order      a .cc includes its own header first; no "../"
                     uplevel includes; <system> before "project" blocks.

Suppression: append `// mithril-lint: allow(<rule>) <why>` to the line
(or the line above). Suppressions without a justification are findings
themselves.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
Stdlib-only by design; runs anywhere python3 runs.
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Scan sets and per-rule allowlists (paths are repo-relative, '/'-separated).

SCAN_DIRS = ("src", "bench", "examples", "tests", "tools")
SOURCE_EXTS = (".cc", ".cpp", ".h", ".hpp")
# Known-bad fixtures: lint fixtures (fed explicitly by the selftest)
# and the WILL_FAIL thread-safety-analysis fixtures.
EXCLUDE_PARTS = ("tests/lint/fixtures", "tests/tsa/fixtures")

ALLOW = {
    # SimTime itself and the device models own cycle->time conversion.
    "cycle-to-time": ("src/common/simtime.h", "src/sim/"),
    # The shim, its legacy holders (bound through CounterSink), the obs
    # bridge that implements the sink, and their direct tests.
    "direct-statset": (
        "src/common/stats.h",
        "src/common/stats.cc",
        "src/storage/ssd_model.",
        "src/index/inverted_index.",
        "src/typed/typed_index.",
        "src/obs/",
        "tests/common/stats_test.cc",
        "tests/obs/",
    ),
    "banned-rand-time": ("src/common/rng.h",),
    # The fault subsystem itself declares/implements the hooks.
    "fault-gating": ("src/fault/",),
    "raw-new-delete": ("arena",),  # any file with arena in its name
    "cast-outside-bits": ("src/common/bits.h",),
    # The service layer owns all thread creation; its tests drive
    # real interleavings under the TSan tier.
    "thread-ownership": ("src/svc/", "tests/svc/"),
    # The annotated wrappers are the one audited home of the raw std
    # primitives.
    "raw-mutex": ("src/common/mutex.h",),
    # The histogram layer itself is where durations legitimately meet
    # record(); its tests feed synthetic durations on purpose.
    "adhoc-latency": ("src/obs/", "tests/obs/"),
    # The typed subsystem is the audited home of field parsing; its
    # tests exercise the parsers directly.
    "typed-extractor": ("src/typed/", "tests/typed/"),
}

RULE_HINTS = {
    "cycle-to-time": "convert via SimTime::cycles(n, hz) and "
                     "throughputBps() from common/simtime.h",
    "dropped-status": "assign the Status, use MITHRIL_RETURN_IF_ERROR, "
                      "or (void)-cast with a justification comment",
    "direct-statset": "report through mithril::obs::MetricsRegistry "
                      "(see src/obs/metrics.h)",
    "banned-rand-time": "use mithril::Rng from common/rng.h with an "
                        "explicit seed",
    "raw-new-delete": "use std::vector/std::unique_ptr, or keep arena "
                      "allocation in a file named *arena*",
    "cast-outside-bits": "use asChars()/asByteSpan() from common/bits.h "
                         "or add an audited helper there",
    "fault-gating": "inject faults only through an attached "
                    "fault::FaultPlan (see fault/fault_plan.h); no "
                    "#ifdef gates or global toggles",
    "thread-ownership": "create threads only in src/svc/ (see "
                        "svc/log_service.h for the concurrency model) "
                        "or justify the allow()",
    "raw-mutex": "use mithril::Mutex/MutexLock/CondVar from "
                 "common/mutex.h so -Wthread-safety can check the "
                 "lock (raw std primitives live only there)",
    "lock-order": "only the declared pair (shard queue mutex -> svc "
                  "idle mutex) may nest; restructure so other locks "
                  "are never held together (DESIGN.md §13)",
    "atomics-discipline": "keep relaxed atomics in the audited "
                          "lock-free files and justify each use with "
                          "a `relaxed:` comment nearby; default to "
                          "seq_cst (or a mutex) elsewhere",
    "generation-bump": "mint generations only in Journal::format()/"
                       "Journal::reopen(); a restore site (cursor "
                       "deserialize) needs a justified allow()",
    "checkpoint-epoch": "publish the epoch/snapshot head only from "
                        "Journal::format/checkpoint/reopen/"
                        "writeSuperblock; a restore site (cursor "
                        "deserialize) needs a justified allow()",
    "adhoc-latency": "record latency through obs::StageLatency/"
                     "StageTimer (obs/histogram.h) so the sample lands "
                     "in a quantile histogram, not a scalar",
    "typed-extractor": "parse addresses/hex ids/timestamps through "
                       "the typed subsystem (typed/typed_key.h, "
                       "typed/extract.h) so ingest and query "
                       "normalize identically; no inet_* or ad-hoc "
                       "parseIp/extractMac helpers outside src/typed/",
    "header-guard": "guard must be MITHRIL_<PATH>_H (path relative to "
                    "src/, or to the repo root outside src/)",
    "include-order": "own header first in a .cc; no \"../\" paths; "
                     "<system> includes before \"project\" includes",
}


def allowed(rule, relpath):
    return any(part in relpath for part in ALLOW.get(rule, ()))


# ---------------------------------------------------------------------------
# Lexical helpers.

_STRING_RE = re.compile(
    r'"(?:[^"\\]|\\.)*"|'  # string literal
    r"'(?:[^'\\]|\\.)*'"   # char literal
)
_LINE_COMMENT_RE = re.compile(r"//.*$")
_SUPPRESS_RE = re.compile(r"mithril-lint:\s*allow\((?P<rules>[\w, -]+)\)"
                          r"\s*(?P<why>.*)")


def strip_code(lines):
    """Returns lines with strings/comments blanked (same line numbers)."""
    out = []
    in_block = False
    for line in lines:
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = " " * (end + 2) + line[end + 2:]
            in_block = False
        line = _STRING_RE.sub('""', line)
        line = _LINE_COMMENT_RE.sub("", line)
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        out.append(line)
    return out


def suppressions(lines):
    """Maps line number -> set of rule names allowed there."""
    allow_at = {}
    for i, line in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group("rules").split(",")}
            # A suppression covers its own line and the next line, so it
            # can sit on the offending line or immediately above it.
            for target in (i, i + 1):
                allow_at.setdefault(target, set()).update(rules)
            if not m.group("why").strip():
                allow_at.setdefault("missing-why", []).append(i)
    return allow_at


# ---------------------------------------------------------------------------
# Rule implementations. Each yields (line_number, rule, message).

_CYCLE_ID = r"\w*[Cc]ycles?\w*"
_FREQ = r"(?:\w*(?:hz|Hz|freq|clock|period)\w*|[0-9.]+e[0-9]+)"
# A cycle identifier (possibly a getter call, possibly wrapped in casts,
# hence trailing close-parens) multiplied/divided with a frequency- or
# time-scale operand, in either order.
_CYCLE_TIME_RE = re.compile(
    rf"(?:\b{_CYCLE_ID}(?:\(\))?\s*\)*\s*[*/]\s*\(*\s*{_FREQ}\b)|"
    rf"(?:\b{_FREQ}(?:\(\))?\s*\)*\s*[*/]\s*"
    rf"(?:\w+(?:<[^<>]*>)?\()*\s*{_CYCLE_ID}\b)")


def check_cycle_to_time(relpath, code):
    for i, line in enumerate(code, start=1):
        if _CYCLE_TIME_RE.search(line):
            yield (i, "cycle-to-time",
                   "raw cycle<->time/frequency arithmetic outside "
                   "simtime.h/sim/")


_STATSET_RE = re.compile(r"\bStatSet\b")


def check_direct_statset(relpath, code):
    for i, line in enumerate(code, start=1):
        if _STATSET_RE.search(line):
            yield (i, "direct-statset",
                   "direct use of deprecated StatSet")


_RAND_TIME_RE = re.compile(
    r"(?<![\w.:>])(?:rand|srand|time)\s*\(|std::random_device")


def check_banned_rand_time(relpath, code):
    for i, line in enumerate(code, start=1):
        if _RAND_TIME_RE.search(line):
            yield (i, "banned-rand-time",
                   "non-deterministic rand()/srand()/time()/"
                   "random_device")


_NEW_DELETE_RE = re.compile(
    r"(?<![\w.:])(?:new\s+[A-Za-z_(]|delete(?:\[\])?\s+[A-Za-z_*(])")


def check_raw_new_delete(relpath, code):
    for i, line in enumerate(code, start=1):
        if _NEW_DELETE_RE.search(line):
            yield (i, "raw-new-delete",
                   "naked new/delete outside arena code")


_CAST_RE = re.compile(r"\b(?:reinterpret_cast|const_cast)\s*<")


def check_cast_outside_bits(relpath, code):
    for i, line in enumerate(code, start=1):
        if _CAST_RE.search(line):
            yield (i, "cast-outside-bits",
                   "reinterpret_cast/const_cast outside "
                   "src/common/bits.h")


# "fault"/"inject" in any case, but not the "fault" inside "default"
# (kDefaultCapacity and friends are not fault toggles).
_FAULT_WORD = r"(?:(?<![Dd][Ee])[Ff][Aa][Uu][Ll][Tt]|[Ii][Nn][Jj][Ee][Cc][Tt])"
_FAULT_PP_RE = re.compile(
    rf"^\s*#\s*(?:el)?if(?:n?def)?\b.*{_FAULT_WORD}")
# A namespace-scope/static mutable named like a fault switch. const and
# constexpr are immutable and therefore not toggles.
_FAULT_TOGGLE_RE = re.compile(
    rf"^\s*static\s+(?!const\b|constexpr\b)[\w:<>\s*&]*?"
    rf"\b\w*{_FAULT_WORD}\w*\s*(?:=|;|\{{)")
_DRAW_HOOK_RE = re.compile(
    r"(?:(\w+)\s*(?:\.|->)\s*)?\bdraw(?:Read|Write)\s*\(")


def check_fault_gating(relpath, code):
    for i, line in enumerate(code, start=1):
        if _FAULT_PP_RE.search(line):
            yield (i, "fault-gating",
                   "preprocessor-gated fault hook; builds must not "
                   "differ in fault behavior")
        if _FAULT_TOGGLE_RE.search(line):
            yield (i, "fault-gating",
                   "static mutable fault toggle; attach a FaultPlan "
                   "instead")
        for m in _DRAW_HOOK_RE.finditer(line):
            receiver = m.group(1) or ""
            if "plan" not in receiver.lower():
                yield (i, "fault-gating",
                       "drawRead()/drawWrite() not reached through a "
                       "FaultPlan object")


# Thread-creation sites only: declaring a thread/jthread (including
# inside a container type) or launching std::async. Deliberately NOT
# matched: std::this_thread (sleep/yield). Locks and condvars are no
# longer a location question — they are raw-mutex's: any file may hold
# an annotated mithril::Mutex, because -Wthread-safety checks its use
# wherever it lives.
_THREAD_RE = re.compile(
    r"std::(?:jthread|thread)\b(?!\s*::)|"
    r"std::async\s*\(")


def check_thread_ownership(relpath, code):
    for i, line in enumerate(code, start=1):
        if _THREAD_RE.search(line):
            yield (i, "thread-ownership",
                   "thread created outside src/svc/")


# Any spelling of the raw std lock primitives: declarations, template
# arguments (std::lock_guard<std::mutex>), and waits. The annotated
# wrappers in common/mutex.h are the one place these may appear —
# everywhere else a raw lock is invisible to -Wthread-safety, which is
# exactly the failure mode the capability layer exists to close.
_RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b|"
    r"std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"std::condition_variable(?:_any)?\b")


def check_raw_mutex(relpath, code):
    for i, line in enumerate(code, start=1):
        if _RAW_MUTEX_RE.search(line):
            yield (i, "raw-mutex",
                   "raw std lock primitive outside common/mutex.h")


# ---------------------------------------------------------------------------
# lock-order: same-file scoped-lock nesting against the declared table.
#
# Lexical, per file: brace depth is tracked character-wise over the
# stripped code, every `MutexLock name(expr)` pushes the lock class of
# `expr` until its enclosing block closes, and every acquisition (or
# declared transiently-acquiring call) checks the currently-held stack
# against _LOCK_ORDER_OK. Cross-file nesting (e.g. a locked callee in
# another translation unit) is out of lexical reach — that half is the
# compile-time analysis' job; this rule pins the svc lock table.

_MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^()]*?)\s*\)")

# Lock classes by the variable's name fragment; anything else (`mu`,
# `mu_`) is a generic queue/registry-style leaf lock.
_LOCK_CLASSES = (
    ("log_mu", "shard-log"),
    ("idle_mu", "svc-idle"),
    ("done_mu", "query-done"),
)
_LOCK_LEAF = "queue"

# The declared table: the ONLY pair allowed to nest. append()/flush()
# bump the idle counter while holding the shard queue mutex.
_LOCK_ORDER_OK = {(_LOCK_LEAF, "svc-idle")}

# Calls that transiently take a lock of their own while the caller may
# be holding one (the cross-function edge of the table).
_CALL_ACQUIRES = {
    "noteBatchEnqueued": "svc-idle",
    "noteBatchDone": "svc-idle",
}
_ACQUIRING_CALL_RE = re.compile(
    r"\b(" + "|".join(_CALL_ACQUIRES) + r")\s*\(")


def _lock_class(expr):
    m = re.search(r"(\w+)\s*$", expr)
    name = m.group(1) if m else expr
    for frag, cls in _LOCK_CLASSES:
        if frag in name:
            return cls
    return _LOCK_LEAF


def check_lock_order(relpath, code):
    held = []  # (class, brace depth at acquisition)
    depth = 0
    for i, line in enumerate(code, start=1):
        events = [(m.start(), "acquire", _lock_class(m.group(1)))
                  for m in _MUTEXLOCK_RE.finditer(line)]
        events += [(m.start(), "transient", _CALL_ACQUIRES[m.group(1)])
                   for m in _ACQUIRING_CALL_RE.finditer(line)]
        events.sort()
        pos = 0
        for start, kind, cls in events:
            depth += (line.count("{", pos, start) -
                      line.count("}", pos, start))
            pos = start
            while held and depth < held[-1][1]:
                held.pop()
            for held_cls, _ in held:
                if (held_cls, cls) not in _LOCK_ORDER_OK:
                    yield (i, "lock-order",
                           f"acquires {cls} lock while holding "
                           f"{held_cls} lock; pair not in the declared "
                           "lock-order table")
            if kind == "acquire":
                held.append((cls, depth))
        depth += line.count("{", pos) - line.count("}", pos)
        while held and depth < held[-1][1]:
            held.pop()


# ---------------------------------------------------------------------------
# atomics-discipline: relaxed atomics stay in the audited lock-free
# files, and every relaxed line carries a nearby `relaxed:` comment
# saying why dropping the ordering is sound. Needs the RAW lines — the
# justification lives in comments.

_ATOMICS_AUDITED = (
    "src/obs/histogram.",     # HDR histogram cells (wait-free record)
    "src/obs/metrics.h",      # Counter/Gauge/LogHistogram handles
    "src/svc/log_service.cc", # routing rotation + readonly count
    "audited_relaxed",        # selftest fixture for this branch
)
_RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
_RELAXED_WINDOW = 6


def check_atomics_discipline(relpath, raw):
    audited = any(part in relpath for part in _ATOMICS_AUDITED)
    for i, line in enumerate(raw, start=1):
        if not _RELAXED_RE.search(line):
            continue
        if not audited:
            yield (i, "atomics-discipline",
                   "memory_order_relaxed outside the audited "
                   "lock-free files")
            continue
        window = raw[max(0, i - 1 - _RELAXED_WINDOW):i]
        if not any("relaxed:" in w for w in window):
            yield (i, "atomics-discipline",
                   "memory_order_relaxed without a `relaxed:` "
                   "justification comment on the line or within "
                   f"{_RELAXED_WINDOW} lines above")


# ---------------------------------------------------------------------------
# generation-bump: the journal generation stamp may only be minted by
# the two chain-head writers — Journal::format() (a fresh chain) and
# Journal::reopen() (the next generation grafted onto the replayed
# head). Any other write forks the generation chain that recovery's
# budget-pinned replay walks. Member default initializers are
# construction, not a bump; the cursor-restore site in deserialize()
# carries an explicit allow().

_GEN_WRITE_RE = re.compile(
    r"\bgeneration_\s*(?:=(?!=)|\+=|-=)|"
    r"(?:\+\+|--)\s*generation_\b|\bgeneration_\s*(?:\+\+|--)")
# A member declaration with a default initializer: a type token
# precedes the name.
_GEN_DECL_RE = re.compile(r"^\s*(?:static\s+|const\s+|constexpr\s+)*"
                          r"[A-Za-z_][\w:<>]*\s+generation_\s*[={]")
# Out-of-class method definition; repo style puts the return type on
# its own line, so the definition line starts with `Class::name(`.
_METHOD_DEF_RE = re.compile(r"^(?P<cls>\w+)::(?P<name>~?\w+)\s*\(")
_GEN_MINTERS = {("Journal", "format"), ("Journal", "reopen")}


def check_generation_bump(relpath, code):
    func = None
    for i, line in enumerate(code, start=1):
        m = _METHOD_DEF_RE.match(line)
        if m is not None:
            func = (m.group("cls"), m.group("name"))
        if not _GEN_WRITE_RE.search(line):
            continue
        if _GEN_DECL_RE.match(line):
            continue
        if func in _GEN_MINTERS:
            continue
        yield (i, "generation-bump",
               "journal generation written outside Journal::format()/"
               "Journal::reopen()")


# ---------------------------------------------------------------------------
# checkpoint-epoch: the ping-pong superblock's epoch and the snapshot
# list head are the two cells whose single atomic publication makes
# checkpoint truncation crash-safe (DESIGN.md §14). Only the protocol's
# own publishers may write them — Journal::format() (epoch 1, no
# snapshot), Journal::checkpoint() (the truncation bump),
# Journal::reopen() (the collapse bump), and writeSuperblock() (the
# single mint point both funnel through). Any other write could expose
# a half-built snapshot or tear the old-or-new-never-a-mix guarantee.
# Member default initializers are construction, not publication; the
# cursor-restore sites in deserialize() carry explicit allow()s. The
# rule binds to Journal's *methods*, not a path: other classes may own
# an unrelated epoch_ (loggen's timestamp clock does), but only
# Journal's cells carry this protocol.

_CKPT_FIELDS = r"(?:epoch_|snapshot_head_)"
_CKPT_WRITE_RE = re.compile(
    rf"\b{_CKPT_FIELDS}\s*(?:=(?!=)|\+=|-=)|"
    rf"(?:\+\+|--)\s*{_CKPT_FIELDS}\b|"
    rf"\b{_CKPT_FIELDS}\s*(?:\+\+|--)")
_CKPT_DECL_RE = re.compile(
    rf"^\s*(?:static\s+|const\s+|constexpr\s+)*"
    rf"[A-Za-z_][\w:<>]*\s+{_CKPT_FIELDS}\s*[={{]")
_CKPT_MINTERS = {("Journal", "format"), ("Journal", "checkpoint"),
                 ("Journal", "reopen"), ("Journal", "writeSuperblock")}


def check_checkpoint_epoch(relpath, code):
    func = None
    for i, line in enumerate(code, start=1):
        m = _METHOD_DEF_RE.match(line)
        if m is not None:
            func = (m.group("cls"), m.group("name"))
        if not _CKPT_WRITE_RE.search(line):
            continue
        if func is None or func[0] != "Journal":
            continue
        if _CKPT_DECL_RE.match(line):
            continue
        if func in _CKPT_MINTERS:
            continue
        yield (i, "checkpoint-epoch",
               "superblock epoch/snapshot head written outside the "
               "checkpoint protocol's publishers")


# ---------------------------------------------------------------------------
# typed-extractor: typed-field parsing stays inside src/typed/ so the
# extraction run at ingest and the predicate parsing run at query time
# are the same audited code — the typed tier's exactness argument
# (DESIGN.md §15) is "same pure function both sides", which a second
# parser silently breaks. Flags the libc address parsers and bespoke
# parse/extract helpers named after typed fields; calls qualified with
# a namespace (typed::parseIp4) are the sanctioned route and do not
# match.

_TYPED_EXTRACT_RE = re.compile(
    r"\binet_(?:pton|ntop|aton|ntoa|addr|network)\s*\(|"
    r"\bgetaddrinfo\s*\(|"
    r"(?<!::)\b(?:parse|extract)"
    r"(?:Ip[46v]?|Mac|Hex|Timestamp|Rfc3339|Syslog|Cidr|Addr)"
    r"\w*\s*\(")


def check_typed_extractor(relpath, code):
    for i, line in enumerate(code, start=1):
        if _TYPED_EXTRACT_RE.search(line):
            yield (i, "typed-extractor",
                   "ad-hoc typed-field parsing outside src/typed/")


# A scalar-metric mutation (`add(`/`set(`/`record(`; the histogram
# layer's own verbs recordWallNs/recordSim/setSimDuration deliberately
# do not match) on a line that also computes a duration — elapsed(),
# seconds(), or a WallTimer mention. Keeping the computation on its own
# line is not a loophole worth closing: the rule targets the idiom of
# collapsing a latency sample into a scalar in one breath, which is how
# every ad-hoc datapath timing has been written here.
_ADHOC_CALL_RE = re.compile(r"\b(?:add|set|record)\s*\(")
_ADHOC_TIME_RE = re.compile(
    r"\belapsed\s*\(|\bseconds\s*\(|\bWallTimer\b")


def check_adhoc_latency(relpath, code):
    for i, line in enumerate(code, start=1):
        if _ADHOC_CALL_RE.search(line) and _ADHOC_TIME_RE.search(line):
            yield (i, "adhoc-latency",
                   "duration arithmetic fed into a scalar metric; "
                   "latency belongs in a quantile histogram")


def expected_guard(relpath):
    rel = relpath[4:] if relpath.startswith("src/") else relpath
    return "MITHRIL_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper()


def check_header_guard(relpath, code):
    if not relpath.endswith((".h", ".hpp")):
        return
    guard = expected_guard(relpath)
    text = "\n".join(code)
    ifndef = re.search(r"#ifndef\s+(\w+)", text)
    if ifndef is None:
        yield (1, "header-guard", f"missing include guard {guard}")
        return
    if ifndef.group(1) != guard:
        line = text[:ifndef.start()].count("\n") + 1
        yield (line, "header-guard",
               f"guard {ifndef.group(1)} != expected {guard}")
    elif f"#define {guard}" not in text:
        yield (1, "header-guard", f"missing #define {guard}")


_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')


def check_include_order(relpath, code):
    includes = []  # (line, path-or-None-for-system, is_project)
    for i, line in enumerate(code, start=1):
        m = _INCLUDE_RE.match(line)
        if m:
            project = m.group(1) is not None
            includes.append((i, m.group(1) or m.group(2), project))
    for i, path, project in includes:
        if project and path.startswith("../"):
            yield (i, "include-order", f'uplevel include "{path}"')
    if relpath.endswith((".cc", ".cpp")) and relpath.startswith("src/"):
        own = relpath[4:]
        own = re.sub(r"\.(cc|cpp)$", ".h", own)
        if includes and os.path.exists(os.path.join("src", own)):
            first = includes[0]
            if not (first[2] and first[1] == own):
                yield (first[0], "include-order",
                       f'first include must be own header "{own}"')
            # After the own header, <system> includes precede "project"
            # includes (project block may follow, never interleave).
            seen_project = False
            for i, path, project in includes[1:]:
                if project:
                    seen_project = True
                elif seen_project:
                    yield (i, "include-order",
                           f"<{path}> after project includes")
                    break


# ---------------------------------------------------------------------------
# dropped-status: two-pass cross-file rule.

_STATUS_DECL_RE = re.compile(
    r"(?:^|[\s;}])(?:\[\[nodiscard\]\]\s+)?(?:virtual\s+)?(?:static\s+)?"
    r"(?P<ret>[A-Za-z_][\w:]*)\s*\n?\s*(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE)
_KEYWORDS = {"if", "while", "for", "switch", "return", "sizeof", "case",
             "catch", "do", "else", "new", "delete", "operator"}
# Names shared with STL containers/algorithms: a bare `set.insert(x);`
# would be indistinguishable from CuckooTable::insert, so these stay
# with the compiler layer ([[nodiscard]] Status + -Werror) only.
_STL_NAMES = {"insert", "erase", "emplace", "emplace_back", "append",
              "assign", "push_back", "pop_back", "swap", "merge",
              "reserve", "resize", "clear", "count", "find", "at",
              "get", "reset", "write", "read", "run", "close", "open"}


def collect_status_names(files):
    """Function names that ONLY ever appear returning Status.

    A name also declared with any other return type anywhere in the tree
    is ambiguous and skipped — the compiler's [[nodiscard]] layer still
    covers those call sites.
    """
    status_names, other_names = set(), set()
    for relpath, code in files:
        if not relpath.endswith((".h", ".hpp")):
            continue
        text = "\n".join(code)
        for m in _STATUS_DECL_RE.finditer(text):
            ret, name = m.group("ret"), m.group("name")
            if name in _KEYWORDS or ret in _KEYWORDS:
                continue
            if ret == "Status":
                status_names.add(name)
            else:
                other_names.add(name)
    return status_names - other_names - _STL_NAMES


_CONSUMED_RE = re.compile(
    r"^\s*(?:return\b|=|\w[\w:<>,&*\s]*\s[&*]?\w+\s*=|\(void\)|"
    r"MITHRIL_RETURN_IF_ERROR|MITHRIL_ASSERT|EXPECT_|ASSERT_|expectOk)")


def check_dropped_status(relpath, code, status_names):
    if not status_names:
        return
    call_re = re.compile(
        r"^\s*(?:[\w\]\[]+(?:\.|->))?(?P<name>[A-Za-z_]\w*)\s*\(")
    for i, line in enumerate(code, start=1):
        m = call_re.match(line)
        if m is None or m.group("name") not in status_names:
            continue
        if _CONSUMED_RE.match(line):
            continue
        # Continuation of a multi-line expression (e.g. the argument of
        # MITHRIL_RETURN_IF_ERROR) is not a statement start.
        prev = next((code[j].rstrip() for j in range(i - 2, -1, -1)
                     if code[j].strip()), ";")
        if not prev.endswith((";", "{", "}", ":")):
            continue
        # Join continuation lines to see how the statement ends.
        stmt = line
        j = i
        while not stmt.rstrip().endswith((";", "{", "}")) \
                and j < len(code):
            stmt += code[j]
            j += 1
        if re.search(r"\)\s*;\s*$", stmt.rstrip()):
            yield (i, "dropped-status",
                   f"result of Status-returning {m.group('name')}() "
                   "is discarded")


# ---------------------------------------------------------------------------
# Driver.

SIMPLE_RULES = (
    check_cycle_to_time,
    check_direct_statset,
    check_banned_rand_time,
    check_raw_new_delete,
    check_cast_outside_bits,
    check_fault_gating,
    check_thread_ownership,
    check_raw_mutex,
    check_lock_order,
    check_atomics_discipline,
    check_generation_bump,
    check_checkpoint_epoch,
    check_typed_extractor,
    check_adhoc_latency,
    check_header_guard,
    check_include_order,
)
# Rules that need the raw text: code stripping blanks #include paths
# (header/include rules) and comments (the `relaxed:` justifications).
_RAW_RULES = {check_header_guard, check_include_order,
              check_atomics_discipline}
RULE_OF_CHECK = {
    check_cycle_to_time: "cycle-to-time",
    check_direct_statset: "direct-statset",
    check_banned_rand_time: "banned-rand-time",
    check_raw_new_delete: "raw-new-delete",
    check_cast_outside_bits: "cast-outside-bits",
    check_fault_gating: "fault-gating",
    check_thread_ownership: "thread-ownership",
    check_raw_mutex: "raw-mutex",
    check_lock_order: "lock-order",
    check_atomics_discipline: "atomics-discipline",
    check_generation_bump: "generation-bump",
    check_checkpoint_epoch: "checkpoint-epoch",
    check_typed_extractor: "typed-extractor",
    check_adhoc_latency: "adhoc-latency",
    check_header_guard: "header-guard",
    check_include_order: "include-order",
}


def gather_files(root, paths):
    if paths:
        # Explicit paths are linted as-is (the self-test feeds the
        # known-bad fixtures this way).
        return sorted(os.path.relpath(p, root).replace(os.sep, "/")
                      for p in paths)
    found = []
    for d in SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(
                        os.path.join(dirpath, name), root)
                    found.append(rel.replace(os.sep, "/"))
    return [f for f in sorted(found)
            if not any(part in f for part in EXCLUDE_PARTS)]


def lint(root, paths):
    findings = []
    files = []
    for rel in gather_files(root, paths):
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                raw = fh.read().splitlines()
        except OSError as e:
            print(f"mithril-lint: cannot read {rel}: {e}",
                  file=sys.stderr)
            return 2
        files.append((rel, raw, strip_code(raw), suppressions(raw)))

    status_names = collect_status_names(
        [(rel, code) for rel, _, code, _ in files])

    for rel, raw, code, allow_at in files:
        for bad_line in allow_at.get("missing-why", []):
            findings.append((rel, bad_line, "suppression",
                             "allow() without a justification"))
        per_file = []
        for check in SIMPLE_RULES:
            rule = RULE_OF_CHECK[check]
            if allowed(rule, rel):
                continue
            # Preprocessor rules need the raw text: code stripping
            # blanks the "path" string of an #include line.
            lines = raw if check in _RAW_RULES else code
            per_file.extend(check(rel, lines))
        per_file.extend(check_dropped_status(rel, code, status_names))
        for line, rule, message in per_file:
            if rule in allow_at.get(line, set()):
                continue
            findings.append((rel, line, rule, message))

    for rel, line, rule, message in sorted(findings):
        hint = RULE_HINTS.get(rule, "")
        suffix = f" (hint: {hint})" if hint else ""
        print(f"{rel}:{line}: [{rule}] {message}{suffix}")
    if findings:
        print(f"mithril-lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"mithril-lint: clean ({len(files)} files, "
          f"{len(status_names)} Status-returning names tracked)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="specific files (default: whole tree)")
    args = parser.parse_args()
    if args.list_rules:
        for rule, hint in RULE_HINTS.items():
            print(f"{rule}: {hint}")
        return 0
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    os.chdir(root)
    return lint(root, args.paths)


if __name__ == "__main__":
    sys.exit(main())
