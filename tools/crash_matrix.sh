#!/usr/bin/env bash
# Crash-matrix acceptance gate for the durable commit protocol.
#
# Ingests a fixed corpus and power-cuts the device at EVERY write-level
# injection point (cut_after = 1 .. W, where W is the clean run's total
# device program count), dumps the dead device's NAND, recovers it at
# mount time, and asserts the crash-consistency contract:
#
#   1. durability:  recovered lines R >= acknowledged lines A — no
#      acknowledged line is ever lost;
#   2. integrity:   a query over the recovered store returns exactly the
#      clean-prefix oracle's match count over the first R corpus lines —
#      no phantom and no corrupt match;
#   3. determinism: re-running one cut point reproduces A, R, and the
#      match count bit-for-bit from the plan seed;
#   4. completion:  a cut point past the last write never fires and the
#      run ingests the full corpus.
#
# Usage: crash_matrix.sh <path-to-mithril_cli> [workdir]
set -euo pipefail

CLI="$1"
WORK="${2:-$(mktemp -d)}"
# Mid-frequency token in the Spirit2 corpus: the prefix oracle changes
# value as the recovered prefix grows, so phantom AND missing matches
# both register.
QUERY="packet"
LINES=600
mkdir -p "$WORK"

# counter <name> <key>  -> value from the run's metrics snapshot
counter() {
    python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
print(int(snap["counters"].get(sys.argv[2], 0)))
' "$WORK/$1.json" "$2"
}

# matches <out-file>  -> the match count from a query run's stdout,
# skipping any BENCH_JSON telemetry lines.
matches() {
    grep -v '^BENCH_JSON' "$1" | awk 'NR==1 { print $1 }'
}

"$CLI" generate Spirit2 1 "$WORK/full.log" > /dev/null
head -n "$LINES" "$WORK/full.log" > "$WORK/cm.log"

# Clean run: learn the total device program count W (every program the
# ingest issues is a crash point) and the full-corpus oracle. A no-op
# fault plan is attached so fault.write_draws counts the programs
# without perturbing anything — ssd.pages_written would overcount (the
# index meters its leaf-page programs into that stat without issuing
# faultable writePage commands).
"$CLI" ingest "$WORK/cm.log" "$WORK/clean.img" --fault-plan=seed=1 \
    --metrics-out="$WORK/clean_ingest.json" > /dev/null
W=$(counter clean_ingest fault.write_draws)
if [[ "$W" -lt 4 ]]; then
    echo "FAIL: clean ingest issued only $W device programs"
    exit 1
fi
"$CLI" query "$WORK/clean.img" "$QUERY" > "$WORK/clean_query.out"
full_oracle=$(matches "$WORK/clean_query.out")
echo "corpus: $LINES lines, $W device programs," \
     "full oracle: $full_oracle matches"

# oracle <R>  -> match count over the first R corpus lines (cached)
declare -A ORACLE
oracle() {
    local r="$1"
    if [[ -z "${ORACLE[$r]:-}" ]]; then
        head -n "$r" "$WORK/cm.log" > "$WORK/pref.log"
        "$CLI" ingest "$WORK/pref.log" "$WORK/pref.img" > /dev/null
        "$CLI" query "$WORK/pref.img" "$QUERY" > "$WORK/pref.out"
        ORACLE[$r]=$(matches "$WORK/pref.out")
    fi
    echo "${ORACLE[$r]}"
}

# crash_run <k>  -> "A:R:M" for a cut at write k, asserting the
# contract along the way (sets fail=1 on violation, never exits early).
fail=0
crash_run() {
    local k="$1"
    "$CLI" ingest "$WORK/cm.log" "$WORK/crash.img" --crash-at="$k" \
        > "$WORK/crash.out"
    if ! grep -q '^crash: acknowledged=' "$WORK/crash.out"; then
        echo "FAIL: cut_after=$k did not crash (W=$W)"
        fail=1
        echo "-:-:-"
        return
    fi
    local a r m
    a=$(sed -n 's/^crash: acknowledged=//p' "$WORK/crash.out")
    "$CLI" query "$WORK/crash.img" "$QUERY" --recover \
        --metrics-out="$WORK/rec.json" > "$WORK/rec.out"
    r=$(counter rec recovery.lines_recovered)
    m=$(matches "$WORK/rec.out")
    if [[ "$r" -lt "$a" ]]; then
        echo "FAIL: cut_after=$k lost acknowledged data" \
             "(acknowledged=$a recovered=$r)"
        fail=1
    fi
    if [[ "$r" -gt "$LINES" ]]; then
        echo "FAIL: cut_after=$k recovered $r lines from a" \
             "$LINES-line corpus"
        fail=1
    fi
    local want
    if [[ "$r" -eq 0 ]]; then
        want=0
    else
        want=$(oracle "$r")
    fi
    if [[ "$m" != "$want" ]]; then
        echo "FAIL: cut_after=$k recovered store returned $m matches," \
             "prefix oracle over $r lines says $want"
        fail=1
    fi
    echo "$a:$r:$m"
}

declare -A RESULT
for (( k = 1; k <= W; k++ )); do
    RESULT[$k]=$(crash_run "$k")
done
echo "matrix: all $W cut points recovered" \
     "(last: acknowledged:recovered:matches = ${RESULT[$W]})"

# Determinism: one mid-matrix cut point must replay bit-for-bit.
mid=$(( (W + 1) / 2 ))
replay=$(crash_run "$mid")
if [[ "$replay" != "${RESULT[$mid]}" ]]; then
    echo "FAIL: cut_after=$mid not deterministic:" \
         "first=${RESULT[$mid]} replay=$replay"
    fail=1
fi

# Completion: a cut point past the last write never fires.
"$CLI" ingest "$WORK/cm.log" "$WORK/done.img" --crash-at=$(( W + 5 )) \
    > "$WORK/done.out"
if grep -q '^crash:' "$WORK/done.out"; then
    echo "FAIL: cut_after=$(( W + 5 )) fired on a $W-write run"
    fail=1
else
    "$CLI" query "$WORK/done.img" "$QUERY" > "$WORK/done_query.out"
    got=$(matches "$WORK/done_query.out")
    if [[ "$got" != "$full_oracle" ]]; then
        echo "FAIL: un-fired cut plan changed results:" \
             "$got vs $full_oracle"
        fail=1
    fi
fi

if [[ "$fail" -ne 0 ]]; then
    exit 1
fi
echo "crash matrix OK ($W cut points, durability + integrity +" \
     "determinism + completion)"
