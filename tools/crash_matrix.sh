#!/usr/bin/env bash
# Crash-matrix acceptance gate for the durable commit protocol.
#
# Ingests a fixed corpus and power-cuts the device at EVERY write-level
# injection point (cut_after = 1 .. W, where W is the clean run's total
# device program count), dumps the dead device's NAND, recovers it at
# mount time, and asserts the crash-consistency contract:
#
#   1. durability:  recovered lines R >= acknowledged lines A — no
#      acknowledged line is ever lost;
#   2. integrity:   a query over the recovered store returns exactly the
#      clean-prefix oracle's match count over the first R corpus lines —
#      no phantom and no corrupt match;
#   3. determinism: re-running one cut point reproduces A, R, and the
#      match count bit-for-bit from the plan seed;
#   4. completion:  a cut point past the last write never fires and the
#      run ingests the full corpus.
#
# Multi-generation mode (--rounds=2): instead of the single-life
# matrix, every surviving crash image is *resumed* — recovered, its
# journal re-opened under a fresh generation, a second corpus ingested
# — and power-cut again at a second write ordinal, then recovered
# again. The same contract must hold at every (cut1, cut2) pair over
# the concatenated two-corpus prefix, and repeated recoveries of one
# image must be byte-identical. The per-commit grid is bounded to
# {first, mid, last} ordinals per round; --full sweeps every pair
# (the nightly grid).
#
# Checkpoint mode (--checkpoint): the single-life matrix re-run with a
# background checkpoint policy (--checkpoint-every pages), so cuts land
# inside snapshot writes, superblock epoch bumps, and live-page
# migrations. Two extra gates ride along: the clean run must actually
# checkpoint (>= 3 times), and the final recovery must show *bounded
# replay* — a durable snapshot plus a short chain tail, never the whole
# commit history. Per-commit the cut grid is stride-sampled; --full
# sweeps every ordinal (the nightly grid).
#
# --inject-fail (gate self-test) forces one contract violation per
# crash run and shrinks the grids to a single ordinal: the script MUST
# exit non-zero, proving violations raised inside $(...) command
# substitutions are not masked.
#
# Usage: crash_matrix.sh [--rounds=N] [--checkpoint] [--full]
#                        [--inject-fail] <path-to-mithril_cli> [workdir]
set -euo pipefail

ROUNDS=1
FULL=0
CHECKPOINT=0
INJECT=0
while [[ "${1:-}" == --* ]]; do
    case "$1" in
        --rounds=*) ROUNDS="${1#--rounds=}" ;;
        --full) FULL=1 ;;
        --checkpoint) CHECKPOINT=1 ;;
        --inject-fail) INJECT=1 ;;
        *)
            echo "crash_matrix.sh: unknown flag $1" >&2
            exit 2
            ;;
    esac
    shift
done
CLI="$1"
WORK="${2:-$(mktemp -d)}"
# Mid-frequency token in the Spirit2 corpus: the prefix oracle changes
# value as the recovered prefix grows, so phantom AND missing matches
# both register.
QUERY="packet"
LINES=600
# The 600-line corpus compresses to only a handful of data pages, so
# the checkpoint-mode policy fires per page: that still yields >= 3
# full checkpoint protocols (snapshot, epoch bump, migration) for the
# cut grid to land inside.
CKPT_EVERY=1
mkdir -p "$WORK"
# Schema validator for the crash_recovery BENCH_JSON record (skipped
# gracefully where the bench tree is not built alongside the CLI).
JSON_CHECK="$(dirname "$CLI")/../bench/json_check"

# note_fail <msg> — record a contract violation. crash_run and friends
# execute inside $(...) command substitutions, i.e. subshells, where a
# bare `fail=1` mutates a *copy* and is silently dropped — exactly the
# bug that once let inner-recover failures pass the gate. The marker
# file survives the subshell; the final gate checks it alongside $fail.
fail=0
FAILED="$WORK/.failed"
rm -f "$FAILED"
note_fail() {
    echo "FAIL: $*" >&2
    : > "$FAILED"
    fail=1
}

# gate_exit <ok-message> — single exit point: non-zero if any
# note_fail fired, in this shell or any subshell.
gate_exit() {
    if [[ "$fail" -ne 0 || -e "$FAILED" ]]; then
        exit 1
    fi
    echo "$@"
    exit 0
}

# check_recovery_record <query-recover-stdout>  -> asserts the run's
# crash_recovery record parses and carries the generation-chain and
# bounded-replay fields.
check_recovery_record() {
    if [[ ! -x "$JSON_CHECK" ]]; then
        return 0
    fi
    grep '^BENCH_JSON' "$1" | sed 's/^BENCH_JSON //' \
        > "$WORK/rec_records.json"
    "$JSON_CHECK" "$WORK/rec_records.json" crash_recovery \
        lines_recovered records_replayed snapshot_records \
        chain_records pages_swept generation reopens > /dev/null
}

# recfield <stdout-file> <key>  -> field value from the run's
# crash_recovery BENCH_JSON record (empty if absent).
recfield() {
    grep '^BENCH_JSON' "$1" | sed 's/^BENCH_JSON //' | python3 -c '
import json, sys
for line in sys.stdin:
    rec = json.loads(line)
    if rec.get("bench") == "crash_recovery" and sys.argv[1] in rec:
        print(int(rec[sys.argv[1]]))
        break
' "$2"
}

# counter <name> <key>  -> value from the run's metrics snapshot
counter() {
    python3 -c '
import json, sys
snap = json.load(open(sys.argv[1]))
print(int(snap["counters"].get(sys.argv[2], 0)))
' "$WORK/$1.json" "$2"
}

# matches <out-file>  -> the match count from a query run's stdout,
# skipping any BENCH_JSON telemetry lines.
matches() {
    grep -v '^BENCH_JSON' "$1" | awk 'NR==1 { print $1 }'
}

"$CLI" generate Spirit2 1 "$WORK/full.log" > /dev/null
head -n "$LINES" "$WORK/full.log" > "$WORK/cm.log"

# Clean run: learn the total device program count W (every program the
# ingest issues is a crash point) and the full-corpus oracle. A no-op
# fault plan is attached so fault.write_draws counts the programs
# without perturbing anything — ssd.pages_written would overcount (the
# index meters its leaf-page programs into that stat without issuing
# faultable writePage commands).
"$CLI" ingest "$WORK/cm.log" "$WORK/clean.img" --fault-plan=seed=1 \
    --metrics-out="$WORK/clean_ingest.json" > /dev/null
W=$(counter clean_ingest fault.write_draws)
if [[ "$W" -lt 4 ]]; then
    echo "FAIL: clean ingest issued only $W device programs"
    exit 1
fi
"$CLI" query "$WORK/clean.img" "$QUERY" > "$WORK/clean_query.out"
full_oracle=$(matches "$WORK/clean_query.out")
echo "corpus: $LINES lines, $W device programs," \
     "full oracle: $full_oracle matches"

# oracle <R>  -> match count over the first R corpus lines (cached)
declare -A ORACLE
oracle() {
    local r="$1"
    if [[ -z "${ORACLE[$r]:-}" ]]; then
        head -n "$r" "$WORK/cm.log" > "$WORK/pref.log"
        "$CLI" ingest "$WORK/pref.log" "$WORK/pref.img" > /dev/null
        "$CLI" query "$WORK/pref.img" "$QUERY" > "$WORK/pref.out"
        ORACLE[$r]=$(matches "$WORK/pref.out")
    fi
    echo "${ORACLE[$r]}"
}

# crash_run <k>  -> "A:R:M" for a cut at write k, asserting the
# contract along the way (note_fail on violation, never exits early).
# CK_FLAGS carries the checkpoint policy in --checkpoint mode.
CK_FLAGS=""
crash_run() {
    local k="$1"
    "$CLI" ingest "$WORK/cm.log" "$WORK/crash.img" --crash-at="$k" \
        $CK_FLAGS > "$WORK/crash.out"
    if ! grep -q '^crash: acknowledged=' "$WORK/crash.out"; then
        note_fail "cut_after=$k did not crash (W=$W)"
        echo "-:-:-"
        return
    fi
    local a r m
    a=$(sed -n 's/^crash: acknowledged=//p' "$WORK/crash.out")
    if ! "$CLI" query "$WORK/crash.img" "$QUERY" --recover \
        --metrics-out="$WORK/rec.json" > "$WORK/rec.out"; then
        note_fail "cut_after=$k recovery mount failed"
        echo "-:-:-"
        return
    fi
    r=$(counter rec recovery.lines_recovered)
    m=$(matches "$WORK/rec.out")
    if [[ "$r" -lt "$a" ]]; then
        note_fail "cut_after=$k lost acknowledged data" \
                  "(acknowledged=$a recovered=$r)"
    fi
    if [[ "$r" -gt "$LINES" ]]; then
        note_fail "cut_after=$k recovered $r lines from a" \
                  "$LINES-line corpus"
    fi
    local want
    if [[ "$r" -eq 0 ]]; then
        want=0
    else
        want=$(oracle "$r")
    fi
    if [[ "$INJECT" -eq 1 ]]; then
        want=$(( want + 1 ))
    fi
    if [[ "$m" != "$want" ]]; then
        note_fail "cut_after=$k recovered store returned $m matches," \
                  "prefix oracle over $r lines says $want"
    fi
    echo "$a:$r:$m"
}

mid=$(( (W + 1) / 2 ))

# ---- checkpointed crash matrix (--checkpoint) ------------------------
#
# The clean checkpointed run recounts W: snapshot pages, superblock
# epoch bumps, and migration copies are all extra faultable programs,
# i.e. extra cut points the plain matrix never reaches.
if [[ "$CHECKPOINT" -eq 1 ]]; then
    CK_FLAGS="--checkpoint-every=$CKPT_EVERY"
    "$CLI" ingest "$WORK/cm.log" "$WORK/ck_clean.img" $CK_FLAGS \
        --fault-plan=seed=1 --metrics-out="$WORK/ck_clean.json" \
        > /dev/null
    W=$(counter ck_clean fault.write_draws)
    ckpts=$(counter ck_clean journal.checkpoints)
    if [[ "$ckpts" -lt 3 ]]; then
        note_fail "clean run checkpointed only $ckpts times" \
                  "(policy: every $CKPT_EVERY pages)"
    fi
    "$CLI" query "$WORK/ck_clean.img" "$QUERY" > "$WORK/ck_query.out"
    got=$(matches "$WORK/ck_query.out")
    if [[ "$got" != "$full_oracle" ]]; then
        note_fail "checkpointed store returned $got matches," \
                  "oracle says $full_oracle"
    fi
    mid=$(( (W + 1) / 2 ))

    if [[ "$FULL" -eq 1 ]]; then
        grid=$(seq 1 "$W")
    else
        stride=$(( W / 24 ))
        if [[ "$stride" -lt 1 ]]; then
            stride=1
        fi
        grid=$(seq 1 "$stride" "$W")
        if [[ "$(echo "$grid" | tail -1)" != "$W" ]]; then
            grid="$grid $W"
        fi
    fi
    if [[ "$INJECT" -eq 1 ]]; then
        grid="$W"
    fi
    cuts=0
    for k in $grid; do
        crash_run "$k" > /dev/null
        cuts=$(( cuts + 1 ))
    done
    check_recovery_record "$WORK/rec.out"

    # Bounded replay: the last cut lands past many durable checkpoints,
    # so its recovery must walk a snapshot plus a short chain tail —
    # not the whole commit history.
    snap_recs=$(recfield "$WORK/rec.out" snapshot_records)
    chain_recs=$(recfield "$WORK/rec.out" chain_records)
    if [[ -z "$snap_recs" || "$snap_recs" -le 0 ]]; then
        note_fail "final recovery replayed no snapshot" \
                  "(snapshot_records=${snap_recs:-missing})"
    fi
    if [[ -z "$chain_recs" || "$chain_recs" -gt 64 ]]; then
        note_fail "final recovery chain tail" \
                  "(${chain_recs:-missing} records) is not bounded"
    fi

    # Determinism: one mid-grid cut point must replay bit-for-bit.
    first=$(crash_run "$mid")
    replay=$(crash_run "$mid")
    if [[ "$replay" != "$first" ]]; then
        note_fail "cut_after=$mid not deterministic:" \
                  "first=$first replay=$replay"
    fi

    # Completion: a cut point past the last write never fires and the
    # checkpointing run still answers the full oracle.
    "$CLI" ingest "$WORK/cm.log" "$WORK/ck_done.img" $CK_FLAGS \
        --crash-at=$(( W + 5 )) > "$WORK/ck_done.out"
    if grep -q '^crash:' "$WORK/ck_done.out"; then
        note_fail "cut_after=$(( W + 5 )) fired on a $W-write run"
    else
        "$CLI" query "$WORK/ck_done.img" "$QUERY" \
            > "$WORK/ck_done_query.out"
        got=$(matches "$WORK/ck_done_query.out")
        if [[ "$got" != "$full_oracle" ]]; then
            note_fail "un-fired cut plan changed results:" \
                      "$got vs $full_oracle"
        fi
    fi

    gate_exit "checkpointed crash matrix OK ($cuts of $W cut points," \
              "$ckpts clean-run checkpoints, durability + integrity +" \
              "bounded replay + determinism + completion)"
fi

if [[ "$ROUNDS" -le 1 ]]; then
    if [[ "$INJECT" -eq 1 ]]; then
        W=1
        mid=1
    fi
    declare -A RESULT
    for (( k = 1; k <= W; k++ )); do
        RESULT[$k]=$(crash_run "$k")
    done
    echo "matrix: all $W cut points recovered" \
         "(last: acknowledged:recovered:matches = ${RESULT[$W]})"
    check_recovery_record "$WORK/rec.out"

    # Determinism: one mid-matrix cut point must replay bit-for-bit.
    replay=$(crash_run "$mid")
    if [[ "$replay" != "${RESULT[$mid]}" ]]; then
        note_fail "cut_after=$mid not deterministic:" \
                  "first=${RESULT[$mid]} replay=$replay"
    fi

    # Completion: a cut point past the last write never fires.
    "$CLI" ingest "$WORK/cm.log" "$WORK/done.img" \
        --crash-at=$(( W + 5 )) > "$WORK/done.out"
    if grep -q '^crash:' "$WORK/done.out"; then
        note_fail "cut_after=$(( W + 5 )) fired on a $W-write run"
    else
        "$CLI" query "$WORK/done.img" "$QUERY" > "$WORK/done_query.out"
        got=$(matches "$WORK/done_query.out")
        if [[ "$got" != "$full_oracle" ]]; then
            note_fail "un-fired cut plan changed results:" \
                      "$got vs $full_oracle"
        fi
    fi

    gate_exit "crash matrix OK ($W cut points, durability +" \
              "integrity + determinism + completion)"
fi

# ---- multi-generation matrix (--rounds=2) ----------------------------
#
# Life 1 ingests corpus 1 and is cut at write ordinal k1. Life 2
# recovers the dump, re-opens the journal (generation 2), resumes with
# corpus 2 under write_base=k1 — so --crash-at addresses the *global*
# ordinal k1+k2 — and is cut again. Recovery of the second dump must
# hold the contract over head(R1, corpus1) + head(R-R1, corpus2).
LINES2=300
sed -n "$(( LINES + 1 )),$(( LINES + LINES2 ))p" "$WORK/full.log" \
    > "$WORK/cm2.log"

# oracle2 <n1> <n2>  -> match count over the first n1 lines of corpus 1
# followed by the first n2 lines of corpus 2 (cached)
declare -A ORACLE2
oracle2() {
    local key="$1:$2"
    if [[ -z "${ORACLE2[$key]:-}" ]]; then
        { head -n "$1" "$WORK/cm.log"; head -n "$2" "$WORK/cm2.log"; } \
            > "$WORK/mix.log"
        "$CLI" ingest "$WORK/mix.log" "$WORK/mix.img" > /dev/null
        "$CLI" query "$WORK/mix.img" "$QUERY" > "$WORK/mix.out"
        ORACLE2[$key]=$(matches "$WORK/mix.out")
    fi
    echo "${ORACLE2[$key]}"
}

# crash_run2 <k1> <r1> <k2>  -> "A:R:M" for a resume from the k1 crash
# image cut again at global ordinal k1+k2, recovered twice (the pair's
# repeated-recovery byte-identity check rides along).
crash_run2() {
    local k1="$1" r1="$2" k2="$3"
    cp "$WORK/g1_$k1.img" "$WORK/crash2.img"
    "$CLI" ingest "$WORK/cm2.log" "$WORK/crash2.img" --recover \
        --fault-plan="seed=1,write_base=$k1" \
        --crash-at=$(( k1 + k2 )) > "$WORK/crash2.out"
    if ! grep -q '^crash: acknowledged=' "$WORK/crash2.out"; then
        note_fail "pair ($k1,$k2) did not crash"
        echo "-:-:-"
        return
    fi
    local a r m r_again m_again
    a=$(sed -n 's/^crash: acknowledged=//p' "$WORK/crash2.out")
    if ! "$CLI" query "$WORK/crash2.img" "$QUERY" --recover \
        --metrics-out="$WORK/rec2.json" > "$WORK/rec2.out"; then
        note_fail "pair ($k1,$k2) recovery mount failed"
        echo "-:-:-"
        return
    fi
    r=$(counter rec2 recovery.lines_recovered)
    m=$(matches "$WORK/rec2.out")
    # Repeated recovery of the same image must replay byte-identically.
    if ! "$CLI" query "$WORK/crash2.img" "$QUERY" --recover \
        --metrics-out="$WORK/rec2b.json" > "$WORK/rec2b.out"; then
        note_fail "pair ($k1,$k2) re-recovery mount failed"
        echo "-:-:-"
        return
    fi
    r_again=$(counter rec2b recovery.lines_recovered)
    m_again=$(matches "$WORK/rec2b.out")
    if [[ "$r:$m" != "$r_again:$m_again" ]]; then
        note_fail "pair ($k1,$k2) re-recovery diverged:" \
                  "$r:$m vs $r_again:$m_again"
    fi
    if [[ "$r" -lt "$a" ]]; then
        note_fail "pair ($k1,$k2) lost acknowledged data" \
                  "(acknowledged=$a recovered=$r)"
    fi
    if [[ "$r" -gt $(( LINES + LINES2 )) ]]; then
        note_fail "pair ($k1,$k2) recovered $r lines from a" \
                  "$(( LINES + LINES2 ))-line history"
    fi
    # A cut during the reopen itself replays the pre-resume state, so
    # the life-1 share of the prefix is capped at r1.
    local n1=$(( r < r1 ? r : r1 ))
    local n2=$(( r - n1 ))
    local want
    if [[ "$r" -eq 0 ]]; then
        want=0
    else
        want=$(oracle2 "$n1" "$n2")
    fi
    if [[ "$INJECT" -eq 1 ]]; then
        want=$(( want + 1 ))
    fi
    if [[ "$m" != "$want" ]]; then
        note_fail "pair ($k1,$k2) recovered store returned $m" \
                  "matches, two-corpus oracle over $n1+$n2 lines" \
                  "says $want"
    fi
    echo "$a:$r:$m"
}

if [[ "$FULL" -eq 1 ]]; then
    grid1=$(seq 1 "$W")
else
    grid1="1 $mid $W"
fi
if [[ "$INJECT" -eq 1 ]]; then
    grid1="$mid"
fi
pairs=0
for k1 in $grid1; do
    # Life 1: cut at k1, keep the dump, learn its recovered prefix R1.
    "$CLI" ingest "$WORK/cm.log" "$WORK/g1_$k1.img" --crash-at="$k1" \
        > "$WORK/g1.out"
    if ! grep -q '^crash: acknowledged=' "$WORK/g1.out"; then
        note_fail "cut_after=$k1 did not crash (W=$W)"
        continue
    fi
    if ! "$CLI" query "$WORK/g1_$k1.img" "$QUERY" --recover \
        --metrics-out="$WORK/r1.json" > "$WORK/r1.out"; then
        note_fail "cut_after=$k1 life-1 recovery mount failed"
        continue
    fi
    r1=$(counter r1 recovery.lines_recovered)
    check_recovery_record "$WORK/r1.out"

    # Clean resume: learn the second life's program count W2 and check
    # completion — the resumed, sealed store answers the full
    # two-corpus oracle and its crash_recovery record carries the
    # generation-chain fields. A cut late enough that life 1's *seal*
    # became durable is not resumable by design (seal is terminal
    # across recovery): the resume must refuse, and the store must
    # still recover read-only to its oracle.
    cp "$WORK/g1_$k1.img" "$WORK/done2.img"
    if ! "$CLI" ingest "$WORK/cm2.log" "$WORK/done2.img" --recover \
        --fault-plan="seed=1,write_base=$k1" \
        --metrics-out="$WORK/g2_clean.json" > "$WORK/done2.out" \
        2> "$WORK/done2.err"; then
        if ! grep -q 'store was sealed' "$WORK/done2.err"; then
            note_fail "resume from k1=$k1 failed:" \
                      "$(cat "$WORK/done2.err")"
            continue
        fi
        got=$(matches "$WORK/r1.out")
        want=$(oracle "$r1")
        if [[ "$r1" -eq 0 ]]; then want=0; fi
        if [[ "$got" != "$want" ]]; then
            note_fail "sealed k1=$k1 store returned $got matches," \
                      "prefix oracle over $r1 lines says $want"
        fi
        echo "k1=$k1: durable seal survived the cut — resume refused" \
             "(terminal), read-only recovery intact"
        continue
    fi
    if grep -q '^crash:' "$WORK/done2.out"; then
        note_fail "clean resume from k1=$k1 crashed without a cut"
        continue
    fi
    W2=$(counter g2_clean fault.write_draws)
    "$CLI" query "$WORK/done2.img" "$QUERY" > "$WORK/done2_query.out"
    got=$(matches "$WORK/done2_query.out")
    want=$(oracle2 "$r1" "$LINES2")
    if [[ "$got" != "$want" ]]; then
        note_fail "resume from k1=$k1 completed with $got matches," \
                  "two-corpus oracle says $want"
    fi

    if [[ "$FULL" -eq 1 ]]; then
        grid2=$(seq 1 "$W2")
    else
        grid2="1 $(( (W2 + 1) / 2 )) $W2"
    fi
    if [[ "$INJECT" -eq 1 ]]; then
        grid2="1"
    fi
    declare -A RESULT2
    for k2 in $grid2; do
        RESULT2[$k2]=$(crash_run2 "$k1" "$r1" "$k2")
        pairs=$(( pairs + 1 ))
    done

    # Determinism: one mid-grid pair must replay bit-for-bit
    # end-to-end (cut, dump, and recovery). Skipped under
    # --inject-fail, whose grid holds only the first ordinal.
    if [[ "$INJECT" -eq 0 ]]; then
        mid2=$(( (W2 + 1) / 2 ))
        replay2=$(crash_run2 "$k1" "$r1" "$mid2")
        if [[ "$replay2" != "${RESULT2[$mid2]}" ]]; then
            note_fail "pair ($k1,$mid2) not deterministic:" \
                      "first=${RESULT2[$mid2]} replay=$replay2"
        fi
    fi
    unset RESULT2
done

gate_exit "multi-generation crash matrix OK ($pairs (cut1,cut2)" \
          "pairs, durability + integrity + repeated-recovery" \
          "identity + determinism + completion)"
