#include "baseline/splunk_lite.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/bits.h"
#include "common/status.h"
#include "common/text.h"
#include "common/wall_timer.h"
#include "query/matcher.h"

namespace mithril::baseline {

void
SplunkLite::ingest(std::string_view text)
{
    std::string bucket_text;
    uint32_t bucket_lines = 0;
    std::set<std::string, std::less<>> bucket_tokens;

    auto sealBucket = [&]() {
        if (bucket_lines == 0) {
            return;
        }
        uint32_t id = static_cast<uint32_t>(buckets_.size());
        Bucket b;
        b.compressed = codec_.compress(compress::asBytes(bucket_text));
        b.raw_size = static_cast<uint32_t>(bucket_text.size());
        buckets_.push_back(std::move(b));
        for (const std::string &tok : bucket_tokens) {
            postings_[tok].push_back(id);
        }
        bucket_text.clear();
        bucket_lines = 0;
        bucket_tokens.clear();
    };

    forEachLine(text, [&](std::string_view line) {
        bucket_text += line;
        bucket_text += '\n';
        ++bucket_lines;
        ++line_count_;
        raw_bytes_ += line.size() + 1;
        forEachToken(line, [&](std::string_view tok, uint32_t) {
            if (!bucket_tokens.count(tok)) {
                bucket_tokens.emplace(tok);
            }
            return true;
        });
        if (bucket_lines >= kBucketLines) {
            sealBucket();
        }
    });
    sealBucket();
}

uint64_t
SplunkLite::indexBytes() const
{
    uint64_t total = 0;
    for (const auto &[tok, list] : postings_) {
        total += tok.size() + list.size() * sizeof(uint32_t);
    }
    return total;
}

std::vector<uint32_t>
SplunkLite::candidateBuckets(const query::IntersectionSet &set) const
{
    std::vector<uint32_t> result;
    bool first = true;
    for (const query::Term &t : set.terms) {
        if (t.negated) {
            continue;  // the index cannot prune on absence
        }
        auto it = postings_.find(t.token);
        if (it == postings_.end()) {
            return {};  // a required token never occurs
        }
        if (first) {
            result = it->second;
            first = false;
        } else {
            std::vector<uint32_t> merged;
            std::set_intersection(result.begin(), result.end(),
                                  it->second.begin(), it->second.end(),
                                  std::back_inserter(merged));
            result = std::move(merged);
        }
        if (result.empty()) {
            return {};
        }
    }
    if (first) {
        // Pure-negative set: every bucket is a candidate.
        result.resize(buckets_.size());
        std::iota(result.begin(), result.end(), 0);
    }
    return result;
}

IndexedResult
SplunkLite::runQuery(const query::Query &q) const
{
    WallTimer timer;
    IndexedResult result;
    result.buckets_total = buckets_.size();

    // Plan: union of per-set candidate bucket lists.
    std::set<uint32_t> candidates;
    for (const query::IntersectionSet &set : q.sets()) {
        for (uint32_t b : candidateBuckets(set)) {
            candidates.insert(b);
        }
    }

    query::SoftwareMatcher matcher(q);
    compress::Bytes scratch;
    for (uint32_t b : candidates) {
        scratch.clear();
        Status st = codec_.decompress(buckets_[b].compressed, &scratch);
        MITHRIL_ASSERT(st.isOk());
        std::string_view text = asChars(scratch);
        forEachLine(text, [&](std::string_view line) {
            if (matcher.matches(line)) {
                ++result.matched_lines;
            }
        });
        ++result.buckets_scanned;
        result.scanned_bytes += buckets_[b].raw_size;
    }

    result.elapsed_seconds = timer.seconds();
    return result;
}

} // namespace mithril::baseline
