#include "baseline/scan_db.h"

#include <algorithm>

#include "common/bits.h"
#include "common/status.h"
#include "common/text.h"
#include "common/wall_timer.h"

namespace mithril::baseline {

namespace {

/** LEB128-style varint append. */
void
putVarint(std::vector<uint8_t> &out, uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Varint read; caller guarantees a terminated stream. */
uint32_t
getVarint(const uint8_t *data, size_t size, size_t *pos)
{
    uint32_t v = 0;
    int shift = 0;
    while (*pos < size) {
        uint8_t b = data[(*pos)++];
        v |= static_cast<uint32_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            break;
        }
        shift += 7;
    }
    return v;
}

/**
 * Integer-domain matcher: the SoftwareMatcher semantics over token
 * ids. One hash probe per line token is replaced by one flat-map
 * probe on a 32-bit id.
 */
class IdMatcher
{
  public:
    IdMatcher(const query::Query &q,
              const std::unordered_map<std::string, uint32_t> &dict)
    {
        const auto &sets = q.sets();
        set_offset_.resize(sets.size());
        set_words_.resize(sets.size());
        set_impossible_.assign(sets.size(), 0);
        size_t total_words = 0;

        for (size_t i = 0; i < sets.size(); ++i) {
            uint32_t slot = 0;
            std::unordered_map<uint32_t, bool> seen;  // id -> negated
            for (const query::Term &t : sets[i].terms) {
                auto it = dict.find(t.token);
                if (it == dict.end()) {
                    if (!t.negated) {
                        // Required token never occurs anywhere: the
                        // set is unsatisfiable; negated-absent terms
                        // are trivially satisfied.
                        set_impossible_[i] = true;
                    }
                    continue;
                }
                // Duplicate terms within a set map to one slot.
                if (!seen.emplace(it->second, t.negated).second) {
                    continue;
                }
                Occurrence occ;
                occ.set = static_cast<uint32_t>(i);
                occ.negated = t.negated;
                occ.slot = t.negated ? 0 : slot;
                if (!t.negated) {
                    ++slot;
                }
                by_id_[it->second].push_back(occ);
            }
            set_words_[i] = (slot + 63) / 64;
            set_offset_[i] = total_words;
            total_words += set_words_[i];
            needed_counts_.push_back(slot);
        }
        needed_.assign(total_words, 0);
        for (size_t i = 0; i < sets.size(); ++i) {
            for (uint32_t s = 0; s < needed_counts_[i]; ++s) {
                needed_[set_offset_[i] + s / 64] |= 1ull << (s % 64);
            }
        }
        found_.resize(total_words);
        violated_.resize(sets.size());
    }

    /** Feeds one line's token ids (terminated externally). */
    bool
    matchesLine(const std::vector<uint32_t> &ids)
    {
        std::fill(found_.begin(), found_.end(), 0);
        std::fill(violated_.begin(), violated_.end(), 0);
        for (uint32_t id : ids) {
            auto it = by_id_.find(id);
            if (it == by_id_.end()) {
                continue;
            }
            for (const Occurrence &occ : it->second) {
                if (occ.negated) {
                    violated_[occ.set] = 1;
                } else {
                    found_[set_offset_[occ.set] + occ.slot / 64] |=
                        1ull << (occ.slot % 64);
                }
            }
        }
        for (size_t i = 0; i < violated_.size(); ++i) {
            if (violated_[i] || set_impossible_[i]) {
                continue;
            }
            bool all = true;
            for (size_t w = 0; w < set_words_[i]; ++w) {
                if (found_[set_offset_[i] + w] !=
                    needed_[set_offset_[i] + w]) {
                    all = false;
                    break;
                }
            }
            if (all) {
                return true;
            }
        }
        return false;
    }

  private:
    struct Occurrence {
        uint32_t set;
        uint32_t slot;
        bool negated;
    };

    std::unordered_map<uint32_t, std::vector<Occurrence>> by_id_;
    std::vector<size_t> set_offset_;
    std::vector<size_t> set_words_;
    std::vector<uint32_t> needed_counts_;
    std::vector<uint64_t> needed_;
    std::vector<uint8_t> set_impossible_;
    std::vector<uint64_t> found_;
    std::vector<uint8_t> violated_;
};

} // namespace

void
ScanDb::ingest(std::string_view text)
{
    if (mode_ == ScanDbMode::kCompressedText) {
        std::string block_text;
        uint32_t block_lines = 0;
        auto sealBlock = [&]() {
            if (block_lines == 0) {
                return;
            }
            Block b;
            b.compressed = codec_.compress(compress::asBytes(block_text));
            b.lines = block_lines;
            b.raw_size = static_cast<uint32_t>(block_text.size());
            compressed_bytes_ += b.compressed.size();
            blocks_.push_back(std::move(b));
            block_text.clear();
            block_lines = 0;
        };
        forEachLine(text, [&](std::string_view line) {
            block_text += line;
            block_text += '\n';
            ++block_lines;
            ++line_count_;
            raw_bytes_ += line.size() + 1;
            if (block_lines >= kBlockLines) {
                sealBlock();
            }
        });
        sealBlock();
        return;
    }

    // Dictionary mode: one global dictionary, blocks of varint ids.
    std::vector<uint8_t> ids;
    uint32_t block_lines = 0;
    uint32_t block_raw = 0;
    auto sealBlock = [&]() {
        if (block_lines == 0) {
            return;
        }
        Block b;
        b.compressed = std::move(ids);
        b.lines = block_lines;
        b.raw_size = block_raw;
        compressed_bytes_ += b.compressed.size();
        blocks_.push_back(std::move(b));
        ids = {};
        block_lines = 0;
        block_raw = 0;
    };
    forEachLine(text, [&](std::string_view line) {
        forEachToken(line, [&](std::string_view tok, uint32_t) {
            auto [it, inserted] = dictionary_.try_emplace(
                std::string(tok),
                static_cast<uint32_t>(dictionary_.size() + 1));
            putVarint(ids, it->second);
            return true;
        });
        putVarint(ids, 0);  // end-of-line marker
        ++block_lines;
        ++line_count_;
        raw_bytes_ += line.size() + 1;
        block_raw += static_cast<uint32_t>(line.size() + 1);
        if (block_lines >= kBlockLines) {
            sealBlock();
        }
    });
    sealBlock();
}

ScanResult
ScanDb::runQuery(const query::Query &q) const
{
    return runBatch(std::span(&q, 1));
}

ScanResult
ScanDb::runBatch(std::span<const query::Query> queries) const
{
    return mode_ == ScanDbMode::kCompressedText
        ? runTextBatch(queries)
        : runDictionaryBatch(queries);
}

ScanResult
ScanDb::runTextBatch(std::span<const query::Query> queries) const
{
    WallTimer timer;
    ScanResult result;

    std::vector<query::SoftwareMatcher> matchers;
    matchers.reserve(queries.size());
    for (const query::Query &q : queries) {
        matchers.emplace_back(q);
    }

    compress::Bytes scratch;
    for (const Block &block : blocks_) {
        scratch.clear();
        Status st = codec_.decompress(block.compressed, &scratch);
        MITHRIL_ASSERT(st.isOk());
        std::string_view text = asChars(scratch);
        forEachLine(text, [&](std::string_view line) {
            ++result.scanned_lines;
            for (const query::SoftwareMatcher &m : matchers) {
                if (m.matches(line)) {
                    ++result.matched_lines;
                }
            }
        });
        result.scanned_bytes += block.raw_size;
    }

    result.elapsed_seconds = timer.seconds();
    return result;
}

ScanResult
ScanDb::runDictionaryBatch(std::span<const query::Query> queries) const
{
    WallTimer timer;
    ScanResult result;

    std::vector<IdMatcher> matchers;
    matchers.reserve(queries.size());
    for (const query::Query &q : queries) {
        matchers.emplace_back(q, dictionary_);
    }

    std::vector<uint32_t> line_ids;
    for (const Block &block : blocks_) {
        size_t pos = 0;
        const uint8_t *data = block.compressed.data();
        size_t size = block.compressed.size();
        line_ids.clear();
        while (pos < size) {
            uint32_t id = getVarint(data, size, &pos);
            if (id != 0) {
                line_ids.push_back(id);
                continue;
            }
            ++result.scanned_lines;
            for (IdMatcher &m : matchers) {
                if (m.matchesLine(line_ids)) {
                    ++result.matched_lines;
                }
            }
            line_ids.clear();
        }
        result.scanned_bytes += block.raw_size;
    }

    result.elapsed_seconds = timer.seconds();
    return result;
}

} // namespace mithril::baseline
