/**
 * @file
 * GrepScan — the naive substring-scan baseline.
 *
 * The paper mentions experimenting with grep before settling on MonetDB
 * as the strongest software scan baseline. GrepScan reproduces grep's
 * essence: a line-wise substring search over the raw (uncompressed)
 * text, with Boyer–Moore–Horspool skipping for single patterns. It
 * anchors the slow end of the software comparison and doubles as a
 * sanity oracle in tests (substring semantics differ from token
 * semantics — tests exercise exactly that difference).
 */
#ifndef MITHRIL_BASELINE_GREP_SCAN_H
#define MITHRIL_BASELINE_GREP_SCAN_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mithril::baseline {

/** Result of a grep-style scan. */
struct GrepResult {
    uint64_t matched_lines = 0;
    uint64_t scanned_bytes = 0;
    double elapsed_seconds = 0;
};

/**
 * Counts lines of @p text containing @p pattern as a substring
 * (Boyer–Moore–Horspool).
 */
GrepResult grepCount(std::string_view text, std::string_view pattern);

/** Lines of @p text containing @p pattern as a whole token. */
GrepResult grepTokenCount(std::string_view text, std::string_view pattern);

} // namespace mithril::baseline

#endif // MITHRIL_BASELINE_GREP_SCAN_H
