/**
 * @file
 * ScanDb — the MonetDB-like software comparison system (Section 7.4.2).
 *
 * The paper stores each log in a single-VARCHAR-column MonetDB table and
 * forces full scans, isolating raw text-processing throughput from
 * index effects. ScanDb reproduces that setup: lines live in a columnar
 * block store (fixed line count per block) with per-block light
 * compression — the column-oriented compression the paper credits for
 * MonetDB beating the PCIe bottleneck — and every query decompresses
 * and scans all blocks with the shared union-of-intersections matcher.
 *
 * Queries are CPU-bound and slow down as term count grows, which is the
 * behaviour Table 6 and Figure 15 document.
 */
#ifndef MITHRIL_BASELINE_SCAN_DB_H
#define MITHRIL_BASELINE_SCAN_DB_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compress/lz4like.h"
#include "query/matcher.h"
#include "query/query.h"

namespace mithril::baseline {

/** Result of one full-scan query. */
struct ScanResult {
    uint64_t matched_lines = 0;
    uint64_t scanned_lines = 0;
    uint64_t scanned_bytes = 0;   ///< uncompressed text scanned
    double elapsed_seconds = 0;   ///< measured wall time
};

/** Storage layout of the column. */
enum class ScanDbMode {
    /** LZ-compressed raw text blocks; queries re-tokenize each scan. */
    kCompressedText,
    /**
     * Dictionary-encoded token columns: each line is a varint
     * sequence of global token ids. Queries compare integers instead
     * of strings — the columnar trick that makes MonetDB-class
     * engines fast on repetitive text.
     */
    kDictionary,
};

/** Columnar full-scan engine. */
class ScanDb
{
  public:
    /** Lines per columnar block. */
    static constexpr size_t kBlockLines = 4096;

    explicit ScanDb(ScanDbMode mode = ScanDbMode::kCompressedText)
        : mode_(mode) {}

    ScanDbMode mode() const { return mode_; }

    /** Loads newline-separated @p text into compressed blocks. */
    void ingest(std::string_view text);

    uint64_t lineCount() const { return line_count_; }
    uint64_t rawBytes() const { return raw_bytes_; }
    uint64_t compressedBytes() const { return compressed_bytes_; }

    /** Runs one query as a full table scan (measured). */
    ScanResult runQuery(const query::Query &q) const;

    /**
     * Runs a batch of queries in one call; like the paper's
     * OR-combined batches, every query still scans the full table, so
     * cost scales with batch size.
     */
    ScanResult runBatch(std::span<const query::Query> queries) const;

  private:
    struct Block {
        std::vector<uint8_t> compressed;  ///< text or varint ids
        uint32_t lines;
        uint32_t raw_size;
    };

    ScanResult runTextBatch(
        std::span<const query::Query> queries) const;
    ScanResult runDictionaryBatch(
        std::span<const query::Query> queries) const;

    ScanDbMode mode_;
    compress::Lz4Like codec_;
    std::vector<Block> blocks_;
    uint64_t line_count_ = 0;
    uint64_t raw_bytes_ = 0;
    uint64_t compressed_bytes_ = 0;

    // Dictionary mode: global token dictionary (id 0 = end of line).
    std::unordered_map<std::string, uint32_t> dictionary_;
};

} // namespace mithril::baseline

#endif // MITHRIL_BASELINE_SCAN_DB_H
