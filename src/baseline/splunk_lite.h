/**
 * @file
 * SplunkLite — the Splunk-like indexed comparison system (Section 7.5).
 *
 * Reproduces the structure of the paper's end-to-end software baseline:
 * raw events stored in compressed buckets, an inverted index from token
 * to bucket posting lists, and single-threaded query execution (the
 * paper notes each Splunk search runs on one thread and divides
 * measured times by the hyper-thread count to be generous — benches do
 * that division, not this class).
 *
 * Query planning mirrors what inverted indices can and cannot do:
 * positive terms intersect posting lists to prune buckets; negative
 * terms prune nothing, so negative-heavy queries degrade to large scans
 * — the cluster of slow Splunk points on the left edge of Figure 16.
 */
#ifndef MITHRIL_BASELINE_SPLUNK_LITE_H
#define MITHRIL_BASELINE_SPLUNK_LITE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compress/lzrw1.h"
#include "query/query.h"

namespace mithril::baseline {

/** Result of one indexed query. */
struct IndexedResult {
    uint64_t matched_lines = 0;
    uint64_t buckets_scanned = 0;
    uint64_t buckets_total = 0;
    uint64_t scanned_bytes = 0;
    double elapsed_seconds = 0;  ///< single-thread wall time
};

/** Indexed, single-thread-per-query log search engine. */
class SplunkLite
{
  public:
    /** Lines per storage bucket. */
    static constexpr size_t kBucketLines = 1024;

    SplunkLite() = default;

    /** Ingests newline-separated text: buckets + inverted index. */
    void ingest(std::string_view text);

    uint64_t lineCount() const { return line_count_; }
    uint64_t rawBytes() const { return raw_bytes_; }
    uint64_t indexBytes() const;

    /** Runs one query through index planning + residual scan. */
    IndexedResult runQuery(const query::Query &q) const;

  private:
    struct Bucket {
        std::vector<uint8_t> compressed;
        uint32_t raw_size;
    };

    /** Buckets possibly containing a line of @p set. */
    std::vector<uint32_t>
    candidateBuckets(const query::IntersectionSet &set) const;

    compress::Lzrw1 codec_;
    std::vector<Bucket> buckets_;
    std::unordered_map<std::string, std::vector<uint32_t>> postings_;
    uint64_t line_count_ = 0;
    uint64_t raw_bytes_ = 0;
};

} // namespace mithril::baseline

#endif // MITHRIL_BASELINE_SPLUNK_LITE_H
