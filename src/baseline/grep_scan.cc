#include "baseline/grep_scan.h"

#include <array>

#include "common/text.h"
#include "common/wall_timer.h"

namespace mithril::baseline {

namespace {

/** Boyer–Moore–Horspool bad-character table. */
std::array<size_t, 256>
buildSkip(std::string_view pattern)
{
    std::array<size_t, 256> skip;
    skip.fill(pattern.size());
    for (size_t i = 0; i + 1 < pattern.size(); ++i) {
        skip[static_cast<uint8_t>(pattern[i])] = pattern.size() - 1 - i;
    }
    return skip;
}

} // namespace

GrepResult
grepCount(std::string_view text, std::string_view pattern)
{
    WallTimer timer;
    GrepResult result;
    result.scanned_bytes = text.size();
    if (pattern.empty()) {
        result.elapsed_seconds = timer.seconds();
        return result;
    }

    auto skip = buildSkip(pattern);
    size_t m = pattern.size();
    size_t pos = 0;
    while (pos + m <= text.size()) {
        if (text.compare(pos, m, pattern) == 0) {
            ++result.matched_lines;
            // Jump to the next line: grep counts a line once.
            size_t nl = text.find('\n', pos);
            if (nl == std::string_view::npos) {
                break;
            }
            pos = nl + 1;
        } else {
            pos += skip[static_cast<uint8_t>(text[pos + m - 1])];
        }
    }
    result.elapsed_seconds = timer.seconds();
    return result;
}

GrepResult
grepTokenCount(std::string_view text, std::string_view pattern)
{
    WallTimer timer;
    GrepResult result;
    result.scanned_bytes = text.size();
    forEachLine(text, [&](std::string_view line) {
        bool hit = false;
        forEachToken(line, [&](std::string_view tok, uint32_t) {
            if (tok == pattern) {
                hit = true;
                return false;
            }
            return true;
        });
        if (hit) {
            ++result.matched_lines;
        }
    });
    result.elapsed_seconds = timer.seconds();
    return result;
}

} // namespace mithril::baseline
