/**
 * @file
 * Page-granular storage primitives.
 *
 * MithriLog's storage device is NAND-flash addressed in 4 KB pages
 * (Section 6 sizes the index around 4 KB data pages). All on-storage
 * structures in this repository — compressed log data, index root pages,
 * leaf pages, snapshots — are arrays of fixed-size pages identified by a
 * PageId.
 */
#ifndef MITHRIL_STORAGE_PAGE_H
#define MITHRIL_STORAGE_PAGE_H

#include <cstddef>
#include <cstdint>

namespace mithril::storage {

/** Flash page size in bytes, matching the paper's 4 KB data pages. */
constexpr size_t kPageSize = 4096;

/** Identifier of a page within a device; dense, starting at zero. */
using PageId = uint64_t;

/** Sentinel for "no page" (used by linked-list terminators). */
constexpr PageId kInvalidPage = ~0ull;

} // namespace mithril::storage

#endif // MITHRIL_STORAGE_PAGE_H
