#include "storage/page_store.h"

#include <cstring>
#include <string>

namespace mithril::storage {

PageId
PageStore::allocate()
{
    PageId id = pageCount();
    pages_.resize(pages_.size() + kPageSize, 0);
    return id;
}

void
PageStore::write(PageId id, std::span<const uint8_t> data)
{
    MITHRIL_ASSERT(id < pageCount());
    MITHRIL_ASSERT(data.size() <= kPageSize);
    std::memcpy(pages_.data() + id * kPageSize, data.data(), data.size());
}

Status
PageStore::read(PageId id, std::span<const uint8_t> *out) const
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "page id " + std::to_string(id) + " out of range (" +
            std::to_string(pageCount()) + " pages allocated)");
    }
    *out = {pages_.data() + id * kPageSize, kPageSize};
    return Status::ok();
}

std::span<uint8_t>
PageStore::mutablePage(PageId id)
{
    MITHRIL_ASSERT(id < pageCount());
    return {pages_.data() + id * kPageSize, kPageSize};
}

} // namespace mithril::storage
