#include "storage/page_store.h"

#include <cstring>

#include "common/status.h"

namespace mithril::storage {

PageId
PageStore::allocate()
{
    PageId id = pageCount();
    pages_.resize(pages_.size() + kPageSize, 0);
    return id;
}

void
PageStore::write(PageId id, std::span<const uint8_t> data)
{
    MITHRIL_ASSERT(id < pageCount());
    MITHRIL_ASSERT(data.size() <= kPageSize);
    std::memcpy(pages_.data() + id * kPageSize, data.data(), data.size());
}

std::span<const uint8_t>
PageStore::read(PageId id) const
{
    MITHRIL_ASSERT(id < pageCount());
    return {pages_.data() + id * kPageSize, kPageSize};
}

std::span<uint8_t>
PageStore::mutablePage(PageId id)
{
    MITHRIL_ASSERT(id < pageCount());
    return {pages_.data() + id * kPageSize, kPageSize};
}

} // namespace mithril::storage
