#include "storage/page_store.h"

#include <cstring>
#include <string>

namespace mithril::storage {

uint64_t
PageStore::takeSlot()
{
    uint64_t slot;
    if (!free_slots_.empty()) {
        // Lowest-first reuse keeps placement deterministic and packs the
        // low segments, which is what lets the cleaner drain high ones.
        slot = *free_slots_.begin();
        free_slots_.erase(free_slots_.begin());
        std::memset(slots_.data() + slot * kPageSize, 0, kPageSize);
    } else {
        slot = physicalSlotCount();
        slots_.resize(slots_.size() + kPageSize, 0);
    }
    uint64_t seg = slot / kSegmentPages;
    if (seg >= seg_live_.size())
        seg_live_.resize(seg + 1, 0);
    ++seg_live_[seg];
    return slot;
}

void
PageStore::releaseSlot(uint64_t slot)
{
    uint64_t seg = slot / kSegmentPages;
    MITHRIL_ASSERT(seg < seg_live_.size() && seg_live_[seg] > 0);
    MITHRIL_ASSERT(free_slots_.insert(slot).second);
    if (--seg_live_[seg] == 0)
        ++segments_freed_;
}

PageId
PageStore::allocate()
{
    PageId id = map_.size();
    map_.push_back(takeSlot());
    return id;
}

Status
PageStore::write(PageId id, std::span<const uint8_t> data)
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "page id " + std::to_string(id) + " out of range (" +
            std::to_string(pageCount()) + " pages allocated)");
    }
    if (data.size() > kPageSize) {
        return Status::invalidArgument(
            "write of " + std::to_string(data.size()) +
            " bytes exceeds page size " + std::to_string(kPageSize));
    }
    std::memcpy(slots_.data() + map_[id] * kPageSize, data.data(),
                data.size());
    return Status::ok();
}

Status
PageStore::read(PageId id, std::span<const uint8_t> *out) const
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "page id " + std::to_string(id) + " out of range (" +
            std::to_string(pageCount()) + " pages allocated)");
    }
    *out = {slots_.data() + map_[id] * kPageSize, kPageSize};
    return Status::ok();
}

std::span<uint8_t>
PageStore::mutablePage(PageId id)
{
    MITHRIL_ASSERT(contains(id));
    return {slots_.data() + map_[id] * kPageSize, kPageSize};
}

Status
PageStore::free(PageId id)
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "free of unmapped page id " + std::to_string(id));
    }
    releaseSlot(map_[id]);
    map_[id] = kUnmappedSlot;
    return Status::ok();
}

bool
PageStore::allocatePhysicalBelow(uint64_t limit_slot, uint64_t *slot)
{
    if (free_slots_.empty() || *free_slots_.begin() >= limit_slot)
        return false;
    *slot = *free_slots_.begin();
    free_slots_.erase(free_slots_.begin());
    std::memset(slots_.data() + *slot * kPageSize, 0, kPageSize);
    uint64_t seg = *slot / kSegmentPages;
    ++seg_live_[seg];
    return true;
}

void
PageStore::freePhysical(uint64_t slot)
{
    releaseSlot(slot);
}

Status
PageStore::writePhysical(uint64_t slot, std::span<const uint8_t> data)
{
    if (slot >= physicalSlotCount() || free_slots_.count(slot)) {
        return Status::invalidArgument(
            "physical write to unallocated slot " + std::to_string(slot));
    }
    if (data.size() > kPageSize) {
        return Status::invalidArgument(
            "write of " + std::to_string(data.size()) +
            " bytes exceeds page size " + std::to_string(kPageSize));
    }
    std::memcpy(slots_.data() + slot * kPageSize, data.data(), data.size());
    return Status::ok();
}

Status
PageStore::readPhysical(uint64_t slot, std::span<const uint8_t> *out) const
{
    if (slot >= physicalSlotCount() || free_slots_.count(slot)) {
        return Status::invalidArgument(
            "physical read of unallocated slot " + std::to_string(slot));
    }
    *out = {slots_.data() + slot * kPageSize, kPageSize};
    return Status::ok();
}

Status
PageStore::remap(PageId id, uint64_t slot)
{
    if (!contains(id) || slot >= physicalSlotCount() ||
        free_slots_.count(slot)) {
        return Status::invalidArgument(
            "remap of page " + std::to_string(id) + " onto slot " +
            std::to_string(slot));
    }
    releaseSlot(map_[id]);
    map_[id] = slot;
    return Status::ok();
}

uint64_t
PageStore::segmentsLive() const
{
    uint64_t n = 0;
    for (uint32_t live : seg_live_)
        n += live > 0 ? 1 : 0;
    return n;
}

} // namespace mithril::storage
