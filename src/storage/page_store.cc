#include "storage/page_store.h"

#include <cstring>
#include <string>

namespace mithril::storage {

PageId
PageStore::allocate()
{
    PageId id = pageCount();
    pages_.resize(pages_.size() + kPageSize, 0);
    return id;
}

Status
PageStore::write(PageId id, std::span<const uint8_t> data)
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "page id " + std::to_string(id) + " out of range (" +
            std::to_string(pageCount()) + " pages allocated)");
    }
    if (data.size() > kPageSize) {
        return Status::invalidArgument(
            "write of " + std::to_string(data.size()) +
            " bytes exceeds page size " + std::to_string(kPageSize));
    }
    std::memcpy(pages_.data() + id * kPageSize, data.data(), data.size());
    return Status::ok();
}

Status
PageStore::read(PageId id, std::span<const uint8_t> *out) const
{
    if (!contains(id)) {
        return Status::invalidArgument(
            "page id " + std::to_string(id) + " out of range (" +
            std::to_string(pageCount()) + " pages allocated)");
    }
    *out = {pages_.data() + id * kPageSize, kPageSize};
    return Status::ok();
}

std::span<uint8_t>
PageStore::mutablePage(PageId id)
{
    MITHRIL_ASSERT(id < pageCount());
    return {pages_.data() + id * kPageSize, kPageSize};
}

} // namespace mithril::storage
