/**
 * @file
 * Write-ahead commit journal: the durable-ingest protocol's on-storage
 * record of what the store has acknowledged.
 *
 * On-disk layout (all little-endian, building on PR 3's CRC framing):
 *
 *   page 0, page 1   superblock slots (ping-pong: epoch N lands in slot
 *                    (N-1) % 2, so a torn superblock program can never
 *                    destroy the previous good superblock)
 *   page H, ...      journal pages, forward-linked by link records
 *   page S, ...      snapshot pages (checkpointed committed state),
 *                    forward-linked through their headers
 *
 * Superblock (one page, 60 bytes used, layout v2):
 *   magic u32 'MSB1' | version u32 | epoch u64 | journal_head u64 |
 *   generation u64 | snapshot_head u64 | snapshot_records u64 |
 *   flags u64 (bit 0: sealed) | crc u32 (of the preceding 56 bytes)
 *
 * Journal page := 20-byte header + up to 92 fixed 44-byte records:
 *   header: magic u32 'MJL1' | seq u32 (position in chain) |
 *           generation u64 | crc u32 (of the preceding 16 bytes)
 *   record: kind u32 | arg u64 | page_crc u32 | lines u64 |
 *           raw_bytes u64 | seq u64 (chain-local, from 1) | crc u32 (of
 *           the preceding 40 bytes, seeded with crc32(generation))
 *
 * Snapshot page := 32-byte header + up to 145 fixed 28-byte entries:
 *   header: magic u32 'MSN1' | seq u32 (position in snapshot list) |
 *           generation u64 | count u32 | next u64 (kInvalidPage ends) |
 *           crc u32 (of the preceding 28 bytes)
 *   entry:  page u64 | page_crc u32 | lines u64 | raw_bytes u64
 * Entries are the committed page table in commit order; each entry
 * replays as one logical record, so a mount walks O(snapshot pages +
 * chain tail) instead of O(records ever appended).
 *
 * Record kinds: kPageCommit (arg = data page id; page_crc covers the
 * full 4 KB data page; lines / raw_bytes are cumulative totals through
 * this page), kLink (arg = next journal page id), kSeal (store is
 * complete and immutable), kBaseLink (only ever the first record of a
 * reopened generation's chain: arg = previous chain's head page, the
 * lines field carries the previous generation, and the raw_bytes field
 * carries the *record budget* — exactly how many logical records of the
 * previous chain tree were verified good at reopen time), kMigrate (a
 * segment-cleaner copy commit: arg = logical data page, page_crc its
 * CRC, lines / raw_bytes the old / new physical slot; replay validates
 * and counts it but it changes no logical state — the translation map
 * is device metadata).
 *
 * Generation chain (append-after-recovery): reopen() starts a fresh
 * chain at the replayed tail under generation G+1. Old-generation pages
 * are never rewritten; the new chain's base-link record grafts the
 * survivors by reference, and its CRC is seeded with the NEW generation
 * so stale old-generation bytes can never be replayed as new records.
 * Replay recurses through base links (oldest chain first), accepting at
 * most the declared budget from each base tree, so records the reopen
 * verification discarded stay discarded on every later mount.
 *
 * Checkpoint (DESIGN.md §14): checkpoint() serializes the committed
 * page table into snapshot pages, starts a fresh empty chain, and
 * publishes both with a single superblock epoch bump; the old chain and
 * old snapshot are freed only after the durability barrier that lands
 * the bump, so a power cut anywhere inside the protocol replays either
 * the old state or the new one, never a mix. A chain that builds on a
 * snapshot never contains base links: reopen() of a snapshot-bearing
 * history collapses the survivors into a fresh snapshot instead of
 * grafting (a base link can reference only a chain, not a snapshot).
 *
 * Crash-safety argument: records are only ever *appended*, so rewriting
 * the current journal page has the identical-prefix property — a torn
 * program can damage only the newest record, which then fails its CRC
 * (or reads as kind 0) and replay stops exactly at the last durable
 * record. Chain growth writes the new page's header before the link
 * record that publishes it, reopen() and checkpoint() write every new
 * page (snapshot and chain head) before the superblock epoch that
 * publishes them, and freed pages are returned to the allocator only
 * after that epoch's barrier, so every crash window leaves a valid,
 * replayable prefix (possibly the pre-reopen / pre-checkpoint one).
 */
#ifndef MITHRIL_STORAGE_JOURNAL_H
#define MITHRIL_STORAGE_JOURNAL_H

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/ssd_model.h"

namespace mithril::storage {

/** Write-ahead journal over an SsdModel; owns pages 0..1 + the chain. */
class Journal
{
  public:
    /** One durably committed data page, in commit order. */
    struct CommittedPage {
        PageId page = kInvalidPage;
        uint32_t crc = 0;          ///< CRC32 of the full 4 KB data page
        uint64_t lines = 0;        ///< cumulative lines through this page
        uint64_t raw_bytes = 0;    ///< cumulative raw bytes ingested
        uint64_t record_seq = 0;   ///< global replay position (from 1)
    };

    /** What a mount-time replay of the journal found. */
    struct ReplayResult {
        std::vector<CommittedPage> pages;
        bool found = false;        ///< a valid superblock existed
        bool sealed = false;       ///< a seal record was replayed
        uint64_t journal_pages = 0;
        uint64_t records = 0;      ///< valid records replayed (incl. snapshot)
        uint64_t snapshot_records = 0; ///< of which from the snapshot
        uint64_t epoch = 0;        ///< epoch of the chosen superblock
        PageId head = kInvalidPage; ///< newest chain's head page
        PageId snapshot_head = kInvalidPage; ///< snapshot list head
        uint64_t generation = 0;   ///< newest chain's generation
        uint64_t generations = 0;  ///< chains replayed (1 + base links)
        /** Journal pages that validated during replay (all chains),
         *  and snapshot pages that validated: the reachable journal
         *  footprint, which reopen() may reclaim after a collapse. */
        std::vector<PageId> chain_pages;
        std::vector<PageId> snapshot_pages;
    };

    explicit Journal(SsdModel *ssd) : ssd_(ssd) {}

    /** Joins the unified metric namespace as `journal.*` counters. */
    void bindMetrics(obs::MetricsRegistry *metrics);

    /** True once format() ran (or a cursor was deserialized). */
    bool formatted() const { return head_ != kInvalidPage; }

    /**
     * Lays out the journal on an *empty* device (asserted): reserves
     * the two superblock slots and the first journal page, then
     * publishes superblock epoch 1. Ends with a durability barrier.
     */
    Status format();

    /**
     * Lays out a *fresh generation* of the journal at the replayed tail
     * of a recovered device: allocates a new chain head past the
     * existing pages, bumps the generation past @p rr's, and — when the
     * replay found survivors — opens the chain with a base-link record
     * granting exactly @p accepted_records logical records from the old
     * chain tree (the reopen-time verification cut; everything past it
     * stays discarded forever). When the replayed history carries a
     * snapshot, the survivors are instead *collapsed* into a fresh
     * snapshot under the new generation (a base link cannot graft a
     * snapshot), and the old chain + snapshot pages are reclaimed once
     * the new superblock is durable. Publishes superblock epoch
     * rr.epoch+1 and ends with a durability barrier. Crash-safe in
     * every window: the new pages land before the superblock that makes
     * them reachable, and old pages are neither rewritten nor freed
     * before the barrier, so a cut replays either the pre-reopen or the
     * post-reopen state, never a mix.
     * The journal must not have a cursor yet (fresh mount) and @p rr
     * must not be sealed — seal is terminal.
     */
    Status reopen(const ReplayResult &rr, uint64_t accepted_records);

    /**
     * Checkpoint (DESIGN.md §14): serializes the committed page table
     * into snapshot pages, truncates the chain to a fresh empty head,
     * and publishes {snapshot, new head} with one superblock epoch
     * bump, then a durability barrier; only after the barrier are the
     * old chain and old snapshot pages returned to the allocator. After
     * this, mount-time replay is O(snapshot + tail): the snapshot
     * replays as base_records logical records and the chain restarts at
     * chain-local seq 1. Committed state (acknowledged lines, page
     * table) is exactly preserved — the ack point never moves. Pass
     * @p sealed when the store carries a durable seal: the truncated
     * chain loses the seal *record*, so the new superblock must keep
     * the sealed *flag* (seal is terminal; checkpoint is maintenance,
     * not mutation).
     */
    Status checkpoint(bool sealed = false);

    /**
     * Appends a commit record for data page @p page (whole-page CRC
     * @p page_crc, cumulative totals @p lines / @p raw_bytes) and ends
     * with a durability barrier: when this returns ok, the commit — and
     * every earlier record — is crash-durable.
     */
    Status appendPageCommit(PageId page, uint32_t page_crc,
                            uint64_t lines, uint64_t raw_bytes);

    /**
     * Appends a segment-migration commit record (logical data page
     * @p page with CRC @p page_crc moved from physical @p old_slot to
     * @p new_slot) and ends with a durability barrier. The cleaner
     * retargets the translation map only after this returns ok.
     */
    Status appendMigrate(PageId page, uint32_t page_crc,
                         uint64_t old_slot, uint64_t new_slot);

    /**
     * Appends the terminal seal record, publishes the sealed
     * superblock, and ends with a durability barrier.
     */
    Status appendSeal(uint64_t lines, uint64_t raw_bytes);

    /**
     * Mount-time replay: reads both superblock slots, picks the valid
     * one with the highest epoch, loads its snapshot (if any), and
     * walks the journal chain until the first invalid record. All reads
     * are metered device traffic. A damaged snapshot invalidates the
     * chain built on it (prefix semantics, mirroring base-link budget
     * shortfall). A device with no valid superblock yields found=false
     * and ok — recovering to an empty store is the correct answer for a
     * crash before format completed.
     */
    Status replay(ReplayResult *out);

    /** Appends the journal cursor to @p out (for the host image). */
    void serialize(std::vector<uint8_t> *out) const;

    /**
     * Restores the cursor from @p data (written by serialize) and
     * re-reads the current journal page image from the store. Sets
     * @p consumed to the bytes read from @p data.
     */
    Status deserialize(const uint8_t *data, size_t len,
                       size_t *consumed);

    /** Records appended since construction (not counting replay). */
    uint64_t recordsAppended() const { return records_appended_; }

    /** Journal/superblock page programs issued since construction. */
    uint64_t pageWrites() const { return page_writes_; }

    /** Current journal incarnation (0 until format/reopen/restore). */
    uint64_t generation() const { return generation_; }

    /** reopen() calls on this object (not counting replayed history). */
    uint64_t reopens() const { return reopens_; }

    /** True when this cursor's chain grafts an older generation. */
    bool chained() const { return chained_; }

    /** Records in the live chain (what a mount must replay past the
     *  snapshot); this is the quantity checkpoint() resets to zero. */
    uint64_t chainRecords() const { return next_seq_ - 1; }

    /** Logical records summarized by the live snapshot (0 if none). */
    uint64_t snapshotRecords() const
    {
        return snapshot_head_ != kInvalidPage ? base_records_ : 0;
    }

    /** checkpoint() calls completed on this cursor's lifetime. */
    uint64_t checkpoints() const { return checkpoints_; }

  private:
    Status appendRecord(uint32_t kind, uint64_t arg, uint32_t page_crc,
                        uint64_t lines, uint64_t raw_bytes);
    void replayChain(PageId head, uint64_t chain_generation,
                     uint64_t ceiling, int depth, ReplayResult *out,
                     bool *saw_seal);
    bool replaySnapshot(PageId head, uint64_t generation,
                        uint64_t expected, ReplayResult *out);
    Status writeSnapshot(PageId *head_out);
    Status writeCurrentPage();
    Status writeSuperblock(uint64_t epoch, uint64_t flags);
    void initPageImage(std::vector<uint8_t> *image, uint32_t seq) const;
    Status startFreshChain();
    void updateObsGauges();

    SsdModel *ssd_;
    PageId head_ = kInvalidPage;  ///< newest chain's first journal page
    PageId cur_ = kInvalidPage;   ///< journal page being appended to
    uint32_t cur_seq_ = 0;        ///< chain position of cur_
    size_t cur_count_ = 0;        ///< records already in cur_
    uint64_t next_seq_ = 1;       ///< next chain-local record seq
    uint64_t epoch_ = 0;          ///< last superblock epoch published
    uint64_t generation_ = 0;     ///< journal incarnation stamp
    bool chained_ = false;        ///< chain opens with a base link
    uint64_t reopens_ = 0;
    PageId snapshot_head_ = kInvalidPage; ///< live snapshot list head
    uint64_t base_records_ = 0;   ///< logical records before the chain
    uint64_t checkpoints_ = 0;
    /** Committed page table in commit order: what checkpoint() writes
     *  into the snapshot. Maintained by appendPageCommit / reopen /
     *  deserialize; never read by replay (the media is authoritative
     *  at mount). */
    std::vector<CommittedPage> committed_;
    /** Pages of the live chain / snapshot — the set checkpoint() frees
     *  after the next epoch bump is durable. */
    std::vector<PageId> chain_pages_;
    std::vector<PageId> snapshot_pages_;
    std::vector<uint8_t> cur_image_;
    uint64_t records_appended_ = 0;
    uint64_t page_writes_ = 0;
    obs::Counter *obs_records_ = nullptr;
    obs::Counter *obs_page_writes_ = nullptr;
    obs::Counter *obs_reopens_ = nullptr;
    obs::Counter *obs_checkpoints_ = nullptr;
    obs::Gauge *obs_generation_ = nullptr;
    obs::Gauge *obs_chain_records_ = nullptr;
    obs::Gauge *obs_snapshot_records_ = nullptr;
};

} // namespace mithril::storage

#endif // MITHRIL_STORAGE_JOURNAL_H
