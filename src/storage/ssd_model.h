/**
 * @file
 * Timed SSD device model: the near-storage platform MithriLog runs on.
 *
 * The model reproduces the two properties the paper's architecture
 * exploits (Sections 2.2, 3, 7.2):
 *
 *  1. the *internal* bandwidth between the NAND array and the on-device
 *     accelerator (4.8 GB/s on the BlueDBM prototype) exceeds the
 *     *external* PCIe link to the host (3.1 GB/s effective), and
 *  2. flash access is latency-bound for dependent (pointer-chasing)
 *     reads — about 100 us per hop — but many independent commands can be
 *     in flight across channels, so batched reads are bandwidth-bound.
 *
 * The model is analytic rather than event-driven: reads accrue modeled
 * time into a device clock using `max(latency chain, bytes / bandwidth)`
 * per batch, which is exactly the level of fidelity the paper's own
 * back-of-envelope analysis uses (Section 6.1).
 */
#ifndef MITHRIL_STORAGE_SSD_MODEL_H
#define MITHRIL_STORAGE_SSD_MODEL_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/simtime.h"
#include "common/stats.h"
#include "common/status.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "storage/page_store.h"

namespace mithril::storage {

/** Which link a transfer crosses; determines the bandwidth bound. */
enum class Link {
    kInternal,  ///< NAND array -> on-device accelerator
    kExternal,  ///< NAND array -> host over PCIe
};

/** Device parameters; defaults reproduce the paper's prototype. */
struct SsdConfig {
    /** Aggregate internal flash bandwidth (4x BlueDBM cards). */
    double internal_bw_bps = 4.8e9;
    /** Effective host link bandwidth (PCIe Gen2 x8 via DMA). */
    double external_bw_bps = 3.1e9;
    /** Per-command flash read latency. */
    SimTime read_latency = SimTime::microseconds(100);
    /** Independent commands the device can overlap (channels x QD).
     *  Sized so 4 KB commands at 100 us latency sustain the internal
     *  bandwidth: 256 x 4 KB / 100 us ~ 10 GB/s of headroom. */
    unsigned parallel_commands = 256;
    /** Cost of a durability barrier (flushBarrier): drain in-flight
     *  programs and wait for the NAND to confirm. Modeled after a full
     *  channel round-trip plus program time (~400 us, the ballpark of a
     *  NAND page program plus command overhead). */
    SimTime flush_latency = SimTime::microseconds(400);
};

/** Comparison-platform storage (Section 7.2): RAID-0 of two NVMe SSDs. */
inline SsdConfig
comparisonSsdConfig()
{
    return SsdConfig{
        .internal_bw_bps = 7e9,  // software systems see only one link
        .external_bw_bps = 7e9,  // 7 GB/s measured peak in the paper
        .read_latency = SimTime::microseconds(80),
        .parallel_commands = 128,
    };
}

/**
 * A page store with a command-level timing model.
 *
 * All read/write entry points both move bytes and advance the modeled
 * device clock. Pure timing queries (time*) are also exposed so the
 * end-to-end performance model can reason about alternatives without
 * issuing traffic.
 */
class SsdModel
{
  public:
    explicit SsdModel(SsdConfig config = SsdConfig{});

    PageStore &store() { return store_; }
    const PageStore &store() const { return store_; }
    const SsdConfig &config() const { return config_; }

    /** Modeled time consumed by all traffic since the last reset. */
    SimTime elapsed() const { return clock_; }

    /** Resets the modeled clock (not the stored data or counters). */
    void resetClock() { clock_ = SimTime(); }

    /** Device counters: pages_read, pages_written, bytes_*, commands. */
    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

    /**
     * Joins the unified metric namespace: legacy counters forward as
     * `ssd.*`, and the model additionally records per-link busy time
     * (`ssd.internal_link_busy_ps` / `ssd.external_link_busy_ps`) and
     * a queue-depth histogram (`ssd.batch_pages`, the independent
     * commands in flight per batch, capped by parallel_commands).
     */
    void bindMetrics(obs::MetricsRegistry *metrics);

    /**
     * Attaches a fault plan (non-owning; may be null to detach).
     *
     * With a plan attached every data-moving read consults it: timeouts
     * and ECC-uncorrectable outcomes are retried up to the plan's
     * max_retries with modeled backoff charged into the device clock
     * (`ssd.read_retries`), then surface as kDataLoss; silent bit flips
     * and block garbling damage the returned copy for upper layers'
     * CRC framing to catch. With no plan the data path is exactly the
     * unfaulted code.
     */
    void attachFaultPlan(fault::FaultPlan *plan);

    /** Currently attached fault plan, or null. */
    fault::FaultPlan *faultPlan() const { return fault_plan_; }

    // --- pure timing queries -------------------------------------------

    /**
     * Time for @p pages independent page reads over @p link.
     * Bandwidth-bound when the batch is large; one latency to first byte.
     */
    SimTime timeBatchRead(uint64_t pages, Link link) const;

    /**
     * Time for a dependent chain of @p hops reads (each must complete
     * before the next address is known), where each hop additionally
     * fans out to @p fanout_pages independent reads.  This is the index
     * traversal pattern of Section 6.1.
     */
    SimTime timeChainRead(uint64_t hops, uint64_t fanout_pages,
                          Link link) const;

    /** Time to write @p pages (treated like batched reads; NAND program
     *  time folds into the same bandwidth envelope at this fidelity). */
    SimTime timeBatchWrite(uint64_t pages) const;

    // --- metered data operations ---------------------------------------

    /** Allocates a page (no modeled cost; allocation is bookkeeping). */
    PageId allocate() { return store_.allocate(); }

    /**
     * Writes @p data to @p id and accrues modeled write time.
     *
     * Fails with kInvalidArgument for an out-of-range id or oversized
     * payload and kUnavailable once power is lost. With a fault plan
     * attached every program consults it: a power cut persists a drawn
     * prefix, kills the device (powerLost()), and surfaces as
     * kUnavailable; torn and dropped programs persist a prefix or
     * nothing but still return ok — a lying device whose damage upper
     * layers detect at mount time via journaled CRCs.
     */
    [[nodiscard]] Status writePage(PageId id,
                                   std::span<const uint8_t> data);

    /**
     * Programs a *physical* slot (segment-cleaner migration copy):
     * metered and fault-drawn exactly like writePage — a power cut here
     * is a crash point the checkpoint crash grid sweeps — but addressed
     * physically, so the logical map only retargets after the copy is
     * durable and verified (DESIGN.md §14).
     */
    [[nodiscard]] Status writePhysical(uint64_t slot,
                                       std::span<const uint8_t> data);

    /** Reads back a physical slot for post-copy verification: charges
     *  transfer time (the verify read pipelines behind the migration
     *  batch) and returns a read-only view of the media bytes, damage
     *  included — that is the point of the verify. */
    Status readPhysical(uint64_t slot, std::span<const uint8_t> *out);

    /**
     * Durability barrier: drains in-flight programs so every write
     * acked before this call is on the media. Charges the config's
     * flush_latency into the clock and counts `ssd.flushes`. Fails
     * with kUnavailable once power is lost.
     */
    [[nodiscard]] Status flushBarrier();

    /** True once a power-cut fault killed the device; every later
     *  command fails kUnavailable until the image is remounted. */
    bool powerLost() const { return power_lost_; }

    /**
     * Reads a batch of independent pages over @p link, appending their
     * bytes to @p out, and accrues modeled time for the whole batch.
     * Fails with kInvalidArgument for an unallocated id and kDataLoss
     * when a page stays unreadable after the fault plan's retries; on
     * failure @p out is left as it was on entry.
     */
    Status readBatch(std::span<const PageId> ids, Link link,
                     std::vector<uint8_t> *out);

    /** Reads one page in a dependent chain (pointer chase): charges a
     *  full read latency. Replaces @p out with the page bytes. */
    Status readChained(PageId id, Link link, std::vector<uint8_t> *out);

    /** Reads one page that pipelines behind other outstanding work
     *  (latency hidden, transfer time charged). Replaces @p out. */
    Status readOverlapped(PageId id, Link link,
                          std::vector<uint8_t> *out);

    /**
     * Re-issues a read after an upper layer rejected the returned bytes
     * (CRC mismatch): charges the plan's backoff plus a fresh command
     * latency, counts `ssd.read_retries`, and replaces @p out.
     */
    Status rereadPage(PageId id, Link link, std::vector<uint8_t> *out);

    /** Accounts a batch of independent page reads that pipeline behind
     *  other outstanding work (latency hidden): charges transfer time
     *  only. The caller reads the data through store(). */
    void chargeOverlappedRead(uint64_t pages, Link link);

  private:
    double bandwidth(Link link) const;
    void meterTransfer(uint64_t pages, SimTime busy, Link link);
    Status fetchPage(PageId id, std::vector<uint8_t> *out);

    SsdConfig config_;
    PageStore store_;
    SimTime clock_;
    StatSet stats_;
    bool power_lost_ = false;
    fault::FaultPlan *fault_plan_ = nullptr;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::Counter *link_busy_[2] = {nullptr, nullptr};
    obs::LogHistogram *batch_pages_ = nullptr;
};

} // namespace mithril::storage

#endif // MITHRIL_STORAGE_SSD_MODEL_H
