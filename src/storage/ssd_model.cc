#include "storage/ssd_model.h"

#include <algorithm>

namespace mithril::storage {

SsdModel::SsdModel(SsdConfig config) : config_(config) {}

void
SsdModel::bindMetrics(obs::MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics_ != nullptr) {
        stats_.bind(metrics_, "ssd.");
        link_busy_[0] = &metrics_->counter("ssd.internal_link_busy_ps");
        link_busy_[1] = &metrics_->counter("ssd.external_link_busy_ps");
        batch_pages_ = &metrics_->histogram("ssd.batch_pages");
    } else {
        stats_.bind(nullptr, "");
        link_busy_[0] = link_busy_[1] = nullptr;
        batch_pages_ = nullptr;
    }
}

double
SsdModel::bandwidth(Link link) const
{
    return link == Link::kInternal ? config_.internal_bw_bps
                                   : config_.external_bw_bps;
}

void
SsdModel::meterTransfer(uint64_t pages, SimTime busy, Link link)
{
    if (metrics_ == nullptr) {
        return;
    }
    link_busy_[link == Link::kInternal ? 0 : 1]->add(busy.ps());
    batch_pages_->record(
        std::min<uint64_t>(pages, config_.parallel_commands));
}

SimTime
SsdModel::timeBatchRead(uint64_t pages, Link link) const
{
    if (pages == 0) {
        return SimTime();
    }
    // Commands beyond the device's parallelism serialize in waves;
    // within the envelope the transfer is bandwidth-bound. One latency
    // covers time-to-first-byte; later waves pipeline behind it.
    uint64_t waves =
        (pages + config_.parallel_commands - 1) / config_.parallel_commands;
    SimTime transfer =
        SimTime::transfer(pages * kPageSize, bandwidth(link));
    SimTime extra_waves =
        SimTime::picoseconds(config_.read_latency.ps() * (waves - 1));
    return config_.read_latency + SimTime::max(transfer, extra_waves);
}

SimTime
SsdModel::timeChainRead(uint64_t hops, uint64_t fanout_pages,
                        Link link) const
{
    if (hops == 0) {
        return SimTime();
    }
    // Each hop: one dependent read latency, then the fanout pages read as
    // an independent batch overlapping the next hop's latency only after
    // the hop's own page returned.
    SimTime per_hop = config_.read_latency;
    SimTime fanout = timeBatchRead(fanout_pages, link);
    SimTime total;
    for (uint64_t h = 0; h < hops; ++h) {
        total += per_hop;
    }
    // Fanout batches across hops pipeline with the chain; they add only
    // where they exceed the chain latency per hop.
    SimTime fanout_total =
        SimTime::picoseconds(fanout.ps() * hops);
    return SimTime::max(total, fanout_total);
}

SimTime
SsdModel::timeBatchWrite(uint64_t pages) const
{
    if (pages == 0) {
        return SimTime();
    }
    // Writes stream through the internal link; program time is hidden by
    // channel interleaving at this batch granularity.
    return config_.read_latency +
           SimTime::transfer(pages * kPageSize, config_.internal_bw_bps);
}

void
SsdModel::writePage(PageId id, std::span<const uint8_t> data)
{
    store_.write(id, data);
    clock_ += SimTime::transfer(kPageSize, config_.internal_bw_bps);
    stats_.add("pages_written");
    stats_.add("bytes_written", data.size());
}

void
SsdModel::readBatch(std::span<const PageId> ids, Link link,
                    std::vector<uint8_t> *out)
{
    for (PageId id : ids) {
        auto page = store_.read(id);
        out->insert(out->end(), page.begin(), page.end());
    }
    SimTime busy = timeBatchRead(ids.size(), link);
    clock_ += busy;
    stats_.add("pages_read", ids.size());
    stats_.add("bytes_read", ids.size() * kPageSize);
    stats_.add("read_commands");
    meterTransfer(ids.size(), busy, link);
}

void
SsdModel::chargeOverlappedRead(uint64_t pages, Link link)
{
    SimTime busy = SimTime::transfer(pages * kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("pages_read", pages);
    stats_.add("bytes_read", pages * kPageSize);
    stats_.add("overlapped_reads");
    meterTransfer(pages, busy, link);
}

std::span<const uint8_t>
SsdModel::readChained(PageId id, Link link)
{
    SimTime busy = config_.read_latency +
                   SimTime::transfer(kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("pages_read");
    stats_.add("bytes_read", kPageSize);
    stats_.add("chained_reads");
    meterTransfer(1, busy, link);
    return store_.read(id);
}

} // namespace mithril::storage
