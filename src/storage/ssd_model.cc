#include "storage/ssd_model.h"

#include <algorithm>
#include <string>

namespace mithril::storage {

SsdModel::SsdModel(SsdConfig config) : config_(config) {}

void
SsdModel::bindMetrics(obs::MetricsRegistry *metrics)
{
    metrics_ = metrics;
    if (metrics_ != nullptr) {
        stats_.bind(metrics_, "ssd.");
        link_busy_[0] = &metrics_->counter("ssd.internal_link_busy_ps");
        link_busy_[1] = &metrics_->counter("ssd.external_link_busy_ps");
        batch_pages_ = &metrics_->histogram("ssd.batch_pages");
    } else {
        stats_.bind(nullptr, "");
        link_busy_[0] = link_busy_[1] = nullptr;
        batch_pages_ = nullptr;
    }
    if (fault_plan_ != nullptr) {
        fault_plan_->bindMetrics(metrics_);
    }
}

void
SsdModel::attachFaultPlan(fault::FaultPlan *plan)
{
    fault_plan_ = plan;
    if (fault_plan_ != nullptr && metrics_ != nullptr) {
        fault_plan_->bindMetrics(metrics_);
    }
}

double
SsdModel::bandwidth(Link link) const
{
    return link == Link::kInternal ? config_.internal_bw_bps
                                   : config_.external_bw_bps;
}

void
SsdModel::meterTransfer(uint64_t pages, SimTime busy, Link link)
{
    if (metrics_ == nullptr) {
        return;
    }
    link_busy_[link == Link::kInternal ? 0 : 1]->add(busy.ps());
    batch_pages_->record(
        std::min<uint64_t>(pages, config_.parallel_commands));
}

SimTime
SsdModel::timeBatchRead(uint64_t pages, Link link) const
{
    if (pages == 0) {
        return SimTime();
    }
    // Commands beyond the device's parallelism serialize in waves;
    // within the envelope the transfer is bandwidth-bound. One latency
    // covers time-to-first-byte; later waves pipeline behind it.
    uint64_t waves =
        (pages + config_.parallel_commands - 1) / config_.parallel_commands;
    SimTime transfer =
        SimTime::transfer(pages * kPageSize, bandwidth(link));
    SimTime extra_waves =
        SimTime::picoseconds(config_.read_latency.ps() * (waves - 1));
    return config_.read_latency + SimTime::max(transfer, extra_waves);
}

SimTime
SsdModel::timeChainRead(uint64_t hops, uint64_t fanout_pages,
                        Link link) const
{
    if (hops == 0) {
        return SimTime();
    }
    // Each hop: one dependent read latency, then the fanout pages read as
    // an independent batch overlapping the next hop's latency only after
    // the hop's own page returned.
    SimTime per_hop = config_.read_latency;
    SimTime fanout = timeBatchRead(fanout_pages, link);
    SimTime total;
    for (uint64_t h = 0; h < hops; ++h) {
        total += per_hop;
    }
    // Fanout batches across hops pipeline with the chain; they add only
    // where they exceed the chain latency per hop.
    SimTime fanout_total =
        SimTime::picoseconds(fanout.ps() * hops);
    return SimTime::max(total, fanout_total);
}

SimTime
SsdModel::timeBatchWrite(uint64_t pages) const
{
    if (pages == 0) {
        return SimTime();
    }
    // Writes stream through the internal link; program time is hidden by
    // channel interleaving at this batch granularity.
    return config_.read_latency +
           SimTime::transfer(pages * kPageSize, config_.internal_bw_bps);
}

Status
SsdModel::writePage(PageId id, std::span<const uint8_t> data)
{
    if (power_lost_) {
        return Status::unavailable("device power lost");
    }
    if (!store_.contains(id) || data.size() > kPageSize) {
        // Validate before charging time or drawing a fault so a bad
        // call never perturbs the deterministic fault stream.
        return Status::invalidArgument(
            "bad page program: id " + std::to_string(id) + ", " +
            std::to_string(data.size()) + " bytes");
    }
    clock_ += SimTime::transfer(kPageSize, config_.internal_bw_bps);
    stats_.add("pages_written");
    stats_.add("bytes_written", data.size());
    if (fault_plan_ != nullptr) {
        fault::WriteFault f = fault_plan_->drawWrite(id, data.size());
        if (f.power_cut) {
            // The in-flight program lands a prefix, then the device
            // goes dark: this command and every later one fail.
            MITHRIL_RETURN_IF_ERROR(
                store_.write(id, data.first(f.persisted_bytes)));
            power_lost_ = true;
            return Status::unavailable(
                "power cut during program of page " + std::to_string(id));
        }
        if (f.dropped) {
            return Status::ok(); // acked, never reached the media
        }
        if (f.torn) {
            return store_.write(id, data.first(f.persisted_bytes));
        }
    }
    return store_.write(id, data);
}

Status
SsdModel::writePhysical(uint64_t slot, std::span<const uint8_t> data)
{
    if (power_lost_) {
        return Status::unavailable("device power lost");
    }
    if (slot >= store_.physicalSlotCount() || data.size() > kPageSize) {
        // Validate before charging time or drawing a fault so a bad
        // call never perturbs the deterministic fault stream.
        return Status::invalidArgument(
            "bad physical program: slot " + std::to_string(slot) + ", " +
            std::to_string(data.size()) + " bytes");
    }
    clock_ += SimTime::transfer(kPageSize, config_.internal_bw_bps);
    stats_.add("pages_written");
    stats_.add("bytes_written", data.size());
    if (fault_plan_ != nullptr) {
        fault::WriteFault f = fault_plan_->drawWrite(slot, data.size());
        if (f.power_cut) {
            MITHRIL_RETURN_IF_ERROR(
                store_.writePhysical(slot, data.first(f.persisted_bytes)));
            power_lost_ = true;
            return Status::unavailable(
                "power cut during program of slot " + std::to_string(slot));
        }
        if (f.dropped) {
            return Status::ok(); // acked, never reached the media
        }
        if (f.torn) {
            return store_.writePhysical(slot, data.first(f.persisted_bytes));
        }
    }
    return store_.writePhysical(slot, data);
}

Status
SsdModel::readPhysical(uint64_t slot, std::span<const uint8_t> *out)
{
    if (power_lost_) {
        return Status::unavailable("device power lost");
    }
    SimTime busy = SimTime::transfer(kPageSize, config_.internal_bw_bps);
    clock_ += busy;
    stats_.add("pages_read");
    stats_.add("bytes_read", kPageSize);
    stats_.add("overlapped_reads");
    meterTransfer(1, busy, Link::kInternal);
    return store_.readPhysical(slot, out);
}

Status
SsdModel::flushBarrier()
{
    if (power_lost_) {
        return Status::unavailable("device power lost");
    }
    clock_ += config_.flush_latency;
    stats_.add("flushes");
    return Status::ok();
}

/**
 * Moves one page's bytes into @p out (appending), consulting the fault
 * plan. Device-reported failures (timeout, ECC-uncorrectable) are
 * retried in place with backoff + a fresh command latency charged into
 * the clock; silent corruption damages the appended copy. Timing for
 * the *initial* command is the caller's responsibility, which keeps
 * batch/chained/overlapped charging identical to the unfaulted model.
 */
Status
SsdModel::fetchPage(PageId id, std::vector<uint8_t> *out)
{
    if (power_lost_) {
        return Status::unavailable("device power lost");
    }
    std::span<const uint8_t> view;
    MITHRIL_RETURN_IF_ERROR(store_.read(id, &view));
    if (fault_plan_ == nullptr) {
        out->insert(out->end(), view.begin(), view.end());
        return Status::ok();
    }
    unsigned attempts = fault_plan_->config().max_retries + 1;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            clock_ +=
                config_.read_latency + fault_plan_->config().retry_backoff;
            stats_.add("read_retries");
        }
        fault::ReadFault f = fault_plan_->drawRead(id, kPageSize);
        if (f.failed()) {
            continue;
        }
        size_t base = out->size();
        out->insert(out->end(), view.begin(), view.end());
        if (f.corrupts()) {
            fault_plan_->applyCorruption(
                f, std::span<uint8_t>(out->data() + base, kPageSize));
        }
        return Status::ok();
    }
    return Status::dataLoss("page " + std::to_string(id) +
                            " unreadable after " +
                            std::to_string(attempts) + " attempts");
}

Status
SsdModel::readBatch(std::span<const PageId> ids, Link link,
                    std::vector<uint8_t> *out)
{
    std::vector<uint8_t> batch;
    batch.reserve(ids.size() * kPageSize);
    for (PageId id : ids) {
        MITHRIL_RETURN_IF_ERROR(fetchPage(id, &batch));
    }
    SimTime busy = timeBatchRead(ids.size(), link);
    clock_ += busy;
    stats_.add("pages_read", ids.size());
    stats_.add("bytes_read", ids.size() * kPageSize);
    stats_.add("read_commands");
    meterTransfer(ids.size(), busy, link);
    out->insert(out->end(), batch.begin(), batch.end());
    return Status::ok();
}

void
SsdModel::chargeOverlappedRead(uint64_t pages, Link link)
{
    SimTime busy = SimTime::transfer(pages * kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("pages_read", pages);
    stats_.add("bytes_read", pages * kPageSize);
    stats_.add("overlapped_reads");
    meterTransfer(pages, busy, link);
}

Status
SsdModel::readChained(PageId id, Link link, std::vector<uint8_t> *out)
{
    SimTime busy = config_.read_latency +
                   SimTime::transfer(kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("pages_read");
    stats_.add("bytes_read", kPageSize);
    stats_.add("chained_reads");
    meterTransfer(1, busy, link);
    out->clear();
    return fetchPage(id, out);
}

Status
SsdModel::readOverlapped(PageId id, Link link, std::vector<uint8_t> *out)
{
    SimTime busy = SimTime::transfer(kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("pages_read");
    stats_.add("bytes_read", kPageSize);
    stats_.add("overlapped_reads");
    meterTransfer(1, busy, link);
    out->clear();
    return fetchPage(id, out);
}

Status
SsdModel::rereadPage(PageId id, Link link, std::vector<uint8_t> *out)
{
    SimTime backoff = fault_plan_ != nullptr
                          ? fault_plan_->config().retry_backoff
                          : SimTime();
    SimTime busy = backoff + config_.read_latency +
                   SimTime::transfer(kPageSize, bandwidth(link));
    clock_ += busy;
    stats_.add("read_retries");
    stats_.add("pages_read");
    stats_.add("bytes_read", kPageSize);
    meterTransfer(1, busy, link);
    out->clear();
    return fetchPage(id, out);
}

} // namespace mithril::storage
