/**
 * @file
 * Functional (un-timed) page store: the NAND array contents.
 *
 * PageStore holds the bytes; SsdModel layers command timing and link
 * bandwidth modeling on top. Keeping the two separate lets tests exercise
 * data-path correctness without a timing model, and lets the timing model
 * be validated without data.
 */
#ifndef MITHRIL_STORAGE_PAGE_STORE_H
#define MITHRIL_STORAGE_PAGE_STORE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace mithril::storage {

/** In-memory array of fixed-size pages with append-style allocation. */
class PageStore
{
  public:
    PageStore() = default;

    /** Allocates a zero-filled page and returns its id. */
    PageId allocate();

    /** Number of allocated pages. */
    uint64_t pageCount() const { return pages_.size() / kPageSize; }

    /** Total allocated bytes (pageCount * kPageSize). */
    uint64_t sizeBytes() const { return pages_.size(); }

    /**
     * Overwrites page @p id starting at byte 0 with @p data
     * (data.size() <= kPageSize); the remainder keeps its old contents.
     *
     * Returns kInvalidArgument for an out-of-range @p id or an oversized
     * payload, mirroring the read-path contract so the device model can
     * surface bad programs as errors instead of aborting.
     */
    [[nodiscard]] Status write(PageId id, std::span<const uint8_t> data);

    /**
     * Read-only view of a full page.
     *
     * Returns kInvalidArgument for an out-of-range or never-allocated
     * @p id (a corrupt on-storage pointer must surface as an error the
     * degradation ladder can catch, not as UB or an abort).
     */
    Status read(PageId id, std::span<const uint8_t> *out) const;

    /** True iff @p id names an allocated page. */
    bool contains(PageId id) const { return id < pageCount(); }

    /** Mutable view of a full page (for in-place structures). The id
     *  must be valid: writers derive ids from allocate(), never from
     *  on-storage bytes, so this stays an invariant (asserted). */
    std::span<uint8_t> mutablePage(PageId id);

  private:
    // One flat buffer keeps allocation cheap and cache behaviour sane for
    // the multi-GB-scale (scaled-down) datasets the benches ingest.
    std::vector<uint8_t> pages_;
};

} // namespace mithril::storage

#endif // MITHRIL_STORAGE_PAGE_STORE_H
