/**
 * @file
 * Functional (un-timed) page store: the NAND array contents.
 *
 * PageStore holds the bytes; SsdModel layers command timing and link
 * bandwidth modeling on top. Keeping the two separate lets tests exercise
 * data-path correctness without a timing model, and lets the timing model
 * be validated without data.
 *
 * Since the storage-lifecycle work (DESIGN.md §14) the store is an FTL in
 * miniature: callers address *logical* PageIds (dense, monotone, never
 * reused), which map onto *physical* slots grouped into fixed-size
 * segments. Freeing a logical page returns its slot to a free list;
 * allocation reuses the lowest free slot first (deterministic), and the
 * segment cleaner migrates live pages between slots via remap() without
 * the logical id ever changing. Device dumps (saveDeviceImage) are taken
 * in logical order — the map is device metadata, the way a real FTL
 * persists its translation table — so physical migration is invisible to
 * crash recovery.
 */
#ifndef MITHRIL_STORAGE_PAGE_STORE_H
#define MITHRIL_STORAGE_PAGE_STORE_H

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace mithril::storage {

/** Physical slots per segment: the cleaner's unit of reclamation. */
constexpr uint64_t kSegmentPages = 32;

/** Sentinel for "logical id has no physical slot" (freed page). */
constexpr uint64_t kUnmappedSlot = ~0ull;

/** In-memory array of fixed-size pages with append-style allocation. */
class PageStore
{
  public:
    PageStore() = default;

    /** Allocates a zero-filled page and returns its (logical) id.
     *  Logical ids are dense and monotone; the physical slot behind a
     *  fresh id is the lowest free slot, or a new one. */
    PageId allocate();

    /** Number of logical pages ever allocated (monotone; freed ids
     *  still count — logical ids are never reused). */
    uint64_t pageCount() const { return map_.size(); }

    /** Total physical bytes backing the store (slots * kPageSize);
     *  unlike pageCount() this reflects reclamation. */
    uint64_t sizeBytes() const { return slots_.size(); }

    /**
     * Overwrites page @p id starting at byte 0 with @p data
     * (data.size() <= kPageSize); the remainder keeps its old contents.
     *
     * Returns kInvalidArgument for an out-of-range or freed @p id or an
     * oversized payload, mirroring the read-path contract so the device
     * model can surface bad programs as errors instead of aborting.
     */
    [[nodiscard]] Status write(PageId id, std::span<const uint8_t> data);

    /**
     * Read-only view of a full page.
     *
     * Returns kInvalidArgument for an out-of-range, never-allocated, or
     * freed @p id (a corrupt on-storage pointer must surface as an error
     * the degradation ladder can catch, not as UB or an abort).
     */
    Status read(PageId id, std::span<const uint8_t> *out) const;

    /** True iff @p id names a live (allocated, not freed) page. */
    bool contains(PageId id) const
    {
        return id < map_.size() && map_[id] != kUnmappedSlot;
    }

    /** Mutable view of a full page (for in-place structures). The id
     *  must be valid: writers derive ids from allocate(), never from
     *  on-storage bytes, so this stays an invariant (asserted). */
    std::span<uint8_t> mutablePage(PageId id);

    // ---- storage lifecycle (checkpointing + segment GC) --------------

    /** Unmaps logical @p id and returns its physical slot to the free
     *  list. The id stays burned (never reallocated); read/write on it
     *  fail with kInvalidArgument afterwards. */
    [[nodiscard]] Status free(PageId id);

    /** Physical slot behind @p id, or kUnmappedSlot if freed/invalid. */
    uint64_t physicalSlot(PageId id) const
    {
        return id < map_.size() ? map_[id] : kUnmappedSlot;
    }

    /** Takes the lowest free slot strictly below @p limit_slot without
     *  binding it to a logical id (migration destination; the slot is
     *  "in flight" until remap() or freePhysical()). Returns false when
     *  no such slot exists. The slot is zero-filled. */
    bool allocatePhysicalBelow(uint64_t limit_slot, uint64_t *slot);

    /** Returns an in-flight physical slot (failed migration) to the
     *  free list. */
    void freePhysical(uint64_t slot);

    /** Raw write/read on a physical slot (cleaner copy + verify path;
     *  normal I/O goes through logical ids). */
    [[nodiscard]] Status writePhysical(uint64_t slot,
                                       std::span<const uint8_t> data);
    Status readPhysical(uint64_t slot,
                        std::span<const uint8_t> *out) const;

    /** Retargets live logical @p id onto in-flight @p slot and frees the
     *  old slot. The logical id — and therefore every on-storage pointer
     *  and journal record naming it — is unchanged. */
    [[nodiscard]] Status remap(PageId id, uint64_t slot);

    // ---- occupancy (cleaner policy inputs + gauges) -------------------

    uint64_t physicalSlotCount() const
    {
        return slots_.size() / kPageSize;
    }
    uint64_t freeSlotCount() const { return free_slots_.size(); }
    uint64_t segmentCount() const { return seg_live_.size(); }
    /** Live (non-free) slots inside segment @p seg. */
    uint32_t segmentLive(uint64_t seg) const
    {
        return seg < seg_live_.size() ? seg_live_[seg] : 0;
    }
    /** Segments with at least one live slot. */
    uint64_t segmentsLive() const;
    /** Cumulative count of segments that drained to fully-free. */
    uint64_t segmentsFreed() const { return segments_freed_; }

  private:
    uint64_t takeSlot();
    void releaseSlot(uint64_t slot);

    // Physical slot array; one flat buffer keeps allocation cheap and
    // cache behaviour sane for the multi-GB-scale (scaled-down) datasets
    // the benches ingest.
    std::vector<uint8_t> slots_;
    // Logical id -> physical slot (kUnmappedSlot once freed).
    std::vector<uint64_t> map_;
    // Free physical slots, reused lowest-first so allocation order is a
    // pure function of the free/alloc history (determinism gates).
    std::set<uint64_t> free_slots_;
    // Live-slot count per segment (slot / kSegmentPages).
    std::vector<uint32_t> seg_live_;
    uint64_t segments_freed_ = 0;
};

} // namespace mithril::storage

#endif // MITHRIL_STORAGE_PAGE_STORE_H
