#include "storage/journal.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bits.h"
#include "common/hash.h"

namespace mithril::storage {

namespace {

constexpr uint32_t kSuperMagic = 0x3142534du;    // "MSB1"
constexpr uint32_t kJournalMagic = 0x314c4a4du;  // "MJL1"
constexpr uint32_t kSnapshotMagic = 0x314e534du; // "MSN1"
constexpr uint32_t kLayoutVersion = 2;           // v2: snapshot cursor

constexpr size_t kHeaderBytes = 20;
constexpr size_t kRecordBytes = 44;
constexpr size_t kRecordsPerPage = (kPageSize - kHeaderBytes) / kRecordBytes;

constexpr size_t kSnapshotHeaderBytes = 32;
constexpr size_t kSnapshotEntryBytes = 28;
constexpr size_t kSnapshotEntriesPerPage =
    (kPageSize - kSnapshotHeaderBytes) / kSnapshotEntryBytes;

// Record kinds; kind 0 is deliberately invalid so a never-written
// (zero-filled) record slot terminates replay without relying on the
// CRC check alone.
constexpr uint32_t kPageCommit = 1;
constexpr uint32_t kLink = 2;
constexpr uint32_t kSeal = 3;
constexpr uint32_t kBaseLink = 4;
constexpr uint32_t kMigrate = 5;

// Superblock flag bits.
constexpr uint64_t kFlagSealed = 1;   // store is complete and immutable
constexpr uint64_t kFlagChained = 2;  // chain opens with a base link

// Base links recurse strictly down the generations (validated), so any
// chain deeper than this is a crafted image, not a real history.
constexpr int kMaxChainDepth = 64;

/** Superblock slot page for @p epoch (ping-pong between pages 0/1). */
PageId
superSlot(uint64_t epoch)
{
    return (epoch - 1) % 2;
}

/** Seed binding record CRCs to the journal incarnation. */
uint32_t
generationSeed(uint64_t generation)
{
    return crc32(&generation, sizeof(generation));
}

void
encodeRecord(uint8_t *slot, uint32_t kind, uint64_t arg,
             uint32_t page_crc, uint64_t lines, uint64_t raw_bytes,
             uint64_t seq, uint64_t generation)
{
    std::vector<uint8_t> buf;
    buf.reserve(kRecordBytes);
    putLe(buf, kind);
    putLe(buf, arg);
    putLe(buf, page_crc);
    putLe(buf, lines);
    putLe(buf, raw_bytes);
    putLe(buf, seq);
    putLe(buf, crc32(buf.data(), buf.size(), generationSeed(generation)));
    MITHRIL_ASSERT(buf.size() == kRecordBytes);
    std::memcpy(slot, buf.data(), kRecordBytes);
}

} // namespace

void
Journal::bindMetrics(obs::MetricsRegistry *metrics)
{
    if (metrics != nullptr) {
        obs_records_ = &metrics->counter("journal.records");
        obs_page_writes_ = &metrics->counter("journal.page_writes");
        obs_reopens_ = &metrics->counter("journal.reopens");
        obs_checkpoints_ = &metrics->counter("journal.checkpoints");
        obs_generation_ = &metrics->gauge("journal.generation");
        obs_chain_records_ = &metrics->gauge("journal.chain_records");
        obs_snapshot_records_ =
            &metrics->gauge("journal.snapshot_records");
        updateObsGauges();
    } else {
        obs_records_ = nullptr;
        obs_page_writes_ = nullptr;
        obs_reopens_ = nullptr;
        obs_checkpoints_ = nullptr;
        obs_generation_ = nullptr;
        obs_chain_records_ = nullptr;
        obs_snapshot_records_ = nullptr;
    }
}

void
Journal::updateObsGauges()
{
    if (obs_generation_ != nullptr) {
        obs_generation_->set(static_cast<double>(generation_));
    }
    if (obs_chain_records_ != nullptr) {
        obs_chain_records_->set(static_cast<double>(chainRecords()));
    }
    if (obs_snapshot_records_ != nullptr) {
        obs_snapshot_records_->set(
            static_cast<double>(snapshotRecords()));
    }
}

void
Journal::initPageImage(std::vector<uint8_t> *image, uint32_t seq) const
{
    image->clear();
    image->reserve(kPageSize);
    putLe(*image, kJournalMagic);
    putLe(*image, seq);
    putLe(*image, generation_);
    putLe(*image, crc32(image->data(), image->size()));
    MITHRIL_ASSERT(image->size() == kHeaderBytes);
    image->resize(kPageSize, 0);
}

Status
Journal::writeCurrentPage()
{
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    return ssd_->writePage(cur_, cur_image_);
}

Status
Journal::writeSuperblock(uint64_t epoch, uint64_t flags)
{
    std::vector<uint8_t> sb;
    sb.reserve(kPageSize);
    putLe(sb, kSuperMagic);
    putLe(sb, kLayoutVersion);
    putLe(sb, epoch);
    putLe(sb, head_);
    putLe(sb, generation_);
    putLe(sb, snapshot_head_);
    putLe(sb, snapshotRecords());
    putLe(sb, flags);
    putLe(sb, crc32(sb.data(), sb.size()));
    sb.resize(kPageSize, 0);
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    MITHRIL_RETURN_IF_ERROR(ssd_->writePage(superSlot(epoch), sb));
    epoch_ = epoch;
    return Status::ok();
}

Status
Journal::startFreshChain()
{
    head_ = cur_ = ssd_->allocate();
    chain_pages_.push_back(head_);
    cur_seq_ = 0;
    cur_count_ = 0;
    next_seq_ = 1;
    chained_ = false;
    initPageImage(&cur_image_, cur_seq_);
    return writeCurrentPage();
}

Status
Journal::format()
{
    MITHRIL_ASSERT(!formatted());
    // The layout owns the device's first pages; formatting anything but
    // an empty store would silently overlay data pages.
    MITHRIL_ASSERT(ssd_->store().pageCount() == 0);
    PageId slot_a = ssd_->allocate();
    PageId slot_b = ssd_->allocate();
    MITHRIL_ASSERT(slot_a == 0 && slot_b == 1);
    generation_ = 1;
    snapshot_head_ = kInvalidPage;
    base_records_ = 0;
    committed_.clear();
    chain_pages_.clear();
    snapshot_pages_.clear();
    // Journal page first, superblock second: a cut between the two
    // leaves no valid superblock, which replays as an empty store.
    MITHRIL_RETURN_IF_ERROR(startFreshChain());
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(/*epoch=*/1, /*flags=*/0));
    updateObsGauges();
    return ssd_->flushBarrier();
}

Status
Journal::writeSnapshot(PageId *head_out)
{
    *head_out = kInvalidPage;
    snapshot_pages_.clear();
    if (committed_.empty()) {
        return Status::ok();
    }
    // Allocate the whole list first so every header can name its
    // successor; pages are fresh, so nothing durable is touched until
    // the superblock that publishes them.
    size_t n_pages = (committed_.size() + kSnapshotEntriesPerPage - 1) /
                     kSnapshotEntriesPerPage;
    std::vector<PageId> ids;
    ids.reserve(n_pages);
    for (size_t i = 0; i < n_pages; ++i) {
        ids.push_back(ssd_->allocate());
    }
    size_t next_entry = 0;
    for (size_t pg = 0; pg < n_pages; ++pg) {
        size_t count = std::min(kSnapshotEntriesPerPage,
                                committed_.size() - next_entry);
        std::vector<uint8_t> image;
        image.reserve(kPageSize);
        putLe(image, kSnapshotMagic);
        putLe(image, static_cast<uint32_t>(pg));
        putLe(image, generation_);
        putLe(image, static_cast<uint32_t>(count));
        putLe(image, pg + 1 < n_pages ? ids[pg + 1] : kInvalidPage);
        putLe(image, crc32(image.data(), image.size()));
        MITHRIL_ASSERT(image.size() == kSnapshotHeaderBytes);
        for (size_t i = 0; i < count; ++i) {
            const CommittedPage &cp = committed_[next_entry++];
            putLe(image, cp.page);
            putLe(image, cp.crc);
            putLe(image, cp.lines);
            putLe(image, cp.raw_bytes);
        }
        image.resize(kPageSize, 0);
        ++page_writes_;
        if (obs_page_writes_ != nullptr) {
            obs_page_writes_->add();
        }
        MITHRIL_RETURN_IF_ERROR(ssd_->writePage(ids[pg], image));
    }
    snapshot_pages_ = ids;
    *head_out = ids[0];
    return Status::ok();
}

Status
Journal::checkpoint(bool sealed)
{
    MITHRIL_ASSERT(formatted());
    // Everything below writes only *fresh* pages until the barrier; the
    // old chain and snapshot stay durable and reachable through the
    // best superblock, so a power cut anywhere in here replays the
    // pre-checkpoint state unchanged.
    std::vector<PageId> old_chain;
    old_chain.swap(chain_pages_);
    std::vector<PageId> old_snapshot;
    old_snapshot.swap(snapshot_pages_);
    // 1. Snapshot: the committed page table in commit order, renumbered
    //    1..S — the snapshot *is* the first S logical records now.
    for (size_t i = 0; i < committed_.size(); ++i) {
        committed_[i].record_seq = i + 1;
    }
    base_records_ = committed_.size();
    PageId snap_head = kInvalidPage;
    MITHRIL_RETURN_IF_ERROR(writeSnapshot(&snap_head));
    snapshot_head_ = snap_head;
    // 2. Fresh empty chain head (chain-local seq restarts at 1).
    MITHRIL_RETURN_IF_ERROR(startFreshChain());
    // 3. One epoch bump publishes {snapshot, new head} atomically: a
    //    cut lands on the old superblock or the new one, never a mix.
    //    Truncation drops any seal *record* with the old chain, so a
    //    sealed store keeps its seal through the superblock *flag*.
    MITHRIL_RETURN_IF_ERROR(
        writeSuperblock(epoch_ + 1, sealed ? kFlagSealed : 0));
    // 4. The barrier is the commit point of the whole truncation.
    MITHRIL_RETURN_IF_ERROR(ssd_->flushBarrier());
    // 5. Only now is the old footprint unreachable: reclaim it.
    for (PageId p : old_chain) {
        MITHRIL_RETURN_IF_ERROR(ssd_->store().free(p));
    }
    for (PageId p : old_snapshot) {
        MITHRIL_RETURN_IF_ERROR(ssd_->store().free(p));
    }
    ++checkpoints_;
    if (obs_checkpoints_ != nullptr) {
        obs_checkpoints_->add();
    }
    updateObsGauges();
    return Status::ok();
}

Status
Journal::reopen(const ReplayResult &rr, uint64_t accepted_records)
{
    MITHRIL_ASSERT(!formatted());
    MITHRIL_ASSERT(!rr.sealed);
    // A crash before format() completed can leave the superblock slots
    // unallocated; reserve them so the layout invariant (pages 0..1 are
    // superblock slots) holds for the new generation too.
    while (ssd_->store().pageCount() < 2) {
        (void)ssd_->allocate();
    }
    generation_ = rr.found ? rr.generation + 1 : 1;
    committed_.clear();
    for (const CommittedPage &cp : rr.pages) {
        if (cp.record_seq <= accepted_records) {
            committed_.push_back(cp);
        }
    }
    chain_pages_.clear();
    snapshot_pages_.clear();
    if (rr.found && rr.snapshot_head != kInvalidPage) {
        // Snapshot-bearing history: a base link can graft only a chain,
        // not {snapshot + chain}, so collapse the survivors into a
        // fresh snapshot under the new generation. This keeps the
        // invariant that a chain building on a snapshot never contains
        // base links — and it is also what bounds replay across crash
        // cycles: older generations fold into the snapshot instead of
        // chaining forever.
        for (size_t i = 0; i < committed_.size(); ++i) {
            committed_[i].record_seq = i + 1;
        }
        base_records_ = committed_.size();
        PageId snap_head = kInvalidPage;
        MITHRIL_RETURN_IF_ERROR(writeSnapshot(&snap_head));
        snapshot_head_ = snap_head;
        MITHRIL_RETURN_IF_ERROR(startFreshChain());
        MITHRIL_RETURN_IF_ERROR(
            writeSuperblock(rr.epoch + 1, /*flags=*/0));
        ++reopens_;
        if (obs_reopens_ != nullptr) {
            obs_reopens_->add();
        }
        updateObsGauges();
        MITHRIL_RETURN_IF_ERROR(ssd_->flushBarrier());
        // The old chain + snapshot became unreachable at the bump;
        // reclaim every page the replay walked.
        for (PageId p : rr.chain_pages) {
            MITHRIL_RETURN_IF_ERROR(ssd_->store().free(p));
        }
        for (PageId p : rr.snapshot_pages) {
            MITHRIL_RETURN_IF_ERROR(ssd_->store().free(p));
        }
        return Status::ok();
    }
    snapshot_head_ = kInvalidPage;
    chained_ = rr.found && accepted_records > 0;
    // Chain-local seqs continue past the grafted base tree, so global
    // record numbering stays base + chain-local on this path too.
    base_records_ = chained_ ? accepted_records : 0;
    head_ = cur_ = ssd_->allocate();
    chain_pages_.push_back(head_);
    cur_seq_ = 0;
    cur_count_ = 0;
    next_seq_ = 1;
    initPageImage(&cur_image_, cur_seq_);
    if (chained_) {
        // First record of the new chain: the base link grafting exactly
        // accepted_records logical records of the old chain tree (the
        // reopen-time verification cut). Its CRC is seeded with the NEW
        // generation, so old-generation bytes can never forge it.
        encodeRecord(cur_image_.data() + kHeaderBytes, kBaseLink,
                     rr.head, 0, rr.generation, accepted_records,
                     next_seq_, generation_);
        ++next_seq_;
        ++cur_count_;
        ++records_appended_;
        if (obs_records_ != nullptr) {
            obs_records_->add();
        }
    }
    // New chain head first, superblock second: a cut between the two
    // leaves the old superblock pointing at the old chain, and the old
    // pages were never rewritten, so the pre-reopen state replays
    // unchanged.
    MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(
        (rr.found ? rr.epoch : 0) + 1,
        chained_ ? kFlagChained : 0));
    ++reopens_;
    if (obs_reopens_ != nullptr) {
        obs_reopens_->add();
    }
    updateObsGauges();
    return ssd_->flushBarrier();
}

Status
Journal::appendRecord(uint32_t kind, uint64_t arg, uint32_t page_crc,
                      uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_ASSERT(formatted());
    if (cur_count_ == kRecordsPerPage - 1 && kind != kLink) {
        // Last slot is reserved for the link record that publishes the
        // next page. Ordering is crash-safe in every window: the new
        // page's header lands before the link that makes it reachable.
        PageId next = ssd_->allocate();
        std::vector<uint8_t> next_image;
        initPageImage(&next_image, cur_seq_ + 1);
        std::vector<uint8_t> saved = cur_image_;
        PageId saved_page = cur_;
        size_t saved_count = cur_count_;
        cur_ = next;
        chain_pages_.push_back(next);
        cur_image_ = next_image;
        ++cur_seq_;
        cur_count_ = 0;
        MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
        // Link record goes into the *old* page.
        encodeRecord(saved.data() + kHeaderBytes +
                         saved_count * kRecordBytes,
                     kLink, next, 0, 0, 0, next_seq_, generation_);
        ++next_seq_;
        ++records_appended_;
        if (obs_records_ != nullptr) {
            obs_records_->add();
        }
        ++page_writes_;
        if (obs_page_writes_ != nullptr) {
            obs_page_writes_->add();
        }
        MITHRIL_RETURN_IF_ERROR(ssd_->writePage(saved_page, saved));
    }
    encodeRecord(cur_image_.data() + kHeaderBytes +
                     cur_count_ * kRecordBytes,
                 kind, arg, page_crc, lines, raw_bytes, next_seq_,
                 generation_);
    ++next_seq_;
    ++cur_count_;
    ++records_appended_;
    if (obs_records_ != nullptr) {
        obs_records_->add();
    }
    if (obs_chain_records_ != nullptr) {
        obs_chain_records_->set(static_cast<double>(chainRecords()));
    }
    return writeCurrentPage();
}

Status
Journal::appendPageCommit(PageId page, uint32_t page_crc, uint64_t lines,
                          uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kPageCommit, page, page_crc, lines, raw_bytes));
    // The commit record is the newest chain-local record; its global
    // replay position counts the snapshot / base tree before the chain.
    committed_.push_back(CommittedPage{
        .page = page,
        .crc = page_crc,
        .lines = lines,
        .raw_bytes = raw_bytes,
        .record_seq = base_records_ + (next_seq_ - 1),
    });
    return ssd_->flushBarrier();
}

Status
Journal::appendMigrate(PageId page, uint32_t page_crc, uint64_t old_slot,
                       uint64_t new_slot)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kMigrate, page, page_crc, old_slot, new_slot));
    return ssd_->flushBarrier();
}

Status
Journal::appendSeal(uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kSeal, 0, 0, lines, raw_bytes));
    // The seal record alone already replays as sealed; the follow-up
    // superblock just lets a mount skip the inference. Keep the chained
    // bit so the sealed superblock still describes the chain shape.
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(
        epoch_ + 1, kFlagSealed | (chained_ ? kFlagChained : 0)));
    return ssd_->flushBarrier();
}

Status
Journal::replay(ReplayResult *out)
{
    *out = ReplayResult{};
    const PageStore &store = ssd_->store();

    // Pick the valid superblock with the highest epoch.
    uint64_t best_epoch = 0;
    uint64_t journal_head = kInvalidPage;
    uint64_t generation = 0;
    PageId snapshot_head = kInvalidPage;
    uint64_t snapshot_expected = 0;
    for (PageId slot = 0; slot < 2 && slot < store.pageCount(); ++slot) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(slot, Link::kInternal, &page);
        if (!s.isOk()) {
            continue; // unreadable slot: fall back to the other one
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kSuperMagic ||
            getLe<uint32_t>(p + 4) != kLayoutVersion) {
            continue;
        }
        if (getLe<uint32_t>(p + 56) != crc32(p, 56)) {
            continue; // torn superblock program
        }
        uint64_t epoch = getLe<uint64_t>(p + 8);
        if (epoch > best_epoch) {
            best_epoch = epoch;
            journal_head = getLe<uint64_t>(p + 16);
            generation = getLe<uint64_t>(p + 24);
            snapshot_head = getLe<uint64_t>(p + 32);
            snapshot_expected = getLe<uint64_t>(p + 40);
            out->sealed = (getLe<uint64_t>(p + 48) & kFlagSealed) != 0;
        }
    }
    if (best_epoch == 0) {
        // Crash before format completed: an empty store is the whole
        // durable state.
        out->sealed = false;
        return Status::ok();
    }
    out->found = true;
    out->epoch = best_epoch;
    out->head = journal_head;
    out->snapshot_head = snapshot_head;
    out->generation = generation;

    // Load the snapshot first: its entries are the first base_records
    // logical records. The snapshot was durable before the superblock
    // that names it, so damage here means a lying device — and because
    // the chain builds on the snapshot, nothing newer may replay past
    // a shortfall (prefix semantics, mirroring base-link budgets).
    if (snapshot_head != kInvalidPage &&
        !replaySnapshot(snapshot_head, generation, snapshot_expected,
                        out)) {
        return Status::ok();
    }

    // Walk the newest chain (recursing through base links into older
    // generations first, so records land in logical order); stop at the
    // first record that fails validation — everything before it was
    // covered by a durability barrier.
    bool saw_seal = false;
    replayChain(journal_head, generation, /*ceiling=*/UINT64_MAX,
                /*depth=*/0, out, &saw_seal);
    // Sealed if either the seal record survived or the sealed
    // superblock did (a lying device can tear the record yet ack it;
    // the superblock still marks the store immutable).
    out->sealed = out->sealed || saw_seal;
    return Status::ok();
}

bool
Journal::replaySnapshot(PageId head, uint64_t generation,
                        uint64_t expected, ReplayResult *out)
{
    PageId page_id = head;
    uint32_t expect_seq = 0;
    while (page_id != kInvalidPage) {
        std::vector<uint8_t> page;
        if (!ssd_->readChained(page_id, Link::kInternal, &page).isOk()) {
            return false;
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kSnapshotMagic ||
            getLe<uint32_t>(p + 4) != expect_seq ||
            getLe<uint64_t>(p + 8) != generation ||
            getLe<uint32_t>(p + 28) != crc32(p, 28)) {
            return false;
        }
        uint32_t count = getLe<uint32_t>(p + 16);
        PageId next = getLe<uint64_t>(p + 20);
        if (count == 0 || count > kSnapshotEntriesPerPage ||
            out->snapshot_records + count > expected) {
            // Empty or overfull pages are never written, and every page
            // must make progress toward the declared total — which also
            // bounds the walk against crafted cycles.
            return false;
        }
        for (uint32_t i = 0; i < count; ++i) {
            const uint8_t *e = p + kSnapshotHeaderBytes +
                               static_cast<size_t>(i) * kSnapshotEntryBytes;
            ++out->records;
            ++out->snapshot_records;
            out->pages.push_back(CommittedPage{
                .page = getLe<uint64_t>(e),
                .crc = getLe<uint32_t>(e + 8),
                .lines = getLe<uint64_t>(e + 12),
                .raw_bytes = getLe<uint64_t>(e + 20),
                .record_seq = out->records,
            });
        }
        out->snapshot_pages.push_back(page_id);
        ++out->journal_pages;
        page_id = next;
        ++expect_seq;
    }
    return out->snapshot_records == expected;
}

void
Journal::replayChain(PageId head, uint64_t chain_generation,
                     uint64_t ceiling, int depth, ReplayResult *out,
                     bool *saw_seal)
{
    if (depth > kMaxChainDepth) {
        return; // crafted image: refuse unbounded recursion
    }
    ++out->generations;
    uint32_t seed = generationSeed(chain_generation);
    PageId page_id = head;
    uint32_t expect_page_seq = 0;
    uint64_t expect_seq = 1; // chain-local record seq
    while (page_id != kInvalidPage && !*saw_seal) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(page_id, Link::kInternal, &page);
        if (!s.isOk()) {
            return;
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kJournalMagic ||
            getLe<uint32_t>(p + 4) != expect_page_seq ||
            getLe<uint64_t>(p + 8) != chain_generation ||
            getLe<uint32_t>(p + 16) != crc32(p, 16)) {
            return;
        }
        ++out->journal_pages;
        out->chain_pages.push_back(page_id);
        PageId next_page = kInvalidPage;
        for (size_t i = 0; i < kRecordsPerPage; ++i) {
            if (out->records >= ceiling) {
                return; // base budget reached: the clean reopen cut
            }
            const uint8_t *r = p + kHeaderBytes + i * kRecordBytes;
            uint32_t kind = getLe<uint32_t>(r);
            if (kind != kPageCommit && kind != kLink &&
                kind != kSeal && kind != kBaseLink && kind != kMigrate) {
                return;
            }
            if (getLe<uint32_t>(r + 40) != crc32(r, 40, seed)) {
                return; // torn append: the newest record is damaged
            }
            if (getLe<uint64_t>(r + 32) != expect_seq) {
                return; // stale bytes from an aborted rewrite
            }
            if (kind == kBaseLink) {
                // Only ever valid as the very first record of a chain,
                // pointing strictly down the generations, with a
                // non-empty budget.
                uint64_t base_gen = getLe<uint64_t>(r + 16);
                uint64_t budget = getLe<uint64_t>(r + 24);
                if (expect_seq != 1 || base_gen == 0 ||
                    base_gen >= chain_generation || budget == 0) {
                    return;
                }
                uint64_t sub_ceiling =
                    std::min(out->records + budget, ceiling);
                replayChain(getLe<uint64_t>(r + 4), base_gen,
                            sub_ceiling, depth + 1, out, saw_seal);
                if (*saw_seal || out->records != sub_ceiling) {
                    // The base tree's clean prefix fell short of its
                    // budget (or was crafted-sealed): nothing in this
                    // newer generation may build on it.
                    return;
                }
                if (out->records >= ceiling) {
                    return; // the cut lands inside the base tree
                }
            }
            ++expect_seq;
            ++out->records;
            if (kind == kPageCommit) {
                out->pages.push_back(CommittedPage{
                    .page = getLe<uint64_t>(r + 4),
                    .crc = getLe<uint32_t>(r + 12),
                    .lines = getLe<uint64_t>(r + 16),
                    .raw_bytes = getLe<uint64_t>(r + 24),
                    .record_seq = out->records,
                });
            } else if (kind == kLink) {
                next_page = getLe<uint64_t>(r + 4);
                break;
            } else if (kind == kSeal) {
                *saw_seal = true;
                break;
            }
            // kMigrate: validated and counted, but it changes no
            // logical state — the translation map is device metadata.
        }
        page_id = next_page;
        ++expect_page_seq;
    }
}

void
Journal::serialize(std::vector<uint8_t> *out) const
{
    putLe(*out, head_);
    putLe(*out, cur_);
    putLe(*out, static_cast<uint64_t>(cur_seq_));
    putLe(*out, static_cast<uint64_t>(cur_count_));
    putLe(*out, next_seq_);
    putLe(*out, epoch_);
    putLe(*out, generation_);
    putLe(*out, chained_ ? uint64_t{1} : uint64_t{0});
    putLe(*out, snapshot_head_);
    putLe(*out, base_records_);
    putLe(*out, checkpoints_);
    putLe(*out, static_cast<uint64_t>(committed_.size()));
    for (const CommittedPage &cp : committed_) {
        putLe(*out, cp.page);
        putLe(*out, static_cast<uint64_t>(cp.crc));
        putLe(*out, cp.lines);
        putLe(*out, cp.raw_bytes);
        putLe(*out, cp.record_seq);
    }
    putLe(*out, static_cast<uint64_t>(chain_pages_.size()));
    for (PageId p : chain_pages_) {
        putLe(*out, p);
    }
    putLe(*out, static_cast<uint64_t>(snapshot_pages_.size()));
    for (PageId p : snapshot_pages_) {
        putLe(*out, p);
    }
}

Status
Journal::deserialize(const uint8_t *data, size_t len, size_t *consumed)
{
    constexpr size_t kFixedBytes = 11 * sizeof(uint64_t);
    if (len < kFixedBytes + sizeof(uint64_t)) {
        return Status::corruptData("journal cursor truncated");
    }
    head_ = getLe<uint64_t>(data);
    cur_ = getLe<uint64_t>(data + 8);
    cur_seq_ = static_cast<uint32_t>(getLe<uint64_t>(data + 16));
    cur_count_ = static_cast<size_t>(getLe<uint64_t>(data + 24));
    next_seq_ = getLe<uint64_t>(data + 32);
    // Restores the persisted cursor; only the chain-head minters may
    // move the epoch / snapshot cursor otherwise.
    // mithril-lint: allow(checkpoint-epoch) restoring a persisted cursor
    epoch_ = getLe<uint64_t>(data + 40);
    // Restores the persisted stamp; only format()/reopen() mint one.
    // mithril-lint: allow(generation-bump) restoring a persisted cursor
    generation_ = getLe<uint64_t>(data + 48);
    chained_ = (getLe<uint64_t>(data + 56) & 1) != 0;
    // mithril-lint: allow(checkpoint-epoch) restoring a persisted cursor
    snapshot_head_ = getLe<uint64_t>(data + 64);
    base_records_ = getLe<uint64_t>(data + 72);
    checkpoints_ = getLe<uint64_t>(data + 80);
    size_t pos = kFixedBytes;
    uint64_t n_committed = getLe<uint64_t>(data + pos);
    pos += sizeof(uint64_t);
    if (n_committed > (len - pos) / (5 * sizeof(uint64_t))) {
        return Status::corruptData("journal cursor: bad table size");
    }
    committed_.clear();
    committed_.reserve(n_committed);
    for (uint64_t i = 0; i < n_committed; ++i) {
        CommittedPage cp;
        cp.page = getLe<uint64_t>(data + pos);
        cp.crc = static_cast<uint32_t>(getLe<uint64_t>(data + pos + 8));
        cp.lines = getLe<uint64_t>(data + pos + 16);
        cp.raw_bytes = getLe<uint64_t>(data + pos + 24);
        cp.record_seq = getLe<uint64_t>(data + pos + 32);
        committed_.push_back(cp);
        pos += 5 * sizeof(uint64_t);
    }
    for (std::vector<PageId> *list : {&chain_pages_, &snapshot_pages_}) {
        if (len - pos < sizeof(uint64_t)) {
            return Status::corruptData("journal cursor truncated");
        }
        uint64_t n = getLe<uint64_t>(data + pos);
        pos += sizeof(uint64_t);
        if (n > (len - pos) / sizeof(uint64_t)) {
            return Status::corruptData("journal cursor: bad page list");
        }
        list->clear();
        list->reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
            list->push_back(getLe<uint64_t>(data + pos));
            pos += sizeof(uint64_t);
        }
    }
    updateObsGauges();
    *consumed = pos;
    if (!formatted()) {
        cur_image_.clear();
        return Status::ok();
    }
    if (cur_count_ > kRecordsPerPage) {
        return Status::corruptData("journal cursor: bad record count");
    }
    std::span<const uint8_t> view;
    MITHRIL_RETURN_IF_ERROR(ssd_->store().read(cur_, &view));
    cur_image_.assign(view.begin(), view.end());
    return Status::ok();
}

} // namespace mithril::storage
