#include "storage/journal.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bits.h"
#include "common/hash.h"

namespace mithril::storage {

namespace {

constexpr uint32_t kSuperMagic = 0x3142534du;    // "MSB1"
constexpr uint32_t kJournalMagic = 0x314c4a4du;  // "MJL1"
constexpr uint32_t kLayoutVersion = 1;

constexpr size_t kHeaderBytes = 20;
constexpr size_t kRecordBytes = 44;
constexpr size_t kRecordsPerPage = (kPageSize - kHeaderBytes) / kRecordBytes;

// Record kinds; kind 0 is deliberately invalid so a never-written
// (zero-filled) record slot terminates replay without relying on the
// CRC check alone.
constexpr uint32_t kPageCommit = 1;
constexpr uint32_t kLink = 2;
constexpr uint32_t kSeal = 3;
constexpr uint32_t kBaseLink = 4;

// Superblock flag bits.
constexpr uint64_t kFlagSealed = 1;   // store is complete and immutable
constexpr uint64_t kFlagChained = 2;  // chain opens with a base link

// Base links recurse strictly down the generations (validated), so any
// chain deeper than this is a crafted image, not a real history.
constexpr int kMaxChainDepth = 64;

/** Superblock slot page for @p epoch (ping-pong between pages 0/1). */
PageId
superSlot(uint64_t epoch)
{
    return (epoch - 1) % 2;
}

/** Seed binding record CRCs to the journal incarnation. */
uint32_t
generationSeed(uint64_t generation)
{
    return crc32(&generation, sizeof(generation));
}

void
encodeRecord(uint8_t *slot, uint32_t kind, uint64_t arg,
             uint32_t page_crc, uint64_t lines, uint64_t raw_bytes,
             uint64_t seq, uint64_t generation)
{
    std::vector<uint8_t> buf;
    buf.reserve(kRecordBytes);
    putLe(buf, kind);
    putLe(buf, arg);
    putLe(buf, page_crc);
    putLe(buf, lines);
    putLe(buf, raw_bytes);
    putLe(buf, seq);
    putLe(buf, crc32(buf.data(), buf.size(), generationSeed(generation)));
    MITHRIL_ASSERT(buf.size() == kRecordBytes);
    std::memcpy(slot, buf.data(), kRecordBytes);
}

} // namespace

void
Journal::bindMetrics(obs::MetricsRegistry *metrics)
{
    if (metrics != nullptr) {
        obs_records_ = &metrics->counter("journal.records");
        obs_page_writes_ = &metrics->counter("journal.page_writes");
        obs_reopens_ = &metrics->counter("journal.reopens");
        obs_generation_ = &metrics->gauge("journal.generation");
        obs_generation_->set(static_cast<double>(generation_));
    } else {
        obs_records_ = nullptr;
        obs_page_writes_ = nullptr;
        obs_reopens_ = nullptr;
        obs_generation_ = nullptr;
    }
}

void
Journal::initPageImage(std::vector<uint8_t> *image, uint32_t seq) const
{
    image->clear();
    image->reserve(kPageSize);
    putLe(*image, kJournalMagic);
    putLe(*image, seq);
    putLe(*image, generation_);
    putLe(*image, crc32(image->data(), image->size()));
    MITHRIL_ASSERT(image->size() == kHeaderBytes);
    image->resize(kPageSize, 0);
}

Status
Journal::writeCurrentPage()
{
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    return ssd_->writePage(cur_, cur_image_);
}

Status
Journal::writeSuperblock(uint64_t epoch, uint64_t flags)
{
    std::vector<uint8_t> sb;
    sb.reserve(kPageSize);
    putLe(sb, kSuperMagic);
    putLe(sb, kLayoutVersion);
    putLe(sb, epoch);
    putLe(sb, head_);
    putLe(sb, generation_);
    putLe(sb, flags);
    putLe(sb, crc32(sb.data(), sb.size()));
    sb.resize(kPageSize, 0);
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    MITHRIL_RETURN_IF_ERROR(ssd_->writePage(superSlot(epoch), sb));
    epoch_ = epoch;
    return Status::ok();
}

Status
Journal::format()
{
    MITHRIL_ASSERT(!formatted());
    // The layout owns the device's first pages; formatting anything but
    // an empty store would silently overlay data pages.
    MITHRIL_ASSERT(ssd_->store().pageCount() == 0);
    PageId slot_a = ssd_->allocate();
    PageId slot_b = ssd_->allocate();
    MITHRIL_ASSERT(slot_a == 0 && slot_b == 1);
    head_ = cur_ = ssd_->allocate();
    cur_seq_ = 0;
    cur_count_ = 0;
    next_seq_ = 1;
    generation_ = 1;
    chained_ = false;
    if (obs_generation_ != nullptr) {
        obs_generation_->set(static_cast<double>(generation_));
    }
    initPageImage(&cur_image_, cur_seq_);
    // Journal page first, superblock second: a cut between the two
    // leaves no valid superblock, which replays as an empty store.
    MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(/*epoch=*/1, /*flags=*/0));
    return ssd_->flushBarrier();
}

Status
Journal::reopen(const ReplayResult &rr, uint64_t accepted_records)
{
    MITHRIL_ASSERT(!formatted());
    MITHRIL_ASSERT(!rr.sealed);
    // A crash before format() completed can leave the superblock slots
    // unallocated; reserve them so the layout invariant (pages 0..1 are
    // superblock slots) holds for the new generation too.
    while (ssd_->store().pageCount() < 2) {
        (void)ssd_->allocate();
    }
    head_ = cur_ = ssd_->allocate();
    cur_seq_ = 0;
    cur_count_ = 0;
    next_seq_ = 1;
    generation_ = rr.found ? rr.generation + 1 : 1;
    chained_ = rr.found && accepted_records > 0;
    initPageImage(&cur_image_, cur_seq_);
    if (chained_) {
        // First record of the new chain: the base link grafting exactly
        // accepted_records logical records of the old chain tree (the
        // reopen-time verification cut). Its CRC is seeded with the NEW
        // generation, so old-generation bytes can never forge it.
        encodeRecord(cur_image_.data() + kHeaderBytes, kBaseLink,
                     rr.head, 0, rr.generation, accepted_records,
                     next_seq_, generation_);
        ++next_seq_;
        ++cur_count_;
        ++records_appended_;
        if (obs_records_ != nullptr) {
            obs_records_->add();
        }
    }
    // New chain head first, superblock second: a cut between the two
    // leaves the old superblock pointing at the old chain, and the old
    // pages were never rewritten, so the pre-reopen state replays
    // unchanged.
    MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(
        (rr.found ? rr.epoch : 0) + 1,
        chained_ ? kFlagChained : 0));
    ++reopens_;
    if (obs_reopens_ != nullptr) {
        obs_reopens_->add();
    }
    if (obs_generation_ != nullptr) {
        obs_generation_->set(static_cast<double>(generation_));
    }
    return ssd_->flushBarrier();
}

Status
Journal::appendRecord(uint32_t kind, uint64_t arg, uint32_t page_crc,
                      uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_ASSERT(formatted());
    if (cur_count_ == kRecordsPerPage - 1 && kind != kLink) {
        // Last slot is reserved for the link record that publishes the
        // next page. Ordering is crash-safe in every window: the new
        // page's header lands before the link that makes it reachable.
        PageId next = ssd_->allocate();
        std::vector<uint8_t> next_image;
        initPageImage(&next_image, cur_seq_ + 1);
        std::vector<uint8_t> saved = cur_image_;
        PageId saved_page = cur_;
        size_t saved_count = cur_count_;
        cur_ = next;
        cur_image_ = next_image;
        ++cur_seq_;
        cur_count_ = 0;
        MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
        // Link record goes into the *old* page.
        encodeRecord(saved.data() + kHeaderBytes +
                         saved_count * kRecordBytes,
                     kLink, next, 0, 0, 0, next_seq_, generation_);
        ++next_seq_;
        ++records_appended_;
        if (obs_records_ != nullptr) {
            obs_records_->add();
        }
        ++page_writes_;
        if (obs_page_writes_ != nullptr) {
            obs_page_writes_->add();
        }
        MITHRIL_RETURN_IF_ERROR(ssd_->writePage(saved_page, saved));
    }
    encodeRecord(cur_image_.data() + kHeaderBytes +
                     cur_count_ * kRecordBytes,
                 kind, arg, page_crc, lines, raw_bytes, next_seq_,
                 generation_);
    ++next_seq_;
    ++cur_count_;
    ++records_appended_;
    if (obs_records_ != nullptr) {
        obs_records_->add();
    }
    return writeCurrentPage();
}

Status
Journal::appendPageCommit(PageId page, uint32_t page_crc, uint64_t lines,
                          uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kPageCommit, page, page_crc, lines, raw_bytes));
    return ssd_->flushBarrier();
}

Status
Journal::appendSeal(uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kSeal, 0, 0, lines, raw_bytes));
    // The seal record alone already replays as sealed; the follow-up
    // superblock just lets a mount skip the inference. Keep the chained
    // bit so the sealed superblock still describes the chain shape.
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(
        epoch_ + 1, kFlagSealed | (chained_ ? kFlagChained : 0)));
    return ssd_->flushBarrier();
}

Status
Journal::replay(ReplayResult *out)
{
    *out = ReplayResult{};
    const PageStore &store = ssd_->store();

    // Pick the valid superblock with the highest epoch.
    uint64_t best_epoch = 0;
    uint64_t journal_head = kInvalidPage;
    uint64_t generation = 0;
    for (PageId slot = 0; slot < 2 && slot < store.pageCount(); ++slot) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(slot, Link::kInternal, &page);
        if (!s.isOk()) {
            continue; // unreadable slot: fall back to the other one
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kSuperMagic ||
            getLe<uint32_t>(p + 4) != kLayoutVersion) {
            continue;
        }
        if (getLe<uint32_t>(p + 40) != crc32(p, 40)) {
            continue; // torn superblock program
        }
        uint64_t epoch = getLe<uint64_t>(p + 8);
        if (epoch > best_epoch) {
            best_epoch = epoch;
            journal_head = getLe<uint64_t>(p + 16);
            generation = getLe<uint64_t>(p + 24);
            out->sealed = (getLe<uint64_t>(p + 32) & kFlagSealed) != 0;
        }
    }
    if (best_epoch == 0) {
        // Crash before format completed: an empty store is the whole
        // durable state.
        out->sealed = false;
        return Status::ok();
    }
    out->found = true;
    out->epoch = best_epoch;
    out->head = journal_head;
    out->generation = generation;

    // Walk the newest chain (recursing through base links into older
    // generations first, so records land in logical order); stop at the
    // first record that fails validation — everything before it was
    // covered by a durability barrier.
    bool saw_seal = false;
    replayChain(journal_head, generation, /*ceiling=*/UINT64_MAX,
                /*depth=*/0, out, &saw_seal);
    // Sealed if either the seal record survived or the sealed
    // superblock did (a lying device can tear the record yet ack it;
    // the superblock still marks the store immutable).
    out->sealed = out->sealed || saw_seal;
    return Status::ok();
}

void
Journal::replayChain(PageId head, uint64_t chain_generation,
                     uint64_t ceiling, int depth, ReplayResult *out,
                     bool *saw_seal)
{
    if (depth > kMaxChainDepth) {
        return; // crafted image: refuse unbounded recursion
    }
    ++out->generations;
    uint32_t seed = generationSeed(chain_generation);
    PageId page_id = head;
    uint32_t expect_page_seq = 0;
    uint64_t expect_seq = 1; // chain-local record seq
    while (page_id != kInvalidPage && !*saw_seal) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(page_id, Link::kInternal, &page);
        if (!s.isOk()) {
            return;
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kJournalMagic ||
            getLe<uint32_t>(p + 4) != expect_page_seq ||
            getLe<uint64_t>(p + 8) != chain_generation ||
            getLe<uint32_t>(p + 16) != crc32(p, 16)) {
            return;
        }
        ++out->journal_pages;
        PageId next_page = kInvalidPage;
        for (size_t i = 0; i < kRecordsPerPage; ++i) {
            if (out->records >= ceiling) {
                return; // base budget reached: the clean reopen cut
            }
            const uint8_t *r = p + kHeaderBytes + i * kRecordBytes;
            uint32_t kind = getLe<uint32_t>(r);
            if (kind != kPageCommit && kind != kLink &&
                kind != kSeal && kind != kBaseLink) {
                return;
            }
            if (getLe<uint32_t>(r + 40) != crc32(r, 40, seed)) {
                return; // torn append: the newest record is damaged
            }
            if (getLe<uint64_t>(r + 32) != expect_seq) {
                return; // stale bytes from an aborted rewrite
            }
            if (kind == kBaseLink) {
                // Only ever valid as the very first record of a chain,
                // pointing strictly down the generations, with a
                // non-empty budget.
                uint64_t base_gen = getLe<uint64_t>(r + 16);
                uint64_t budget = getLe<uint64_t>(r + 24);
                if (expect_seq != 1 || base_gen == 0 ||
                    base_gen >= chain_generation || budget == 0) {
                    return;
                }
                uint64_t sub_ceiling =
                    std::min(out->records + budget, ceiling);
                replayChain(getLe<uint64_t>(r + 4), base_gen,
                            sub_ceiling, depth + 1, out, saw_seal);
                if (*saw_seal || out->records != sub_ceiling) {
                    // The base tree's clean prefix fell short of its
                    // budget (or was crafted-sealed): nothing in this
                    // newer generation may build on it.
                    return;
                }
                if (out->records >= ceiling) {
                    return; // the cut lands inside the base tree
                }
            }
            ++expect_seq;
            ++out->records;
            if (kind == kPageCommit) {
                out->pages.push_back(CommittedPage{
                    .page = getLe<uint64_t>(r + 4),
                    .crc = getLe<uint32_t>(r + 12),
                    .lines = getLe<uint64_t>(r + 16),
                    .raw_bytes = getLe<uint64_t>(r + 24),
                    .record_seq = out->records,
                });
            } else if (kind == kLink) {
                next_page = getLe<uint64_t>(r + 4);
                break;
            } else if (kind == kSeal) {
                *saw_seal = true;
                break;
            }
        }
        page_id = next_page;
        ++expect_page_seq;
    }
}

void
Journal::serialize(std::vector<uint8_t> *out) const
{
    putLe(*out, head_);
    putLe(*out, cur_);
    putLe(*out, static_cast<uint64_t>(cur_seq_));
    putLe(*out, static_cast<uint64_t>(cur_count_));
    putLe(*out, next_seq_);
    putLe(*out, epoch_);
    putLe(*out, generation_);
    putLe(*out, chained_ ? uint64_t{1} : uint64_t{0});
}

Status
Journal::deserialize(const uint8_t *data, size_t len, size_t *consumed)
{
    constexpr size_t kCursorBytes = 8 * sizeof(uint64_t);
    if (len < kCursorBytes) {
        return Status::corruptData("journal cursor truncated");
    }
    head_ = getLe<uint64_t>(data);
    cur_ = getLe<uint64_t>(data + 8);
    cur_seq_ = static_cast<uint32_t>(getLe<uint64_t>(data + 16));
    cur_count_ = static_cast<size_t>(getLe<uint64_t>(data + 24));
    next_seq_ = getLe<uint64_t>(data + 32);
    epoch_ = getLe<uint64_t>(data + 40);
    // Restores the persisted stamp; only format()/reopen() mint one.
    // mithril-lint: allow(generation-bump) restoring a persisted cursor
    generation_ = getLe<uint64_t>(data + 48);
    chained_ = (getLe<uint64_t>(data + 56) & 1) != 0;
    if (obs_generation_ != nullptr) {
        obs_generation_->set(static_cast<double>(generation_));
    }
    *consumed = kCursorBytes;
    if (!formatted()) {
        cur_image_.clear();
        return Status::ok();
    }
    if (cur_count_ > kRecordsPerPage) {
        return Status::corruptData("journal cursor: bad record count");
    }
    std::span<const uint8_t> view;
    MITHRIL_RETURN_IF_ERROR(ssd_->store().read(cur_, &view));
    cur_image_.assign(view.begin(), view.end());
    return Status::ok();
}

} // namespace mithril::storage
