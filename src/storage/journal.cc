#include "storage/journal.h"

#include <cstring>
#include <string>

#include "common/bits.h"
#include "common/hash.h"

namespace mithril::storage {

namespace {

constexpr uint32_t kSuperMagic = 0x3142534du;    // "MSB1"
constexpr uint32_t kJournalMagic = 0x314c4a4du;  // "MJL1"
constexpr uint32_t kLayoutVersion = 1;

constexpr size_t kHeaderBytes = 20;
constexpr size_t kRecordBytes = 44;
constexpr size_t kRecordsPerPage = (kPageSize - kHeaderBytes) / kRecordBytes;

// Record kinds; kind 0 is deliberately invalid so a never-written
// (zero-filled) record slot terminates replay without relying on the
// CRC check alone.
constexpr uint32_t kPageCommit = 1;
constexpr uint32_t kLink = 2;
constexpr uint32_t kSeal = 3;

/** Superblock slot page for @p epoch (ping-pong between pages 0/1). */
PageId
superSlot(uint64_t epoch)
{
    return (epoch - 1) % 2;
}

/** Seed binding record CRCs to the journal incarnation. */
uint32_t
generationSeed(uint64_t generation)
{
    return crc32(&generation, sizeof(generation));
}

void
encodeRecord(uint8_t *slot, uint32_t kind, uint64_t arg,
             uint32_t page_crc, uint64_t lines, uint64_t raw_bytes,
             uint64_t seq, uint64_t generation)
{
    std::vector<uint8_t> buf;
    buf.reserve(kRecordBytes);
    putLe(buf, kind);
    putLe(buf, arg);
    putLe(buf, page_crc);
    putLe(buf, lines);
    putLe(buf, raw_bytes);
    putLe(buf, seq);
    putLe(buf, crc32(buf.data(), buf.size(), generationSeed(generation)));
    MITHRIL_ASSERT(buf.size() == kRecordBytes);
    std::memcpy(slot, buf.data(), kRecordBytes);
}

} // namespace

void
Journal::bindMetrics(obs::MetricsRegistry *metrics)
{
    if (metrics != nullptr) {
        obs_records_ = &metrics->counter("journal.records");
        obs_page_writes_ = &metrics->counter("journal.page_writes");
    } else {
        obs_records_ = nullptr;
        obs_page_writes_ = nullptr;
    }
}

void
Journal::initPageImage(std::vector<uint8_t> *image, uint32_t seq) const
{
    image->clear();
    image->reserve(kPageSize);
    putLe(*image, kJournalMagic);
    putLe(*image, seq);
    putLe(*image, generation_);
    putLe(*image, crc32(image->data(), image->size()));
    MITHRIL_ASSERT(image->size() == kHeaderBytes);
    image->resize(kPageSize, 0);
}

Status
Journal::writeCurrentPage()
{
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    return ssd_->writePage(cur_, cur_image_);
}

Status
Journal::writeSuperblock(uint64_t epoch, uint64_t flags)
{
    std::vector<uint8_t> sb;
    sb.reserve(kPageSize);
    putLe(sb, kSuperMagic);
    putLe(sb, kLayoutVersion);
    putLe(sb, epoch);
    putLe(sb, head_);
    putLe(sb, generation_);
    putLe(sb, flags);
    putLe(sb, crc32(sb.data(), sb.size()));
    sb.resize(kPageSize, 0);
    ++page_writes_;
    if (obs_page_writes_ != nullptr) {
        obs_page_writes_->add();
    }
    MITHRIL_RETURN_IF_ERROR(ssd_->writePage(superSlot(epoch), sb));
    epoch_ = epoch;
    return Status::ok();
}

Status
Journal::format()
{
    MITHRIL_ASSERT(!formatted());
    // The layout owns the device's first pages; formatting anything but
    // an empty store would silently overlay data pages.
    MITHRIL_ASSERT(ssd_->store().pageCount() == 0);
    PageId slot_a = ssd_->allocate();
    PageId slot_b = ssd_->allocate();
    MITHRIL_ASSERT(slot_a == 0 && slot_b == 1);
    head_ = cur_ = ssd_->allocate();
    cur_seq_ = 0;
    cur_count_ = 0;
    next_seq_ = 1;
    generation_ = 1;
    initPageImage(&cur_image_, cur_seq_);
    // Journal page first, superblock second: a cut between the two
    // leaves no valid superblock, which replays as an empty store.
    MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
    MITHRIL_RETURN_IF_ERROR(writeSuperblock(/*epoch=*/1, /*flags=*/0));
    return ssd_->flushBarrier();
}

Status
Journal::appendRecord(uint32_t kind, uint64_t arg, uint32_t page_crc,
                      uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_ASSERT(formatted());
    if (cur_count_ == kRecordsPerPage - 1 && kind != kLink) {
        // Last slot is reserved for the link record that publishes the
        // next page. Ordering is crash-safe in every window: the new
        // page's header lands before the link that makes it reachable.
        PageId next = ssd_->allocate();
        std::vector<uint8_t> next_image;
        initPageImage(&next_image, cur_seq_ + 1);
        std::vector<uint8_t> saved = cur_image_;
        PageId saved_page = cur_;
        size_t saved_count = cur_count_;
        cur_ = next;
        cur_image_ = next_image;
        ++cur_seq_;
        cur_count_ = 0;
        MITHRIL_RETURN_IF_ERROR(writeCurrentPage());
        // Link record goes into the *old* page.
        encodeRecord(saved.data() + kHeaderBytes +
                         saved_count * kRecordBytes,
                     kLink, next, 0, 0, 0, next_seq_, generation_);
        ++next_seq_;
        ++records_appended_;
        if (obs_records_ != nullptr) {
            obs_records_->add();
        }
        ++page_writes_;
        if (obs_page_writes_ != nullptr) {
            obs_page_writes_->add();
        }
        MITHRIL_RETURN_IF_ERROR(ssd_->writePage(saved_page, saved));
    }
    encodeRecord(cur_image_.data() + kHeaderBytes +
                     cur_count_ * kRecordBytes,
                 kind, arg, page_crc, lines, raw_bytes, next_seq_,
                 generation_);
    ++next_seq_;
    ++cur_count_;
    ++records_appended_;
    if (obs_records_ != nullptr) {
        obs_records_->add();
    }
    return writeCurrentPage();
}

Status
Journal::appendPageCommit(PageId page, uint32_t page_crc, uint64_t lines,
                          uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kPageCommit, page, page_crc, lines, raw_bytes));
    return ssd_->flushBarrier();
}

Status
Journal::appendSeal(uint64_t lines, uint64_t raw_bytes)
{
    MITHRIL_RETURN_IF_ERROR(
        appendRecord(kSeal, 0, 0, lines, raw_bytes));
    // The seal record alone already replays as sealed; the epoch-2
    // superblock just lets a mount skip the inference.
    MITHRIL_RETURN_IF_ERROR(
        writeSuperblock(epoch_ + 1, /*flags=*/1));
    return ssd_->flushBarrier();
}

Status
Journal::replay(ReplayResult *out)
{
    *out = ReplayResult{};
    const PageStore &store = ssd_->store();

    // Pick the valid superblock with the highest epoch.
    uint64_t best_epoch = 0;
    uint64_t journal_head = kInvalidPage;
    uint64_t generation = 0;
    for (PageId slot = 0; slot < 2 && slot < store.pageCount(); ++slot) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(slot, Link::kInternal, &page);
        if (!s.isOk()) {
            continue; // unreadable slot: fall back to the other one
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kSuperMagic ||
            getLe<uint32_t>(p + 4) != kLayoutVersion) {
            continue;
        }
        if (getLe<uint32_t>(p + 40) != crc32(p, 40)) {
            continue; // torn superblock program
        }
        uint64_t epoch = getLe<uint64_t>(p + 8);
        if (epoch > best_epoch) {
            best_epoch = epoch;
            journal_head = getLe<uint64_t>(p + 16);
            generation = getLe<uint64_t>(p + 24);
            out->sealed = (getLe<uint64_t>(p + 32) & 1) != 0;
        }
    }
    if (best_epoch == 0) {
        // Crash before format completed: an empty store is the whole
        // durable state.
        out->sealed = false;
        return Status::ok();
    }
    out->found = true;

    // Walk the chain; stop at the first record that fails validation —
    // everything before it was covered by a durability barrier.
    bool saw_seal = false;
    PageId page_id = journal_head;
    uint32_t expect_page_seq = 0;
    uint64_t expect_seq = 1;
    uint32_t seed = generationSeed(generation);
    while (page_id != kInvalidPage) {
        std::vector<uint8_t> page;
        Status s = ssd_->readChained(page_id, Link::kInternal, &page);
        if (!s.isOk()) {
            break;
        }
        const uint8_t *p = page.data();
        if (getLe<uint32_t>(p) != kJournalMagic ||
            getLe<uint32_t>(p + 4) != expect_page_seq ||
            getLe<uint64_t>(p + 8) != generation ||
            getLe<uint32_t>(p + 16) != crc32(p, 16)) {
            break;
        }
        ++out->journal_pages;
        PageId next_page = kInvalidPage;
        for (size_t i = 0; i < kRecordsPerPage; ++i) {
            const uint8_t *r = p + kHeaderBytes + i * kRecordBytes;
            uint32_t kind = getLe<uint32_t>(r);
            if (kind != kPageCommit && kind != kLink && kind != kSeal) {
                break;
            }
            if (getLe<uint32_t>(r + 40) != crc32(r, 40, seed)) {
                break; // torn append: the newest record is damaged
            }
            if (getLe<uint64_t>(r + 32) != expect_seq) {
                break; // stale bytes from an aborted rewrite
            }
            ++expect_seq;
            ++out->records;
            if (kind == kPageCommit) {
                out->pages.push_back(CommittedPage{
                    .page = getLe<uint64_t>(r + 4),
                    .crc = getLe<uint32_t>(r + 12),
                    .lines = getLe<uint64_t>(r + 16),
                    .raw_bytes = getLe<uint64_t>(r + 24),
                });
            } else if (kind == kLink) {
                next_page = getLe<uint64_t>(r + 4);
                break;
            } else { // kSeal
                saw_seal = true;
                break;
            }
        }
        if (saw_seal) {
            break;
        }
        page_id = next_page;
        ++expect_page_seq;
    }
    // Sealed if either the seal record survived or the epoch-2
    // superblock did (a lying device can tear the record yet ack it;
    // the superblock still marks the store immutable).
    out->sealed = out->sealed || saw_seal;
    return Status::ok();
}

void
Journal::serialize(std::vector<uint8_t> *out) const
{
    putLe(*out, head_);
    putLe(*out, cur_);
    putLe(*out, static_cast<uint64_t>(cur_seq_));
    putLe(*out, static_cast<uint64_t>(cur_count_));
    putLe(*out, next_seq_);
    putLe(*out, epoch_);
    putLe(*out, generation_);
}

Status
Journal::deserialize(const uint8_t *data, size_t len, size_t *consumed)
{
    constexpr size_t kCursorBytes = 7 * sizeof(uint64_t);
    if (len < kCursorBytes) {
        return Status::corruptData("journal cursor truncated");
    }
    head_ = getLe<uint64_t>(data);
    cur_ = getLe<uint64_t>(data + 8);
    cur_seq_ = static_cast<uint32_t>(getLe<uint64_t>(data + 16));
    cur_count_ = static_cast<size_t>(getLe<uint64_t>(data + 24));
    next_seq_ = getLe<uint64_t>(data + 32);
    epoch_ = getLe<uint64_t>(data + 40);
    generation_ = getLe<uint64_t>(data + 48);
    *consumed = kCursorBytes;
    if (!formatted()) {
        cur_image_.clear();
        return Status::ok();
    }
    if (cur_count_ > kRecordsPerPage) {
        return Status::corruptData("journal cursor: bad record count");
    }
    std::span<const uint8_t> view;
    MITHRIL_RETURN_IF_ERROR(ssd_->store().read(cur_, &view));
    cur_image_.assign(view.begin(), view.end());
    return Status::ok();
}

} // namespace mithril::storage
