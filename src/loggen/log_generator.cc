#include "loggen/log_generator.h"

#include <algorithm>
#include <cmath>

#include "common/text.h"

namespace mithril::loggen {

namespace {

// Vocabulary pools the template synthesizer draws from. Modeled on the
// message content of the HPC4 logs (RAS kernel events, Lustre, MPI,
// PBS, hardware errors, daemons).
const char *kComponents[] = {
    "KERNEL", "APP", "DISCOVERY", "MMCS", "LINKCARD", "MONITOR",
    "HARDWARE", "CMCS", "BGLMASTER", "SERV_NET",
};
const char *kSeverities[] = {
    "INFO", "WARNING", "ERROR", "FATAL", "FAILURE", "SEVERE",
};
const char *kSubjects[] = {
    "instruction", "data", "ddr", "cache", "parity", "torus", "tree",
    "ethernet", "ido", "node", "link", "fan", "power", "temperature",
    "clock", "memory", "interrupt", "packet", "message", "lustre",
    "filesystem", "directory", "socket", "session", "daemon", "job",
    "process", "thread", "queue", "buffer", "register", "channel",
    "connection", "module", "service", "client", "server", "mount",
};
const char *kDescriptors[] = {
    "TLB", "prefetch", "storage", "receiver", "sender", "controller",
    "coherency", "alignment", "wait", "floating", "point", "unit",
    "virtual", "remote", "local", "external", "internal", "primary",
    "secondary", "critical", "fatal", "unexpected", "invalid", "stale",
    "broken", "corrected", "uncorrectable", "single", "double", "bit",
};
const char *kVerbs[] = {
    "error", "errors", "detected", "corrected", "failed", "failure",
    "exceeded", "completed", "started", "terminated", "dropped",
    "rejected", "timeout", "interrupt", "enabled", "disabled",
    "registered", "unavailable", "refused", "denied", "reset",
    "restarted", "panic", "killed", "lost", "recovered", "retrying",
    "aborted", "suspended", "resumed",
};
const char *kTails[] = {
    "rts:", "kernel:", "pbs_mom:", "sshd[*]:", "ntpd[*]:", "syslogd:",
    "mmfs:", "sendmail[*]:", "crond[*]:", "gmond:", "ib_sm:",
    "dhcpd:", "xinetd[*]:", "portmap:", "lustre:", "snmpd[*]:",
};
const char *kUsers[] = {
    "root", "admin", "operator", "jsmith", "achen", "mbrown",
    "svcacct", "daemon",
};
const char *kMonths[] = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
};

template <size_t N>
const char *
pick(Rng &rng, const char *(&pool)[N])
{
    return pool[rng.below(N)];
}

} // namespace

LogGenerator::LogGenerator(const DatasetSpec &spec)
    : spec_(spec), rng_(spec.seed), epoch_(1117838570ull + spec.seed % 997)
{
    buildVocabulary();
    buildTemplates();

    // Zipf CDF over the template library.
    zipf_cdf_.resize(templates_.size());
    double total = 0.0;
    for (size_t k = 0; k < templates_.size(); ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), spec_.zipf_s);
        zipf_cdf_[k] = total;
    }
    for (double &c : zipf_cdf_) {
        c /= total;
    }
}

std::string
LogGenerator::nodeName(size_t index) const
{
    if (spec_.header == HeaderStyle::kBgl) {
        // BlueGene rack-midplane-nodecard-compute naming.
        return strprintf("R%02zu-M%zu-N%zu-C:J%02zu-U%02zu",
                         index % 64, (index / 64) % 2, (index / 128) % 8,
                         index % 18, (index / 18) % 12);
    }
    // Fixed-width node numbers, as in the Sandia clusters (dn228,
    // sn0047, ...): fixed-width header fields keep message bodies at
    // stable intra-line offsets, the property LZAH's newline
    // realignment exploits.
    return strprintf("%cn%04zu",
                     spec_.name.empty() ? 's' : static_cast<char>(
                         std::tolower(spec_.name[0])),
                     index);
}

void
LogGenerator::buildVocabulary()
{
    nodes_.reserve(spec_.node_count);
    for (size_t i = 0; i < spec_.node_count; ++i) {
        nodes_.push_back(nodeName(i));
    }
    for (const char *u : kUsers) {
        users_.emplace_back(u);
    }
    for (const char *d : kTails) {
        std::string daemon = d;
        // Expand the "[*]" pid placeholder into a per-daemon fixed pid
        // pool at instantiation time; store the pattern for now.
        daemons_.push_back(std::move(daemon));
    }
}

void
LogGenerator::buildTemplates()
{
    // Templates are synthesized deterministically from the seed: a
    // component/severity pair plus 3..9 body tokens, with variable
    // slots inserted at `variability` density. Low-index (popular)
    // templates get fewer variable slots, matching real logs where
    // heartbeat-class messages are the most regular.
    Rng rng(spec_.seed ^ 0x7e3a9);
    templates_.reserve(spec_.template_count);
    for (size_t t = 0; t < spec_.template_count; ++t) {
        LogTemplate tpl;
        tpl.component = pick(rng, kComponents);
        tpl.severity = pick(rng, kSeverities);
        size_t body_len = 3 + rng.below(7);
        double var_density =
            spec_.variability * (t < spec_.template_count / 4 ? 0.5 : 1.0);
        for (size_t i = 0; i < body_len; ++i) {
            TemplateToken tok;
            if (rng.chance(var_density)) {
                tok.is_variable = true;
                static const VarKind kinds[] = {
                    VarKind::kInt, VarKind::kHex, VarKind::kNode,
                    VarKind::kPath, VarKind::kUser, VarKind::kIp,
                    VarKind::kFloat,
                };
                tok.kind = kinds[rng.below(std::size(kinds))];
                // Skewed cardinality: most slots draw from small pools.
                tok.cardinality =
                    static_cast<uint32_t>(1u << rng.below(14));
            } else {
                tok.is_variable = false;
                switch (rng.below(3)) {
                  case 0:
                    tok.text = pick(rng, kSubjects);
                    break;
                  case 1:
                    tok.text = pick(rng, kDescriptors);
                    break;
                  default:
                    tok.text = pick(rng, kVerbs);
                    break;
                }
            }
            tpl.body.push_back(std::move(tok));
        }
        // Guarantee at least two fixed tokens so every template is
        // identifiable by content.
        bool has_fixed = false;
        for (const TemplateToken &tok : tpl.body) {
            if (!tok.is_variable) {
                has_fixed = true;
                break;
            }
        }
        if (!has_fixed) {
            tpl.body[0].is_variable = false;
            tpl.body[0].text = pick(rng, kSubjects);
        }
        templates_.push_back(std::move(tpl));
    }
}

std::string
LogGenerator::instantiate(const TemplateToken &tok)
{
    uint64_t draw = rng_.below(tok.cardinality ? tok.cardinality : 1);
    switch (tok.kind) {
      case VarKind::kInt:
        return std::to_string(draw * 7 + 1);
      case VarKind::kHex:
        return strprintf("0x%08llx",
                         static_cast<unsigned long long>(
                             mix64(draw) & 0xffffffffull));
      case VarKind::kNode:
        return nodes_[draw % nodes_.size()];
      case VarKind::kPath:
        return strprintf("/p/gb%llu/n%llu/file%llu",
                         static_cast<unsigned long long>(draw % 7),
                         static_cast<unsigned long long>(draw % 63),
                         static_cast<unsigned long long>(draw));
      case VarKind::kUser:
        return users_[draw % users_.size()];
      case VarKind::kIp:
        return strprintf("10.%llu.%llu.%llu",
                         static_cast<unsigned long long>(draw / 65536 % 256),
                         static_cast<unsigned long long>(draw / 256 % 256),
                         static_cast<unsigned long long>(draw % 256));
      case VarKind::kFloat:
        return strprintf("%llu.%02llu",
                         static_cast<unsigned long long>(draw % 1000),
                         static_cast<unsigned long long>(draw % 100));
    }
    return "?";
}

size_t
LogGenerator::sampleTemplate()
{
    double u = rng_.uniform();
    auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    size_t idx = static_cast<size_t>(it - zipf_cdf_.begin());
    return std::min(idx, templates_.size() - 1);
}

std::string
LogGenerator::line()
{
    // Burst model: a run of lines shares one (template, node, second),
    // the dominant redundancy pattern of real HPC logs (a component in
    // trouble repeats its message). Burst lengths are uniform in
    // [1, 2*mean-1], giving the configured mean.
    if (burst_left_ == 0) {
        burst_template_ = sampleTemplate();
        burst_node_ = rng_.skewedBelow(nodes_.size(), 2.0);
        uint64_t span = std::max<uint64_t>(
            1, static_cast<uint64_t>(2.0 * spec_.mean_burst) - 1);
        burst_left_ = 1 + rng_.below(span);
        burst_values_.clear();
        if (rng_.chance(0.5)) {
            epoch_ += 1 + rng_.below(30);
        }
    }
    --burst_left_;

    size_t t = burst_template_;
    last_template_ = t;
    const LogTemplate &tpl = templates_[t];

    uint64_t day = epoch_ / 86400;
    uint64_t tod = epoch_ % 86400;

    std::string out;
    out.reserve(160);
    const std::string &node = nodes_[burst_node_];

    if (spec_.header == HeaderStyle::kBgl) {
        // "- SEQ 2005.06.03 NODE 2005-06-03-15.42.50.363779 NODE RAS
        //  COMPONENT SEVERITY body"
        out += strprintf("- %llu 2005.%02llu.%02llu %s "
                         "2005-%02llu-%02llu-%02llu.%02llu.%02llu.%06llu "
                         "%s RAS %s %s",
                         static_cast<unsigned long long>(lines_ + 1),
                         static_cast<unsigned long long>(day / 30 % 12 + 1),
                         static_cast<unsigned long long>(day % 30 + 1),
                         node.c_str(),
                         static_cast<unsigned long long>(day / 30 % 12 + 1),
                         static_cast<unsigned long long>(day % 30 + 1),
                         static_cast<unsigned long long>(tod / 3600),
                         static_cast<unsigned long long>(tod / 60 % 60),
                         static_cast<unsigned long long>(tod % 60),
                         static_cast<unsigned long long>(
                             mix64(lines_) % 1000000),
                         node.c_str(), tpl.component.c_str(),
                         tpl.severity.c_str());
    } else {
        // "- EPOCH 2005.06.03 NODE Jun 03 15:42:50 NODE daemon: body"
        // (the Sandia syslog shape; all header fields fixed-width).
        const std::string &daemon =
            daemons_[(spec_.seed + t) % daemons_.size()];
        std::string daemon_inst = daemon;
        size_t star = daemon_inst.find('*');
        if (star != std::string::npos) {
            daemon_inst = daemon_inst.substr(0, star) +
                          std::to_string(1000 + rng_.below(64) * 13) +
                          daemon_inst.substr(star + 1);
        }
        out += strprintf("- %llu 2005.%02llu.%02llu %s %s %02llu "
                         "%02llu:%02llu:%02llu %s %s",
                         static_cast<unsigned long long>(epoch_),
                         static_cast<unsigned long long>(day / 30 % 12 + 1),
                         static_cast<unsigned long long>(day % 30 + 1),
                         node.c_str(),
                         kMonths[day / 30 % 12],
                         static_cast<unsigned long long>(day % 30 + 1),
                         static_cast<unsigned long long>(tod / 3600),
                         static_cast<unsigned long long>(tod / 60 % 60),
                         static_cast<unsigned long long>(tod % 60),
                         node.c_str(), daemon_inst.c_str());
    }

    // Repeated lines in a burst usually carry the *same* parameter
    // values (the identical message re-emitted); occasionally a value
    // churns. This is what makes real log bursts so compressible.
    burst_values_.resize(tpl.body.size());
    for (size_t i = 0; i < tpl.body.size(); ++i) {
        const TemplateToken &tok = tpl.body[i];
        out += ' ';
        if (!tok.is_variable) {
            out += tok.text;
            continue;
        }
        if (burst_values_[i].empty() || rng_.chance(0.15)) {
            burst_values_[i] = instantiate(tok);
        }
        out += burst_values_[i];
    }
    ++lines_;
    return out;
}

std::string
LogGenerator::generate(uint64_t bytes, std::vector<uint32_t> *template_trace)
{
    std::string out;
    out.reserve(bytes + 256);
    while (out.size() < bytes) {
        out += line();
        out += '\n';
        if (template_trace != nullptr) {
            template_trace->push_back(
                static_cast<uint32_t>(last_template_));
        }
    }
    return out;
}

} // namespace mithril::loggen
