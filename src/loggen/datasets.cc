#include "loggen/datasets.h"

#include "common/status.h"

namespace mithril::loggen {

const std::vector<DatasetSpec> &
hpc4Datasets()
{
    // Scaled defaults keep every bench in the seconds range on one
    // core while remaining large enough for stable statistics.
    // `variability` is tuned so the LZAH compression-ratio ordering of
    // Table 5 (BGL2 hardest, Thunderbird easiest) is reproduced.
    static const std::vector<DatasetSpec> specs = {
        {
            .name = "BGL2",
            .seed = 0xb91202ull,
            .header = HeaderStyle::kBgl,
            .template_count = 93,
            .zipf_s = 1.1,
            .variability = 0.55,
            .mean_burst = 5.0,
            .node_count = 1024,
            .default_bytes = 12ull << 20,
            .paper_lines_millions = 4.7,
            .paper_size_gb = 0.7,
            .paper_templates = 93,
        },
        {
            .name = "Liberty2",
            .seed = 0x11be27ull,
            .header = HeaderStyle::kSyslog,
            .template_count = 197,
            .zipf_s = 1.2,
            .variability = 0.35,
            .mean_burst = 12.0,
            .node_count = 512,
            .default_bytes = 24ull << 20,
            .paper_lines_millions = 265.5,
            .paper_size_gb = 30.0,
            .paper_templates = 197,
        },
        {
            .name = "Spirit2",
            .seed = 0x59121702ull,
            .header = HeaderStyle::kSyslog,
            .template_count = 241,
            .zipf_s = 1.15,
            .variability = 0.22,
            .mean_burst = 18.0,
            .node_count = 512,
            .default_bytes = 24ull << 20,
            .paper_lines_millions = 272.2,
            .paper_size_gb = 38.0,
            .paper_templates = 241,
        },
        {
            .name = "Thunderbird",
            .seed = 0x7b13d02ull,
            .header = HeaderStyle::kSyslog,
            .template_count = 125,
            .zipf_s = 1.3,
            .variability = 0.15,
            .mean_burst = 30.0,
            .node_count = 2048,
            .default_bytes = 24ull << 20,
            .paper_lines_millions = 211.2,
            .paper_size_gb = 30.0,
            .paper_templates = 125,
        },
    };
    return specs;
}

const DatasetSpec &
datasetByName(const std::string &name)
{
    for (const DatasetSpec &spec : hpc4Datasets()) {
        if (spec.name == name) {
            return spec;
        }
    }
    MITHRIL_ASSERT(!"unknown dataset name");
    return hpc4Datasets().front();
}

} // namespace mithril::loggen
