/**
 * @file
 * Descriptors for the four synthetic HPC4-like datasets.
 *
 * The paper evaluates on the HPC4 supercomputer logs (Oliner & Stearley,
 * DSN'07): BGL2, Liberty2, Spirit2, and Thunderbird. Those multi-GB logs
 * are not redistributable here, so each dataset is replaced by a
 * deterministic synthetic twin that reproduces the three properties the
 * evaluation actually depends on:
 *
 *  1. template structure — lines are instances of a fixed library of
 *     message templates with Zipf-skewed popularity, so FT-tree
 *     extraction recovers a library of the right order (Table 1);
 *  2. token length distribution — drives the tokenized-datapath padding
 *     ratio (Figure 13) and the 16-byte datapath design point;
 *  3. cross-line repetition — headers and template bodies repeat at
 *     similar intra-line offsets, which is what LZAH's newline
 *     realignment exploits (Table 5's ratio ordering).
 *
 * Sizes are scaled (default tens of MB instead of tens of GB) so every
 * benchmark runs in seconds on one core; paper-scale metadata rides
 * along for reporting. Per-dataset `variability` tunes how much
 * per-line entropy (timestamps, ids, numbers) dilutes the repetition,
 * reproducing the relative compressibility ordering of the real logs.
 */
#ifndef MITHRIL_LOGGEN_DATASETS_H
#define MITHRIL_LOGGEN_DATASETS_H

#include <cstdint>
#include <string>
#include <vector>

namespace mithril::loggen {

/** Line header style of a dataset. */
enum class HeaderStyle {
    kBgl,      ///< BlueGene RAS: "- seq epoch date node ts node RAS ..."
    kSyslog,   ///< Sandia syslog: "seq epoch date node month day time ..."
};

/** Everything needed to synthesize one dataset deterministically. */
struct DatasetSpec {
    std::string name;
    uint64_t seed;
    HeaderStyle header;
    /** Size of the synthetic template library. */
    size_t template_count;
    /** Zipf skew of template popularity (larger = more skewed). */
    double zipf_s;
    /** Density of variable tokens in message bodies, 0..1. */
    double variability;
    /**
     * Mean length of emission bursts: runs of lines sharing one
     * (template, node, second). Real HPC logs are dominated by such
     * bursts (a failing component repeats its message), which is the
     * main source of the cross-line redundancy log compressors and
     * Table 5's ratios depend on.
     */
    double mean_burst;
    /** Distinct nodes in the cluster. */
    size_t node_count;
    /** Default synthetic size for benches (bytes). */
    uint64_t default_bytes;

    // Paper-scale metadata (Table 1), for reporting only.
    double paper_lines_millions;
    double paper_size_gb;
    int paper_templates;
};

/** The four HPC4-like dataset descriptors (BGL2 first). */
const std::vector<DatasetSpec> &hpc4Datasets();

/** Finds a descriptor by name; aborts if unknown. */
const DatasetSpec &datasetByName(const std::string &name);

} // namespace mithril::loggen

#endif // MITHRIL_LOGGEN_DATASETS_H
