#include "loggen/incident.h"

#include "common/text.h"
#include "loggen/log_generator.h"

namespace mithril::loggen {

std::string
generateIncident(const IncidentSpec &spec, IncidentGroundTruth *truth)
{
    // Background: the Spirit2-like dataset (syslog headers), reseeded
    // per scenario so distinct seeds give distinct traffic.
    DatasetSpec base = datasetByName("Spirit2");
    base.seed = base.seed ^ (spec.seed * 0x9e3779b97f4a7c15ull);
    LogGenerator gen(base);

    *truth = IncidentGroundTruth{};
    std::string out;
    out.reserve(spec.background_bytes + 512);
    uint64_t line_no = 0;
    uint64_t epoch = 1117838570ull + spec.seed % 997;
    while (out.size() < spec.background_bytes) {
        uint64_t pos = spec.incident_every != 0
                           ? line_no % spec.incident_every
                           : 1;
        if (pos < spec.burst_len) {
            // Planted evidence, rotating through the punctuation-
            // adjacent forms the typed extractors must dig out of real
            // log syntax (DESIGN.md §15 satellite forms). Bursts keep
            // the evidence temporally clustered, as real attacks are.
            epoch += 1 + line_no % 5;
            std::string line;
            switch (pos % 4) {
              case 0:
                // Plain token form.
                line = strprintf(
                    "- %llu sn0007 sshd[3921]: Failed password for "
                    "root from %s port %llu ssh2",
                    static_cast<unsigned long long>(epoch),
                    spec.attacker_ip.c_str(),
                    static_cast<unsigned long long>(
                        40000 + line_no % 20000));
                truth->attacker_lines.push_back(line_no);
                break;
              case 1:
                // key=value with a trailing comma.
                line = strprintf(
                    "- %llu sn0007 fw: DROP src=%s, dst=10.0.0.5 "
                    "proto=tcp flags=SYN",
                    static_cast<unsigned long long>(epoch),
                    spec.attacker_ip.c_str());
                truth->attacker_lines.push_back(line_no);
                break;
              case 2:
                // Bracketed hex session id plus the address.
                line = strprintf(
                    "- %llu sn0007 auth: session [%s] opened for root "
                    "from %s",
                    static_cast<unsigned long long>(epoch),
                    spec.session_id.c_str(), spec.attacker_ip.c_str());
                truth->attacker_lines.push_back(line_no);
                truth->session_lines.push_back(line_no);
                break;
              default:
                // The CIDR sibling: matches subnet queries only.
                line = strprintf(
                    "- %llu sn0007 sshd[3921]: Accepted password for "
                    "jsmith from %s port 22 ssh2",
                    static_cast<unsigned long long>(epoch),
                    spec.decoy_ip.c_str());
                truth->decoy_lines.push_back(line_no);
                break;
            }
            out += line;
        } else {
            out += gen.line();
        }
        out += '\n';
        ++line_no;
    }
    truth->total_lines = line_no;
    return out;
}

} // namespace mithril::loggen
