/**
 * @file
 * Deterministic synthetic HPC log generator.
 *
 * A generator instance owns a synthesized template library (fixed-token
 * skeletons with typed variable slots) and emits lines by sampling a
 * template from a Zipf distribution, instantiating its variables, and
 * prepending the dataset's header fields. All randomness is seeded from
 * the DatasetSpec, so a given (spec, line index range) always produces
 * identical text.
 */
#ifndef MITHRIL_LOGGEN_LOG_GENERATOR_H
#define MITHRIL_LOGGEN_LOG_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "loggen/datasets.h"

namespace mithril::loggen {

/** Typed variable slot within a message template. */
enum class VarKind {
    kInt,       ///< decimal integer
    kHex,       ///< 0x-prefixed hex word
    kNode,      ///< node identifier from the cluster pool
    kPath,      ///< filesystem-ish path
    kUser,      ///< user name from a small pool
    kIp,        ///< dotted-quad address
    kFloat,     ///< fixed-point decimal
};

/** One token of a message template. */
struct TemplateToken {
    bool is_variable;
    std::string text;   // fixed token text
    VarKind kind;       // when is_variable
    /** Distinct values this slot draws from (low = compressible). */
    uint32_t cardinality;
};

/** A message template: component/severity plus body tokens. */
struct LogTemplate {
    std::string component;
    std::string severity;
    std::vector<TemplateToken> body;
};

/** Synthesizes lines for one dataset. */
class LogGenerator
{
  public:
    explicit LogGenerator(const DatasetSpec &spec);

    /** The synthesized template library (inspection / ground truth). */
    const std::vector<LogTemplate> &templates() const { return templates_; }

    /** Emits one line (no trailing newline). Advances generator state. */
    std::string line();

    /** Index of the template the last line() call instantiated. */
    size_t lastTemplate() const { return last_template_; }

    /**
     * Generates ~@p bytes of newline-terminated text.
     * @param template_trace when non-null, receives the template index
     *        of each generated line (ground truth for extraction tests).
     */
    std::string generate(uint64_t bytes,
                         std::vector<uint32_t> *template_trace = nullptr);

    /** Lines emitted so far. */
    uint64_t linesEmitted() const { return lines_; }

  private:
    void buildVocabulary();
    void buildTemplates();
    std::string instantiate(const TemplateToken &tok);
    std::string nodeName(size_t index) const;
    size_t sampleTemplate();

    const DatasetSpec spec_;
    Rng rng_;
    std::vector<LogTemplate> templates_;
    std::vector<double> zipf_cdf_;
    std::vector<std::string> nodes_;
    std::vector<std::string> users_;
    std::vector<std::string> daemons_;
    uint64_t epoch_;
    uint64_t lines_ = 0;
    size_t last_template_ = 0;

    // Burst state (see line() for the model).
    uint64_t burst_left_ = 0;
    size_t burst_template_ = 0;
    size_t burst_node_ = 0;
    std::vector<std::string> burst_values_;  ///< sticky variable values
};

} // namespace mithril::loggen

#endif // MITHRIL_LOGGEN_LOG_GENERATOR_H
