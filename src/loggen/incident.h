/**
 * @file
 * Incident-response workload: a deterministic synthetic log with a
 * seeded security incident planted into background HPC traffic.
 *
 * The scenario drives the typed query tier (DESIGN.md §15): an
 * attacker address and a session hex id recur across the log in the
 * punctuation-adjacent forms real logs use (`src=1.2.3.4,`,
 * `[deadbeef...]`), with a CIDR-sibling decoy host to separate
 * exact-address from subnet queries. Planted lines use TEST-NET
 * addresses (RFC 5737), which the background generator's `10.x` pool
 * can never emit, so the ground truth is exact by construction.
 */
#ifndef MITHRIL_LOGGEN_INCIDENT_H
#define MITHRIL_LOGGEN_INCIDENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace mithril::loggen {

/** Parameters of one incident scenario (all defaults deterministic). */
struct IncidentSpec {
    uint64_t seed = 42;
    /** Approximate size of the generated text. */
    uint64_t background_bytes = 1ull << 20;
    /** Period of the attack bursts, in lines. Evidence clusters the
     *  way real incidents do: `burst_len` consecutive planted lines
     *  every `incident_every` lines, so the postings concentrate on a
     *  few device pages instead of smearing across all of them. */
    uint64_t incident_every = 487;
    /** Consecutive planted lines per burst (rotating forms). */
    uint64_t burst_len = 6;
    /** The attacker host; queried as ip:<addr> and ip:<subnet>/28. */
    std::string attacker_ip = "192.0.2.77";
    /** Same /28 as the attacker, different host: inside subnet
     *  queries, outside exact-address queries. */
    std::string decoy_ip = "192.0.2.78";
    /** The hijacked session; appears bracketed as [<id>]. */
    std::string session_id = "f00dfeed8badc0de";
};

/** 0-based line numbers of the planted evidence. */
struct IncidentGroundTruth {
    /** Lines carrying attacker_ip (any form). */
    std::vector<uint64_t> attacker_lines;
    /** Lines carrying session_id. */
    std::vector<uint64_t> session_lines;
    /** Lines carrying decoy_ip. */
    std::vector<uint64_t> decoy_lines;
    uint64_t total_lines = 0;
};

/**
 * Generates the newline-terminated scenario text. Same (spec) always
 * produces identical bytes and ground truth.
 */
std::string generateIncident(const IncidentSpec &spec,
                             IncidentGroundTruth *truth);

} // namespace mithril::loggen

#endif // MITHRIL_LOGGEN_INCIDENT_H
