/**
 * @file
 * Typed-field pseudo-index: per-type posting lists on device pages
 * (DESIGN.md §15).
 *
 * Where the inverted index maps tokens to *data pages*, the typed index
 * maps normalized typed keys (IPs, MACs, hex ids, timestamps) to *line
 * numbers* — the logpi model: a tiny side index that answers "which
 * lines mention this address" without touching the compressed data at
 * all, then maps the hit lines back to the exact data pages to stage.
 *
 * Layout: an in-memory sorted key directory (key -> pending postings +
 * the device pages already holding flushed postings) over CRC-framed
 * 4 KB posting pages:
 *
 *   page   = header { magic 'MTYP', version, payload_len, crc32 }
 *            record*                      (records never split pages)
 *   record = { kind u8, key_len u16, count u32, key bytes,
 *              varint line deltas (first absolute, then gaps) }
 *
 * Durability follows the inverted index exactly: posting pages are
 * written through the store directly (no journaling, no fault draw on
 * the write path — so the crash grid's write ordinals are unchanged),
 * are swept as garbage at mount time, and are rebuilt from the
 * journal-verified surviving data pages. Reads go through the faulted
 * overlapped-read path with CRC verification and the fault plan's
 * retry budget; unrecoverable damage reports integrity_lost and the
 * query degrades to a typed full scan.
 */
#ifndef MITHRIL_TYPED_TYPED_INDEX_H
#define MITHRIL_TYPED_TYPED_INDEX_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/ssd_model.h"
#include "typed/predicate.h"
#include "typed/typed_key.h"

namespace mithril::typed {

/** Result of one predicate lookup against the posting lists. */
struct LookupResult {
    /** Matching line numbers, ascending, unique. Complete unless
     *  integrity_lost. */
    std::vector<uint64_t> lines;
    uint64_t pages_read = 0;  ///< typed-index pages fetched
    uint64_t bytes_read = 0;  ///< typed-index bytes fetched
    /** Posting bytes unrecoverable after retries: the line list may be
     *  missing entries and the caller must degrade to a scan. */
    bool integrity_lost = false;
};

/** The typed posting-list index; shares the SsdModel with the data. */
class TypedIndex
{
  public:
    explicit TypedIndex(storage::SsdModel *ssd);

    /** Ingest: extracts every typed key of @p line (0-based global
     *  @p line_no) into the pending posting lists. */
    void addLine(std::string_view line, uint64_t line_no);

    /** Registers a sealed data page covering lines
     *  [@p first_line, @p first_line + @p line_count) — the directory
     *  that maps posting hits back to data pages. */
    void notePage(storage::PageId page, uint64_t first_line,
                  uint64_t line_count);

    /** Packs all pending postings into posting pages on the device. */
    void flush();

    /** Resolves @p pred against flushed pages + the pending tail. */
    LookupResult lookup(const Predicate &pred);

    /** Data pages holding @p lines (ascending input; sorted unique
     *  output), via the sealed-page directory. */
    std::vector<storage::PageId>
    pagesForLines(std::span<const uint64_t> lines) const;

    /** One sealed data page's line span. */
    struct PageSpan {
        storage::PageId page;
        uint64_t first_line;
        uint64_t line_count;
    };

    /** Sealed-page directory, ascending by first_line. */
    const std::vector<PageSpan> &pageDirectory() const
    {
        return page_dir_;
    }

    /** Distinct keys currently tracked (tests/diagnostics). */
    size_t keyCount() const { return keys_.size(); }

    /** Serializes the in-memory state (key directory, page directory)
     *  for device-image persistence; posting pages live in the shared
     *  SsdModel and persist with it. */
    void serialize(std::vector<uint8_t> *out) const;

    /** Restores state produced by serialize().
     *  @retval kCorruptData malformed blob. */
    Status deserialize(std::span<const uint8_t> in);

    /** Counters: keys, postings, pages written/read, corrupt pages. */
    const StatSet &stats() const { return stats_; }

    /** Joins the unified metric namespace as `typed.*`. */
    void bindMetrics(obs::MetricsRegistry *metrics)
    {
        stats_.bind(metrics, "typed.");
    }

    size_t memoryFootprint() const;

  private:
    struct KeyEntry {
        std::vector<uint64_t> pending;        ///< unflushed line numbers
        std::vector<storage::PageId> pages;   ///< posting pages with
                                              ///< records for this key
    };

    /** On-device posting page header (little-endian fields). */
    struct PageHeader {
        uint32_t magic;        ///< kTypedMagic
        uint32_t version;      ///< kTypedVersion
        uint32_t payload_len;  ///< record bytes after the header
        uint32_t crc;          ///< CRC-32 of the payload
    };
    static constexpr uint32_t kTypedMagic = 0x5059544d;  // 'MTYP'
    static constexpr uint32_t kTypedVersion = 1;

    void flushPageBuffer(std::vector<uint8_t> *payload,
                         std::vector<const TypedKey *> *page_keys);

    storage::SsdModel *ssd_;
    std::map<TypedKey, KeyEntry> keys_;
    std::vector<PageSpan> page_dir_;
    StatSet stats_;
};

} // namespace mithril::typed

#endif // MITHRIL_TYPED_TYPED_INDEX_H
