#include "typed/typed_index.h"

#include <algorithm>
#include <cstring>

#include "common/bits.h"
#include "common/hash.h"
#include "typed/extract.h"

namespace mithril::typed {

namespace {

constexpr size_t kHeaderSize = 16;
constexpr size_t kMaxPayload = storage::kPageSize - kHeaderSize;

/** LEB128 varint append. */
void
putVarint(std::vector<uint8_t> *out, uint64_t value)
{
    while (value >= 0x80) {
        out->push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out->push_back(static_cast<uint8_t>(value));
}

/** LEB128 varint read; false on truncation/overlong input. */
bool
getVarint(std::span<const uint8_t> payload, size_t *pos, uint64_t *out)
{
    uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (*pos >= payload.size()) {
            return false;
        }
        uint8_t byte = payload[(*pos)++];
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            *out = value;
            return true;
        }
    }
    return false;
}

/** Bytes one posting record occupies for @p key with @p count lines
 *  encoded as @p delta_bytes of varints. */
size_t
recordSize(size_t key_len, size_t delta_bytes)
{
    return 1 + 2 + 4 + key_len + delta_bytes;
}

} // namespace

TypedIndex::TypedIndex(storage::SsdModel *ssd) : ssd_(ssd) {}

void
TypedIndex::addLine(std::string_view line, uint64_t line_no)
{
    extractLine(line, [&](const TypedKey &key) {
        KeyEntry &entry = keys_[key];
        if (!entry.pending.empty() && entry.pending.back() == line_no) {
            return; // one posting per (key, line)
        }
        entry.pending.push_back(line_no);
        stats_.add("postings");
    });
}

void
TypedIndex::notePage(storage::PageId page, uint64_t first_line,
                     uint64_t line_count)
{
    page_dir_.push_back(PageSpan{page, first_line, line_count});
}

void
TypedIndex::flushPageBuffer(std::vector<uint8_t> *payload,
                            std::vector<const TypedKey *> *page_keys)
{
    if (payload->empty()) {
        return;
    }
    storage::PageId id = ssd_->allocate();
    auto page = ssd_->store().mutablePage(id);
    std::memset(page.data(), 0, page.size());
    PageHeader header{kTypedMagic, kTypedVersion,
                      static_cast<uint32_t>(payload->size()),
                      crc32(payload->data(), payload->size())};
    std::memcpy(page.data(), &header, sizeof header);
    std::memcpy(page.data() + kHeaderSize, payload->data(),
                payload->size());
    for (const TypedKey *key : *page_keys) {
        std::vector<storage::PageId> &pages = keys_[*key].pages;
        if (pages.empty() || pages.back() != id) {
            pages.push_back(id);
        }
    }
    stats_.add("pages_written");
    stats_.add("bytes_written", storage::kPageSize);
    payload->clear();
    page_keys->clear();
}

void
TypedIndex::flush()
{
    std::vector<uint8_t> payload;
    std::vector<const TypedKey *> page_keys;
    // std::map iteration is key-sorted: page contents are a
    // deterministic function of the postings alone.
    for (auto &[key, entry] : keys_) {
        size_t next = 0;
        while (next < entry.pending.size()) {
            // Encode as many of this key's remaining postings as fit
            // beside the current payload; records never span pages.
            std::vector<uint8_t> deltas;
            size_t count = 0;
            uint64_t prev = 0;
            // Keys are bounded (longest is a 64-nibble hex id), so an
            // empty page always fits a record header plus one 10-byte
            // worst-case varint.
            size_t header_cost = recordSize(key.bytes.size(), 0);
            if (header_cost + 10 > kMaxPayload - payload.size()) {
                flushPageBuffer(&payload, &page_keys);
            }
            size_t budget = kMaxPayload - payload.size() - header_cost;
            for (size_t i = next; i < entry.pending.size(); ++i) {
                size_t before = deltas.size();
                putVarint(&deltas, count == 0
                                       ? entry.pending[i]
                                       : entry.pending[i] - prev);
                if (deltas.size() > budget) {
                    deltas.resize(before);
                    break;
                }
                prev = entry.pending[i];
                ++count;
            }
            MITHRIL_ASSERT(count > 0);
            payload.push_back(static_cast<uint8_t>(key.kind));
            putLe(payload, static_cast<uint16_t>(key.bytes.size()));
            putLe(payload, static_cast<uint32_t>(count));
            payload.insert(payload.end(), key.bytes.begin(),
                           key.bytes.end());
            payload.insert(payload.end(), deltas.begin(), deltas.end());
            page_keys.push_back(&key);
            stats_.add("records_flushed");
            next += count;
            if (payload.size() + recordSize(1, 10) > kMaxPayload) {
                flushPageBuffer(&payload, &page_keys);
            }
        }
        entry.pending.clear();
    }
    flushPageBuffer(&payload, &page_keys);
}

LookupResult
TypedIndex::lookup(const Predicate &pred)
{
    LookupResult result;
    stats_.add("lookups");
    if (!pred.active()) {
        return result;
    }

    // Sorted-map range scan over [lo, hi] of the predicate's kind —
    // this is why the key encoding must be order-preserving.
    std::vector<storage::PageId> needed;
    TypedKey lo_key{pred.kind, pred.lo};
    for (auto it = keys_.lower_bound(lo_key); it != keys_.end(); ++it) {
        if (it->first.kind != pred.kind || it->first.bytes > pred.hi) {
            break;
        }
        result.lines.insert(result.lines.end(),
                            it->second.pending.begin(),
                            it->second.pending.end());
        needed.insert(needed.end(), it->second.pages.begin(),
                      it->second.pages.end());
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()),
                 needed.end());

    // CRC-driven re-reads only help when a fault plan can change the
    // bytes between attempts (same convention as the inverted index).
    unsigned max_rereads = ssd_->faultPlan() != nullptr
                               ? ssd_->faultPlan()->config().max_retries
                               : 0;

    for (storage::PageId id : needed) {
        std::vector<uint8_t> bytes;
        auto readable = [&](const std::vector<uint8_t> &buf,
                            PageHeader *header) {
            if (buf.size() < kHeaderSize) {
                return false;
            }
            std::memcpy(header, buf.data(), sizeof *header);
            return header->magic == kTypedMagic
                   && header->version == kTypedVersion
                   && header->payload_len <= kMaxPayload
                   && header->crc == crc32(buf.data() + kHeaderSize,
                                           header->payload_len);
        };
        PageHeader header{};
        Status st = ssd_->readOverlapped(id, storage::Link::kExternal,
                                         &bytes);
        bool ok = st.isOk() && readable(bytes, &header);
        for (unsigned r = 0; !ok && r < max_rereads; ++r) {
            if (!ssd_->rereadPage(id, storage::Link::kExternal, &bytes)
                     .isOk()) {
                break;
            }
            ok = readable(bytes, &header);
            if (ok) {
                stats_.add("page_crc_recoveries");
            }
        }
        result.pages_read += 1;
        result.bytes_read += storage::kPageSize;
        stats_.add("pages_read");
        if (!ok) {
            stats_.add("corrupt_pages");
            result.integrity_lost = true;
            continue;
        }

        std::span<const uint8_t> payload(bytes.data() + kHeaderSize,
                                         header.payload_len);
        size_t pos = 0;
        while (pos < payload.size()) {
            if (payload.size() - pos < 7) {
                break; // zero padding after the last record
            }
            auto kind = static_cast<TypedKind>(payload[pos]);
            uint16_t key_len = getLe<uint16_t>(&payload[pos + 1]);
            uint32_t count = getLe<uint32_t>(&payload[pos + 3]);
            pos += 7;
            if (kind == TypedKind::kNone || count == 0
                || payload.size() - pos < key_len) {
                break;
            }
            std::span<const uint8_t> key_bytes =
                payload.subspan(pos, key_len);
            pos += key_len;
            std::vector<uint8_t> key_vec(key_bytes.begin(),
                                         key_bytes.end());
            bool match = kind == pred.kind && key_vec >= pred.lo
                         && key_vec <= pred.hi;
            uint64_t prev = 0;
            bool bad = false;
            for (uint32_t i = 0; i < count; ++i) {
                uint64_t delta = 0;
                if (!getVarint(payload, &pos, &delta)) {
                    bad = true;
                    break;
                }
                prev = i == 0 ? delta : prev + delta;
                if (match) {
                    result.lines.push_back(prev);
                }
            }
            if (bad) {
                // Truncated record despite a clean CRC: structural
                // corruption; treat like an unreadable page.
                stats_.add("corrupt_pages");
                result.integrity_lost = true;
                break;
            }
        }
    }

    std::sort(result.lines.begin(), result.lines.end());
    result.lines.erase(
        std::unique(result.lines.begin(), result.lines.end()),
        result.lines.end());
    stats_.add("lines_returned", result.lines.size());
    return result;
}

std::vector<storage::PageId>
TypedIndex::pagesForLines(std::span<const uint64_t> lines) const
{
    std::vector<storage::PageId> pages;
    for (uint64_t line : lines) {
        // page_dir_ is ascending by first_line (pages seal in order).
        auto it = std::upper_bound(
            page_dir_.begin(), page_dir_.end(), line,
            [](uint64_t l, const PageSpan &span) {
                return l < span.first_line;
            });
        if (it == page_dir_.begin()) {
            continue;
        }
        --it;
        if (line < it->first_line + it->line_count) {
            if (pages.empty() || pages.back() != it->page) {
                pages.push_back(it->page);
            }
        }
    }
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    return pages;
}

void
TypedIndex::serialize(std::vector<uint8_t> *out) const
{
    putLe(*out, kTypedMagic);
    putLe(*out, kTypedVersion);
    putLe(*out, static_cast<uint64_t>(keys_.size()));
    for (const auto &[key, entry] : keys_) {
        out->push_back(static_cast<uint8_t>(key.kind));
        putLe(*out, static_cast<uint32_t>(key.bytes.size()));
        out->insert(out->end(), key.bytes.begin(), key.bytes.end());
        putLe(*out, static_cast<uint64_t>(entry.pending.size()));
        for (uint64_t line : entry.pending) {
            putLe(*out, line);
        }
        putLe(*out, static_cast<uint64_t>(entry.pages.size()));
        for (storage::PageId page : entry.pages) {
            putLe(*out, page);
        }
    }
    putLe(*out, static_cast<uint64_t>(page_dir_.size()));
    for (const PageSpan &span : page_dir_) {
        putLe(*out, span.page);
        putLe(*out, span.first_line);
        putLe(*out, span.line_count);
    }
}

Status
TypedIndex::deserialize(std::span<const uint8_t> in)
{
    size_t pos = 0;
    auto need = [&](size_t n) { return in.size() - pos >= n; };
    auto fail = [] {
        return Status::corruptData("typed index blob malformed");
    };
    if (!need(16) || getLe<uint32_t>(&in[pos]) != kTypedMagic
        || getLe<uint32_t>(&in[pos + 4]) != kTypedVersion) {
        return fail();
    }
    uint64_t key_count = getLe<uint64_t>(&in[pos + 8]);
    pos += 16;
    std::map<TypedKey, KeyEntry> keys;
    for (uint64_t k = 0; k < key_count; ++k) {
        if (!need(5)) {
            return fail();
        }
        TypedKey key;
        key.kind = static_cast<TypedKind>(in[pos]);
        uint32_t len = getLe<uint32_t>(&in[pos + 1]);
        pos += 5;
        if (!need(len)) {
            return fail();
        }
        key.bytes.assign(in.begin() + static_cast<ptrdiff_t>(pos),
                         in.begin() + static_cast<ptrdiff_t>(pos + len));
        pos += len;
        KeyEntry entry;
        if (!need(8)) {
            return fail();
        }
        uint64_t pending = getLe<uint64_t>(&in[pos]);
        pos += 8;
        if (!need(pending * 8)) {
            return fail();
        }
        entry.pending.reserve(pending);
        for (uint64_t i = 0; i < pending; ++i) {
            entry.pending.push_back(getLe<uint64_t>(&in[pos]));
            pos += 8;
        }
        if (!need(8)) {
            return fail();
        }
        uint64_t pages = getLe<uint64_t>(&in[pos]);
        pos += 8;
        if (!need(pages * 8)) {
            return fail();
        }
        entry.pages.reserve(pages);
        for (uint64_t i = 0; i < pages; ++i) {
            entry.pages.push_back(getLe<uint64_t>(&in[pos]));
            pos += 8;
        }
        keys.emplace(std::move(key), std::move(entry));
    }
    if (!need(8)) {
        return fail();
    }
    uint64_t dir_count = getLe<uint64_t>(&in[pos]);
    pos += 8;
    if (!need(dir_count * 24)) {
        return fail();
    }
    std::vector<PageSpan> dir;
    dir.reserve(dir_count);
    for (uint64_t i = 0; i < dir_count; ++i) {
        PageSpan span{};
        span.page = getLe<uint64_t>(&in[pos]);
        span.first_line = getLe<uint64_t>(&in[pos + 8]);
        span.line_count = getLe<uint64_t>(&in[pos + 16]);
        pos += 24;
        dir.push_back(span);
    }
    keys_ = std::move(keys);
    page_dir_ = std::move(dir);
    return Status::ok();
}

size_t
TypedIndex::memoryFootprint() const
{
    size_t total = sizeof(*this)
                   + page_dir_.capacity() * sizeof(PageSpan);
    for (const auto &[key, entry] : keys_) {
        total += sizeof(TypedKey) + key.bytes.capacity()
                 + sizeof(KeyEntry)
                 + entry.pending.capacity() * sizeof(uint64_t)
                 + entry.pages.capacity() * sizeof(storage::PageId);
    }
    return total;
}

} // namespace mithril::typed
