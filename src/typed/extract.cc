#include "typed/extract.h"

#include <vector>

#include "common/text.h"

namespace mithril::typed {

namespace {

bool
tryIp4(std::string_view candidate, TypedKey *out)
{
    std::array<uint8_t, 4> octets{};
    if (!parseIp4(candidate, &octets)) {
        return false;
    }
    *out = ip4Key(octets);
    return true;
}

bool
tryMac(std::string_view candidate, TypedKey *out)
{
    std::array<uint8_t, 6> octets{};
    if (!parseMac(candidate, &octets)) {
        return false;
    }
    *out = macKey(octets);
    return true;
}

bool
tryIp6(std::string_view candidate, TypedKey *out)
{
    // Require at least one ':' so plain hex ids never reach the
    // (permissive) IPv6 grammar.
    if (candidate.find(':') == std::string_view::npos) {
        return false;
    }
    std::array<uint8_t, 16> groups{};
    if (!parseIp6(candidate, &groups)) {
        return false;
    }
    *out = ip6Key(groups);
    return true;
}

bool
tryHexId(std::string_view candidate, TypedKey *out)
{
    std::string nibbles;
    if (!parseHexId(candidate, &nibbles)) {
        return false;
    }
    *out = hexIdKey(nibbles);
    return true;
}

bool
tryRfc3339(std::string_view candidate, TypedKey *out)
{
    uint64_t epoch_s = 0;
    if (!parseRfc3339(candidate, &epoch_s)) {
        return false;
    }
    *out = timestampKey(epoch_s);
    return true;
}

// MAC before IPv6: "aa:bb:cc:dd:ee:ff" is also parseable as hex
// groups, and the 17-byte two-nibble form is the stronger signal.
// IPv4 before hex id keeps "10101010" unambiguous (it has no dots, so
// the order only matters for documentation).
constexpr Extractor kRegistry[] = {
    {"ip4", TypedKind::kIp4, tryIp4},
    {"mac", TypedKind::kMac, tryMac},
    {"ip6", TypedKind::kIp6, tryIp6},
    {"hexid", TypedKind::kHexId, tryHexId},
    {"rfc3339", TypedKind::kTimestamp, tryRfc3339},
};

bool
isTrimmable(char c)
{
    switch (c) {
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case '<':
    case '>':
    case '"':
    case '\'':
    case ',':
    case ';':
        return true;
    default:
        return false;
    }
}

/** Strips surrounding punctuation plus a trailing sentence '.' — but
 *  never a '.' that would cut into a dotted quad ("10.1.2.3." trims,
 *  "10.1.2.3" does not). */
std::string_view
trimPunct(std::string_view token)
{
    while (!token.empty() && isTrimmable(token.front())) {
        token.remove_prefix(1);
    }
    while (!token.empty()
           && (isTrimmable(token.back()) || token.back() == '.'
               || token.back() == '!' || token.back() == '?')) {
        if (token.back() == '.' && token.size() >= 2
            && token[token.size() - 2] >= '0'
            && token[token.size() - 2] <= '9'
            && token.find('.') != token.size() - 1) {
            // "10.1.2.3." — strip exactly the one trailing dot.
            token.remove_suffix(1);
            break;
        }
        token.remove_suffix(1);
    }
    return token;
}

/** Tries every registered extractor against one candidate. */
bool
tryCandidate(std::string_view candidate, TypedKey *out)
{
    if (candidate.empty()) {
        return false;
    }
    for (const Extractor &e : kRegistry) {
        if (e.parse(candidate, out)) {
            return true;
        }
    }
    return false;
}

} // namespace

std::span<const Extractor>
extractors()
{
    return kRegistry;
}

void
extractLine(std::string_view line, const KeySink &sink)
{
    // Line-level pass: the syslog header ("Aug  9 12:34:56") spans
    // three whitespace tokens, so it cannot be recognized token-wise.
    std::vector<std::string_view> tokens = splitTokens(line);
    for (size_t i = 0; i + 2 < tokens.size() && i < 4; ++i) {
        uint64_t epoch_s = 0;
        if (parseSyslogTime(tokens[i], tokens[i + 1], tokens[i + 2],
                            &epoch_s)) {
            sink(timestampKey(epoch_s));
            break;
        }
    }

    for (std::string_view token : tokens) {
        TypedKey key;
        // Boundary-candidate ladder: raw token, punctuation-trimmed,
        // value after '=', value after the last ':'. First hit wins.
        if (tryCandidate(token, &key)) {
            sink(key);
            continue;
        }
        std::string_view trimmed = trimPunct(token);
        if (trimmed != token && tryCandidate(trimmed, &key)) {
            sink(key);
            continue;
        }
        size_t eq = trimmed.rfind('=');
        if (eq != std::string_view::npos
            && tryCandidate(trimPunct(trimmed.substr(eq + 1)), &key)) {
            sink(key);
            continue;
        }
        size_t colon = trimmed.rfind(':');
        if (colon != std::string_view::npos
            && tryCandidate(trimPunct(trimmed.substr(colon + 1)),
                            &key)) {
            sink(key);
        }
    }
}

bool
lineContainsKey(std::string_view line, const TypedKey &key)
{
    bool found = false;
    extractLine(line, [&](const TypedKey &k) {
        if (k == key) {
            found = true;
        }
    });
    return found;
}

} // namespace mithril::typed
