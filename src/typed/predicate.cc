#include "typed/predicate.h"

#include <algorithm>
#include <array>

#include "common/text.h"
#include "typed/extract.h"

namespace mithril::typed {

namespace {

/** Unsigned decimal with no sign/whitespace; false on overflow. */
bool
parseU64(std::string_view text, uint64_t *out)
{
    if (text.empty() || text.size() > 20) {
        return false;
    }
    uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (~0ull - digit) / 10) {
            return false;
        }
        value = value * 10 + digit;
    }
    *out = value;
    return true;
}

/** One time-window bound: epoch seconds or an RFC 3339 timestamp. */
bool
parseTimeBound(std::string_view text, uint64_t *out)
{
    return parseU64(text, out) || parseRfc3339(text, out);
}

Status
badPredicate(std::string_view word, const char *why)
{
    return Status::invalidArgument(
        strprintf("typed predicate '%.*s': %s",
                  static_cast<int>(word.size()), word.data(), why));
}

/** Applies a /prefix mask over an N-byte address, producing [lo, hi]. */
template <size_t N>
void
cidrRange(const std::array<uint8_t, N> &addr, unsigned prefix,
          std::vector<uint8_t> *lo, std::vector<uint8_t> *hi)
{
    lo->assign(addr.begin(), addr.end());
    hi->assign(addr.begin(), addr.end());
    for (size_t i = 0; i < N; ++i) {
        unsigned bit = static_cast<unsigned>(i) * 8;
        uint8_t mask;
        if (prefix >= bit + 8) {
            mask = 0xff;
        } else if (prefix <= bit) {
            mask = 0x00;
        } else {
            mask = static_cast<uint8_t>(0xff << (8 - (prefix - bit)));
        }
        (*lo)[i] &= mask;
        (*hi)[i] |= static_cast<uint8_t>(~mask);
    }
}

Status
parseIpPredicate(std::string_view word, std::string_view value,
                 Predicate *out)
{
    unsigned prefix = 0;
    bool has_prefix = false;
    size_t slash = value.rfind('/');
    std::string_view addr_text = value;
    if (slash != std::string_view::npos) {
        uint64_t p = 0;
        if (!parseU64(value.substr(slash + 1), &p) || p > 128) {
            return badPredicate(word, "bad CIDR prefix length");
        }
        prefix = static_cast<unsigned>(p);
        has_prefix = true;
        addr_text = value.substr(0, slash);
    }
    std::array<uint8_t, 4> v4{};
    if (parseIp4(addr_text, &v4)) {
        if (has_prefix && prefix > 32) {
            return badPredicate(word, "IPv4 prefix length exceeds 32");
        }
        if (!has_prefix) {
            prefix = 32;
        }
        out->kind = TypedKind::kIp4;
        cidrRange(v4, prefix, &out->lo, &out->hi);
        std::array<uint8_t, 4> base{};
        std::copy(out->lo.begin(), out->lo.end(), base.begin());
        out->text = "ip:" + formatIp4(base);
        if (prefix < 32) {
            out->text += strprintf("/%u", prefix);
        }
        return Status::ok();
    }
    std::array<uint8_t, 16> v6{};
    if (parseIp6(addr_text, &v6)) {
        if (!has_prefix) {
            prefix = 128;
        }
        out->kind = TypedKind::kIp6;
        cidrRange(v6, prefix, &out->lo, &out->hi);
        std::array<uint8_t, 16> base{};
        std::copy(out->lo.begin(), out->lo.end(), base.begin());
        out->text = "ip:" + formatIp6(base);
        if (prefix < 128) {
            out->text += strprintf("/%u", prefix);
        }
        return Status::ok();
    }
    return badPredicate(word, "unparseable address");
}

} // namespace

bool
Predicate::matchesKey(const TypedKey &key) const
{
    if (key.kind != kind) {
        return false;
    }
    return key.bytes >= lo && key.bytes <= hi;
}

bool
isTypedWord(std::string_view word)
{
    return word.rfind("ip:", 0) == 0 || word.rfind("id:", 0) == 0
           || word.rfind("mac:", 0) == 0 || word.rfind("time:", 0) == 0;
}

Status
parsePredicate(std::string_view word, Predicate *out)
{
    *out = Predicate{};
    if (word.rfind("ip:", 0) == 0) {
        return parseIpPredicate(word, word.substr(3), out);
    }
    if (word.rfind("id:", 0) == 0) {
        std::string nibbles;
        if (!parseHexId(word.substr(3), &nibbles)) {
            return badPredicate(
                word, "hex id needs >= 8 hex nibbles, one non-digit");
        }
        out->kind = TypedKind::kHexId;
        TypedKey key = hexIdKey(nibbles);
        out->lo = key.bytes;
        out->hi = key.bytes;
        out->text = "id:" + nibbles;
        return Status::ok();
    }
    if (word.rfind("mac:", 0) == 0) {
        std::array<uint8_t, 6> octets{};
        if (!parseMac(word.substr(4), &octets)) {
            return badPredicate(word, "unparseable MAC address");
        }
        out->kind = TypedKind::kMac;
        TypedKey key = macKey(octets);
        out->lo = key.bytes;
        out->hi = key.bytes;
        out->text = "mac:" + formatMac(octets);
        return Status::ok();
    }
    if (word.rfind("time:", 0) == 0) {
        std::string_view value = word.substr(5);
        if (value.size() < 2 || value.front() != '['
            || value.back() != ']') {
            return badPredicate(word, "window must be time:[t0,t1]");
        }
        value = value.substr(1, value.size() - 2);
        size_t comma = value.find(',');
        if (comma == std::string_view::npos) {
            return badPredicate(word, "window must be time:[t0,t1]");
        }
        uint64_t t0 = 0;
        uint64_t t1 = 0;
        if (!parseTimeBound(value.substr(0, comma), &t0)
            || !parseTimeBound(value.substr(comma + 1), &t1)) {
            return badPredicate(word, "unparseable window bound");
        }
        if (t0 > t1) {
            return badPredicate(word, "window bounds out of order");
        }
        out->kind = TypedKind::kTimestamp;
        out->lo = timestampKey(t0).bytes;
        out->hi = timestampKey(t1).bytes;
        out->text = strprintf("time:[%llu,%llu]",
                              static_cast<unsigned long long>(t0),
                              static_cast<unsigned long long>(t1));
        return Status::ok();
    }
    return badPredicate(word, "unknown typed prefix");
}

bool
lineMatches(std::string_view line, const Predicate &pred)
{
    if (!pred.active()) {
        return false;
    }
    bool hit = false;
    extractLine(line, [&](const TypedKey &key) {
        if (pred.matchesKey(key)) {
            hit = true;
        }
    });
    return hit;
}

} // namespace mithril::typed
