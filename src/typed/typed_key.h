/**
 * @file
 * Typed-field keys: the normalized, comparable form of the values the
 * extractor registry pulls out of log lines (DESIGN.md §15).
 *
 * A TypedKey is (kind, bytes) where the bytes are a *big-endian
 * order-preserving encoding* of the value: lexicographic comparison of
 * the byte strings equals numeric comparison of the values. That single
 * property is what makes range predicates (CIDR blocks, time windows)
 * resolvable against the sorted posting-list directory without decoding
 * every key.
 *
 * Encodings:
 *   - kIp4:       4 bytes, network order.
 *   - kIp6:       16 bytes, network order (`::` expanded).
 *   - kMac:       6 bytes.
 *   - kHexId:     lowercase ASCII hex nibbles, `0x` stripped. Variable
 *                 length; predicates on hex ids are exact-match only.
 *   - kTimestamp: 8 bytes, big-endian seconds since the Unix epoch.
 *
 * Normalization is strict by design: `10.0.0.01` (leading zero) and
 * `10.0.0.256` (octet overflow) are rejected rather than guessed at, so
 * one value has exactly one key and the on-device posting lists never
 * alias. The parse helpers return false on malformed input instead of
 * producing a Status — extraction runs on every ingested line and most
 * tokens are not typed values.
 */
#ifndef MITHRIL_TYPED_TYPED_KEY_H
#define MITHRIL_TYPED_TYPED_KEY_H

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mithril::typed {

/** The value families the extractor registry recognizes. */
enum class TypedKind : uint8_t {
    kNone = 0,
    kIp4 = 1,
    kIp6 = 2,
    kMac = 3,
    kHexId = 4,
    kTimestamp = 5,
};

/** Stable lowercase name ("ip4", "mac", ...) for reports and tests. */
const char *kindName(TypedKind kind);

/** A normalized typed value; ordering is kind-major, then bytewise. */
struct TypedKey {
    TypedKind kind = TypedKind::kNone;
    std::vector<uint8_t> bytes;

    auto operator<=>(const TypedKey &) const = default;

    bool valid() const { return kind != TypedKind::kNone; }
};

// ---- strict normalizers (false on malformed input) --------------------

/** Dotted quad; exactly 4 decimal octets 0..255, no leading zeros. */
bool parseIp4(std::string_view text, std::array<uint8_t, 4> *out);

/**
 * RFC 4291 textual IPv6, including one `::` zero-run compression and an
 * optional embedded dotted-quad tail (`::ffff:10.1.2.3`). Hex groups are
 * 1-4 nibbles, case-insensitive.
 */
bool parseIp6(std::string_view text, std::array<uint8_t, 16> *out);

/** Six 2-nibble groups separated uniformly by ':' or '-'. */
bool parseMac(std::string_view text, std::array<uint8_t, 6> *out);

/**
 * Opaque hex identifier: optional `0x` prefix, then 8..64 hex nibbles
 * of which at least one is alphabetic (a pure digit run is a number,
 * not an id). @p out receives the lowercase nibbles, prefix stripped.
 */
bool parseHexId(std::string_view text, std::string *out);

/**
 * RFC 3339 timestamp (`2026-08-09T12:34:56Z`, optional fractional
 * seconds, `Z` or `+hh:mm`/`-hh:mm` offset) to epoch seconds. Fractional
 * seconds truncate.
 */
bool parseRfc3339(std::string_view text, uint64_t *epoch_s);

/**
 * Classic syslog header triple (`Aug  9 12:34:56` split into month, day,
 * hh:mm:ss tokens) to epoch seconds. Syslog omits the year; the fixed
 * convention year 2000 is used so keys stay comparable within a corpus
 * (documented in DESIGN.md §15 — windows are relative, not absolute).
 */
bool parseSyslogTime(std::string_view month, std::string_view day,
                     std::string_view hms, uint64_t *epoch_s);

/** Civil date to days since 1970-01-01 (proleptic Gregorian). */
int64_t daysFromCivil(int64_t y, unsigned m, unsigned d);

// ---- key constructors -------------------------------------------------

TypedKey ip4Key(const std::array<uint8_t, 4> &octets);
TypedKey ip6Key(const std::array<uint8_t, 16> &groups);
TypedKey macKey(const std::array<uint8_t, 6> &octets);
TypedKey hexIdKey(std::string_view nibbles);
TypedKey timestampKey(uint64_t epoch_s);

// ---- canonical text ---------------------------------------------------

std::string formatIp4(const std::array<uint8_t, 4> &octets);

/** RFC 5952 canonical form: lowercase, longest zero run compressed. */
std::string formatIp6(const std::array<uint8_t, 16> &groups);

std::string formatMac(const std::array<uint8_t, 6> &octets);

/** Canonical rendering of any key ("10.1.2.3", "deadbeef01", "1723...").
 */
std::string formatKey(const TypedKey &key);

} // namespace mithril::typed

#endif // MITHRIL_TYPED_TYPED_KEY_H
