#include "typed/typed_key.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"
#include "common/text.h"

namespace mithril::typed {

namespace {

bool
isHexDigit(char c)
{
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
           || (c >= 'A' && c <= 'F');
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

char
toLowerHex(char c)
{
    return (c >= 'A' && c <= 'F') ? static_cast<char>(c - 'A' + 'a') : c;
}

/** Parses a decimal field of 1..@p max_digits digits, no sign, no
 *  leading zeros unless the value is exactly "0" and @p zero_ok. */
bool
parseStrictDecimal(std::string_view text, unsigned max_value,
                   unsigned *out)
{
    if (text.empty() || text.size() > 3) {
        return false;
    }
    if (text.size() > 1 && text[0] == '0') {
        return false; // leading zero: not canonical, rejected
    }
    unsigned value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > max_value) {
        return false;
    }
    *out = value;
    return true;
}

/** Parses exactly @p digits decimal digits (leading zeros allowed —
 *  fixed-width timestamp fields). */
bool
parseFixedDigits(std::string_view text, size_t digits, unsigned *out)
{
    if (text.size() != digits) {
        return false;
    }
    unsigned value = 0;
    for (char c : text) {
        if (c < '0' || c > '9') {
            return false;
        }
        value = value * 10 + static_cast<unsigned>(c - '0');
    }
    *out = value;
    return true;
}

/** One 1-4 nibble IPv6 hex group. */
bool
parseHexGroup(std::string_view text, uint16_t *out)
{
    if (text.empty() || text.size() > 4) {
        return false;
    }
    unsigned value = 0;
    for (char c : text) {
        int v = hexValue(c);
        if (v < 0) {
            return false;
        }
        value = (value << 4) | static_cast<unsigned>(v);
    }
    *out = static_cast<uint16_t>(value);
    return true;
}

constexpr std::string_view kMonths[12] = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
};

/** hh:mm:ss with range checks; returns seconds into the day. */
bool
parseHms(std::string_view text, uint64_t *out)
{
    unsigned h = 0;
    unsigned m = 0;
    unsigned s = 0;
    if (text.size() != 8 || text[2] != ':' || text[5] != ':'
        || !parseFixedDigits(text.substr(0, 2), 2, &h)
        || !parseFixedDigits(text.substr(3, 2), 2, &m)
        || !parseFixedDigits(text.substr(6, 2), 2, &s) || h > 23 || m > 59
        || s > 60) {
        return false;
    }
    *out = static_cast<uint64_t>(h) * 3600 + m * 60 + s;
    return true;
}

} // namespace

const char *
kindName(TypedKind kind)
{
    switch (kind) {
    case TypedKind::kNone:
        return "none";
    case TypedKind::kIp4:
        return "ip4";
    case TypedKind::kIp6:
        return "ip6";
    case TypedKind::kMac:
        return "mac";
    case TypedKind::kHexId:
        return "hexid";
    case TypedKind::kTimestamp:
        return "time";
    }
    return "none";
}

bool
parseIp4(std::string_view text, std::array<uint8_t, 4> *out)
{
    std::array<uint8_t, 4> octets{};
    size_t start = 0;
    for (int i = 0; i < 4; ++i) {
        size_t dot = i == 3 ? text.size() : text.find('.', start);
        if (dot == std::string_view::npos) {
            return false;
        }
        unsigned value = 0;
        if (!parseStrictDecimal(text.substr(start, dot - start), 255,
                                &value)) {
            return false;
        }
        octets[static_cast<size_t>(i)] = static_cast<uint8_t>(value);
        start = dot + 1;
    }
    *out = octets;
    return true;
}

bool
parseIp6(std::string_view text, std::array<uint8_t, 16> *out)
{
    if (text.size() < 2) {
        return false;
    }
    // Split on the (at most one) "::" zero-run marker.
    size_t gap = text.find("::");
    std::string_view head = gap == std::string_view::npos
                                ? text
                                : text.substr(0, gap);
    std::string_view tail = gap == std::string_view::npos
                                ? std::string_view{}
                                : text.substr(gap + 2);
    if (tail.find("::") != std::string_view::npos) {
        return false; // a second "::" is ambiguous
    }

    // Parse a colon-separated group list; the final group may be a
    // dotted quad (embedded IPv4 tail), contributing two groups.
    auto parseGroups = [](std::string_view part,
                          std::vector<uint16_t> *groups) {
        if (part.empty()) {
            return true;
        }
        size_t start = 0;
        while (true) {
            size_t colon = part.find(':', start);
            std::string_view field =
                part.substr(start, colon == std::string_view::npos
                                       ? std::string_view::npos
                                       : colon - start);
            if (colon == std::string_view::npos
                && field.find('.') != std::string_view::npos) {
                std::array<uint8_t, 4> v4{};
                if (!parseIp4(field, &v4)) {
                    return false;
                }
                groups->push_back(
                    static_cast<uint16_t>(v4[0] << 8 | v4[1]));
                groups->push_back(
                    static_cast<uint16_t>(v4[2] << 8 | v4[3]));
                return true;
            }
            uint16_t value = 0;
            if (!parseHexGroup(field, &value)) {
                return false;
            }
            groups->push_back(value);
            if (colon == std::string_view::npos) {
                return true;
            }
            start = colon + 1;
        }
    };

    std::vector<uint16_t> front;
    std::vector<uint16_t> back;
    if (!parseGroups(head, &front) || !parseGroups(tail, &back)) {
        return false;
    }
    size_t total = front.size() + back.size();
    if (gap == std::string_view::npos) {
        if (total != 8) {
            return false;
        }
    } else if (total > 7) {
        return false; // "::" must stand for at least one zero group
    }

    std::array<uint8_t, 16> bytes{};
    for (size_t i = 0; i < front.size(); ++i) {
        bytes[i * 2] = static_cast<uint8_t>(front[i] >> 8);
        bytes[i * 2 + 1] = static_cast<uint8_t>(front[i] & 0xff);
    }
    for (size_t i = 0; i < back.size(); ++i) {
        size_t g = 8 - back.size() + i;
        bytes[g * 2] = static_cast<uint8_t>(back[i] >> 8);
        bytes[g * 2 + 1] = static_cast<uint8_t>(back[i] & 0xff);
    }
    *out = bytes;
    return true;
}

bool
parseMac(std::string_view text, std::array<uint8_t, 6> *out)
{
    if (text.size() != 17) {
        return false;
    }
    char sep = text[2];
    if (sep != ':' && sep != '-') {
        return false;
    }
    std::array<uint8_t, 6> octets{};
    for (size_t i = 0; i < 6; ++i) {
        size_t pos = i * 3;
        int hi = hexValue(text[pos]);
        int lo = hexValue(text[pos + 1]);
        if (hi < 0 || lo < 0) {
            return false;
        }
        if (i < 5 && text[pos + 2] != sep) {
            return false; // mixed separators rejected
        }
        octets[i] = static_cast<uint8_t>(hi << 4 | lo);
    }
    *out = octets;
    return true;
}

bool
parseHexId(std::string_view text, std::string *out)
{
    if (text.size() >= 2 && text[0] == '0'
        && (text[1] == 'x' || text[1] == 'X')) {
        text.remove_prefix(2);
    }
    // 8..64 nibbles: shorter runs are too ambiguous, longer than a
    // SHA-256 digest is not an id (and keys must fit posting records).
    if (text.size() < 8 || text.size() > 64) {
        return false;
    }
    bool has_alpha = false;
    std::string nibbles;
    nibbles.reserve(text.size());
    for (char c : text) {
        if (!isHexDigit(c)) {
            return false;
        }
        if (c > '9') {
            has_alpha = true;
        }
        nibbles.push_back(toLowerHex(c));
    }
    if (!has_alpha) {
        return false; // all-digit runs are numbers, not ids
    }
    *out = std::move(nibbles);
    return true;
}

int64_t
daysFromCivil(int64_t y, unsigned m, unsigned d)
{
    // Howard Hinnant's days_from_civil algorithm.
    y -= m <= 2;
    int64_t era = (y >= 0 ? y : y - 399) / 400;
    auto yoe = static_cast<uint64_t>(y - era * 400);
    uint64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    uint64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool
parseRfc3339(std::string_view text, uint64_t *epoch_s)
{
    // date-time = YYYY-MM-DD "T" hh:mm:ss [frac] (Z | +hh:mm | -hh:mm)
    unsigned year = 0;
    unsigned month = 0;
    unsigned day = 0;
    if (text.size() < 20 || text[4] != '-' || text[7] != '-'
        || (text[10] != 'T' && text[10] != 't')
        || !parseFixedDigits(text.substr(0, 4), 4, &year)
        || !parseFixedDigits(text.substr(5, 2), 2, &month)
        || !parseFixedDigits(text.substr(8, 2), 2, &day) || month < 1
        || month > 12 || day < 1 || day > 31) {
        return false;
    }
    uint64_t seconds = 0;
    if (!parseHms(text.substr(11, 8), &seconds)) {
        return false;
    }
    size_t pos = 19;
    if (pos < text.size() && text[pos] == '.') {
        ++pos;
        size_t digits = 0;
        while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
            ++pos;
            ++digits;
        }
        if (digits == 0) {
            return false;
        }
    }
    if (pos >= text.size()) {
        return false;
    }
    int64_t offset_s = 0;
    char z = text[pos];
    if (z == 'Z' || z == 'z') {
        if (pos + 1 != text.size()) {
            return false;
        }
    } else if (z == '+' || z == '-') {
        unsigned oh = 0;
        unsigned om = 0;
        if (text.size() != pos + 6 || text[pos + 3] != ':'
            || !parseFixedDigits(text.substr(pos + 1, 2), 2, &oh)
            || !parseFixedDigits(text.substr(pos + 4, 2), 2, &om)
            || oh > 23 || om > 59) {
            return false;
        }
        offset_s = static_cast<int64_t>(oh) * 3600 + om * 60;
        if (z == '-') {
            offset_s = -offset_s;
        }
    } else {
        return false;
    }
    int64_t days = daysFromCivil(year, month, day);
    int64_t total = days * 86400 + static_cast<int64_t>(seconds)
                    - offset_s;
    if (total < 0) {
        return false; // pre-epoch times not representable in the key
    }
    *epoch_s = static_cast<uint64_t>(total);
    return true;
}

bool
parseSyslogTime(std::string_view month, std::string_view day,
                std::string_view hms, uint64_t *epoch_s)
{
    unsigned mon = 0;
    for (unsigned i = 0; i < 12; ++i) {
        if (month == kMonths[i]) {
            mon = i + 1;
            break;
        }
    }
    if (mon == 0) {
        return false;
    }
    unsigned d = 0;
    if (!parseStrictDecimal(day, 31, &d) || d < 1) {
        return false;
    }
    uint64_t seconds = 0;
    if (!parseHms(hms, &seconds)) {
        return false;
    }
    // Syslog has no year; the fixed convention year 2000 keeps keys
    // comparable within a corpus (DESIGN.md §15).
    int64_t days = daysFromCivil(2000, mon, d);
    *epoch_s = static_cast<uint64_t>(days) * 86400 + seconds;
    return true;
}

TypedKey
ip4Key(const std::array<uint8_t, 4> &octets)
{
    return TypedKey{TypedKind::kIp4, {octets.begin(), octets.end()}};
}

TypedKey
ip6Key(const std::array<uint8_t, 16> &groups)
{
    return TypedKey{TypedKind::kIp6, {groups.begin(), groups.end()}};
}

TypedKey
macKey(const std::array<uint8_t, 6> &octets)
{
    return TypedKey{TypedKind::kMac, {octets.begin(), octets.end()}};
}

TypedKey
hexIdKey(std::string_view nibbles)
{
    TypedKey key{TypedKind::kHexId, {}};
    key.bytes.reserve(nibbles.size());
    for (char c : nibbles) {
        key.bytes.push_back(static_cast<uint8_t>(toLowerHex(c)));
    }
    return key;
}

TypedKey
timestampKey(uint64_t epoch_s)
{
    TypedKey key{TypedKind::kTimestamp, {}};
    key.bytes.resize(8);
    for (int i = 0; i < 8; ++i) {
        key.bytes[static_cast<size_t>(i)] =
            static_cast<uint8_t>(epoch_s >> (56 - i * 8));
    }
    return key;
}

std::string
formatIp4(const std::array<uint8_t, 4> &octets)
{
    return strprintf("%u.%u.%u.%u", octets[0], octets[1], octets[2],
                     octets[3]);
}

std::string
formatIp6(const std::array<uint8_t, 16> &groups)
{
    uint16_t g[8];
    for (size_t i = 0; i < 8; ++i) {
        g[i] = static_cast<uint16_t>(groups[i * 2] << 8
                                     | groups[i * 2 + 1]);
    }
    // RFC 5952: compress the longest (leftmost on tie) zero run of
    // length >= 2.
    int best_start = -1;
    int best_len = 0;
    for (int i = 0; i < 8;) {
        if (g[i] != 0) {
            ++i;
            continue;
        }
        int j = i;
        while (j < 8 && g[j] == 0) {
            ++j;
        }
        if (j - i > best_len) {
            best_start = i;
            best_len = j - i;
        }
        i = j;
    }
    if (best_len < 2) {
        best_start = -1;
    }
    std::string out;
    for (int i = 0; i < 8;) {
        if (i == best_start) {
            // Always both colons: the group after the run suppresses
            // its own separator when the string already ends in ':'.
            out += "::";
            i += best_len;
            if (i >= 8) {
                break;
            }
            continue;
        }
        if (!out.empty() && out.back() != ':') {
            out += ':';
        }
        out += strprintf("%x", g[i]);
        ++i;
    }
    if (out.empty()) {
        out = "::";
    }
    return out;
}

std::string
formatMac(const std::array<uint8_t, 6> &octets)
{
    return strprintf("%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                     octets[1], octets[2], octets[3], octets[4],
                     octets[5]);
}

std::string
formatKey(const TypedKey &key)
{
    switch (key.kind) {
    case TypedKind::kIp4: {
        std::array<uint8_t, 4> v{};
        if (key.bytes.size() == 4) {
            std::copy(key.bytes.begin(), key.bytes.end(), v.begin());
            return formatIp4(v);
        }
        break;
    }
    case TypedKind::kIp6: {
        std::array<uint8_t, 16> v{};
        if (key.bytes.size() == 16) {
            std::copy(key.bytes.begin(), key.bytes.end(), v.begin());
            return formatIp6(v);
        }
        break;
    }
    case TypedKind::kMac: {
        std::array<uint8_t, 6> v{};
        if (key.bytes.size() == 6) {
            std::copy(key.bytes.begin(), key.bytes.end(), v.begin());
            return formatMac(v);
        }
        break;
    }
    case TypedKind::kHexId:
        return {key.bytes.begin(), key.bytes.end()};
    case TypedKind::kTimestamp: {
        if (key.bytes.size() == 8) {
            uint64_t value = 0;
            for (uint8_t b : key.bytes) {
                value = value << 8 | b;
            }
            return strprintf("%llu",
                             static_cast<unsigned long long>(value));
        }
        break;
    }
    case TypedKind::kNone:
        break;
    }
    return "?";
}

} // namespace mithril::typed
