/**
 * @file
 * Typed query predicates (DESIGN.md §15).
 *
 * A Predicate is an inclusive range [lo, hi] over the order-preserving
 * key encoding of one TypedKind, carried inside a query Term next to
 * the keyword machinery. The textual grammar (parsed from unquoted
 * query words):
 *
 *   ip:10.1.2.3          exact IPv4        ip:10.0.0.0/8    CIDR block
 *   ip:2001:db8::1       exact IPv6        ip:2001:db8::/32 CIDR block
 *   mac:aa:bb:cc:dd:ee:ff  exact MAC (also `-` separated)
 *   id:deadbeef01        exact hex id (>= 8 nibbles, 0x optional)
 *   time:[t0,t1]         inclusive window; bounds are epoch seconds or
 *                        RFC 3339 timestamps
 *
 * Because the key encodings are big-endian, every one of these is a
 * contiguous byte range, so the posting-list directory resolves them
 * with one sorted-map range scan. lineMatches() is the scan-side dual:
 * it runs the same extractor registry over the raw line, which is what
 * keeps the typed-index path and the degraded full-scan path
 * byte-identical.
 */
#ifndef MITHRIL_TYPED_PREDICATE_H
#define MITHRIL_TYPED_PREDICATE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "typed/typed_key.h"

namespace mithril::typed {

/** One typed predicate: an inclusive encoded-key range of one kind. */
struct Predicate {
    TypedKind kind = TypedKind::kNone;
    std::vector<uint8_t> lo;  ///< inclusive lower key bound
    std::vector<uint8_t> hi;  ///< inclusive upper key bound
    std::string text;         ///< canonical form, re-parseable

    bool operator==(const Predicate &) const = default;

    /** An inactive predicate (kNone) matches nothing and is the
     *  "no typed predicate on this term" state. */
    bool active() const { return kind != TypedKind::kNone; }

    /** True when @p key falls inside [lo, hi] (kind must match). */
    bool matchesKey(const TypedKey &key) const;
};

/** True when @p word carries a typed-predicate prefix (`ip:`, `id:`,
 *  `mac:`, `time:`) — i.e. parsePredicate should be consulted. */
bool isTypedWord(std::string_view word);

/**
 * Parses one typed-predicate word into @p out.
 * @retval kInvalidArgument malformed value after a recognized prefix.
 */
Status parsePredicate(std::string_view word, Predicate *out);

/** Scan-side evaluation: extractor registry over @p line, true when
 *  any extracted key satisfies @p pred. */
bool lineMatches(std::string_view line, const Predicate &pred);

} // namespace mithril::typed

#endif // MITHRIL_TYPED_PREDICATE_H
