/**
 * @file
 * The typed-field extractor registry (DESIGN.md §15).
 *
 * Extraction is a pure function of the line bytes: every component that
 * needs typed values — the ingest pipeline feeding the posting lists,
 * the software matcher evaluating typed predicates, the degraded
 * full-scan path, and the test oracles — calls extractLine() and gets
 * the identical key stream. Ad-hoc parsing of line bytes outside
 * src/typed/ is forbidden by the `typed-extractor` lint rule, for the
 * same reason the delimiter set lives in exactly one place: divergence
 * would silently break the index-vs-scan equivalence invariant.
 *
 * Tokens are delimited by the shared whitespace set, then each raw
 * token walks a boundary-candidate ladder (raw, punctuation-trimmed,
 * after `=`, after the last `:`) so values glued to log syntax —
 * `src=10.1.2.3,` or `[deadbeef01]` — still extract cleanly; the first
 * candidate any extractor accepts wins, so one token yields at most one
 * key. Timestamps are additionally matched at line level (the classic
 * syslog header spans three tokens).
 */
#ifndef MITHRIL_TYPED_EXTRACT_H
#define MITHRIL_TYPED_EXTRACT_H

#include <functional>
#include <span>
#include <string_view>

#include "typed/typed_key.h"

namespace mithril::typed {

/** One registered extractor: a named, kind-tagged token recognizer. */
struct Extractor {
    const char *name;
    TypedKind kind;
    /** Tries the whole candidate token; false when it is not this
     *  extractor's value family. */
    bool (*parse)(std::string_view candidate, TypedKey *out);
};

/** The registry, in ladder order (tried first to last per candidate). */
std::span<const Extractor> extractors();

/** Receives each extracted key; occurrence order follows the line. */
using KeySink = std::function<void(const TypedKey &)>;

/**
 * Runs the full registry over @p line, invoking @p sink for every
 * extracted key. Deterministic in the line bytes alone.
 */
void extractLine(std::string_view line, const KeySink &sink);

/** True when extractLine(@p line) would emit a key matching @p key. */
bool lineContainsKey(std::string_view line, const TypedKey &key);

} // namespace mithril::typed

#endif // MITHRIL_TYPED_EXTRACT_H
