/**
 * @file
 * Reference software executor for the union-of-intersections semantics.
 *
 * SoftwareMatcher is the ground truth every other executor (the
 * accelerator emulation, the baselines' scan engines) is property-tested
 * against. It is also the fallback path for queries whose cuckoo table
 * construction fails (Section 4.2.1), and the inner loop of the
 * MonetDB-like ScanDb baseline.
 */
#ifndef MITHRIL_QUERY_MATCHER_H
#define MITHRIL_QUERY_MATCHER_H

#include <string_view>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "typed/predicate.h"
#include "typed/typed_key.h"

namespace mithril::query {

/**
 * Pre-compiled matcher for one query.
 *
 * Compilation builds a token -> (set, polarity) multimap so matching a
 * line is one hash probe per line token plus per-set bookkeeping,
 * mirroring the work the hardware does per token.
 */
class SoftwareMatcher
{
  public:
    explicit SoftwareMatcher(const Query &q);

    /** True when @p line satisfies the query. */
    bool matches(std::string_view line) const;

    /**
     * Filters @p text (newline-separated) and returns matching lines.
     * Views point into @p text.
     */
    std::vector<std::string_view> filterLines(std::string_view text) const;

    /** Number of intersection sets in the compiled query. */
    size_t setCount() const { return set_positive_needed_.size(); }

  private:
    struct Occurrence {
        uint32_t set;       // intersection set index
        uint32_t slot;      // index among the set's positive terms
        bool negated;
    };

    // token -> occurrences across all intersection sets.
    std::unordered_map<std::string_view, std::vector<Occurrence>> by_token_;
    std::vector<std::string> token_storage_;

    // Flattened per-set found/needed bitmaps (software analog of the
    // hardware's R-bit bitmaps, Figure 6).
    std::vector<size_t> set_words_;
    std::vector<size_t> set_offset_;
    std::vector<uint64_t> needed_;
    std::vector<uint64_t> set_positive_needed_;  // positive term count

    // Per-set typed predicates (DESIGN.md §15): a set matches only if
    // every one of its predicates is satisfied by some key the
    // extractor registry finds in the line. Keyword machinery above
    // never sees typed terms (they carry no token).
    std::vector<std::vector<typed::Predicate>> set_typed_;
    bool any_typed_ = false;

    // Scratch reused across matches (sized once; matcher is not
    // thread-safe by design — clone per thread).
    mutable std::vector<uint64_t> found_;
    mutable std::vector<uint8_t> violated_;
    mutable std::vector<typed::TypedKey> keys_scratch_;
};

} // namespace mithril::query

#endif // MITHRIL_QUERY_MATCHER_H
