#include "query/matcher.h"

#include <algorithm>

#include "common/text.h"
#include "typed/extract.h"

namespace mithril::query {

SoftwareMatcher::SoftwareMatcher(const Query &q)
{
    // Pin token text first (views into token_storage_ must stay stable).
    std::vector<std::string> tokens = q.distinctTokens();
    token_storage_ = std::move(tokens);

    const auto &sets = q.sets();
    set_positive_needed_.clear();

    // Per-set positive slot numbering; a set may hold arbitrarily many
    // positive terms, so the found-bitmap is a span of 64-bit words in
    // one flattened scratch vector (the hardware analog is the R-bit
    // bitmap per intersection set of Figure 6).
    set_words_.resize(sets.size());
    set_offset_.resize(sets.size());
    size_t total_words = 0;
    std::vector<std::unordered_map<std::string_view, uint32_t>> slot_of(
        sets.size());
    set_typed_.assign(sets.size(), {});
    for (size_t i = 0; i < sets.size(); ++i) {
        uint32_t next_slot = 0;
        for (const Term &t : sets[i].terms) {
            if (t.isTyped()) {
                set_typed_[i].push_back(t.typed);
                any_typed_ = true;
                continue;
            }
            if (!t.negated && !slot_of[i].count(t.token)) {
                slot_of[i][t.token] = next_slot++;
            }
        }
        set_words_[i] = (next_slot + 63) / 64;
        set_offset_[i] = total_words;
        total_words += set_words_[i];
    }

    needed_.assign(total_words, 0);
    for (size_t i = 0; i < sets.size(); ++i) {
        for (const auto &[tok, slot] : slot_of[i]) {
            needed_[set_offset_[i] + slot / 64] |= 1ull << (slot % 64);
        }
        set_positive_needed_.push_back(slot_of[i].size());
    }

    for (size_t i = 0; i < sets.size(); ++i) {
        for (const Term &t : sets[i].terms) {
            if (t.isTyped()) {
                continue; // handled via set_typed_, no token to probe
            }
            // Key views must reference the pinned storage.
            auto it = std::find(token_storage_.begin(),
                                token_storage_.end(), t.token);
            std::string_view key = *it;
            Occurrence occ;
            occ.set = static_cast<uint32_t>(i);
            occ.negated = t.negated;
            occ.slot = t.negated ? 0 : slot_of[i][t.token];
            by_token_[key].push_back(occ);
        }
    }

    found_.resize(total_words);
    violated_.resize(sets.size());
}

bool
SoftwareMatcher::matches(std::string_view line) const
{
    std::fill(found_.begin(), found_.end(), 0);
    std::fill(violated_.begin(), violated_.end(), 0);

    forEachToken(line, [&](std::string_view tok, uint32_t) {
        auto it = by_token_.find(tok);
        if (it != by_token_.end()) {
            for (const Occurrence &occ : it->second) {
                if (occ.negated) {
                    violated_[occ.set] = 1;
                } else {
                    found_[set_offset_[occ.set] + occ.slot / 64] |=
                        1ull << (occ.slot % 64);
                }
            }
        }
        return true;
    });

    bool keys_ready = false;
    for (size_t i = 0; i < violated_.size(); ++i) {
        if (violated_[i]) {
            continue;
        }
        bool all = true;
        for (size_t w = 0; w < set_words_[i]; ++w) {
            if (found_[set_offset_[i] + w] != needed_[set_offset_[i] + w]) {
                all = false;
                break;
            }
        }
        if (!all) {
            continue;
        }
        // Keyword side satisfied; the set's typed predicates must also
        // hold. Keys are extracted at most once per line, on demand.
        for (const typed::Predicate &pred : set_typed_[i]) {
            if (!keys_ready) {
                keys_scratch_.clear();
                typed::extractLine(line, [&](const typed::TypedKey &k) {
                    keys_scratch_.push_back(k);
                });
                keys_ready = true;
            }
            bool hit = false;
            for (const typed::TypedKey &key : keys_scratch_) {
                if (pred.matchesKey(key)) {
                    hit = true;
                    break;
                }
            }
            if (!hit) {
                all = false;
                break;
            }
        }
        if (all) {
            return true;
        }
    }
    return false;
}

std::vector<std::string_view>
SoftwareMatcher::filterLines(std::string_view text) const
{
    std::vector<std::string_view> out;
    forEachLine(text, [&](std::string_view line) {
        if (matches(line)) {
            out.push_back(line);
        }
    });
    return out;
}

} // namespace mithril::query
