/**
 * @file
 * Query representation: unions of intersections of (possibly negated)
 * tokens — the exact query class the token filtering engine executes
 * (Section 4, Equation 1).
 *
 * A Query is a union set (OR) of intersection sets (AND), each holding
 * tokens that may be negated:
 *
 *     (!A & B & C) | (!D & !E & F & G)
 *
 * A log line satisfies an intersection set when every positive token is
 * present in the line (as a whole, delimiter-separated token) and no
 * negated token is present; it satisfies the query when it satisfies at
 * least one intersection set. Multiple independent queries are evaluated
 * concurrently by joining them with unions (Query::unionOf), which is how
 * the paper batches queries onto one accelerator configuration.
 */
#ifndef MITHRIL_QUERY_QUERY_H
#define MITHRIL_QUERY_QUERY_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "typed/predicate.h"

namespace mithril::query {

/**
 * One term in an intersection set: either a keyword token or a typed
 * predicate (`ip:10.0.0.0/8`, `id:deadbeef01`, `time:[t0,t1]` —
 * DESIGN.md §15). Exactly one of the two is populated: a keyword term
 * has a non-empty token and an inactive predicate; a typed term has an
 * empty token and an active predicate. Typed terms cannot be negated.
 */
struct Term {
    std::string token;
    bool negated = false;
    typed::Predicate typed;

    bool operator==(const Term &) const = default;

    /** True when this term is a typed predicate, not a keyword. */
    bool isTyped() const { return typed.active(); }
};

/** Conjunction of terms: all positives present, no negatives present. */
struct IntersectionSet {
    std::vector<Term> terms;

    bool operator==(const IntersectionSet &) const = default;

    /** Number of positive (non-negated) terms. */
    size_t positiveCount() const;
};

/** Union of intersection sets. */
class Query
{
  public:
    Query() = default;

    /** Builds from explicit sets; empty sets are rejected downstream. */
    explicit Query(std::vector<IntersectionSet> sets)
        : sets_(std::move(sets)) {}

    /** Convenience: single intersection set of positive tokens. */
    static Query allOf(std::span<const std::string> tokens);

    /** Convenience: one single-token intersection set per token. */
    static Query anyOf(std::span<const std::string> tokens);

    /** Joins queries into one evaluating them concurrently (Section 4). */
    static Query unionOf(std::span<const Query> queries);

    const std::vector<IntersectionSet> &sets() const { return sets_; }
    std::vector<IntersectionSet> &sets() { return sets_; }

    bool empty() const { return sets_.empty(); }

    /** Total number of terms across all intersection sets. */
    size_t termCount() const;

    /** Distinct keyword token texts used anywhere in the query
     *  (typed-predicate terms carry no token and are skipped). */
    std::vector<std::string> distinctTokens() const;

    /** True when any intersection set carries a typed predicate. */
    bool hasTypedPredicates() const;

    /** Total typed-predicate terms across all intersection sets. */
    size_t typedPredicateCount() const;

    /**
     * Structural validation:
     *  - at least one intersection set, none empty;
     *  - no intersection set both requires and forbids the same token;
     *  - every term is exactly keyword or typed; typed terms are never
     *    negated (a negated range cannot be pruned by posting lists);
     *  - every intersection set has at least one positive term (a line
     *    satisfying only negatives cannot be represented by the
     *    hardware's exact-bitmap-match rule; such sets are legal in the
     *    software matcher but flagged here so callers can decide). A
     *    typed predicate counts as a positive term.
     *
     * @param allow_pure_negative permit sets with no positive terms.
     */
    [[nodiscard]] Status validate(bool allow_pure_negative = true) const;

    /** Renders as text parseable by parseQuery ("(a & !b) | c"). */
    std::string toString() const;

    bool operator==(const Query &) const = default;

  private:
    std::vector<IntersectionSet> sets_;
};

} // namespace mithril::query

#endif // MITHRIL_QUERY_QUERY_H
