/**
 * @file
 * Text syntax for queries, with full boolean normalization.
 *
 * Grammar (case-insensitive keywords; '&'/'|'/'!' are synonyms for
 * AND/OR/NOT):
 *
 *     query  := or
 *     or     := and ( ("OR"  | "|") and )*
 *     and    := unary ( ("AND" | "&") unary )*
 *     unary  := ("NOT" | "!") unary | "(" or ")" | token
 *     token  := "quoted text" | bare-word
 *
 * Arbitrary nesting is accepted; the parser converts the expression to
 * disjunctive normal form (NOT pushed to leaves via De Morgan, AND
 * distributed over OR), which is the union-of-intersections class the
 * engine executes. DNF expansion is capped to keep adversarial inputs
 * from exploding; exceeding the cap returns kCapacityExceeded.
 */
#ifndef MITHRIL_QUERY_PARSER_H
#define MITHRIL_QUERY_PARSER_H

#include <string_view>

#include "common/status.h"
#include "query/query.h"

namespace mithril::query {

/** Hard cap on intersection sets produced by DNF expansion. */
constexpr size_t kMaxDnfSets = 256;

/**
 * Parses @p text into @p out.
 *
 * @retval kInvalidArgument   syntax error (message has position info)
 * @retval kCapacityExceeded  DNF expansion exceeded kMaxDnfSets
 */
[[nodiscard]] Status parseQuery(std::string_view text, Query *out);

} // namespace mithril::query

#endif // MITHRIL_QUERY_PARSER_H
