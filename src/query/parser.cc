#include "query/parser.h"

#include <cctype>
#include <memory>

#include "common/text.h"
#include "typed/predicate.h"

namespace mithril::query {

namespace {

// ---------------------------------------------------------------------
// Lexer

enum class TokKind { kWord, kAnd, kOr, kNot, kLParen, kRParen, kEnd };

struct Token {
    TokKind kind;
    std::string text;
    size_t pos;
    /** Quoted words are always keyword tokens; only unquoted words are
     *  eligible to become typed predicates ("ip:..." vs ip:10.0.0.1).
     */
    bool quoted = false;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view input) : input_(input) {}

    Status
    lex(std::vector<Token> *out)
    {
        size_t i = 0;
        while (i < input_.size()) {
            char c = input_[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (c == '(') {
                out->push_back({TokKind::kLParen, "(", i++});
            } else if (c == ')') {
                out->push_back({TokKind::kRParen, ")", i++});
            } else if (c == '&') {
                out->push_back({TokKind::kAnd, "&", i++});
            } else if (c == '|') {
                out->push_back({TokKind::kOr, "|", i++});
            } else if (c == '!' || c == '~') {
                out->push_back({TokKind::kNot, "!", i++});
            } else if (c == '"') {
                size_t end = input_.find('"', i + 1);
                if (end == std::string_view::npos) {
                    return Status::invalidArgument(strprintf(
                        "unterminated quote at offset %zu", i));
                }
                out->push_back({TokKind::kWord,
                                std::string(input_.substr(i + 1,
                                                          end - i - 1)),
                                i, /*quoted=*/true});
                i = end + 1;
            } else {
                size_t start = i;
                while (i < input_.size() && !std::isspace(
                           static_cast<unsigned char>(input_[i])) &&
                       input_[i] != '(' && input_[i] != ')' &&
                       input_[i] != '&' && input_[i] != '|' &&
                       input_[i] != '!' && input_[i] != '"') {
                    ++i;
                }
                std::string word(input_.substr(start, i - start));
                std::string upper = word;
                for (char &ch : upper) {
                    ch = static_cast<char>(
                        std::toupper(static_cast<unsigned char>(ch)));
                }
                if (upper == "AND") {
                    out->push_back({TokKind::kAnd, word, start});
                } else if (upper == "OR") {
                    out->push_back({TokKind::kOr, word, start});
                } else if (upper == "NOT") {
                    out->push_back({TokKind::kNot, word, start});
                } else {
                    out->push_back({TokKind::kWord, word, start});
                }
            }
        }
        out->push_back({TokKind::kEnd, "", input_.size()});
        return Status::ok();
    }

  private:
    std::string_view input_;
};

// ---------------------------------------------------------------------
// Expression tree

struct Expr {
    enum Kind { kLeaf, kAnd, kOr, kNot } kind;
    std::string token;    // kLeaf
    bool quoted = false;  // kLeaf: came from a quoted string
    std::vector<std::unique_ptr<Expr>> children;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr
makeLeaf(std::string token, bool quoted)
{
    auto e = std::make_unique<Expr>();
    e->kind = Expr::kLeaf;
    e->token = std::move(token);
    e->quoted = quoted;
    return e;
}

ExprPtr
makeNode(Expr::Kind kind, std::vector<ExprPtr> children)
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->children = std::move(children);
    return e;
}

// ---------------------------------------------------------------------
// Recursive-descent parser

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Status
    parse(ExprPtr *out)
    {
        MITHRIL_RETURN_IF_ERROR(parseOr(out));
        if (peek().kind != TokKind::kEnd) {
            return Status::invalidArgument(strprintf(
                "unexpected '%s' at offset %zu", peek().text.c_str(),
                peek().pos));
        }
        return Status::ok();
    }

  private:
    const Token &peek() const { return tokens_[pos_]; }
    const Token &advance() { return tokens_[pos_++]; }

    Status
    parseOr(ExprPtr *out)
    {
        std::vector<ExprPtr> children;
        ExprPtr first;
        MITHRIL_RETURN_IF_ERROR(parseAnd(&first));
        children.push_back(std::move(first));
        while (peek().kind == TokKind::kOr) {
            advance();
            ExprPtr next;
            MITHRIL_RETURN_IF_ERROR(parseAnd(&next));
            children.push_back(std::move(next));
        }
        *out = children.size() == 1 ? std::move(children[0])
                                    : makeNode(Expr::kOr,
                                               std::move(children));
        return Status::ok();
    }

    Status
    parseAnd(ExprPtr *out)
    {
        std::vector<ExprPtr> children;
        ExprPtr first;
        MITHRIL_RETURN_IF_ERROR(parseUnary(&first));
        children.push_back(std::move(first));
        // Both explicit AND and juxtaposition ("a b" means a AND b,
        // matching the implicit-AND convention of log search UIs).
        while (peek().kind == TokKind::kAnd ||
               peek().kind == TokKind::kWord ||
               peek().kind == TokKind::kNot ||
               peek().kind == TokKind::kLParen) {
            if (peek().kind == TokKind::kAnd) {
                advance();
            }
            ExprPtr next;
            MITHRIL_RETURN_IF_ERROR(parseUnary(&next));
            children.push_back(std::move(next));
        }
        *out = children.size() == 1 ? std::move(children[0])
                                    : makeNode(Expr::kAnd,
                                               std::move(children));
        return Status::ok();
    }

    Status
    parseUnary(ExprPtr *out)
    {
        const Token &tok = peek();
        switch (tok.kind) {
          case TokKind::kNot: {
            advance();
            ExprPtr inner;
            MITHRIL_RETURN_IF_ERROR(parseUnary(&inner));
            std::vector<ExprPtr> children;
            children.push_back(std::move(inner));
            *out = makeNode(Expr::kNot, std::move(children));
            return Status::ok();
          }
          case TokKind::kLParen: {
            advance();
            MITHRIL_RETURN_IF_ERROR(parseOr(out));
            if (peek().kind != TokKind::kRParen) {
                return Status::invalidArgument(strprintf(
                    "expected ')' at offset %zu", peek().pos));
            }
            advance();
            return Status::ok();
          }
          case TokKind::kWord: {
            if (tok.text.empty()) {
                return Status::invalidArgument(strprintf(
                    "empty token at offset %zu", tok.pos));
            }
            {
                const Token &word = advance();
                *out = makeLeaf(word.text, word.quoted);
            }
            return Status::ok();
          }
          default:
            return Status::invalidArgument(strprintf(
                "expected token at offset %zu, found '%s'", tok.pos,
                tok.text.c_str()));
        }
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// DNF conversion

/**
 * Converts an expression to DNF with negations at the leaves.
 * @p negate carries a pending De Morgan inversion down the tree.
 */
Status
toDnf(const Expr &e, bool negate, std::vector<IntersectionSet> *out)
{
    switch (e.kind) {
      case Expr::kLeaf: {
        IntersectionSet s;
        Term term;
        if (!e.quoted && typed::isTypedWord(e.token)) {
            // Unquoted `ip:` / `id:` / `mac:` / `time:` words are typed
            // predicates; quote them to search for the literal token.
            MITHRIL_RETURN_IF_ERROR(
                typed::parsePredicate(e.token, &term.typed));
            if (negate) {
                return Status::invalidArgument(
                    "typed predicate '" + term.typed.text +
                    "' cannot be negated");
            }
        } else {
            term.token = e.token;
            term.negated = negate;
        }
        s.terms.push_back(std::move(term));
        out->push_back(std::move(s));
        return Status::ok();
      }
      case Expr::kNot:
        return toDnf(*e.children[0], !negate, out);
      case Expr::kOr:
      case Expr::kAnd: {
        bool is_or = (e.kind == Expr::kOr) != negate;  // De Morgan swap
        if (is_or) {
            for (const auto &child : e.children) {
                MITHRIL_RETURN_IF_ERROR(toDnf(*child, negate, out));
                if (out->size() > kMaxDnfSets) {
                    return Status::capacityExceeded(
                        "DNF expansion exceeds set limit");
                }
            }
            return Status::ok();
        }
        // AND: cartesian product of children's DNF forms.
        std::vector<IntersectionSet> acc{IntersectionSet{}};
        for (const auto &child : e.children) {
            std::vector<IntersectionSet> child_sets;
            MITHRIL_RETURN_IF_ERROR(toDnf(*child, negate, &child_sets));
            std::vector<IntersectionSet> next;
            next.reserve(acc.size() * child_sets.size());
            for (const IntersectionSet &a : acc) {
                for (const IntersectionSet &b : child_sets) {
                    IntersectionSet merged = a;
                    merged.terms.insert(merged.terms.end(),
                                        b.terms.begin(), b.terms.end());
                    next.push_back(std::move(merged));
                    if (next.size() > kMaxDnfSets) {
                        return Status::capacityExceeded(
                            "DNF expansion exceeds set limit");
                    }
                }
            }
            acc = std::move(next);
        }
        out->insert(out->end(), acc.begin(), acc.end());
        return Status::ok();
      }
    }
    return Status::internal("unreachable expression kind");
}

/** Drops duplicate terms within each set (A & A -> A). */
void
dedupeTerms(std::vector<IntersectionSet> *sets)
{
    for (IntersectionSet &s : *sets) {
        std::vector<Term> unique;
        for (Term &t : s.terms) {
            bool seen = false;
            for (const Term &u : unique) {
                if (u == t) {
                    seen = true;
                    break;
                }
            }
            if (!seen) {
                unique.push_back(std::move(t));
            }
        }
        s.terms = std::move(unique);
    }
}

} // namespace

Status
parseQuery(std::string_view text, Query *out)
{
    std::vector<Token> tokens;
    MITHRIL_RETURN_IF_ERROR(Lexer(text).lex(&tokens));
    if (tokens.size() == 1) {
        return Status::invalidArgument("empty query");
    }
    ExprPtr root;
    MITHRIL_RETURN_IF_ERROR(Parser(std::move(tokens)).parse(&root));
    std::vector<IntersectionSet> sets;
    MITHRIL_RETURN_IF_ERROR(toDnf(*root, false, &sets));
    dedupeTerms(&sets);

    // Drop unsatisfiable sets (a token both required and forbidden can
    // arise from DNF of contradictions like "a & !a"); dropping them
    // preserves semantics.
    std::vector<IntersectionSet> satisfiable;
    for (IntersectionSet &s : sets) {
        bool contradiction = false;
        for (const Term &t : s.terms) {
            for (const Term &u : s.terms) {
                if (t.token == u.token && t.negated != u.negated) {
                    contradiction = true;
                    break;
                }
            }
            if (contradiction) {
                break;
            }
        }
        if (!contradiction) {
            satisfiable.push_back(std::move(s));
        }
    }
    if (satisfiable.empty()) {
        return Status::invalidArgument("query is unsatisfiable");
    }
    *out = Query(std::move(satisfiable));
    return out->validate();
}

} // namespace mithril::query
