#include "query/query.h"

#include <algorithm>
#include <set>

namespace mithril::query {

size_t
IntersectionSet::positiveCount() const
{
    size_t n = 0;
    for (const Term &t : terms) {
        if (!t.negated) {
            ++n;
        }
    }
    return n;
}

Query
Query::allOf(std::span<const std::string> tokens)
{
    IntersectionSet set;
    for (const std::string &t : tokens) {
        set.terms.push_back({t, false, {}});
    }
    return Query({std::move(set)});
}

Query
Query::anyOf(std::span<const std::string> tokens)
{
    std::vector<IntersectionSet> sets;
    for (const std::string &t : tokens) {
        sets.push_back({{{t, false, {}}}});
    }
    return Query(std::move(sets));
}

Query
Query::unionOf(std::span<const Query> queries)
{
    std::vector<IntersectionSet> sets;
    for (const Query &q : queries) {
        sets.insert(sets.end(), q.sets_.begin(), q.sets_.end());
    }
    return Query(std::move(sets));
}

size_t
Query::termCount() const
{
    size_t n = 0;
    for (const IntersectionSet &s : sets_) {
        n += s.terms.size();
    }
    return n;
}

std::vector<std::string>
Query::distinctTokens() const
{
    std::set<std::string> seen;
    for (const IntersectionSet &s : sets_) {
        for (const Term &t : s.terms) {
            if (!t.isTyped()) {
                seen.insert(t.token);
            }
        }
    }
    return {seen.begin(), seen.end()};
}

bool
Query::hasTypedPredicates() const
{
    return typedPredicateCount() > 0;
}

size_t
Query::typedPredicateCount() const
{
    size_t n = 0;
    for (const IntersectionSet &s : sets_) {
        for (const Term &t : s.terms) {
            if (t.isTyped()) {
                ++n;
            }
        }
    }
    return n;
}

Status
Query::validate(bool allow_pure_negative) const
{
    if (sets_.empty()) {
        return Status::invalidArgument("query has no intersection sets");
    }
    for (const IntersectionSet &s : sets_) {
        if (s.terms.empty()) {
            return Status::invalidArgument("empty intersection set");
        }
        std::set<std::string_view> positive, negative;
        bool has_typed_positive = false;
        for (const Term &t : s.terms) {
            if (t.isTyped()) {
                if (!t.token.empty()) {
                    return Status::invalidArgument(
                        "term is both keyword and typed predicate");
                }
                if (t.negated) {
                    return Status::invalidArgument(
                        "typed predicate '" + t.typed.text +
                        "' cannot be negated");
                }
                has_typed_positive = true;
                continue;
            }
            if (t.token.empty()) {
                return Status::invalidArgument("empty token in query");
            }
            (t.negated ? negative : positive).insert(t.token);
        }
        for (std::string_view t : positive) {
            if (negative.count(t)) {
                return Status::invalidArgument(
                    "token '" + std::string(t) +
                    "' both required and forbidden in one set");
            }
        }
        if (!allow_pure_negative && positive.empty()
            && !has_typed_positive) {
            return Status::unsupported(
                "intersection set with no positive terms");
        }
    }
    return Status::ok();
}

std::string
Query::toString() const
{
    std::string out;
    for (size_t i = 0; i < sets_.size(); ++i) {
        if (i > 0) {
            out += " | ";
        }
        out += '(';
        const IntersectionSet &s = sets_[i];
        for (size_t j = 0; j < s.terms.size(); ++j) {
            if (j > 0) {
                out += " & ";
            }
            if (s.terms[j].negated) {
                out += '!';
            }
            if (s.terms[j].isTyped()) {
                // Canonical predicate text; unquoted so it re-parses
                // as a typed word rather than a keyword.
                out += s.terms[j].typed.text;
            } else {
                out += '"';
                out += s.terms[j].token;
                out += '"';
            }
        }
        out += ')';
    }
    return out;
}

} // namespace mithril::query
