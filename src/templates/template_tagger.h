/**
 * @file
 * Template-ID tagging — the paper's Section 8 future-work item
 * ("exploring wire-speed methods for tagging each log line with
 * template IDs"), built from the machinery Section 4.3 already
 * provides.
 *
 * The batched filter reports, per line, a bitmask of which programmed
 * queries accepted it. Programming one template per flag pair turns a
 * filter pass into a template classifier for up to kFlagPairs
 * templates; a library larger than that is covered by multiple passes
 * over the same (compressed) data, each pass tagging its slice of the
 * library. Lines matching several templates (a template's query
 * retrieves a superset, Section 4.3) are resolved to the most specific
 * — most positive tokens — candidate, mirroring deepest-path
 * classification in the FT-tree.
 */
#ifndef MITHRIL_TEMPLATES_TEMPLATE_TAGGER_H
#define MITHRIL_TEMPLATES_TEMPLATE_TAGGER_H

#include <cstdint>
#include <span>
#include <vector>

#include "accel/accelerator.h"
#include "common/status.h"
#include "templates/ft_tree.h"

namespace mithril::templates {

/** Tag assigned to lines no template accepts. */
constexpr uint32_t kUntagged = 0xffffffffu;

/** Result of tagging a page stream. */
struct TagResult {
    /** Per line, the winning template id (or kUntagged). */
    std::vector<uint32_t> tags;
    /** Lines per template id (size = template count). */
    std::vector<uint64_t> histogram;
    uint64_t untagged = 0;
    /** Accelerator passes over the data (= ceil(templates / 8)). */
    uint32_t passes = 0;
    /** Modeled accelerator cycles summed over passes. */
    uint64_t cycles = 0;
};

/**
 * Tags every line of @p pages (LZAH-compressed) against @p templates.
 *
 * @param accel an accelerator instance to (re)program per pass
 * @retval kCapacityExceeded a template slice failed to compile even
 *         alone (e.g. overflow-table exhaustion)
 */
Status tagTemplates(std::span<const ExtractedTemplate> templates,
                    std::span<const compress::ByteView> pages,
                    accel::Accelerator *accel, TagResult *out);

} // namespace mithril::templates

#endif // MITHRIL_TEMPLATES_TEMPLATE_TAGGER_H
