#include "templates/prefix_tree.h"

#include <algorithm>

#include "common/text.h"

namespace mithril::templates {

namespace {
constexpr std::string_view kWildcard = "*";
} // namespace

std::vector<std::string_view>
PrefixTree::lineKeys(std::string_view line) const
{
    std::vector<std::string_view> keys;
    forEachToken(line, [&](std::string_view tok, uint32_t column) {
        if (column >= config_.max_depth) {
            return false;
        }
        auto it = column_freq_.find(
            {static_cast<uint16_t>(column), std::string(tok)});
        if (it != column_freq_.end()) {
            keys.push_back(it->first.second);
        } else {
            keys.push_back(kWildcard);
        }
        return true;
    });
    return keys;
}

PrefixTree
PrefixTree::build(std::string_view text, const PrefixTreeConfig &config)
{
    PrefixTree tree;
    tree.config_ = config;

    // Pass 1: per-(column, token) frequencies.
    uint64_t lines = 0;
    std::map<std::pair<uint16_t, std::string>, uint64_t> freq;
    forEachLine(text, [&](std::string_view line) {
        ++lines;
        forEachToken(line, [&](std::string_view tok, uint32_t column) {
            if (column >= config.max_depth) {
                return false;
            }
            ++freq[{static_cast<uint16_t>(column), std::string(tok)}];
            return true;
        });
    });
    uint64_t min_count = std::max<uint64_t>(
        config.token_min_count,
        static_cast<uint64_t>(static_cast<double>(lines) *
                              config.token_frequency_ratio));
    for (auto &[key, count] : freq) {
        if (count >= min_count) {
            tree.column_freq_.emplace(key, count);
        }
    }

    // Pass 2: insert column-key paths.
    tree.nodes_.emplace_back();
    forEachLine(text, [&](std::string_view line) {
        std::vector<std::string_view> keys = tree.lineKeys(line);
        size_t node = 0;
        for (std::string_view key : keys) {
            auto it = tree.nodes_[node].children.find(key);
            size_t next;
            if (it == tree.nodes_[node].children.end()) {
                next = tree.nodes_.size();
                tree.nodes_.emplace_back();
                tree.nodes_[node].children.emplace(std::string(key), next);
            } else {
                next = it->second;
            }
            node = next;
        }
        ++tree.nodes_[node].terminal_count;
    });

    tree.template_of_node_.assign(tree.nodes_.size(), SIZE_MAX);
    std::vector<std::pair<uint16_t, std::string>> path;
    tree.collect(0, &path, 0);
    return tree;
}

void
PrefixTree::collect(size_t node,
                    std::vector<std::pair<uint16_t, std::string>> *path,
                    uint16_t depth)
{
    const Node &n = nodes_[node];
    if (node != 0 && n.terminal_count >= config_.template_min_support &&
        !path->empty()) {
        PrefixTemplate tpl;
        tpl.tokens = *path;
        tpl.support = n.terminal_count;
        templates_.push_back(std::move(tpl));
        template_of_node_[node] = templates_.size() - 1;
    }
    for (const auto &[key, child] : n.children) {
        bool fixed = key != kWildcard;
        if (fixed) {
            path->emplace_back(depth, key);
        }
        collect(child, path, static_cast<uint16_t>(depth + 1));
        if (fixed) {
            path->pop_back();
        }
    }
}

size_t
PrefixTree::classify(std::string_view line) const
{
    std::vector<std::string_view> keys = lineKeys(line);
    size_t node = 0;
    for (std::string_view key : keys) {
        auto it = nodes_[node].children.find(key);
        if (it == nodes_[node].children.end()) {
            return SIZE_MAX;
        }
        node = it->second;
    }
    return template_of_node_[node];
}

Status
compilePrefixTemplates(std::span<const PrefixTemplate> templates,
                       accel::FilterProgram *out)
{
    *out = accel::FilterProgram();
    if (templates.empty()) {
        return Status::invalidArgument("no templates to compile");
    }
    if (templates.size() > accel::kFlagPairs) {
        return Status::capacityExceeded(
            "more templates than flag pairs");
    }
    uint32_t set_index = 0;
    for (const PrefixTemplate &tpl : templates) {
        if (tpl.tokens.empty()) {
            return Status::invalidArgument("template with no fixed tokens");
        }
        for (const auto &[column, token] : tpl.tokens) {
            MITHRIL_RETURN_IF_ERROR(out->table.insert(
                token, set_index, /*negated=*/false, column));
        }
        out->set_owner[set_index] = set_index;
        ++set_index;
    }
    out->active_sets = set_index;

    for (uint32_t row = 0; row < out->table.rows(); ++row) {
        const accel::CuckooEntry &e = out->table.entry(row);
        if (!e.occupied) {
            continue;
        }
        for (uint32_t s = 0; s < out->active_sets; ++s) {
            uint8_t bit = static_cast<uint8_t>(1u << s);
            if ((e.valid_mask & bit) && !(e.negative_mask & bit)) {
                out->query_bitmaps[s][row / 64] |= 1ull << (row % 64);
            }
        }
    }
    return Status::ok();
}

} // namespace mithril::templates
