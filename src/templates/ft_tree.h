/**
 * @file
 * FT-tree template extraction (Zhang et al. [84][85]; Section 4.3).
 *
 * The frequency-tree method ignores token positions: for each line, the
 * tokens that pass a global-frequency threshold are sorted by descending
 * global frequency and inserted as a root-to-leaf path into a tree, so
 * globally common tokens sit near the root. Paths with enough support
 * become templates. Variable values (timestamps, ids) fall below the
 * frequency threshold and never enter the tree, which is how the method
 * separates template words from parameters without supervision.
 *
 * This module also implements the paper's template-to-query mapping:
 * a template path maps to one intersection set of its tokens, plus
 * negated terms for any sibling branching token whose global frequency
 * exceeds the chosen child's (the line would have descended into that
 * sibling first), exactly the (A & C & !B) & D & E construction of
 * Figure 7.
 */
#ifndef MITHRIL_TEMPLATES_FT_TREE_H
#define MITHRIL_TEMPLATES_FT_TREE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"

namespace mithril::templates {

/** FT-tree construction parameters. */
struct FtTreeConfig {
    /** Maximum path depth (template word count), FT-tree's "k". */
    size_t max_depth = 6;
    /**
     * A token must appear in at least this fraction of lines to count
     * as a template word (else it is treated as a variable value).
     */
    double token_frequency_ratio = 0.004;
    /** ... and at least this many times in absolute terms. */
    uint64_t token_min_count = 8;
    /** Minimum lines a path needs to be emitted as a template. */
    uint64_t template_min_support = 16;
};

/** One extracted template. */
struct ExtractedTemplate {
    /** Template tokens in descending global frequency. */
    std::vector<std::string> tokens;
    /** Higher-frequency sibling tokens that must be absent. */
    std::vector<std::string> negations;
    /** Lines that matched this path exactly. */
    uint64_t support = 0;
};

/** Frequency tree built over a corpus. */
class FtTree
{
  public:
    /** Builds the tree over newline-separated @p text. */
    static FtTree build(std::string_view text,
                        const FtTreeConfig &config = FtTreeConfig{});

    /** Templates with support >= config.template_min_support. */
    std::vector<ExtractedTemplate> extractTemplates() const;

    /**
     * Classifies one line: index into extractTemplates() order of the
     * deepest template whose path matches the line's frequency-sorted
     * token sequence, or SIZE_MAX when none matches.
     */
    size_t classify(std::string_view line) const;

    /** Global frequency of @p token (0 when below threshold). */
    uint64_t tokenFrequency(std::string_view token) const;

    /** Number of tree nodes (diagnostics). */
    size_t nodeCount() const { return nodes_.size(); }

    const FtTreeConfig &config() const { return config_; }

  private:
    struct Node {
        std::string token;
        uint64_t pass_count = 0;      ///< lines passing through
        uint64_t terminal_count = 0;  ///< lines ending exactly here
        std::map<std::string, size_t, std::less<>> children;
    };

    FtTree() = default;

    /** Frequency-filtered, frequency-sorted, deduped token sequence. */
    std::vector<std::string_view> lineSignature(std::string_view line)
        const;

    void collectTemplates(size_t node, std::vector<std::string> *path,
                          std::vector<ExtractedTemplate> *out);

    FtTreeConfig config_;
    std::map<std::string, uint64_t, std::less<>> token_freq_;
    std::vector<Node> nodes_;  // nodes_[0] is the root
    std::vector<ExtractedTemplate> templates_;
    std::vector<size_t> template_of_node_;
};

/** Maps one template to a single-intersection-set query (Section 4.3). */
query::Query templateToQuery(const ExtractedTemplate &tpl);

/**
 * Joins up to kFlagPairs templates into one offloadable query by
 * union (Section 4.3's multi-template batching).
 */
query::Query templatesToQuery(
    std::span<const ExtractedTemplate> templates);

} // namespace mithril::templates

#endif // MITHRIL_TEMPLATES_FT_TREE_H
