#include "templates/template_tagger.h"

#include <algorithm>

namespace mithril::templates {

Status
tagTemplates(std::span<const ExtractedTemplate> templates,
             std::span<const compress::ByteView> pages,
             accel::Accelerator *accel, TagResult *out)
{
    *out = TagResult{};
    if (templates.empty()) {
        return Status::invalidArgument("no templates to tag against");
    }
    if (!accel->config().collect_masks) {
        return Status::invalidArgument(
            "tagger needs an accelerator with collect_masks enabled");
    }
    out->histogram.assign(templates.size(), 0);

    // Per-line best candidate so far: (score = positive token count,
    // template id). Higher score wins; ties go to the earlier template.
    std::vector<std::pair<uint32_t, uint32_t>> best;

    for (size_t base = 0; base < templates.size();
         base += accel::kFlagPairs) {
        size_t n = std::min(accel::kFlagPairs, templates.size() - base);
        std::vector<query::Query> slice;
        slice.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            slice.push_back(templateToQuery(templates[base + i]));
        }
        MITHRIL_RETURN_IF_ERROR(accel->configure(slice));
        ++out->passes;

        // One page per call keeps line masks in corpus order.
        size_t line = 0;
        for (const compress::ByteView &page : pages) {
            accel::AccelResult result;
            MITHRIL_RETURN_IF_ERROR(accel->process(
                std::span(&page, 1), accel::Mode::kFilter, &result));
            out->cycles += result.cycles;
            for (uint64_t mask : result.line_masks) {
                if (best.size() <= line) {
                    best.resize(line + 1, {0, kUntagged});
                }
                for (size_t q = 0; q < n; ++q) {
                    if (!(mask & (1ull << q))) {
                        continue;
                    }
                    uint32_t id = static_cast<uint32_t>(base + q);
                    uint32_t score = static_cast<uint32_t>(
                        templates[id].tokens.size());
                    auto &[best_score, best_id] = best[line];
                    if (best_id == kUntagged || score > best_score ||
                        (score == best_score && id < best_id)) {
                        best_score = score;
                        best_id = id;
                    }
                }
                ++line;
            }
        }
    }

    out->tags.reserve(best.size());
    for (const auto &[score, id] : best) {
        out->tags.push_back(id);
        if (id == kUntagged) {
            ++out->untagged;
        } else {
            ++out->histogram[id];
        }
    }
    return Status::ok();
}

} // namespace mithril::templates
