/**
 * @file
 * Prefix-tree template extraction and column-constrained filtering —
 * the Section 4.3 extension ("the engine can also trivially support
 * prefix tree-based templates").
 *
 * Unlike FT-tree, prefix-tree methods (Spell, Drain, and relatives)
 * keep token positions: a template is a sequence of (column, token)
 * pairs, with variable columns wildcarded. The hardware supports these
 * with a column field per cuckoo entry and a column counter in the
 * tokenizer; matching is unchanged otherwise.
 */
#ifndef MITHRIL_TEMPLATES_PREFIX_TREE_H
#define MITHRIL_TEMPLATES_PREFIX_TREE_H

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "accel/hash_filter.h"
#include "common/status.h"

namespace mithril::templates {

/** Prefix-tree construction parameters. */
struct PrefixTreeConfig {
    /** Columns considered (tree depth). */
    size_t max_depth = 12;
    /** (column, token) pairs below this line fraction are wildcards. */
    double token_frequency_ratio = 0.01;
    uint64_t token_min_count = 8;
    uint64_t template_min_support = 16;
};

/** One positional template; wildcard columns are simply absent. */
struct PrefixTemplate {
    std::vector<std::pair<uint16_t, std::string>> tokens;
    uint64_t support = 0;
};

/** Positional template tree. */
class PrefixTree
{
  public:
    static PrefixTree build(std::string_view text,
                            const PrefixTreeConfig &config =
                                PrefixTreeConfig{});

    const std::vector<PrefixTemplate> &extractTemplates() const
    {
        return templates_;
    }

    /** Template index matching @p line, or SIZE_MAX. */
    size_t classify(std::string_view line) const;

    size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node {
        uint64_t terminal_count = 0;
        std::map<std::string, size_t, std::less<>> children;
    };

    PrefixTree() = default;

    /** Column-wise keys for a line ("*" for variable columns). */
    std::vector<std::string_view> lineKeys(std::string_view line) const;

    void collect(size_t node,
                 std::vector<std::pair<uint16_t, std::string>> *path,
                 uint16_t depth);

    PrefixTreeConfig config_;
    // (column, token) -> count, for fixed-vs-wildcard decisions.
    std::map<std::pair<uint16_t, std::string>, uint64_t> column_freq_;
    std::vector<Node> nodes_;
    std::vector<PrefixTemplate> templates_;
    std::vector<size_t> template_of_node_;
};

/**
 * Compiles positional templates into a FilterProgram whose cuckoo
 * entries carry column constraints. One intersection set per template;
 * fails like compileQueries on capacity limits, and with kUnsupported
 * when one token would need two different column constraints.
 */
Status compilePrefixTemplates(std::span<const PrefixTemplate> templates,
                              accel::FilterProgram *out);

} // namespace mithril::templates

#endif // MITHRIL_TEMPLATES_PREFIX_TREE_H
