#include "templates/ft_tree.h"

#include <algorithm>
#include <set>

#include "common/text.h"

namespace mithril::templates {

std::vector<std::string_view>
FtTree::lineSignature(std::string_view line) const
{
    std::vector<std::string_view> sig;
    forEachToken(line, [&](std::string_view tok, uint32_t) {
        auto it = token_freq_.find(tok);
        if (it != token_freq_.end()) {
            sig.push_back(it->first);  // canonical storage view
        }
        return true;
    });
    // Dedupe, then order by descending global frequency (ties broken by
    // token text for determinism) — FT-tree ignores positions entirely.
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    std::sort(sig.begin(), sig.end(),
              [&](std::string_view a, std::string_view b) {
                  uint64_t fa = token_freq_.find(a)->second;
                  uint64_t fb = token_freq_.find(b)->second;
                  if (fa != fb) {
                      return fa > fb;
                  }
                  return a < b;
              });
    if (sig.size() > config_.max_depth) {
        sig.resize(config_.max_depth);
    }
    return sig;
}

FtTree
FtTree::build(std::string_view text, const FtTreeConfig &config)
{
    FtTree tree;
    tree.config_ = config;

    // Pass 1: global token frequencies.
    uint64_t lines = 0;
    std::map<std::string, uint64_t, std::less<>> freq;
    forEachLine(text, [&](std::string_view line) {
        ++lines;
        forEachToken(line, [&](std::string_view tok, uint32_t) {
            auto it = freq.find(tok);
            if (it == freq.end()) {
                freq.emplace(std::string(tok), 1);
            } else {
                ++it->second;
            }
            return true;
        });
    });

    // Threshold: below it a token is a variable value, not a template
    // word, and never enters the tree.
    uint64_t min_count = std::max<uint64_t>(
        config.token_min_count,
        static_cast<uint64_t>(static_cast<double>(lines) *
                              config.token_frequency_ratio));
    for (auto &[tok, count] : freq) {
        if (count >= min_count) {
            tree.token_freq_.emplace(tok, count);
        }
    }

    // Pass 2: insert each line's signature as a path.
    tree.nodes_.emplace_back();  // root
    forEachLine(text, [&](std::string_view line) {
        std::vector<std::string_view> sig = tree.lineSignature(line);
        size_t node = 0;
        ++tree.nodes_[0].pass_count;
        for (std::string_view tok : sig) {
            auto it = tree.nodes_[node].children.find(tok);
            size_t next;
            if (it == tree.nodes_[node].children.end()) {
                next = tree.nodes_.size();
                tree.nodes_.emplace_back();
                tree.nodes_[next].token = std::string(tok);
                tree.nodes_[node].children.emplace(std::string(tok), next);
            } else {
                next = it->second;
            }
            ++tree.nodes_[next].pass_count;
            node = next;
        }
        ++tree.nodes_[node].terminal_count;
    });

    // Extract templates once; classify() reuses the node mapping.
    tree.template_of_node_.assign(tree.nodes_.size(), SIZE_MAX);
    std::vector<std::string> path;
    tree.collectTemplates(0, &path, &tree.templates_);
    return tree;
}

void
FtTree::collectTemplates(size_t node, std::vector<std::string> *path,
                         std::vector<ExtractedTemplate> *out)
{
    const Node &n = nodes_[node];
    if (node != 0 && n.terminal_count >= config_.template_min_support) {
        ExtractedTemplate tpl;
        tpl.tokens = *path;
        tpl.support = n.terminal_count;
        out->push_back(std::move(tpl));
        template_of_node_[node] = out->size() - 1;
    }
    for (const auto &[tok, child] : n.children) {
        // Negations: siblings more frequent than the chosen child would
        // have sorted earlier in the signature, so their absence is part
        // of the template's identity (Figure 7's !B).
        path->push_back(tok);
        size_t before = out->size();
        collectTemplates(child, path, out);
        uint64_t child_freq = tokenFrequency(tok);
        for (size_t i = before; i < out->size(); ++i) {
            for (const auto &[sib_tok, sib_node] : n.children) {
                if (sib_node != child &&
                    tokenFrequency(sib_tok) > child_freq) {
                    (*out)[i].negations.push_back(sib_tok);
                }
            }
        }
        path->pop_back();
    }
}

std::vector<ExtractedTemplate>
FtTree::extractTemplates() const
{
    return templates_;
}

size_t
FtTree::classify(std::string_view line) const
{
    std::vector<std::string_view> sig = lineSignature(line);
    size_t node = 0;
    for (std::string_view tok : sig) {
        auto it = nodes_[node].children.find(tok);
        if (it == nodes_[node].children.end()) {
            return SIZE_MAX;
        }
        node = it->second;
    }
    return template_of_node_[node];
}

uint64_t
FtTree::tokenFrequency(std::string_view token) const
{
    auto it = token_freq_.find(token);
    return it == token_freq_.end() ? 0 : it->second;
}

query::Query
templateToQuery(const ExtractedTemplate &tpl)
{
    query::IntersectionSet set;
    for (const std::string &tok : tpl.tokens) {
        set.terms.push_back({tok, false});
    }
    std::set<std::string> seen;
    for (const std::string &neg : tpl.negations) {
        if (seen.insert(neg).second) {
            set.terms.push_back({neg, true});
        }
    }
    return query::Query({std::move(set)});
}

query::Query
templatesToQuery(std::span<const ExtractedTemplate> templates)
{
    std::vector<query::IntersectionSet> sets;
    for (const ExtractedTemplate &tpl : templates) {
        query::Query q = templateToQuery(tpl);
        sets.push_back(q.sets().front());
    }
    return query::Query(std::move(sets));
}

} // namespace mithril::templates
