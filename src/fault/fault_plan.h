/**
 * @file
 * mithril::fault — deterministic storage fault injection.
 *
 * The paper's platform is raw NAND behind an in-storage accelerator, an
 * environment where bit errors, ECC-uncorrectable pages, and command
 * timeouts are the *normal* failure mode rather than an exceptional one.
 * This module models that environment reproducibly: a FaultPlan is a
 * seeded description of fault rates that the storage layer consults on
 * every read command. All randomness flows through common/rng.h from the
 * plan seed, the page id, and a monotonic draw counter, so two runs with
 * the same plan produce bit-identical fault sequences, Status values,
 * metrics, and modeled SimTime.
 *
 * Gating policy (enforced by tools/mithril_lint.py, rule fault-gating):
 * fault hooks are reachable *only* through a FaultPlan attached to the
 * device model. No #ifdef fault builds, no global toggles — a null plan
 * means the hot path is byte-for-byte the unfaulted code.
 *
 * Fault classes (ISSUE 3 / paper Sections 2.2, 7.2):
 *   - bit flips:      per-bit Bernoulli over the page payload, sampled
 *                     with geometric gap-skipping so a 1e-6 BER costs a
 *                     handful of draws per page, not one per bit;
 *   - uncorrectable:  the device's ECC gives up on the whole read;
 *   - timeout:        the command never completes and is re-issued after
 *                     a modeled backoff (latency charged into SimTime);
 *   - garble:         the tail of the returned block is replaced with
 *                     deterministic noise, modeling a torn/truncated
 *                     compressed block.
 *
 * Write-side fault classes (ISSUE 4, crash consistency):
 *   - torn write:     the page program stops after a deterministic
 *                     prefix; the device still acks (a lying device —
 *                     detected at mount by journaled page CRCs);
 *   - dropped write:  the program never reaches the media but the
 *                     device acks (detected the same way);
 *   - power cut:      the Nth write draw halts the device mid-program:
 *                     a deterministic prefix persists, the command
 *                     fails with kUnavailable, and every later command
 *                     fails until the store is remounted via recovery.
 */
#ifndef MITHRIL_FAULT_FAULT_PLAN_H
#define MITHRIL_FAULT_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/simtime.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace mithril::fault {

/** Fault rates and retry policy; all rates are per read attempt. */
struct FaultPlanConfig {
    /** Root seed; every fault draw derives from it deterministically. */
    uint64_t seed = 1;
    /** Probability each stored bit reads back flipped (silent). */
    double bit_error_rate = 0.0;
    /** Probability a read fails as ECC-uncorrectable (reported). */
    double uncorrectable_rate = 0.0;
    /** Probability a read command times out (reported, retried). */
    double timeout_rate = 0.0;
    /** Probability the returned block comes back torn/garbled (silent). */
    double block_garble_rate = 0.0;
    /** Probability a page program persists only a prefix (silent). */
    double torn_write_rate = 0.0;
    /** Probability a page program never reaches the media (silent). */
    double dropped_write_rate = 0.0;
    /** Power cut fires on exactly this write draw ordinal (1-based);
     *  0 disables. The in-flight program persists a drawn prefix. */
    uint64_t power_cut_after_writes = 0;
    /**
     * Pre-biases the write-draw counter, so that write ordinals — and
     * with them power_cut_after_writes — stay *globally monotone*
     * across a crash/recover/reopen cycle that spans processes: a
     * second life attaching `write_base=<first life's draws at the
     * cut>` numbers its programs as a continuation of the first, and
     * `cut_after=` addresses any ordinal of the whole multi-generation
     * history. (Within one process the counter never resets, so
     * in-process reopen is monotone without this.) Note the per-draw
     * RNG mixes the *global* ordinal, so the drawn persisted prefix is
     * also a function of the whole history, not the life.
     */
    uint64_t write_draw_base = 0;
    /** Read re-issues the device attempts before declaring data loss. */
    unsigned max_retries = 4;
    /** Extra modeled delay before each re-issued command. */
    SimTime retry_backoff = SimTime::microseconds(250);
};

/** Outcome of one fault draw for one read attempt of one page. */
struct ReadFault {
    bool timeout = false;
    bool uncorrectable = false;
    bool garble = false;
    /** First garbled byte offset within the page (valid when garble). */
    uint32_t garble_offset = 0;
    /** Seed for the deterministic garble noise (valid when garble). */
    uint64_t garble_seed = 0;
    /** Bit offsets (little-endian within each byte) to flip. */
    std::vector<uint32_t> flipped_bits;

    /** The device reported the read failed; caller should retry. */
    bool failed() const { return timeout || uncorrectable; }
    /** The read "succeeded" but the returned bytes are damaged. */
    bool corrupts() const { return garble || !flipped_bits.empty(); }
};

/** Outcome of one fault draw for one page program (write). */
struct WriteFault {
    /** Program stopped after persisted_bytes; the device still acks. */
    bool torn = false;
    /** Program never reached the media; the device still acks. */
    bool dropped = false;
    /** Power failed mid-program: persisted_bytes land, then the device
     *  goes dark (every later command fails kUnavailable). */
    bool power_cut = false;
    /** Bytes of the program that reached the media (valid when torn or
     *  power_cut). */
    uint32_t persisted_bytes = 0;

    /** The write did not persist the full payload. */
    bool damages() const { return torn || dropped || power_cut; }
};

/** Deterministic tallies of every fault dealt; mirrors fault.* metrics. */
struct FaultCounters {
    uint64_t draws = 0;
    uint64_t timeouts = 0;
    uint64_t uncorrectable = 0;
    uint64_t bits_flipped = 0;
    uint64_t blocks_garbled = 0;
    uint64_t write_draws = 0;
    uint64_t torn_writes = 0;
    uint64_t dropped_writes = 0;
    uint64_t power_cuts = 0;
};

/**
 * A seeded fault schedule the storage layer consults on every read.
 *
 * Stateful: the draw counter advances on every drawRead, so repeated
 * reads of the same page see independent (but reproducible) faults —
 * that is what makes retry-with-backoff effective against transient
 * timeouts while persistent rates stay persistent in expectation.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(FaultPlanConfig config);

    /**
     * Parses a plan spec like
     *   "seed=7,ber=1e-6,timeout=0.01,ecc=1e-4,garble=1e-4,retries=4"
     * into @p out (keys: seed, ber, ecc, timeout, garble, torn, drop,
     * cut_after, write_base, retries, backoff_us). Unmentioned keys
     * keep their defaults; an empty spec is a valid all-zero
     * (null-fault) plan.
     */
    static Status parse(std::string_view spec, FaultPlanConfig *out);

    const FaultPlanConfig &config() const { return config_; }
    const FaultCounters &counters() const { return counters_; }

    /** Joins the unified metric namespace as `fault.*` counters. */
    void bindMetrics(obs::MetricsRegistry *metrics);

    /**
     * Draws the fault outcome for one read attempt of @p page_id with
     * @p page_bytes payload bytes. Advances the draw counter and the
     * fault counters (counting happens at draw time so the tally is
     * identical whether or not the caller applies the corruption).
     */
    ReadFault drawRead(uint64_t page_id, size_t page_bytes);

    /**
     * Draws the fault outcome for one page program of @p page_id with
     * @p page_bytes payload bytes. Advances the write-draw counter (a
     * separate ordinal stream from reads, so read retries never shift
     * the power-cut point) and the fault counters.
     */
    WriteFault drawWrite(uint64_t page_id, size_t page_bytes);

    /** Applies bit flips and garbling from @p f to a page copy. */
    void applyCorruption(const ReadFault &f,
                         std::span<uint8_t> page) const;

  private:
    FaultPlanConfig config_;
    FaultCounters counters_;
    obs::Counter *obs_[9] = {};
};

} // namespace mithril::fault

#endif // MITHRIL_FAULT_FAULT_PLAN_H
