#include "fault/fault_plan.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/hash.h"
#include "common/rng.h"

namespace mithril::fault {

namespace {

enum ObsSlot {
    kObsDraws = 0,
    kObsTimeouts,
    kObsUncorrectable,
    kObsBitsFlipped,
    kObsBlocksGarbled,
    kObsWriteDraws,
    kObsTornWrites,
    kObsDroppedWrites,
    kObsPowerCuts,
};

/** Domain separator so write draws use an RNG stream independent of
 *  the read draws for the same (seed, page). */
constexpr uint64_t kWriteStream = 0x57524954u;  // "WRIT"

/**
 * Geometric(p) gap: clean bits to skip before the next flipped bit.
 * Inverse-CDF sampling keeps a 1e-6 BER at ~0 draws per 4 KB page
 * instead of 32768 Bernoulli trials.
 */
uint64_t
geometricGap(Rng &rng, double p)
{
    double denom = std::log1p(-p); // < 0 for p in (0, 1]; -inf at p = 1
    double g = std::log1p(-rng.uniform()) / denom;
    if (!(g < 1e18)) {
        g = 1e18;
    }
    return static_cast<uint64_t>(g);
}

Status
parseDouble(std::string_view key, std::string_view value, double lo,
            double hi, double *out)
{
    std::string buf(value);
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str() || *end != '\0' || !(v >= lo) || !(v <= hi)) {
        return Status::invalidArgument("fault plan: bad value for '" +
                                       std::string(key) + "': " + buf);
    }
    *out = v;
    return Status::ok();
}

Status
parseU64(std::string_view key, std::string_view value, uint64_t *out)
{
    std::string buf(value);
    char *end = nullptr;
    uint64_t v = std::strtoull(buf.c_str(), &end, 0);
    if (end == buf.c_str() || *end != '\0') {
        return Status::invalidArgument("fault plan: bad value for '" +
                                       std::string(key) + "': " + buf);
    }
    *out = v;
    return Status::ok();
}

} // namespace

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config)
{
    MITHRIL_ASSERT(config_.bit_error_rate >= 0 &&
                   config_.bit_error_rate <= 1);
    MITHRIL_ASSERT(config_.uncorrectable_rate >= 0 &&
                   config_.uncorrectable_rate <= 1);
    MITHRIL_ASSERT(config_.timeout_rate >= 0 && config_.timeout_rate <= 1);
    MITHRIL_ASSERT(config_.block_garble_rate >= 0 &&
                   config_.block_garble_rate <= 1);
    MITHRIL_ASSERT(config_.torn_write_rate >= 0 &&
                   config_.torn_write_rate <= 1);
    MITHRIL_ASSERT(config_.dropped_write_rate >= 0 &&
                   config_.dropped_write_rate <= 1);
    // Start the write-ordinal stream at the configured base so
    // cut_after= can address ordinals of a multi-generation history
    // (see FaultPlanConfig::write_draw_base).
    counters_.write_draws = config_.write_draw_base;
}

Status
FaultPlan::parse(std::string_view spec, FaultPlanConfig *out)
{
    FaultPlanConfig cfg;
    std::string_view rest = spec;
    while (!rest.empty()) {
        size_t comma = rest.find(',');
        std::string_view item = rest.substr(0, comma);
        rest = comma == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(comma + 1);
        if (item.empty()) {
            continue;
        }
        size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            return Status::invalidArgument(
                "fault plan: expected key=value, got '" +
                std::string(item) + "'");
        }
        std::string_view key = item.substr(0, eq);
        std::string_view value = item.substr(eq + 1);
        if (key == "seed") {
            MITHRIL_RETURN_IF_ERROR(parseU64(key, value, &cfg.seed));
        } else if (key == "ber") {
            MITHRIL_RETURN_IF_ERROR(
                parseDouble(key, value, 0.0, 1.0, &cfg.bit_error_rate));
        } else if (key == "ecc") {
            MITHRIL_RETURN_IF_ERROR(parseDouble(
                key, value, 0.0, 1.0, &cfg.uncorrectable_rate));
        } else if (key == "timeout") {
            MITHRIL_RETURN_IF_ERROR(
                parseDouble(key, value, 0.0, 1.0, &cfg.timeout_rate));
        } else if (key == "garble") {
            MITHRIL_RETURN_IF_ERROR(parseDouble(
                key, value, 0.0, 1.0, &cfg.block_garble_rate));
        } else if (key == "torn") {
            MITHRIL_RETURN_IF_ERROR(parseDouble(
                key, value, 0.0, 1.0, &cfg.torn_write_rate));
        } else if (key == "drop") {
            MITHRIL_RETURN_IF_ERROR(parseDouble(
                key, value, 0.0, 1.0, &cfg.dropped_write_rate));
        } else if (key == "cut_after") {
            MITHRIL_RETURN_IF_ERROR(
                parseU64(key, value, &cfg.power_cut_after_writes));
        } else if (key == "write_base") {
            MITHRIL_RETURN_IF_ERROR(
                parseU64(key, value, &cfg.write_draw_base));
        } else if (key == "retries") {
            uint64_t v = 0;
            MITHRIL_RETURN_IF_ERROR(parseU64(key, value, &v));
            cfg.max_retries = static_cast<unsigned>(v);
        } else if (key == "backoff_us") {
            double us = 0;
            MITHRIL_RETURN_IF_ERROR(
                parseDouble(key, value, 0.0, 1e9, &us));
            cfg.retry_backoff = SimTime::microseconds(us);
        } else {
            return Status::invalidArgument("fault plan: unknown key '" +
                                           std::string(key) + "'");
        }
    }
    *out = cfg;
    return Status::ok();
}

void
FaultPlan::bindMetrics(obs::MetricsRegistry *metrics)
{
    if (metrics == nullptr) {
        return;
    }
    obs_[kObsDraws] = &metrics->counter("fault.draws");
    obs_[kObsTimeouts] = &metrics->counter("fault.timeouts");
    obs_[kObsUncorrectable] = &metrics->counter("fault.uncorrectable");
    obs_[kObsBitsFlipped] = &metrics->counter("fault.bits_flipped");
    obs_[kObsBlocksGarbled] = &metrics->counter("fault.blocks_garbled");
    obs_[kObsWriteDraws] = &metrics->counter("fault.write_draws");
    obs_[kObsTornWrites] = &metrics->counter("fault.torn_writes");
    obs_[kObsDroppedWrites] = &metrics->counter("fault.dropped_writes");
    obs_[kObsPowerCuts] = &metrics->counter("fault.power_cuts");
}

ReadFault
FaultPlan::drawRead(uint64_t page_id, size_t page_bytes)
{
    ReadFault fault;
    ++counters_.draws;
    if (obs_[kObsDraws] != nullptr) {
        obs_[kObsDraws]->add();
    }
    // One independent stream per (plan seed, page, draw ordinal): the
    // same plan replays the same faults in the same order, but a retry
    // of the same page gets a fresh draw.
    Rng rng(mix64(mix64(config_.seed ^ page_id) + counters_.draws));

    if (config_.timeout_rate > 0 && rng.chance(config_.timeout_rate)) {
        fault.timeout = true;
        ++counters_.timeouts;
        if (obs_[kObsTimeouts] != nullptr) {
            obs_[kObsTimeouts]->add();
        }
        return fault;
    }
    if (config_.uncorrectable_rate > 0 &&
        rng.chance(config_.uncorrectable_rate)) {
        fault.uncorrectable = true;
        ++counters_.uncorrectable;
        if (obs_[kObsUncorrectable] != nullptr) {
            obs_[kObsUncorrectable]->add();
        }
        return fault;
    }
    if (config_.block_garble_rate > 0 &&
        rng.chance(config_.block_garble_rate)) {
        fault.garble = true;
        fault.garble_offset =
            static_cast<uint32_t>(rng.below(page_bytes > 0 ? page_bytes
                                                           : 1));
        fault.garble_seed = rng.next();
        ++counters_.blocks_garbled;
        if (obs_[kObsBlocksGarbled] != nullptr) {
            obs_[kObsBlocksGarbled]->add();
        }
    }
    if (config_.bit_error_rate > 0) {
        uint64_t bits = static_cast<uint64_t>(page_bytes) * 8;
        uint64_t pos = geometricGap(rng, config_.bit_error_rate);
        while (pos < bits) {
            fault.flipped_bits.push_back(static_cast<uint32_t>(pos));
            pos += 1 + geometricGap(rng, config_.bit_error_rate);
        }
        counters_.bits_flipped += fault.flipped_bits.size();
        if (obs_[kObsBitsFlipped] != nullptr &&
            !fault.flipped_bits.empty()) {
            obs_[kObsBitsFlipped]->add(fault.flipped_bits.size());
        }
    }
    return fault;
}

WriteFault
FaultPlan::drawWrite(uint64_t page_id, size_t page_bytes)
{
    WriteFault fault;
    ++counters_.write_draws;
    if (obs_[kObsWriteDraws] != nullptr) {
        obs_[kObsWriteDraws]->add();
    }
    // Independent stream per (plan seed, page, write ordinal); the
    // kWriteStream separator keeps it disjoint from read draws so the
    // same plan replays the same crash point regardless of how many
    // read retries happened in between.
    Rng rng(mix64(mix64(config_.seed ^ page_id ^ kWriteStream) +
                  counters_.write_draws));

    if (config_.power_cut_after_writes > 0 &&
        counters_.write_draws == config_.power_cut_after_writes) {
        fault.power_cut = true;
        fault.persisted_bytes =
            static_cast<uint32_t>(rng.below(page_bytes + 1));
        ++counters_.power_cuts;
        if (obs_[kObsPowerCuts] != nullptr) {
            obs_[kObsPowerCuts]->add();
        }
        return fault;
    }
    if (config_.torn_write_rate > 0 &&
        rng.chance(config_.torn_write_rate)) {
        fault.torn = true;
        fault.persisted_bytes =
            static_cast<uint32_t>(rng.below(page_bytes + 1));
        ++counters_.torn_writes;
        if (obs_[kObsTornWrites] != nullptr) {
            obs_[kObsTornWrites]->add();
        }
        return fault;
    }
    if (config_.dropped_write_rate > 0 &&
        rng.chance(config_.dropped_write_rate)) {
        fault.dropped = true;
        ++counters_.dropped_writes;
        if (obs_[kObsDroppedWrites] != nullptr) {
            obs_[kObsDroppedWrites]->add();
        }
    }
    return fault;
}

void
FaultPlan::applyCorruption(const ReadFault &f,
                           std::span<uint8_t> page) const
{
    for (uint32_t bit : f.flipped_bits) {
        size_t byte = bit / 8;
        if (byte < page.size()) {
            page[byte] ^= static_cast<uint8_t>(1u << (bit % 8));
        }
    }
    if (f.garble && f.garble_offset < page.size()) {
        Rng noise(f.garble_seed);
        for (size_t i = f.garble_offset; i < page.size(); ++i) {
            page[i] = static_cast<uint8_t>(noise.next());
        }
    }
}

} // namespace mithril::fault
