#include "compress/lzah.h"

#include <cstddef>
#include <cstring>

#include "common/bits.h"
#include "common/hash.h"
#include "storage/page.h"

namespace mithril::compress {

namespace {

constexpr uint32_t kPageMagic = 0x48415a4c;  // "LZAH"
constexpr size_t kPageBytes = storage::kPageSize;
constexpr size_t kPageHeaderBytes = kLzahWord;

/** Per-page header occupying the first datapath word. */
struct PageHeader {
    uint32_t item_count;
    uint32_t decompressed_bytes;  // padded (word-aligned) form
    uint32_t magic;
    uint32_t crc;                 // CRC-32 of the payload (bytes 16..)
};
static_assert(sizeof(PageHeader) == kPageHeaderBytes);

/** CRC-32 of everything after the header word. The header fields
 *  themselves are covered by the magic and the byte/item consistency
 *  check, so a flip anywhere in the page is detected. */
uint32_t
pagePayloadCrc(ByteView page)
{
    return crc32(page.data() + kPageHeaderBytes,
                 page.size() - kPageHeaderBytes);
}

/** Exact encoded byte size of @p is_match chunk-packed into one page. */
size_t
encodedSize(const std::vector<bool> &is_match)
{
    size_t total = kPageHeaderBytes;
    size_t i = 0;
    while (i < is_match.size()) {
        size_t n = std::min(kLzahChunkItems, is_match.size() - i);
        size_t payload = 0;
        for (size_t k = 0; k < n; ++k) {
            payload += is_match[i + k] ? 2 : kLzahWord;
        }
        total += kLzahWord + alignUp(payload, kLzahWord);
        i += n;
    }
    return total;
}

} // namespace

uint32_t
lzahHash(const Word &w)
{
    // Four 32-bit lanes, one multiplier each, XOR-folded: shallow enough
    // for a single pipeline stage in hardware.
    uint32_t l0, l1, l2, l3;
    std::memcpy(&l0, w.data() + 0, 4);
    std::memcpy(&l1, w.data() + 4, 4);
    std::memcpy(&l2, w.data() + 8, 4);
    std::memcpy(&l3, w.data() + 12, 4);
    uint32_t h = l0 * 2654435761u ^ l1 * 2246822519u ^
                 l2 * 3266489917u ^ l3 * 668265263u;
    h ^= h >> 15;
    h ^= h >> 7;
    return h & (kLzahTableEntries - 1);
}

// --------------------------------------------------------------------------
// LzahPageEncoder

LzahPageEncoder::LzahPageEncoder() : table_(kLzahTableEntries) {}

void
LzahPageEncoder::encodeLineWords(std::string_view line,
                                 std::vector<PendingItem> *items,
                                 size_t *literal_words,
                                 std::vector<std::pair<uint32_t, Word>> *undo)
{
    // The line arrives without its terminator; LZAH encodes it as full
    // 16-byte words with the final word holding the '\n' followed by
    // zero padding (the window realignment of Figure 8).
    size_t pos = 0;
    size_t len = line.size();
    while (true) {
        Word w{};
        size_t remaining = len - pos;
        bool last = remaining < kLzahWord;
        size_t take = last ? remaining : kLzahWord;
        if (take > 0) {
            std::memcpy(w.data(), line.data() + pos, take);
        }
        if (last) {
            w[take] = '\n';
        }
        uint32_t idx = lzahHash(w);
        PendingItem item;
        if (table_[idx] == w) {
            item.is_match = true;
            item.index = static_cast<uint16_t>(idx);
        } else {
            item.is_match = false;
            item.literal = w;
            if (undo != nullptr) {
                undo->emplace_back(idx, table_[idx]);
            }
            table_[idx] = w;
            ++*literal_words;
        }
        items->push_back(item);
        decompressed_bytes_ += kLzahWord;
        pos += take;
        if (last) {
            break;
        }
        if (pos == len) {
            // Length was an exact multiple of the word size: the
            // terminator still needs its own (mostly padding) word.
            len = 0;
            pos = 0;
            line = std::string_view();
        }
    }
}

AddLineResult
LzahPageEncoder::addLine(std::string_view line)
{
    if (line.size() > kMaxLineBytes) {
        return AddLineResult::kRejected;
    }

    // Optimistically encode against the live table, keeping a rollback
    // log in case the line overflows the open page (pages decompress
    // independently, so a sealed page's table state must not leak).
    std::vector<std::pair<uint32_t, Word>> undo;
    size_t undo_base = items_.size();
    size_t literal_before = literal_words_;
    uint32_t bytes_before = decompressed_bytes_;

    encodeLineWords(line, &items_, &literal_words_, &undo);

    std::vector<bool> flags(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) {
        flags[i] = items_[i].is_match;
    }
    if (encodedSize(flags) <= kPageBytes) {
        raw_bytes_ += line.size() + 1;
        return AddLineResult::kAppended;
    }

    // Overflow: roll back, seal, re-encode against the fresh page.
    items_.resize(undo_base);
    literal_words_ = literal_before;
    decompressed_bytes_ = bytes_before;
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        table_[it->first] = it->second;
    }
    sealPage();
    // A fresh page always fits a <= kMaxLineBytes line (see header).
    encodeLineWords(line, &items_, &literal_words_, nullptr);
    raw_bytes_ += line.size() + 1;
    return AddLineResult::kSealedAndAppended;
}

void
LzahPageEncoder::flush()
{
    if (!items_.empty()) {
        sealPage();
    }
}

void
LzahPageEncoder::sealPage()
{
    if (items_.empty()) {
        table_.assign(kLzahTableEntries, Word{});
        return;
    }
    Bytes page(kPageBytes, 0);
    PageHeader hdr{};
    hdr.item_count = static_cast<uint32_t>(items_.size());
    hdr.decompressed_bytes = decompressed_bytes_;
    hdr.magic = kPageMagic;
    // hdr.crc is patched in after the payload is laid out.
    std::memcpy(page.data(), &hdr, sizeof hdr);

    size_t off = kPageHeaderBytes;
    size_t i = 0;
    while (i < items_.size()) {
        size_t n = std::min(kLzahChunkItems, items_.size() - i);
        // Header word: bit k set => item k of this chunk is a match.
        uint8_t *header = page.data() + off;
        off += kLzahWord;
        for (size_t k = 0; k < n; ++k) {
            if (items_[i + k].is_match) {
                header[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
            }
        }
        for (size_t k = 0; k < n; ++k) {
            const PendingItem &item = items_[i + k];
            if (item.is_match) {
                std::memcpy(page.data() + off, &item.index, 2);
                off += 2;
            } else {
                std::memcpy(page.data() + off, item.literal.data(),
                            kLzahWord);
                off += kLzahWord;
            }
        }
        off = alignUp(off, kLzahWord);
        i += n;
    }
    MITHRIL_ASSERT(off <= kPageBytes);

    hdr.crc = pagePayloadCrc(page);
    std::memcpy(page.data() + offsetof(PageHeader, crc), &hdr.crc, 4);

    pages_.push_back(std::move(page));
    items_.clear();
    literal_words_ = 0;
    decompressed_bytes_ = 0;
    // Page independence: the decoder starts from an empty table.
    table_.assign(kLzahTableEntries, Word{});
}

// --------------------------------------------------------------------------
// Page decoding

Status
lzahVerifyPage(ByteView page)
{
    if (page.size() < kPageHeaderBytes) {
        return Status::corruptData("LZAH page shorter than header");
    }
    PageHeader hdr;
    std::memcpy(&hdr, page.data(), sizeof hdr);
    if (hdr.magic != kPageMagic) {
        return Status::corruptData("LZAH page magic mismatch");
    }
    if (hdr.decompressed_bytes !=
        hdr.item_count * static_cast<uint32_t>(kLzahWord)) {
        return Status::corruptData("LZAH header byte/item mismatch");
    }
    if (hdr.crc != pagePayloadCrc(page)) {
        return Status::dataLoss("LZAH page CRC mismatch");
    }
    return Status::ok();
}

Status
lzahDecodePage(ByteView page, bool padded, Bytes *output,
               uint64_t *word_count)
{
    MITHRIL_RETURN_IF_ERROR(lzahVerifyPage(page));
    PageHeader hdr;
    std::memcpy(&hdr, page.data(), sizeof hdr);

    std::vector<Word> table(kLzahTableEntries);
    size_t off = kPageHeaderBytes;
    uint32_t remaining = hdr.item_count;
    uint64_t words = 0;

    while (remaining > 0) {
        size_t n = std::min<size_t>(kLzahChunkItems, remaining);
        if (off + kLzahWord > page.size()) {
            return Status::corruptData("LZAH chunk header out of bounds");
        }
        const uint8_t *header = page.data() + off;
        off += kLzahWord;
        for (size_t k = 0; k < n; ++k) {
            bool is_match = (header[k / 8] >> (k % 8)) & 1;
            Word w{};
            if (is_match) {
                if (off + 2 > page.size()) {
                    return Status::corruptData("LZAH match payload OOB");
                }
                uint16_t idx;
                std::memcpy(&idx, page.data() + off, 2);
                off += 2;
                if (idx >= kLzahTableEntries) {
                    return Status::corruptData("LZAH table index OOB");
                }
                w = table[idx];
            } else {
                if (off + kLzahWord > page.size()) {
                    return Status::corruptData("LZAH literal payload OOB");
                }
                std::memcpy(w.data(), page.data() + off, kLzahWord);
                off += kLzahWord;
            }
            table[lzahHash(w)] = w;
            ++words;
            if (padded) {
                output->insert(output->end(), w.begin(), w.end());
            } else {
                // Strip the zero padding the encoder added after '\n'.
                size_t useful = kLzahWord;
                for (size_t b = 0; b < kLzahWord; ++b) {
                    if (w[b] == '\n') {
                        useful = b + 1;
                        break;
                    }
                }
                output->insert(output->end(), w.begin(), w.begin() + useful);
            }
        }
        off = alignUp(off, kLzahWord);
        remaining -= static_cast<uint32_t>(n);
    }
    if (word_count != nullptr) {
        *word_count += words;
    }
    return Status::ok();
}

// --------------------------------------------------------------------------
// Whole-buffer codec

Bytes
Lzah::compress(ByteView input) const
{
    LzahPageEncoder encoder;
    std::string_view text = asChars(input.data(), input.size());

    // Lines longer than a page are split into word-aligned fragments,
    // each fed as its own "line". The artificial terminator every
    // fragment gains is recorded as a join point in the frame header
    // and removed on decode.
    constexpr size_t kFragment =
        LzahPageEncoder::kMaxLineBytes / kLzahWord * kLzahWord;

    // Frame: u64 original_size, u8 has_trailing_newline, join-point
    // list (u32 count + u64 offsets), u32 page count, then the pages.
    std::vector<uint64_t> joins;

    size_t pos = 0;
    uint64_t out_off = 0;  // offset in reconstructed (unpadded) stream
    bool trailing_newline = !text.empty() && text.back() == '\n';
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        std::string_view line = (nl == std::string_view::npos)
            ? text.substr(pos)
            : text.substr(pos, nl - pos);
        size_t consumed = line.size() + (nl == std::string_view::npos ? 0 : 1);

        while (line.size() > LzahPageEncoder::kMaxLineBytes) {
            std::string_view frag = line.substr(0, kFragment);
            AddLineResult r = encoder.addLine(frag);
            MITHRIL_ASSERT(r != AddLineResult::kRejected);
            out_off += frag.size() + 1;
            // The artificial '\n' at out_off-1 must be removed on decode.
            joins.push_back(out_off - 1);
            line = line.substr(kFragment);
        }
        AddLineResult r = encoder.addLine(line);
        MITHRIL_ASSERT(r != AddLineResult::kRejected);
        out_off += line.size() + 1;
        pos += consumed;
    }
    encoder.flush();

    Bytes out;
    putLe<uint64_t>(out, input.size());
    putLe<uint8_t>(out, trailing_newline ? 1 : 0);
    putLe<uint32_t>(out, static_cast<uint32_t>(joins.size()));
    for (uint64_t j : joins) {
        putLe<uint64_t>(out, j);
    }
    putLe<uint32_t>(out, static_cast<uint32_t>(encoder.pages().size()));
    for (const Bytes &page : encoder.pages()) {
        out.insert(out.end(), page.begin(), page.end());
    }
    appendCrcTrailer(&out);
    return out;
}

Status
Lzah::decompress(ByteView input, Bytes *output) const
{
    ByteView frame;
    MITHRIL_RETURN_IF_ERROR(stripCrcTrailer(input, &frame));
    input = frame;
    size_t need = 8 + 1 + 4;
    if (input.size() < need) {
        return Status::corruptData("LZAH frame truncated");
    }
    uint64_t original_size = getLe<uint64_t>(input.data());
    if (original_size > kMaxDecodedBytes) {
        return Status::corruptData("LZAH declared size implausible");
    }
    uint8_t trailing_newline = input[8];
    uint32_t join_count = getLe<uint32_t>(input.data() + 9);
    size_t off = 13;
    if (input.size() < off + 8ull * join_count + 4) {
        return Status::corruptData("LZAH frame join list truncated");
    }
    std::vector<uint64_t> joins(join_count);
    for (uint32_t i = 0; i < join_count; ++i) {
        joins[i] = getLe<uint64_t>(input.data() + off);
        off += 8;
    }
    uint32_t page_count = getLe<uint32_t>(input.data() + off);
    off += 4;
    if (input.size() < off + static_cast<size_t>(page_count) * kPageBytes) {
        return Status::corruptData("LZAH frame pages truncated");
    }

    Bytes stream;
    stream.reserve(
        std::min<uint64_t>(original_size + 16, kMaxDecodeReserve));
    for (uint32_t p = 0; p < page_count; ++p) {
        MITHRIL_RETURN_IF_ERROR(lzahDecodePage(
            input.subspan(off, kPageBytes), /*padded=*/false, &stream));
        off += kPageBytes;
    }

    // Remove the artificial newlines inserted at long-line split points.
    if (!joins.empty()) {
        Bytes cleaned;
        cleaned.reserve(stream.size());
        size_t j = 0;
        for (size_t i = 0; i < stream.size(); ++i) {
            if (j < joins.size() && i == joins[j]) {
                ++j;
                continue;
            }
            cleaned.push_back(stream[i]);
        }
        if (j != joins.size()) {
            return Status::corruptData("LZAH join points out of range");
        }
        stream = std::move(cleaned);
    }

    // The encoder always terminates the final line; undo that when the
    // original had no trailing newline.
    if (!trailing_newline && !stream.empty() && stream.back() == '\n') {
        stream.pop_back();
    }
    if (stream.size() != original_size) {
        return Status::corruptData("LZAH decoded size mismatch");
    }
    output->insert(output->end(), stream.begin(), stream.end());
    return Status::ok();
}

// --------------------------------------------------------------------------
// Cycle model

Status
LzahDecompressorModel::decodePage(ByteView page, Bytes *output)
{
    uint64_t words = 0;
    MITHRIL_RETURN_IF_ERROR(
        lzahDecodePage(page, /*padded=*/true, output, &words));
    cycles_ += words;
    bytes_out_ += words * kLzahWord;
    return Status::ok();
}

} // namespace mithril::compress
