/**
 * @file
 * MiniDeflate — LZ77 + canonical Huffman, standing in for gzip/DEFLATE.
 *
 * Reproduces the algorithmic structure of DEFLATE (RFC 1951): a 32 KB
 * sliding window with hash-chain match search and one-step lazy
 * matching, DEFLATE's length/distance code tables with extra bits, and
 * per-block dynamic canonical Huffman codes. The container differs from
 * zlib (block headers store raw 4-bit code lengths instead of the
 * RLE-of-lengths scheme), which costs a fraction of a percent at our
 * block sizes; compression ratios land in gzip's band, which is what the
 * Table 5 comparison needs.
 */
#ifndef MITHRIL_COMPRESS_MINIDEFLATE_H
#define MITHRIL_COMPRESS_MINIDEFLATE_H

#include "compress/compressor.h"

namespace mithril::compress {

/** DEFLATE-class codec (LZ77 + dynamic canonical Huffman). */
class MiniDeflate : public Compressor
{
  public:
    std::string name() const override { return "Gzip"; }
    Bytes compress(ByteView input) const override;
    Status decompress(ByteView input, Bytes *output) const override;
};

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_MINIDEFLATE_H
