#include "compress/huffman.h"

#include <algorithm>
#include <queue>

namespace mithril::compress {

namespace {

/** Unlimited Huffman lengths via pairing heap of (weight, node). */
std::vector<uint8_t>
unlimitedLengths(const std::vector<uint64_t> &freqs)
{
    size_t n = freqs.size();
    struct Node {
        uint64_t weight;
        int left = -1, right = -1;
        int symbol = -1;
    };
    std::vector<Node> nodes;
    using Entry = std::pair<uint64_t, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

    for (size_t s = 0; s < n; ++s) {
        if (freqs[s] > 0) {
            nodes.push_back({freqs[s], -1, -1, static_cast<int>(s)});
            heap.emplace(freqs[s], static_cast<int>(nodes.size() - 1));
        }
    }
    std::vector<uint8_t> lengths(n, 0);
    if (heap.empty()) {
        return lengths;
    }
    if (heap.size() == 1) {
        // A single used symbol still needs one bit on the wire.
        lengths[nodes[0].symbol] = 1;
        return lengths;
    }
    while (heap.size() > 1) {
        auto [wa, a] = heap.top();
        heap.pop();
        auto [wb, b] = heap.top();
        heap.pop();
        nodes.push_back({wa + wb, a, b, -1});
        heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
    }
    // Depth-first traversal assigning depths.
    std::vector<std::pair<int, uint8_t>> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node &node = nodes[idx];
        if (node.symbol >= 0) {
            lengths[node.symbol] = std::max<uint8_t>(depth, 1);
        } else {
            stack.emplace_back(node.left, depth + 1);
            stack.emplace_back(node.right, depth + 1);
        }
    }
    return lengths;
}

} // namespace

std::vector<uint8_t>
huffmanCodeLengths(const std::vector<uint64_t> &freqs)
{
    std::vector<uint64_t> scaled = freqs;
    while (true) {
        std::vector<uint8_t> lengths = unlimitedLengths(scaled);
        uint8_t max_len = 0;
        for (uint8_t l : lengths) {
            max_len = std::max(max_len, l);
        }
        if (max_len <= kMaxCodeBits) {
            return lengths;
        }
        // Flatten the distribution and retry; preserves the used-symbol
        // set (nonzero stays nonzero).
        for (uint64_t &f : scaled) {
            if (f > 0) {
                f = (f + 1) / 2;
            }
        }
    }
}

std::vector<uint32_t>
canonicalCodes(const std::vector<uint8_t> &lengths)
{
    uint16_t count[kMaxCodeBits + 2] = {};
    for (uint8_t l : lengths) {
        MITHRIL_ASSERT(l <= kMaxCodeBits);
        if (l > 0) {
            ++count[l];
        }
    }
    uint32_t next[kMaxCodeBits + 2] = {};
    uint32_t code = 0;
    for (int l = 1; l <= kMaxCodeBits; ++l) {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    std::vector<uint32_t> codes(lengths.size(), 0);
    for (size_t s = 0; s < lengths.size(); ++s) {
        uint8_t l = lengths[s];
        if (l == 0) {
            continue;
        }
        uint32_t c = next[l]++;
        // Bit-reverse for LSB-first emission.
        uint32_t rev = 0;
        for (int b = 0; b < l; ++b) {
            rev = (rev << 1) | ((c >> b) & 1);
        }
        codes[s] = rev;
    }
    return codes;
}

Status
HuffmanDecoder::init(const std::vector<uint8_t> &lengths)
{
    std::fill(std::begin(count_), std::end(count_), 0);
    symbols_.clear();
    for (uint8_t l : lengths) {
        if (l > kMaxCodeBits) {
            return Status::corruptData("Huffman length out of range");
        }
        if (l > 0) {
            ++count_[l];
        }
    }
    // Kraft check: sum 2^-l must not exceed 1 (equality for complete).
    uint64_t kraft = 0;
    for (int l = 1; l <= kMaxCodeBits; ++l) {
        kraft += static_cast<uint64_t>(count_[l])
                 << (kMaxCodeBits - l);
    }
    if (kraft > (1ull << kMaxCodeBits)) {
        return Status::corruptData("Huffman lengths oversubscribed");
    }

    uint32_t code = 0;
    uint32_t index = 0;
    for (int l = 1; l <= kMaxCodeBits; ++l) {
        code = (code + count_[l - 1]) << 1;
        first_code_[l] = code;
        first_index_[l] = index;
        index += count_[l];
    }
    symbols_.resize(index);
    uint32_t fill[kMaxCodeBits + 2];
    std::copy(std::begin(first_index_), std::end(first_index_), fill);
    for (size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] > 0) {
            symbols_[fill[lengths[s]]++] = static_cast<uint32_t>(s);
        }
    }
    return Status::ok();
}

Status
HuffmanDecoder::decode(BitReader *reader, uint32_t *symbol) const
{
    uint32_t code = 0;
    for (int l = 1; l <= kMaxCodeBits; ++l) {
        uint64_t bit;
        if (!reader->read(1, &bit)) {
            return Status::corruptData("Huffman stream truncated");
        }
        code = (code << 1) | static_cast<uint32_t>(bit);
        if (count_[l] > 0 && code < first_code_[l] + count_[l] &&
            code >= first_code_[l]) {
            *symbol = symbols_[first_index_[l] + (code - first_code_[l])];
            return Status::ok();
        }
    }
    return Status::corruptData("Huffman code not found");
}

} // namespace mithril::compress
