/**
 * @file
 * Canonical Huffman coding, the entropy stage of MiniDeflate.
 *
 * Implements length-limited Huffman code construction (max 15 bits, as
 * in DEFLATE), canonical code assignment in symbol order, and a
 * bit-serial canonical decoder. Kept independent of the LZ77 stage so it
 * can be unit- and property-tested on its own.
 */
#ifndef MITHRIL_COMPRESS_HUFFMAN_H
#define MITHRIL_COMPRESS_HUFFMAN_H

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/status.h"

namespace mithril::compress {

/** Maximum code length (DEFLATE's limit). */
constexpr int kMaxCodeBits = 15;

/**
 * Computes length-limited Huffman code lengths for @p freqs.
 *
 * Symbols with zero frequency get length 0. If the optimal tree exceeds
 * kMaxCodeBits, frequencies are repeatedly halved (floor, min 1) until
 * it fits — a standard simple limiting strategy whose loss is negligible
 * at our alphabet sizes.
 *
 * @return per-symbol code lengths (same size as @p freqs).
 */
std::vector<uint8_t> huffmanCodeLengths(const std::vector<uint64_t> &freqs);

/**
 * Assigns canonical codes from lengths (shorter codes first; ties by
 * symbol order), DEFLATE-compatible. Codes are returned bit-reversed
 * ready for LSB-first emission.
 *
 * @return per-symbol codes; meaningful only where length > 0.
 */
std::vector<uint32_t> canonicalCodes(const std::vector<uint8_t> &lengths);

/**
 * Canonical Huffman decoder over an LSB-first bit stream.
 */
class HuffmanDecoder
{
  public:
    /** Builds decoding state from canonical code lengths.
     *  Returns kCorruptData if the lengths are not a prefix code. */
    Status init(const std::vector<uint8_t> &lengths);

    /** Decodes one symbol; kCorruptData on invalid stream. */
    Status decode(BitReader *reader, uint32_t *symbol) const;

  private:
    // first_code_[l] / first_index_[l]: canonical decode tables.
    uint32_t first_code_[kMaxCodeBits + 2] = {};
    uint32_t first_index_[kMaxCodeBits + 2] = {};
    uint16_t count_[kMaxCodeBits + 2] = {};
    std::vector<uint32_t> symbols_;  // in canonical order
};

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_HUFFMAN_H
