#include "compress/minideflate.h"

#include <cstring>

#include "compress/huffman.h"

namespace mithril::compress {

namespace {

constexpr size_t kWindow = 32768;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 258;
constexpr size_t kHashBits = 15;
constexpr size_t kHashEntries = 1u << kHashBits;
constexpr int kMaxChain = 48;
constexpr size_t kBlockSymbols = 1u << 16;

constexpr size_t kLitLenSymbols = 286;  // 0..255 lit, 256 EOB, 257..285
constexpr size_t kDistSymbols = 30;
constexpr uint32_t kEob = 256;

// DEFLATE length code table: base length and extra bits for 257..285.
constexpr uint16_t kLenBase[29] = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr uint8_t kLenExtra[29] = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance code table: base distance and extra bits for 0..29.
constexpr uint32_t kDistBase[30] = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577};
constexpr uint8_t kDistExtra[30] = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

/** Length (3..258) -> length code index (0..28). */
int
lengthCode(size_t len)
{
    for (int c = 28; c >= 0; --c) {
        if (len >= kLenBase[c]) {
            return c;
        }
    }
    return 0;
}

/** Distance (1..32768) -> distance code (0..29). */
int
distanceCode(size_t dist)
{
    for (int c = 29; c >= 0; --c) {
        if (dist >= kDistBase[c]) {
            return c;
        }
    }
    return 0;
}

inline uint32_t
hash3(const uint8_t *p)
{
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** One LZ77 output item. */
struct Item {
    bool is_match;
    uint8_t literal;
    uint32_t length;
    uint32_t distance;
};

/** Hash-chain match finder over the whole input. */
class MatchFinder
{
  public:
    explicit MatchFinder(ByteView input)
        : base_(input.data()), n_(input.size()),
          head_(kHashEntries, kNone), prev_(input.size(), kNone) {}

    /** Best match at @p pos (length 0 when none of length >= 3). */
    void
    find(size_t pos, size_t *best_len, size_t *best_dist) const
    {
        *best_len = 0;
        *best_dist = 0;
        if (pos + kMinMatch > n_) {
            return;
        }
        size_t limit = std::min(kMaxMatch, n_ - pos);
        size_t cand = head_[hash3(base_ + pos)];
        int chain = kMaxChain;
        while (cand != kNone && chain-- > 0) {
            if (pos - cand > kWindow) {
                break;
            }
            // Quick reject on the byte one past the current best.
            if (*best_len == 0 ||
                base_[cand + *best_len] == base_[pos + *best_len]) {
                size_t len = 0;
                while (len < limit && base_[cand + len] == base_[pos + len]) {
                    ++len;
                }
                if (len > *best_len) {
                    *best_len = len;
                    *best_dist = pos - cand;
                    if (len == limit) {
                        break;
                    }
                }
            }
            cand = prev_[cand];
        }
        if (*best_len < kMinMatch) {
            *best_len = 0;
            *best_dist = 0;
        }
    }

    /** Registers position @p pos in the chains. */
    void
    insert(size_t pos)
    {
        if (pos + kMinMatch > n_) {
            return;
        }
        uint32_t h = hash3(base_ + pos);
        prev_[pos] = head_[h];
        head_[h] = pos;
    }

  private:
    static constexpr size_t kNone = ~size_t{0};

    const uint8_t *base_;
    size_t n_;
    std::vector<size_t> head_;
    std::vector<size_t> prev_;
};

/** Writes one Huffman-coded block of items. */
void
writeBlock(BitWriter *writer, const std::vector<Item> &items)
{
    std::vector<uint64_t> lit_freq(kLitLenSymbols, 0);
    std::vector<uint64_t> dist_freq(kDistSymbols, 0);
    lit_freq[kEob] = 1;
    for (const Item &item : items) {
        if (item.is_match) {
            ++lit_freq[257 + lengthCode(item.length)];
            ++dist_freq[distanceCode(item.distance)];
        } else {
            ++lit_freq[item.literal];
        }
    }
    std::vector<uint8_t> lit_lens = huffmanCodeLengths(lit_freq);
    std::vector<uint8_t> dist_lens = huffmanCodeLengths(dist_freq);
    std::vector<uint32_t> lit_codes = canonicalCodes(lit_lens);
    std::vector<uint32_t> dist_codes = canonicalCodes(dist_lens);

    // Block header: symbol count, then raw 4-bit code lengths.
    writer->write(items.size(), 32);
    for (uint8_t l : lit_lens) {
        writer->write(l, 4);
    }
    for (uint8_t l : dist_lens) {
        writer->write(l, 4);
    }

    for (const Item &item : items) {
        if (item.is_match) {
            int lc = lengthCode(item.length);
            writer->write(lit_codes[257 + lc], lit_lens[257 + lc]);
            writer->write(item.length - kLenBase[lc], kLenExtra[lc]);
            int dc = distanceCode(item.distance);
            writer->write(dist_codes[dc], dist_lens[dc]);
            writer->write(item.distance - kDistBase[dc], kDistExtra[dc]);
        } else {
            writer->write(lit_codes[item.literal], lit_lens[item.literal]);
        }
    }
    writer->write(lit_codes[kEob], lit_lens[kEob]);
}

} // namespace

Bytes
MiniDeflate::compress(ByteView input) const
{
    // Code lengths of 4 bits in the raw header cap at 15 = kMaxCodeBits,
    // which huffmanCodeLengths guarantees.
    static_assert(kMaxCodeBits == 15);

    MatchFinder finder(input);
    BitWriter writer;
    writer.write(input.size(), 48);  // original size (up to 256 TB)

    std::vector<Item> items;
    items.reserve(kBlockSymbols);

    size_t pos = 0;
    size_t n = input.size();
    while (pos < n) {
        size_t len, dist;
        finder.find(pos, &len, &dist);
        // One-step lazy matching: prefer a longer match at pos+1.
        if (len > 0 && len < kMaxMatch && pos + 1 < n) {
            size_t len1, dist1;
            finder.insert(pos);
            finder.find(pos + 1, &len1, &dist1);
            if (len1 > len + 1) {
                items.push_back({false, input[pos], 0, 0});
                ++pos;
                len = len1;
                dist = dist1;
            }
            // pos already inserted either way.
            if (len >= kMinMatch) {
                items.push_back({true, 0, static_cast<uint32_t>(len),
                                 static_cast<uint32_t>(dist)});
                for (size_t i = 1; i < len; ++i) {
                    finder.insert(pos + i);
                }
                pos += len;
            } else {
                items.push_back({false, input[pos], 0, 0});
                ++pos;
            }
        } else if (len >= kMinMatch) {
            items.push_back({true, 0, static_cast<uint32_t>(len),
                             static_cast<uint32_t>(dist)});
            for (size_t i = 0; i < len; ++i) {
                finder.insert(pos + i);
            }
            pos += len;
        } else {
            items.push_back({false, input[pos], 0, 0});
            finder.insert(pos);
            ++pos;
        }
        if (items.size() >= kBlockSymbols) {
            writeBlock(&writer, items);
            items.clear();
        }
    }
    if (!items.empty() || n == 0) {
        writeBlock(&writer, items);
    }
    Bytes out = writer.take();
    appendCrcTrailer(&out);
    return out;
}

Status
MiniDeflate::decompress(ByteView input, Bytes *output) const
{
    ByteView frame;
    MITHRIL_RETURN_IF_ERROR(stripCrcTrailer(input, &frame));
    BitReader reader(frame.data(), frame.size());
    uint64_t original_size;
    if (!reader.read(48, &original_size)) {
        return Status::corruptData("deflate frame truncated");
    }
    if (original_size > kMaxDecodedBytes) {
        return Status::corruptData("deflate declared size implausible");
    }
    Bytes out;
    out.reserve(std::min<uint64_t>(original_size, kMaxDecodeReserve));

    while (out.size() < original_size) {
        uint64_t symbol_count;
        if (!reader.read(32, &symbol_count)) {
            return Status::corruptData("deflate block header truncated");
        }
        std::vector<uint8_t> lit_lens(kLitLenSymbols);
        std::vector<uint8_t> dist_lens(kDistSymbols);
        for (auto &l : lit_lens) {
            uint64_t v;
            if (!reader.read(4, &v)) {
                return Status::corruptData("deflate code lengths truncated");
            }
            l = static_cast<uint8_t>(v);
        }
        for (auto &l : dist_lens) {
            uint64_t v;
            if (!reader.read(4, &v)) {
                return Status::corruptData("deflate code lengths truncated");
            }
            l = static_cast<uint8_t>(v);
        }
        HuffmanDecoder lit_dec, dist_dec;
        MITHRIL_RETURN_IF_ERROR(lit_dec.init(lit_lens));
        MITHRIL_RETURN_IF_ERROR(dist_dec.init(dist_lens));

        while (true) {
            uint32_t sym;
            MITHRIL_RETURN_IF_ERROR(lit_dec.decode(&reader, &sym));
            if (sym == kEob) {
                break;
            }
            if (out.size() > original_size) {
                // A block must not outgrow the declared size; without
                // this bound a corrupt stream could expand without
                // limit before the outer check runs.
                return Status::corruptData("deflate block overran size");
            }
            if (sym < 256) {
                out.push_back(static_cast<uint8_t>(sym));
                continue;
            }
            if (sym >= kLitLenSymbols) {
                return Status::corruptData("deflate bad litlen symbol");
            }
            int lc = static_cast<int>(sym - 257);
            uint64_t extra;
            if (!reader.read(kLenExtra[lc], &extra)) {
                return Status::corruptData("deflate length bits truncated");
            }
            size_t len = kLenBase[lc] + extra;
            uint32_t dsym;
            MITHRIL_RETURN_IF_ERROR(dist_dec.decode(&reader, &dsym));
            if (dsym >= kDistSymbols) {
                return Status::corruptData("deflate bad dist symbol");
            }
            if (!reader.read(kDistExtra[dsym], &extra)) {
                return Status::corruptData("deflate dist bits truncated");
            }
            size_t dist = kDistBase[dsym] + extra;
            if (dist > out.size()) {
                return Status::corruptData("deflate distance out of range");
            }
            size_t from = out.size() - dist;
            for (size_t i = 0; i < len; ++i) {
                out.push_back(out[from + i]);
            }
        }
        if (original_size == 0) {
            break;  // the single empty block
        }
    }
    if (out.size() != original_size) {
        return Status::corruptData("deflate decoded size mismatch");
    }
    output->insert(output->end(), out.begin(), out.end());
    return Status::ok();
}

} // namespace mithril::compress
