/**
 * @file
 * LZAH — "LZ Aligned Header" — the paper's log- and hardware-optimized
 * compression algorithm (Section 5).
 *
 * LZAH derives from LZRW1 but restructures it around a hardware datapath:
 *
 *  - The input is consumed as fixed 16-byte *words* (one word per clock
 *    cycle in hardware), never at sub-word offsets, removing the
 *    variable-amount shifters a byte-granular LZ needs.
 *  - When a word contains a newline, the useful content ends at the
 *    newline and the window realigns to the byte after it; the stored
 *    word is zero-padded past the newline. This recovers compression
 *    lost to word alignment, because log patterns repeat at the same
 *    offsets *within* lines.
 *  - A hash table of recently seen words (16 KB = 1024 x 16 B) turns a
 *    repeated word into a 2-byte table index instead of a 16-byte
 *    literal.
 *  - Header bits (match/literal flags) are collected 128 at a time into
 *    a word-aligned header block per *chunk*, so the decoder reads one
 *    header word and then parses 128 payloads without bit-level
 *    shifting.
 *  - Chunks never span storage pages, and the hash table resets per
 *    page, so every 4 KB page decompresses independently — the property
 *    the index-driven selective-read path relies on.
 *
 * Input restrictions (inherent to the scheme, acceptable for logs): the
 * text must not contain NUL bytes, and '\n' is the line terminator.
 *
 * Two decoders are provided: a fast functional one, and a cycle-counting
 * model (LzahDecompressorModel) that emits exactly one word per modeled
 * cycle, reproducing the deterministic 3.2 GB/s @ 200 MHz bound of
 * Section 7.3.
 */
#ifndef MITHRIL_COMPRESS_LZAH_H
#define MITHRIL_COMPRESS_LZAH_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/compressor.h"

namespace mithril::compress {

/** Datapath word size in bytes; fixed by the hardware design. */
constexpr size_t kLzahWord = 16;

/** Header-payload pairs per chunk: one word of header bits. */
constexpr size_t kLzahChunkItems = 128;

/** Hash table entries (16 KB / 16 B per entry). */
constexpr size_t kLzahTableEntries = 1024;

/** A 16-byte datapath word. */
using Word = std::array<uint8_t, kLzahWord>;

/**
 * Hashes a zero-padded word to a table index.
 *
 * XOR-fold of the four 32-bit lanes with multiplicative mixing — the
 * kind of function that is one LUT level deep per lane in hardware.
 */
uint32_t lzahHash(const Word &w);

/** LZAH codec (whole-buffer framing on top of the page encoder). */
class Lzah : public Compressor
{
  public:
    std::string name() const override { return "LZAH"; }
    Bytes compress(ByteView input) const override;
    Status decompress(ByteView input, Bytes *output) const override;
};

/** Outcome of LzahPageEncoder::addLine. */
enum class AddLineResult {
    kRejected,           ///< line longer than kMaxLineBytes
    kAppended,           ///< line joined the open page
    kSealedAndAppended,  ///< open page sealed; line opened a new page
};

/**
 * Streaming page encoder used by the ingest path.
 *
 * Lines go in; completed 4 KB compressed pages come out. Every page
 * holds a whole number of input lines and decompresses independently.
 */
class LzahPageEncoder
{
  public:
    LzahPageEncoder();

    /**
     * Longest line (excluding terminator) a page can always hold.
     * Lines longer than this are rejected by addLine().
     */
    static constexpr size_t kMaxLineBytes = 3500;

    /**
     * Appends @p line (without '\n'; the terminator is added
     * internally). If the line does not fit in the open page, the page
     * is sealed first and the line starts the next page — the
     * distinction the return value reports, so ingest can attribute
     * tokens to the right page.
     */
    AddLineResult addLine(std::string_view line);

    /** Seals the open page if it has content. */
    void flush();

    /** Completed pages, each exactly storage page sized (4096 B). */
    std::vector<Bytes> &pages() { return pages_; }

    /** Total uncompressed bytes consumed (including '\n' terminators). */
    uint64_t rawBytes() const { return raw_bytes_; }

  private:
    struct PendingItem {
        bool is_match;
        uint16_t index;    // valid when is_match
        Word literal;      // valid when !is_match
    };

    void sealPage();

    /**
     * Encodes one line into pending items, mutating the hash table.
     * When @p undo is non-null, overwritten (index, old word) pairs are
     * recorded so the caller can roll the table back.
     */
    void encodeLineWords(std::string_view line,
                         std::vector<PendingItem> *items,
                         size_t *literal_words,
                         std::vector<std::pair<uint32_t, Word>> *undo);

    std::vector<Word> table_;
    std::vector<PendingItem> items_;      // items of the open page
    size_t literal_words_ = 0;            // literal count in items_
    uint32_t decompressed_bytes_ = 0;     // padded word bytes in open page
    uint64_t raw_bytes_ = 0;
    std::vector<Bytes> pages_;
};

/**
 * Decodes one compressed page (4 KB buffer from LzahPageEncoder).
 *
 * @param page        the compressed page bytes
 * @param padded      if true, output words keep their zero padding after
 *                    newlines ("line-aligned words"), which is the form
 *                    the hardware tokenizer consumes; if false, padding
 *                    is stripped and the exact original text returns.
 * @param output      decoded bytes are appended
 * @param word_count  if non-null, incremented by the number of words the
 *                    hardware decoder would emit (= modeled cycles).
 */
Status lzahDecodePage(ByteView page, bool padded, Bytes *output,
                      uint64_t *word_count = nullptr);

/**
 * Cheap integrity check of one compressed page without decoding it:
 * header magic, byte/item consistency, and the payload CRC-32 the
 * encoder stamps into the header. Returns kDataLoss on a CRC mismatch
 * (damaged payload), kCorruptData on structural header damage.
 *
 * The query path runs this on every page as it is staged for the
 * accelerator, so a flipped bit is caught (and the read retried)
 * before the filter pipeline ever sees the page.
 */
Status lzahVerifyPage(ByteView page);

/**
 * Cycle-counting decompressor model.
 *
 * In hardware the LZAH decoder emits exactly one 16-byte word per cycle
 * regardless of content (Section 7.3: deterministic 3.2 GB/s at
 * 200 MHz). The model decodes pages functionally while accumulating the
 * cycle count the RTL would take.
 */
class LzahDecompressorModel
{
  public:
    /** Decodes a page in padded (tokenizer-ready) form. */
    Status decodePage(ByteView page, Bytes *output);

    /** Cycles consumed so far (one per emitted word). */
    uint64_t cycles() const { return cycles_; }

    /** Decompressed (padded) bytes emitted so far. */
    uint64_t bytesOut() const { return bytes_out_; }

    void reset() { cycles_ = 0; bytes_out_ = 0; }

  private:
    uint64_t cycles_ = 0;
    uint64_t bytes_out_ = 0;
};

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_LZAH_H
