#include "compress/compressor.h"

#include "common/hash.h"
#include "compress/lz4like.h"
#include "compress/lzah.h"
#include "compress/lzrw1.h"
#include "compress/minideflate.h"

namespace mithril::compress {

void
appendCrcTrailer(Bytes *out)
{
    putLe<uint32_t>(*out, crc32(out->data(), out->size()));
}

Status
stripCrcTrailer(ByteView framed, ByteView *payload)
{
    if (framed.size() < 4) {
        // No room for the trailer at all: structural truncation, not
        // detected byte damage.
        return Status::corruptData("frame too short for CRC trailer");
    }
    size_t body = framed.size() - 4;
    uint32_t stored = getLe<uint32_t>(framed.data() + body);
    uint32_t actual = crc32(framed.data(), body);
    if (stored != actual) {
        return Status::dataLoss("frame CRC mismatch");
    }
    *payload = framed.first(body);
    return Status::ok();
}

double
compressionRatio(size_t original, size_t compressed)
{
    if (compressed == 0) {
        return 0.0;
    }
    return static_cast<double>(original) / static_cast<double>(compressed);
}

std::vector<std::unique_ptr<Compressor>>
allCompressors()
{
    std::vector<std::unique_ptr<Compressor>> out;
    out.push_back(std::make_unique<Lzah>());
    out.push_back(std::make_unique<Lzrw1>());
    out.push_back(std::make_unique<Lz4Like>());
    out.push_back(std::make_unique<MiniDeflate>());
    return out;
}

} // namespace mithril::compress
