#include "compress/compressor.h"

#include "compress/lz4like.h"
#include "compress/lzah.h"
#include "compress/lzrw1.h"
#include "compress/minideflate.h"

namespace mithril::compress {

double
compressionRatio(size_t original, size_t compressed)
{
    if (compressed == 0) {
        return 0.0;
    }
    return static_cast<double>(original) / static_cast<double>(compressed);
}

std::vector<std::unique_ptr<Compressor>>
allCompressors()
{
    std::vector<std::unique_ptr<Compressor>> out;
    out.push_back(std::make_unique<Lzah>());
    out.push_back(std::make_unique<Lzrw1>());
    out.push_back(std::make_unique<Lz4Like>());
    out.push_back(std::make_unique<MiniDeflate>());
    return out;
}

} // namespace mithril::compress
