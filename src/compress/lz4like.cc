#include "compress/lz4like.h"

#include <cstring>

#include "common/bits.h"

namespace mithril::compress {

namespace {

constexpr size_t kHashBits = 15;
constexpr size_t kHashEntries = 1u << kHashBits;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;

inline uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Emits a 255-saturating extended length (LZ4 style). */
void
putExtLength(Bytes &out, size_t extra)
{
    while (extra >= 255) {
        out.push_back(255);
        extra -= 255;
    }
    out.push_back(static_cast<uint8_t>(extra));
}

/** Reads a 255-saturating extended length; false on truncation. */
bool
getExtLength(ByteView in, size_t *pos, size_t *len)
{
    while (true) {
        if (*pos >= in.size()) {
            return false;
        }
        uint8_t b = in[(*pos)++];
        *len += b;
        if (b != 255) {
            return true;
        }
    }
}

/** Emits one sequence: literals then (unless final) a match. */
void
emitSequence(Bytes &out, const uint8_t *lit, size_t lit_len,
             size_t offset, size_t match_len)
{
    bool has_match = match_len > 0;
    size_t ml_code = has_match ? match_len - kMinMatch : 0;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(lit_len, 15) << 4) |
        static_cast<uint8_t>(std::min<size_t>(ml_code, 15));
    out.push_back(token);
    if (lit_len >= 15) {
        putExtLength(out, lit_len - 15);
    }
    out.insert(out.end(), lit, lit + lit_len);
    if (has_match) {
        putLe<uint16_t>(out, static_cast<uint16_t>(offset));
        if (ml_code >= 15) {
            putExtLength(out, ml_code - 15);
        }
    }
}

} // namespace

Bytes
Lz4Like::compress(ByteView input) const
{
    Bytes out;
    putLe<uint64_t>(out, input.size());

    const uint8_t *base = input.data();
    size_t n = input.size();
    std::vector<size_t> table(kHashEntries, ~size_t{0});

    size_t pos = 0;
    size_t lit_start = 0;
    while (pos + kMinMatch <= n) {
        uint32_t h = hash4(base + pos);
        size_t cand = table[h];
        table[h] = pos;
        if (cand != ~size_t{0} && pos - cand <= kMaxOffset &&
            std::memcmp(base + cand, base + pos, kMinMatch) == 0) {
            size_t len = kMinMatch;
            while (pos + len < n && base[cand + len] == base[pos + len]) {
                ++len;
            }
            emitSequence(out, base + lit_start, pos - lit_start,
                         pos - cand, len);
            // Insert a couple of positions inside the match so long runs
            // stay discoverable (mirrors LZ4's skip-ahead behaviour).
            if (pos + len + kMinMatch <= n) {
                table[hash4(base + pos + len - 2)] = pos + len - 2;
            }
            pos += len;
            lit_start = pos;
        } else {
            ++pos;
        }
    }
    // Final literals-only sequence.
    emitSequence(out, base + lit_start, n - lit_start, 0, 0);
    appendCrcTrailer(&out);
    return out;
}

Status
Lz4Like::decompress(ByteView input, Bytes *output) const
{
    ByteView frame;
    MITHRIL_RETURN_IF_ERROR(stripCrcTrailer(input, &frame));
    input = frame;
    if (input.size() < 8) {
        return Status::corruptData("LZ4 frame truncated");
    }
    uint64_t original_size = getLe<uint64_t>(input.data());
    if (original_size > kMaxDecodedBytes) {
        return Status::corruptData("LZ4 declared size implausible");
    }
    size_t pos = 8;
    Bytes out;
    out.reserve(std::min<uint64_t>(original_size, kMaxDecodeReserve));

    while (true) {
        if (pos >= input.size()) {
            return Status::corruptData("LZ4 token truncated");
        }
        uint8_t token = input[pos++];
        size_t lit_len = token >> 4;
        if (lit_len == 15 && !getExtLength(input, &pos, &lit_len)) {
            return Status::corruptData("LZ4 literal length truncated");
        }
        if (pos + lit_len > input.size()) {
            return Status::corruptData("LZ4 literals truncated");
        }
        out.insert(out.end(), input.begin() + pos,
                   input.begin() + pos + lit_len);
        pos += lit_len;
        if (out.size() >= original_size) {
            break;  // final sequence has no match part
        }
        if (pos + 2 > input.size()) {
            return Status::corruptData("LZ4 offset truncated");
        }
        size_t offset = getLe<uint16_t>(input.data() + pos);
        pos += 2;
        size_t match_len = token & 0x0f;
        if (match_len == 15 && !getExtLength(input, &pos, &match_len)) {
            return Status::corruptData("LZ4 match length truncated");
        }
        match_len += kMinMatch;
        if (offset == 0 || offset > out.size()) {
            return Status::corruptData("LZ4 offset out of range");
        }
        size_t from = out.size() - offset;
        for (size_t i = 0; i < match_len; ++i) {
            out.push_back(out[from + i]);
        }
    }
    if (out.size() != original_size) {
        return Status::corruptData("LZ4 decoded size mismatch");
    }
    output->insert(output->end(), out.begin(), out.end());
    return Status::ok();
}

} // namespace mithril::compress
