/**
 * @file
 * Common interface for the block compressors compared in Tables 4 and 5.
 *
 * Four codecs are implemented from scratch in this directory:
 *   - Lzah        the paper's hardware-optimized log codec (Section 5);
 *   - Lzrw1       Williams' LZRW1, the algorithm LZAH derives from;
 *   - Lz4Like     an LZ4-format-style fast byte LZ, standing in for LZ4;
 *   - MiniDeflate LZ77 + canonical Huffman, standing in for gzip/DEFLATE.
 *
 * All codecs implement whole-buffer compress/decompress for the ratio
 * comparison (Table 5). Lzah additionally provides the page-aligned
 * framing the storage pipeline uses (see lzah.h).
 */
#ifndef MITHRIL_COMPRESS_COMPRESSOR_H
#define MITHRIL_COMPRESS_COMPRESSOR_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"

namespace mithril::compress {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/** Abstract block compressor. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Codec name as printed in benchmark tables ("LZAH", "LZ4", ...). */
    [[nodiscard]] virtual std::string name() const = 0;

    /** Compresses @p input into a self-contained buffer. */
    [[nodiscard]] virtual Bytes compress(ByteView input) const = 0;

    /**
     * Decompresses a buffer produced by compress().
     * Returns kCorruptData if the framing fails validation.
     */
    virtual Status decompress(ByteView input, Bytes *output) const = 0;
};

/**
 * Upper bound any frame may declare for its decoded size (4 GiB).
 *
 * A corrupt size field must translate into kCorruptData, not into an
 * unbounded allocation before decoding even starts.
 */
constexpr uint64_t kMaxDecodedBytes = 1ull << 32;

/** Largest upfront reserve a decoder trusts a frame header for; the
 *  output vector grows normally past this. */
constexpr size_t kMaxDecodeReserve = 1u << 24;

/**
 * Appends a little-endian CRC-32 of @p out's current contents.
 *
 * Every whole-buffer codec frames its output with this trailer so a
 * mutated or truncated frame is rejected deterministically (as
 * kDataLoss) before structural parsing begins.
 */
void appendCrcTrailer(Bytes *out);

/** Verifies and strips a CRC-32 trailer; on success @p payload views
 *  the framed bytes without the trailer. Returns kDataLoss on a CRC
 *  mismatch (byte damage), kCorruptData when the frame is too short
 *  to carry the trailer (structural truncation). */
Status stripCrcTrailer(ByteView framed, ByteView *payload);

/** Compression ratio original/compressed (> 1 means it shrank). */
[[nodiscard]] double compressionRatio(size_t original, size_t compressed);

/** Instantiates every codec for comparison benches, LZAH first. */
[[nodiscard]] std::vector<std::unique_ptr<Compressor>> allCompressors();

/** Converts a string to a ByteView without copying. */
[[nodiscard]] inline ByteView
asBytes(std::string_view s)
{
    return asByteSpan(s);
}

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_COMPRESSOR_H
