/**
 * @file
 * Common interface for the block compressors compared in Tables 4 and 5.
 *
 * Four codecs are implemented from scratch in this directory:
 *   - Lzah        the paper's hardware-optimized log codec (Section 5);
 *   - Lzrw1       Williams' LZRW1, the algorithm LZAH derives from;
 *   - Lz4Like     an LZ4-format-style fast byte LZ, standing in for LZ4;
 *   - MiniDeflate LZ77 + canonical Huffman, standing in for gzip/DEFLATE.
 *
 * All codecs implement whole-buffer compress/decompress for the ratio
 * comparison (Table 5). Lzah additionally provides the page-aligned
 * framing the storage pipeline uses (see lzah.h).
 */
#ifndef MITHRIL_COMPRESS_COMPRESSOR_H
#define MITHRIL_COMPRESS_COMPRESSOR_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bits.h"
#include "common/status.h"

namespace mithril::compress {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/** Abstract block compressor. */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Codec name as printed in benchmark tables ("LZAH", "LZ4", ...). */
    [[nodiscard]] virtual std::string name() const = 0;

    /** Compresses @p input into a self-contained buffer. */
    [[nodiscard]] virtual Bytes compress(ByteView input) const = 0;

    /**
     * Decompresses a buffer produced by compress().
     * Returns kCorruptData if the framing fails validation.
     */
    virtual Status decompress(ByteView input, Bytes *output) const = 0;
};

/** Compression ratio original/compressed (> 1 means it shrank). */
[[nodiscard]] double compressionRatio(size_t original, size_t compressed);

/** Instantiates every codec for comparison benches, LZAH first. */
[[nodiscard]] std::vector<std::unique_ptr<Compressor>> allCompressors();

/** Converts a string to a ByteView without copying. */
[[nodiscard]] inline ByteView
asBytes(std::string_view s)
{
    return asByteSpan(s);
}

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_COMPRESSOR_H
