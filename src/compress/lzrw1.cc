#include "compress/lzrw1.h"

#include <cstring>

#include "common/bits.h"

namespace mithril::compress {

namespace {

constexpr size_t kHashBits = 12;
constexpr size_t kHashEntries = 1u << kHashBits;   // 4096
constexpr size_t kMaxOffset = 4095;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 18;
constexpr size_t kGroupItems = 16;

/** Hash of the 3 bytes at @p p (LZRW1's multiplicative hash family). */
inline uint32_t
hash3(const uint8_t *p)
{
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16);
    return (v * 40543u) >> (24 - kHashBits) & (kHashEntries - 1);
}

} // namespace

Bytes
Lzrw1::compress(ByteView input) const
{
    Bytes out;
    putLe<uint64_t>(out, input.size());

    const uint8_t *base = input.data();
    size_t n = input.size();
    // Candidate positions; ~0 means empty. Offsets are validated on use,
    // so stale entries are harmless.
    std::vector<size_t> table(kHashEntries, ~size_t{0});

    size_t pos = 0;
    while (pos < n) {
        // One group: control word placeholder, then up to 16 items.
        size_t control_at = out.size();
        putLe<uint16_t>(out, 0);
        uint16_t control = 0;

        for (size_t item = 0; item < kGroupItems && pos < n; ++item) {
            size_t match_len = 0;
            size_t match_pos = 0;
            if (pos + kMinMatch <= n) {
                uint32_t h = hash3(base + pos);
                size_t cand = table[h];
                table[h] = pos;
                if (cand != ~size_t{0} && cand < pos &&
                    pos - cand <= kMaxOffset) {
                    size_t limit = std::min(kMaxMatch, n - pos);
                    size_t len = 0;
                    while (len < limit && base[cand + len] == base[pos + len]) {
                        ++len;
                    }
                    if (len >= kMinMatch) {
                        match_len = len;
                        match_pos = cand;
                    }
                }
            }
            if (match_len > 0) {
                control |= static_cast<uint16_t>(1u << item);
                size_t offset = pos - match_pos;
                // 16-bit item: llll oooo oooo oooo (length-3, offset).
                uint16_t encoded = static_cast<uint16_t>(
                    ((match_len - kMinMatch) << 12) | offset);
                putLe<uint16_t>(out, encoded);
                pos += match_len;
            } else {
                out.push_back(base[pos]);
                ++pos;
            }
        }
        std::memcpy(out.data() + control_at, &control, 2);
    }
    appendCrcTrailer(&out);
    return out;
}

Status
Lzrw1::decompress(ByteView input, Bytes *output) const
{
    ByteView frame;
    MITHRIL_RETURN_IF_ERROR(stripCrcTrailer(input, &frame));
    input = frame;
    if (input.size() < 8) {
        return Status::corruptData("LZRW1 frame truncated");
    }
    uint64_t original_size = getLe<uint64_t>(input.data());
    if (original_size > kMaxDecodedBytes) {
        return Status::corruptData("LZRW1 declared size implausible");
    }
    size_t pos = 8;
    Bytes out;
    out.reserve(std::min<uint64_t>(original_size, kMaxDecodeReserve));

    while (out.size() < original_size) {
        if (pos + 2 > input.size()) {
            return Status::corruptData("LZRW1 control word truncated");
        }
        uint16_t control = getLe<uint16_t>(input.data() + pos);
        pos += 2;
        for (size_t item = 0;
             item < kGroupItems && out.size() < original_size; ++item) {
            if (control & (1u << item)) {
                if (pos + 2 > input.size()) {
                    return Status::corruptData("LZRW1 copy item truncated");
                }
                uint16_t encoded = getLe<uint16_t>(input.data() + pos);
                pos += 2;
                size_t len = (encoded >> 12) + kMinMatch;
                size_t offset = encoded & 0x0fff;
                if (offset == 0 || offset > out.size()) {
                    return Status::corruptData("LZRW1 offset out of range");
                }
                size_t from = out.size() - offset;
                for (size_t i = 0; i < len; ++i) {
                    out.push_back(out[from + i]);  // may self-overlap
                }
            } else {
                if (pos >= input.size()) {
                    return Status::corruptData("LZRW1 literal truncated");
                }
                out.push_back(input[pos++]);
            }
        }
    }
    if (out.size() != original_size) {
        return Status::corruptData("LZRW1 decoded size mismatch");
    }
    output->insert(output->end(), out.begin(), out.end());
    return Status::ok();
}

} // namespace mithril::compress
