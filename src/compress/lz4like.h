/**
 * @file
 * Lz4Like — an LZ4-format-style fast byte LZ codec.
 *
 * Stands in for LZ4 in the Table 4/5 comparisons (no external LZ4
 * dependency is allowed in this repository). The sequence format follows
 * LZ4's block layout: a token byte with 4-bit literal/match length
 * fields, 255-saturating length extension bytes, raw literals, and a
 * 16-bit little-endian match offset; minimum match length 4, maximum
 * offset 65535. Matching uses a single-probe hash table like LZ4's fast
 * level, so both the ratio and the relative speed class are
 * representative of the real codec.
 */
#ifndef MITHRIL_COMPRESS_LZ4LIKE_H
#define MITHRIL_COMPRESS_LZ4LIKE_H

#include "compress/compressor.h"

namespace mithril::compress {

/** LZ4-block-format-style codec. */
class Lz4Like : public Compressor
{
  public:
    std::string name() const override { return "LZ4"; }
    Bytes compress(ByteView input) const override;
    Status decompress(ByteView input, Bytes *output) const override;
};

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_LZ4LIKE_H
