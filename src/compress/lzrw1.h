/**
 * @file
 * LZRW1 (Williams, DCC 1991) — the algorithm LZAH derives from.
 *
 * Byte-granular LZ77 variant tuned for speed: a 4096-entry hash table of
 * 3-byte prefixes provides one match candidate per position; items are
 * grouped 16 to a control word. A copy item encodes a 12-bit offset
 * (1..4095) and a 4-bit length (3..18); a literal item is one byte.
 *
 * Implemented from scratch following the published algorithm. Used as a
 * baseline in Tables 4 and 5, and as the reference point for what LZAH's
 * word alignment trades away.
 */
#ifndef MITHRIL_COMPRESS_LZRW1_H
#define MITHRIL_COMPRESS_LZRW1_H

#include "compress/compressor.h"

namespace mithril::compress {

/** LZRW1 codec. */
class Lzrw1 : public Compressor
{
  public:
    std::string name() const override { return "LZRW1"; }
    Bytes compress(ByteView input) const override;
    Status decompress(ByteView input, Bytes *output) const override;
};

} // namespace mithril::compress

#endif // MITHRIL_COMPRESS_LZRW1_H
