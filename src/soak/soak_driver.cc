#include "soak/soak_driver.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "common/hash.h"

namespace mithril::soak {

namespace {

/** Query rotation: template tokens the line generator emits, in
 *  shapes that exercise the compiled path, conjunction, disjunction,
 *  a guaranteed miss, and the typed incident-response tier
 *  (DESIGN.md §15): subnet, typed-and-keyword, and hex-id lookups
 *  against the addresses makeLine() plants. */
constexpr std::string_view kQueries[] = {
    "tmpl3",
    "payload & tmpl1",
    "tmpl7 | tmpl11",
    "payload & seqzero",
    "ip:10.0.0.0/16",
    "tmpl5 & ip:10.0.128.0/17",
    "id:feedc0debaadf00d",
};

/** One synthetic line: a template token the queries can hit, a unique
 *  sequence token, typed fields for the incident-tier queries (a
 *  source address cycling through 10.0/16, a hex session id on every
 *  16th line), and filler to keep pages turning over. */
std::string
makeLine(Rng *rng, uint64_t seq)
{
    uint64_t tmpl = rng->skewedBelow(16);
    std::string line = "soak tmpl" + std::to_string(tmpl) +
                       " payload seq" + std::to_string(seq);
    line += " src=10.0." + std::to_string((seq >> 8) & 0xff) + "." +
            std::to_string(seq & 0xff);
    if (seq % 16 == 0) {
        line += " sid=feedc0debaadf00d";
    }
    line += " filler abcdefgh ijklmnop qrstuvwx";
    return line;
}

/** Offered-rate multiplier at virtual time @p now_ps (mean ~1.0 over
 *  a full cycle for every shape; pure integer/FP arithmetic, no libm
 *  transcendentals, so it is bit-stable everywhere). */
double
shapeFactor(ArrivalShape shape, uint64_t now_ps)
{
    // 100 ms virtual cycle for bursty, 1 s for diurnal.
    constexpr uint64_t kBurstCyclePs = 100ull * 1000 * 1000 * 1000;
    constexpr uint64_t kDiurnalCyclePs =
        1000ull * 1000 * 1000 * 1000;
    switch (shape) {
    case ArrivalShape::kSteady: return 1.0;
    case ArrivalShape::kBursty: {
        // 20% of each cycle at 3x, the rest at 0.5x (mean 1.0).
        uint64_t phase = now_ps % kBurstCyclePs;
        return phase < kBurstCyclePs / 5 ? 3.0 : 0.5;
    }
    case ArrivalShape::kDiurnal: {
        // Triangle wave between 0.5x and 1.5x (mean 1.0).
        uint64_t phase = now_ps % kDiurnalCyclePs;
        double frac = static_cast<double>(phase) /
                      static_cast<double>(kDiurnalCyclePs);
        double tri = frac < 0.5 ? 2.0 * frac : 2.0 * (1.0 - frac);
        return 0.5 + tri;
    }
    }
    return 1.0;
}

} // namespace

Status
parseShape(std::string_view name, ArrivalShape *out)
{
    if (name == "steady") {
        *out = ArrivalShape::kSteady;
    } else if (name == "bursty") {
        *out = ArrivalShape::kBursty;
    } else if (name == "diurnal") {
        *out = ArrivalShape::kDiurnal;
    } else {
        return Status::invalidArgument(
            "unknown arrival shape '" + std::string(name) +
            "' (want steady|bursty|diurnal)");
    }
    return Status::ok();
}

std::string_view
shapeName(ArrivalShape shape)
{
    switch (shape) {
    case ArrivalShape::kSteady: return "steady";
    case ArrivalShape::kBursty: return "bursty";
    case ArrivalShape::kDiurnal: return "diurnal";
    }
    return "steady";
}

Status
estimateIngestCapacity(const SoakConfig &config, double *lines_per_s)
{
    // Closed-loop probe: same shard shape, fixed corpus, busiest
    // shard's modeled clock is the pace-setter.
    svc::LogServiceConfig sc;
    sc.shards = config.shards;
    sc.threads = config.threads;
    sc.batch_lines = config.batch_lines;
    sc.queue_depth = config.queue_depth;
    sc.routing = svc::RoutingPolicy::kRoundRobin;
    svc::LogService probe(sc);

    constexpr uint64_t kProbeLines = 4096;
    Rng rng(mix64(config.seed ^ 0x50a6ca11ull));
    for (uint64_t i = 0; i < kProbeLines; ++i) {
        std::string line = makeLine(&rng, i);
        Status st = probe.append(line);
        while (!st.isOk() &&
               st.code() == StatusCode::kResourceExhausted) {
            probe.drain();
            st = probe.append(line);
        }
        MITHRIL_RETURN_IF_ERROR(st);
    }
    MITHRIL_RETURN_IF_ERROR(probe.flush());

    double busiest_s = 0.0;
    for (size_t i = 0; i < probe.shardCount(); ++i) {
        SimTime elapsed = probe.shard(i).ssd().elapsed();
        busiest_s = std::max(busiest_s, elapsed.toSeconds());
    }
    if (busiest_s <= 0.0) {
        return Status::internal("probe accrued no modeled time");
    }
    *lines_per_s = static_cast<double>(kProbeLines) / busiest_s;
    return Status::ok();
}

SoakDriver::SoakDriver(SoakConfig config) : config_(config)
{
    if (config_.metrics != nullptr) {
        metrics_ = config_.metrics;
    } else {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }
    svc::LogServiceConfig sc;
    sc.shards = std::max<size_t>(1, config_.shards);
    sc.threads = std::max<size_t>(1, config_.threads);
    sc.batch_lines = std::max<size_t>(1, config_.batch_lines);
    sc.queue_depth = std::max<size_t>(1, config_.queue_depth);
    sc.routing = svc::RoutingPolicy::kRoundRobin;
    sc.checkpoint_every_pages = config_.checkpoint_every_pages;
    sc.metrics = metrics_;
    sc.tracer = config_.tracer;
    service_ = std::make_unique<svc::LogService>(sc);
}

uint64_t
SoakDriver::shapedGapPs(Rng *rng, double base_rate,
                        uint64_t now_ps) const
{
    double rate = base_rate * shapeFactor(config_.shape, now_ps);
    // Mean gap 1/rate with +-50% uniform jitter: enough dispersion to
    // populate the tail without libm transcendentals.
    double gap_s = (0.5 + rng->uniform()) / rate;
    uint64_t gap_ps = static_cast<uint64_t>(gap_s * 1e12);
    return std::max<uint64_t>(gap_ps, 1);
}

Status
SoakDriver::run(SoakReport *out)
{
    *out = SoakReport{};
    const size_t n_shards = service_->shardCount();
    const uint64_t end_ps =
        static_cast<uint64_t>(config_.duration_s * 1e12);
    const uint64_t snap_every_ps = std::max<uint64_t>(
        1, static_cast<uint64_t>(config_.snapshot_every_s * 1e12));

    // Independent, reproducible event streams.
    Rng ingest_rng(mix64(config_.seed ^ 0x16e57ull));
    Rng query_rng(mix64(config_.seed ^ 0x4e52ull));
    Rng line_rng(mix64(config_.seed ^ 0x11e5ull));

    obs::Histogram &ingest_e2e =
        metrics_->quantileHistogram("soak.ingest_e2e.sim_ps");
    obs::Histogram &query_e2e =
        metrics_->quantileHistogram("soak.query_e2e.sim_ps");
    obs::Histogram &queue_lag =
        metrics_->quantileHistogram("soak.admission_lag.sim_ps");

    // Open-loop queueing state, all in the modeled domain.
    std::vector<uint64_t> busy_until_ps(n_shards, 0);
    std::vector<uint64_t> shard_clock_ps(n_shards, 0);
    for (size_t i = 0; i < n_shards; ++i) {
        shard_clock_ps[i] = service_->shard(i).ssd().elapsed().ps();
    }
    /** Arrival timestamps of accepted-but-not-yet-durable lines. */
    std::vector<std::deque<uint64_t>> arrivals(n_shards);
    uint64_t append_calls = 0;

    // Completes shard @p si's just-filled batch: quiesce the pool,
    // read the shard's modeled clock delta, advance the queueing
    // model, and attribute end-to-end latency to every line in it.
    auto completeBatch = [&](size_t si, uint64_t now_ps) {
        service_->drain();
        uint64_t clock = service_->shard(si).ssd().elapsed().ps();
        uint64_t cost = clock - shard_clock_ps[si];
        shard_clock_ps[si] = clock;
        uint64_t start = std::max(now_ps, busy_until_ps[si]);
        uint64_t done = start + cost;
        busy_until_ps[si] = done;
        size_t batch = std::min(arrivals[si].size(),
                                config_.batch_lines);
        for (size_t k = 0; k < batch; ++k) {
            uint64_t arrived = arrivals[si].front();
            arrivals[si].pop_front();
            ingest_e2e.record(done - arrived);
        }
    };

    uint64_t t_ingest = shapedGapPs(&ingest_rng, config_.ingest_lps, 0);
    uint64_t t_query =
        config_.query_qps > 0.0
            ? shapedGapPs(&query_rng, config_.query_qps, 0)
            : end_ps + 1;
    uint64_t next_snap = snap_every_ps;

    auto takeSnapshot = [&](uint64_t t_ps) {
        SoakSnapshot s;
        s.t_ps = t_ps;
        s.offered_lines = out->offered_lines;
        s.accepted_lines = out->accepted_lines;
        s.dropped_lines = out->dropped_lines;
        s.queries_done = out->completed_queries;
        s.ingest_p99_ps = ingest_e2e.quantile(0.99);
        out->series.push_back(s);
    };

    while (t_ingest <= end_ps || t_query <= end_ps) {
        uint64_t now_ps = std::min(t_ingest, t_query);
        while (next_snap < now_ps && next_snap <= end_ps) {
            takeSnapshot(next_snap);
            next_snap += snap_every_ps;
        }
        if (t_ingest <= t_query) {
            ++out->offered_lines;
            size_t si = append_calls % n_shards;
            uint64_t lag = busy_until_ps[si] > now_ps
                               ? busy_until_ps[si] - now_ps
                               : 0;
            queue_lag.record(lag);
            if (lag > config_.admission_max_lag.ps()) {
                // Admission control: shed at the door instead of
                // queueing unboundedly (open-loop drop).
                ++out->dropped_lines;
            } else {
                std::string line =
                    makeLine(&line_rng, out->accepted_lines);
                Status st = service_->append(line);
                while (!st.isOk() &&
                       st.code() ==
                           StatusCode::kResourceExhausted) {
                    // Real backpressure: absorb it here so the
                    // accepted sequence never depends on worker
                    // timing.
                    service_->drain();
                    st = service_->append(line);
                }
                MITHRIL_RETURN_IF_ERROR(st);
                ++append_calls;
                ++out->accepted_lines;
                arrivals[si].push_back(now_ps);
                if (arrivals[si].size() >= config_.batch_lines) {
                    completeBatch(si, now_ps);
                }
            }
            t_ingest +=
                shapedGapPs(&ingest_rng, config_.ingest_lps, now_ps);
        } else {
            ++out->offered_queries;
            std::string_view qtext =
                kQueries[query_rng.below(std::size(kQueries))];
            svc::ServiceQueryResult r;
            MITHRIL_RETURN_IF_ERROR(service_->query(qtext, &r));
            // The query contends with the ingest backlog: the most
            // lagged shard delays the fan-out, then the modeled run
            // time applies.
            uint64_t lag = 0;
            for (size_t i = 0; i < n_shards; ++i) {
                if (busy_until_ps[i] > now_ps) {
                    lag = std::max(lag, busy_until_ps[i] - now_ps);
                }
            }
            uint64_t e2e = lag + r.total_time.ps();
            query_e2e.record(e2e);
            ++out->completed_queries;
            out->matched_lines += r.matched_lines;
            t_query +=
                shapedGapPs(&query_rng, config_.query_qps, now_ps);
        }
    }

    // Tail: flush the partial batches and attribute their lines to
    // the post-flush modeled clock.
    MITHRIL_RETURN_IF_ERROR(service_->flush());
    for (size_t si = 0; si < n_shards; ++si) {
        if (!arrivals[si].empty()) {
            completeBatch(si, end_ps);
        }
        // flush() may seal a shard's open page without a full batch;
        // keep the clock bookkeeping caught up either way.
        shard_clock_ps[si] = service_->shard(si).ssd().elapsed().ps();
    }
    while (next_snap <= end_ps) {
        takeSnapshot(next_snap);
        next_snap += snap_every_ps;
    }

    out->drop_rate =
        out->offered_lines == 0
            ? 0.0
            : static_cast<double>(out->dropped_lines) /
                  static_cast<double>(out->offered_lines);
    out->ingest_e2e_ps = ingest_e2e.quantiles();
    out->query_e2e_ps = query_e2e.quantiles();
    return Status::ok();
}

} // namespace mithril::soak
