/**
 * @file
 * mithril::soak — the open-loop soak harness (tail-latency SLOs).
 *
 * Every other bench in the repo is closed-loop: it offers the next
 * line only after the previous one finished, so the system is never
 * meaningfully behind and the tail never shows. Production log stores
 * are judged the other way around — traffic arrives on its own
 * schedule whether the store is ready or not, and the question is what
 * p99/p999 latency looks like at a sustained offered load. This
 * driver models exactly that:
 *
 *   schedule   — a seeded, deterministic arrival schedule (ingest
 *                lines + queries) over a *virtual* clock, with three
 *                load shapes: steady, bursty (periodic on/off cycles),
 *                diurnal (slow triangular swell);
 *   service    — events are played against a real svc::LogService;
 *                modeled device time (SimTime) measured per batch at
 *                drain points provides the deterministic service-time
 *                distribution;
 *   queueing   — per-shard `busy_until` bookkeeping turns those
 *                service times into an open-loop queueing model:
 *                a batch starts at max(arrival, shard busy), ends at
 *                start + modeled cost; each line's end-to-end latency
 *                is completion minus its own arrival;
 *   admission  — a line whose shard's modeled backlog exceeds
 *                `admission_max_lag` is dropped at the door (counted,
 *                never queued) — admission control layered above the
 *                service's own kResourceExhausted backpressure, which
 *                the driver absorbs by drain-and-retry so the accepted
 *                line sequence stays schedule-independent;
 *   reporting  — end-to-end and per-stage latencies land in
 *                obs::Histogram quantile metrics; periodic snapshots
 *                form a time series over the virtual clock.
 *
 * Determinism: every latency in the report is in the SimTime domain
 * (modeled), every arrival comes from the seed, and batch/query
 * visibility is quiesced at event boundaries — the same seed and
 * config reproduce the report bit-for-bit at any worker count.
 */
#ifndef MITHRIL_SOAK_SOAK_DRIVER_H
#define MITHRIL_SOAK_SOAK_DRIVER_H

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/simtime.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "svc/log_service.h"

namespace mithril::soak {

/** Shape of the offered-load curve over the virtual clock. */
enum class ArrivalShape {
    kSteady,   ///< flat rate
    kBursty,   ///< periodic bursts: 3x rate 20% of the time, 0.5x rest
    kDiurnal,  ///< slow triangular swell between 0.5x and 1.5x
};

/** Parses "steady" / "bursty" / "diurnal". */
[[nodiscard]] Status parseShape(std::string_view name,
                                ArrivalShape *out);
std::string_view shapeName(ArrivalShape shape);

/** Soak run configuration. */
struct SoakConfig {
    uint64_t seed = 1;
    ArrivalShape shape = ArrivalShape::kSteady;
    /** Virtual seconds of offered traffic. */
    double duration_s = 0.25;
    /** Mean offered ingest rate (lines per virtual second). */
    double ingest_lps = 100000.0;
    /** Mean offered query rate (queries per virtual second). */
    double query_qps = 40.0;

    /** Service shape (routing is fixed to round-robin: the driver
     *  mirrors it to model per-shard backlog). */
    size_t shards = 4;
    size_t threads = 4;
    size_t batch_lines = 64;
    size_t queue_depth = 8;

    /** Admission control: drop an arriving line when its shard's
     *  modeled backlog exceeds this lag. */
    SimTime admission_max_lag = SimTime::microseconds(2000);

    /** Virtual time between time-series snapshots. */
    double snapshot_every_s = 0.05;

    /** Per-shard background checkpoint cadence, passed through to
     *  svc::LogServiceConfig::checkpoint_every_pages (0 disables):
     *  soaks with it on exercise journal truncation + segment GC under
     *  sustained load. */
    uint64_t checkpoint_every_pages = 0;

    /** Shared registry/tracer; when null the driver owns private
     *  instances (reachable via metrics()/service()). */
    obs::MetricsRegistry *metrics = nullptr;
    obs::Tracer *tracer = nullptr;
};

/** One point of the soak time series (virtual clock, cumulative). */
struct SoakSnapshot {
    uint64_t t_ps = 0;
    uint64_t offered_lines = 0;
    uint64_t accepted_lines = 0;
    uint64_t dropped_lines = 0;
    uint64_t queries_done = 0;
    /** Running ingest end-to-end p99 (SimTime ps). */
    uint64_t ingest_p99_ps = 0;
};

/** Deterministic outcome of one soak run. */
struct SoakReport {
    uint64_t offered_lines = 0;
    uint64_t accepted_lines = 0;
    uint64_t dropped_lines = 0;
    uint64_t offered_queries = 0;
    uint64_t completed_queries = 0;
    /** dropped / offered (0 when nothing was offered). */
    double drop_rate = 0.0;
    /** End-to-end modeled latency: line arrival -> batch durable. */
    obs::Quantiles ingest_e2e_ps;
    /** End-to-end modeled latency: query arrival -> merged result. */
    obs::Quantiles query_e2e_ps;
    /** Total matches returned across all queries (work proof). */
    uint64_t matched_lines = 0;
    std::vector<SoakSnapshot> series;
};

/**
 * Estimates the service's closed-loop ingest capacity (accepted lines
 * per modeled second) for @p config's shard shape by ingesting a
 * fixed probe corpus and reading the busiest shard's modeled clock.
 * Deterministic. The soak bench calibrates its offered load as a
 * fraction of this.
 */
[[nodiscard]] Status estimateIngestCapacity(const SoakConfig &config,
                                            double *lines_per_s);

/** The open-loop soak driver. Single-threaded event loop; the service
 *  underneath runs its real worker pool. */
class SoakDriver
{
  public:
    explicit SoakDriver(SoakConfig config);

    /** Plays the whole schedule and fills @p out. */
    [[nodiscard]] Status run(SoakReport *out);

    obs::MetricsRegistry &metrics() { return *metrics_; }
    svc::LogService &service() { return *service_; }

  private:
    uint64_t shapedGapPs(Rng *rng, double base_rate,
                         uint64_t now_ps) const;

    SoakConfig config_;
    std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry *metrics_ = nullptr;
    std::unique_ptr<svc::LogService> service_;
};

} // namespace mithril::soak

#endif // MITHRIL_SOAK_SOAK_DRIVER_H
