#include "common/status.h"

namespace mithril {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kCorruptData: return "CORRUPT_DATA";
      case StatusCode::kUnsupported: return "UNSUPPORTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kDataLoss: return "DATA_LOSS";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    }
    return "UNKNOWN";
}

std::string
Status::toString() const
{
    if (isOk()) {
        return "OK";
    }
    std::string out = statusCodeName(code_);
    out += ": ";
    out += message_;
    return out;
}

namespace detail {

void
assertFail(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "MITHRIL_ASSERT failed: %s at %s:%d\n",
                 expr, file, line);
    std::abort();
}

} // namespace detail
} // namespace mithril
