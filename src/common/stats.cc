#include "common/stats.h"

#include <algorithm>
#include <cstdio>

#include "common/status.h"

namespace mithril {

void
Distribution::record(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0)
{
    MITHRIL_ASSERT(!edges_.empty());
    MITHRIL_ASSERT(std::is_sorted(edges_.begin(), edges_.end()));
}

void
Histogram::record(double value)
{
    size_t i = 0;
    while (i < edges_.size() && value >= edges_[i]) {
        ++i;
    }
    ++counts_[i];
    ++total_;
}

std::string
Histogram::bucketLabel(size_t i) const
{
    char buf[64];
    if (i == 0) {
        std::snprintf(buf, sizeof buf, "< %.3g", edges_[0]);
    } else if (i == edges_.size()) {
        std::snprintf(buf, sizeof buf, ">= %.3g", edges_.back());
    } else {
        std::snprintf(buf, sizeof buf, "[%.3g, %.3g)",
                      edges_[i - 1], edges_[i]);
    }
    return buf;
}

std::string
Histogram::render(size_t bar_width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_) {
        peak = std::max(peak, c);
    }
    std::string out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        char line[160];
        size_t bar = counts_[i] * bar_width / peak;
        std::snprintf(line, sizeof line, "%16s |%-*s| %llu\n",
                      bucketLabel(i).c_str(), static_cast<int>(bar_width),
                      std::string(bar, '#').c_str(),
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
    }
    return out;
}

void
StatSet::bind(CounterSink *sink, std::string prefix)
{
    sink_ = sink;
    prefix_ = std::move(prefix);
    if (sink_ != nullptr) {
        // Replay what accumulated before binding so the unified
        // namespace never under-counts (ingest can precede binding).
        for (const auto &[name, value] : counters_) {
            if (value != 0) {
                forward(name, value);
            }
        }
    }
}

void
StatSet::forward(const std::string &name, uint64_t delta)
{
    std::string full = prefix_;
    full += name;
    sink_->addCounter(full, delta);
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::string
StatSet::toString() const
{
    std::string out;
    for (const auto &[name, value] : counters_) {
        out += name;
        out += ' ';
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

} // namespace mithril
