#include "common/hash.h"

#include <cstring>

#include "common/status.h"

namespace mithril {

namespace {

/** Loads up to 8 little-endian bytes without reading past the buffer. */
uint64_t
loadTail(const uint8_t *p, size_t len)
{
    uint64_t v = 0;
    for (size_t i = 0; i < len; ++i) {
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    }
    return v;
}

} // namespace

uint64_t
hash64(const void *data, size_t len, uint64_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = mix64(seed ^ (0x51afb3c1903ce4d7ull + len));

    while (len >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        h = mix64(h ^ w) * 0x9ddfea08eb382d69ull;
        p += 8;
        len -= 8;
    }
    if (len > 0) {
        h = mix64(h ^ loadTail(p, len)) * 0xc6a4a7935bd1e995ull;
    }
    return mix64(h);
}

namespace {

/** 256-entry table for byte-at-a-time reflected CRC-32. */
struct Crc32Table {
    uint32_t entry[256];

    constexpr Crc32Table() : entry()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit) {
                c = (c >> 1) ^ ((c & 1u) ? 0xedb88320u : 0u);
            }
            entry[i] = c;
        }
    }
};

constexpr Crc32Table kCrc32Table;

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = ~seed;
    for (size_t i = 0; i < len; ++i) {
        c = kCrc32Table.entry[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return ~c;
}

HashPair::HashPair(uint32_t rows, uint64_t seed0, uint64_t seed1)
    : rows_(rows), mask_(rows - 1), seed0_(seed0), seed1_(seed1)
{
    MITHRIL_ASSERT(rows >= 2 && (rows & (rows - 1)) == 0);
}

} // namespace mithril
