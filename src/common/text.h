/**
 * @file
 * Text utilities shared by the software and hardware tokenization paths.
 *
 * The paper defines a *token* (or term) as a maximal run of characters
 * separated by delimiters. The delimiter set is a configuration shared by
 * every component that must agree on token boundaries: the accelerator's
 * tokenizer array, the software reference matcher, the inverted index's
 * ingest path, and the baselines. Divergence here would silently break
 * the executor-equivalence invariant, so there is exactly one definition.
 */
#ifndef MITHRIL_COMMON_TEXT_H
#define MITHRIL_COMMON_TEXT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mithril {

/** Default delimiter set: ASCII whitespace (space and tab). */
constexpr std::string_view kDefaultDelimiters = " \t\r";

/** True when @p c separates tokens under @p delims. */
inline bool
isDelimiter(char c, std::string_view delims = kDefaultDelimiters)
{
    return delims.find(c) != std::string_view::npos;
}

/**
 * Splits @p line into tokens (maximal delimiter-free runs).
 *
 * Views point into @p line; the caller keeps it alive. Empty tokens are
 * never produced.
 */
std::vector<std::string_view>
splitTokens(std::string_view line,
            std::string_view delims = kDefaultDelimiters);

/**
 * Invokes @p fn(token, column) for each token of @p line without
 * allocating. @p fn returns false to stop early.
 */
template <typename Fn>
inline void
forEachToken(std::string_view line, Fn &&fn,
             std::string_view delims = kDefaultDelimiters)
{
    size_t i = 0;
    uint32_t column = 0;
    while (i < line.size()) {
        while (i < line.size() && isDelimiter(line[i], delims)) {
            ++i;
        }
        size_t start = i;
        while (i < line.size() && !isDelimiter(line[i], delims)) {
            ++i;
        }
        if (i > start) {
            if (!fn(line.substr(start, i - start), column)) {
                return;
            }
            ++column;
        }
    }
}

/**
 * Splits a text buffer into lines at '\n'; the terminator is excluded.
 * A trailing line without '\n' is included.
 */
std::vector<std::string_view> splitLines(std::string_view text);

/**
 * Invokes @p fn(line) for each '\n'-terminated line without allocating.
 */
template <typename Fn>
inline void
forEachLine(std::string_view text, Fn &&fn)
{
    size_t start = 0;
    while (start < text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            fn(text.substr(start));
            return;
        }
        fn(text.substr(start, nl - start));
        start = nl + 1;
    }
}

/** Formats a byte count as "12.3 GB" / "4.5 MB" / "678 B". */
std::string humanBytes(double bytes);

/** Formats bytes/second as "11.55 GB/s" (decimal GB as in the paper). */
std::string humanBandwidth(double bytes_per_second);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mithril

#endif // MITHRIL_COMMON_TEXT_H
