/**
 * @file
 * Lightweight status / error reporting for recoverable failures.
 *
 * MithriLog distinguishes two failure classes, following the convention of
 * large systems-simulation codebases:
 *   - programming errors (broken invariants) abort via MITHRIL_ASSERT;
 *   - recoverable conditions (a query that cannot be compiled into a
 *     cuckoo table, a corrupt compressed page) surface as Status values
 *     that the caller must consume.
 */
#ifndef MITHRIL_COMMON_STATUS_H
#define MITHRIL_COMMON_STATUS_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace mithril {

/** Error category attached to a non-ok Status. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,   ///< caller passed something malformed
    kCapacityExceeded,  ///< a fixed hardware-style resource ran out
    kNotFound,          ///< lookup missed
    kCorruptData,       ///< on-storage bytes failed validation
    kUnsupported,       ///< valid request outside this engine's abilities
    kInternal,          ///< unexpected internal condition
    kDataLoss,          ///< bytes unrecoverable after retry/ECC exhausted
    kUnavailable,       ///< device not serving requests (power lost)
    kResourceExhausted, ///< admission control: queue/backlog full, retry
    kFailedPrecondition,///< valid request against the wrong object state
};

/** Human-readable name for a status code. */
const char *statusCodeName(StatusCode code);

/**
 * Value type carrying success or a (code, message) error.
 *
 * Cheap to copy in the ok case; error construction allocates the message.
 *
 * The class itself is [[nodiscard]]: any call returning a Status by value
 * must consume it (assign, MITHRIL_RETURN_IF_ERROR, or an explicit
 * (void) cast with a justification comment). Enforced tree-wide by
 * -Werror in the werror/tidy/ubsan presets and by tools/mithril_lint.py.
 */
class [[nodiscard]] Status
{
  public:
    /** Constructs an ok status. */
    Status() : code_(StatusCode::kOk) {}

    /** Constructs an error status; @p code must not be kOk. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status ok() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }

    static Status
    capacityExceeded(std::string msg)
    {
        return Status(StatusCode::kCapacityExceeded, std::move(msg));
    }

    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }

    static Status
    corruptData(std::string msg)
    {
        return Status(StatusCode::kCorruptData, std::move(msg));
    }

    static Status
    unsupported(std::string msg)
    {
        return Status(StatusCode::kUnsupported, std::move(msg));
    }

    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }

    static Status
    dataLoss(std::string msg)
    {
        return Status(StatusCode::kDataLoss, std::move(msg));
    }

    static Status
    unavailable(std::string msg)
    {
        return Status(StatusCode::kUnavailable, std::move(msg));
    }

    static Status
    resourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }

    static Status
    failedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }

    [[nodiscard]] bool isOk() const { return code_ == StatusCode::kOk; }
    [[nodiscard]] StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Formats "CODE: message" for logs and test failures. */
    std::string toString() const;

  private:
    StatusCode code_;
    std::string message_;
};

namespace detail {
[[noreturn]] void assertFail(const char *expr, const char *file, int line);
} // namespace detail

/** Aborts with a diagnostic when a programming invariant is violated. */
#define MITHRIL_ASSERT(expr)                                              \
    do {                                                                  \
        if (!(expr)) {                                                    \
            ::mithril::detail::assertFail(#expr, __FILE__, __LINE__);     \
        }                                                                 \
    } while (0)

/** Propagates a non-ok Status to the caller. */
#define MITHRIL_RETURN_IF_ERROR(expr)                                     \
    do {                                                                  \
        ::mithril::Status mithril_status__ = (expr);                      \
        if (!mithril_status__.isOk()) {                                   \
            return mithril_status__;                                      \
        }                                                                 \
    } while (0)

} // namespace mithril

#endif // MITHRIL_COMMON_STATUS_H
