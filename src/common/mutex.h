/**
 * @file
 * Annotated locking primitives: mithril::Mutex / MutexLock / CondVar.
 *
 * Thin wrappers over the standard primitives that carry the clang
 * capability annotations from common/thread_annotations.h, so
 * `-Wthread-safety` (the `tsa` preset / `lint_tsa` gate, DESIGN.md
 * §13) can prove at compile time that every MITHRIL_GUARDED_BY field
 * is only touched under its lock and every MITHRIL_REQUIRES method is
 * only called with the lock held.
 *
 * This header is the only place in the tree where the raw std
 * primitives may appear — the `raw-mutex` domain lint enforces that —
 * because a lock the analysis cannot see is a lock it cannot check.
 * The wrappers add no state and no behavior beyond the annotations:
 *
 *   Mutex      std::mutex with CAPABILITY + ACQUIRE/RELEASE verbs.
 *   MutexLock  scoped lock_guard equivalent (SCOPED_CAPABILITY).
 *   CondVar    std::condition_variable_any waiting directly on a
 *              Mutex; wait() REQUIRES the mutex, so a wait outside
 *              the lock is a compile error, and the canonical use is
 *              an explicit while-loop over the predicate (which also
 *              satisfies bugprone-spuriously-wake-up-functions).
 *
 * Who may create these: anywhere with a justified need — the
 * capability annotations check *how* they are used wherever they
 * live. Thread creation stays restricted to src/svc/ by the
 * thread-ownership lint; locks moved from a location rule to this
 * compile-checked one.
 */
#ifndef MITHRIL_COMMON_MUTEX_H
#define MITHRIL_COMMON_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace mithril {

/** Annotated exclusive lock. Prefer MutexLock over manual
 *  lock()/unlock() pairs — scoped acquisition is what the analysis
 *  reasons about best (and what exceptions cannot leak past). */
class MITHRIL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MITHRIL_ACQUIRE() { mu_.lock(); }
    void unlock() MITHRIL_RELEASE() { mu_.unlock(); }
    bool tryLock() MITHRIL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** Scoped acquisition (the lock_guard of the annotated world). */
class MITHRIL_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) MITHRIL_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~MutexLock() MITHRIL_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable waiting directly on a Mutex.
 *
 * wait() REQUIRES the mutex: callers hold it (normally via a
 * MutexLock in the enclosing scope) and re-test their predicate in a
 * while-loop — the std wait(pred) overload is deliberately not
 * exposed, because a lambda predicate cannot carry the REQUIRES
 * annotation for the guarded fields it reads:
 *
 *     MutexLock lock(mu_);
 *     while (!ready_) {
 *         cv_.wait(mu_);
 *     }
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically releases @p mu and blocks; re-holds @p mu on
     *  return. Spurious wakeups happen: loop over the predicate. */
    void wait(Mutex &mu) MITHRIL_REQUIRES(mu) { cv_.wait(mu); }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_MUTEX_H
