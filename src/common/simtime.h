/**
 * @file
 * Modeled-time bookkeeping for the hardware and storage models.
 *
 * MithriLog's accelerator numbers are *modeled*: the software emulation
 * counts datapath cycles and storage byte/command traffic, and this header
 * converts those counts into seconds at the platform parameters the paper
 * reports (200 MHz fabric clock, GB/s-class links). Picosecond integer
 * resolution keeps arithmetic exact for any realistic run length.
 */
#ifndef MITHRIL_COMMON_SIMTIME_H
#define MITHRIL_COMMON_SIMTIME_H

#include <cstdint>

namespace mithril {

/** Modeled time in integer picoseconds. */
class SimTime
{
  public:
    constexpr SimTime() : ps_(0) {}

    static constexpr SimTime
    picoseconds(uint64_t ps)
    {
        return SimTime(ps);
    }

    static constexpr SimTime
    nanoseconds(double ns)
    {
        return SimTime(static_cast<uint64_t>(ns * 1e3));
    }

    static constexpr SimTime
    microseconds(double us)
    {
        return SimTime(static_cast<uint64_t>(us * 1e6));
    }

    static constexpr SimTime
    seconds(double s)
    {
        return SimTime(static_cast<uint64_t>(s * 1e12));
    }

    /** Time for @p cycles at @p hz clock frequency. */
    static constexpr SimTime
    cycles(uint64_t cycles, double hz)
    {
        return SimTime(static_cast<uint64_t>(
            static_cast<double>(cycles) * 1e12 / hz));
    }

    /** Time to move @p bytes at @p bytes_per_second. */
    static constexpr SimTime
    transfer(uint64_t bytes, double bytes_per_second)
    {
        return SimTime(static_cast<uint64_t>(
            static_cast<double>(bytes) * 1e12 / bytes_per_second));
    }

    constexpr uint64_t ps() const { return ps_; }
    constexpr double toSeconds() const { return ps_ * 1e-12; }
    constexpr double toMicroseconds() const { return ps_ * 1e-6; }

    constexpr SimTime
    operator+(SimTime other) const
    {
        return SimTime(ps_ + other.ps_);
    }

    SimTime &
    operator+=(SimTime other)
    {
        ps_ += other.ps_;
        return *this;
    }

    constexpr bool operator==(const SimTime &) const = default;
    constexpr auto operator<=>(const SimTime &) const = default;

    /** max(a, b): overlap of two pipelined activities. */
    static constexpr SimTime
    max(SimTime a, SimTime b)
    {
        return a.ps_ > b.ps_ ? a : b;
    }

  private:
    explicit constexpr SimTime(uint64_t ps) : ps_(ps) {}

    uint64_t ps_;
};

/** Effective throughput in bytes/second for @p bytes over @p elapsed. */
inline double
throughputBps(uint64_t bytes, SimTime elapsed)
{
    double s = elapsed.toSeconds();
    return s > 0 ? static_cast<double>(bytes) / s : 0.0;
}

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kGB = 1e9;

} // namespace mithril

#endif // MITHRIL_COMMON_SIMTIME_H
