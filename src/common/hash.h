/**
 * @file
 * Hash functions used across MithriLog.
 *
 * The hardware token filter and the inverted index both require *pairs* of
 * independent hash functions (cuckoo hashing, two-way index balancing).
 * All functions here are implemented from scratch so the repository has no
 * external dependencies; hash64() follows the finalizer-heavy structure of
 * modern non-cryptographic hashes (splitmix/xx-style mixing) and passes
 * basic avalanche sanity tests (see tests/common/hash_test.cc).
 */
#ifndef MITHRIL_COMMON_HASH_H
#define MITHRIL_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mithril {

/** Mixes a 64-bit value through a splitmix64 finalizer (bijective). */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Hashes an arbitrary byte string with a seed.
 *
 * Word-at-a-time multiply-xor construction with a splitmix finalizer.
 * Distinct seeds yield statistically independent functions, which is what
 * cuckoo hashing and the two-way index rely on.
 */
uint64_t hash64(const void *data, size_t len, uint64_t seed = 0);

/** Convenience overload for string views. */
inline uint64_t
hash64(std::string_view s, uint64_t seed = 0)
{
    return hash64(s.data(), s.size(), seed);
}

/**
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
 *
 * Used as the integrity check on persisted page frames (LZAH pages, index
 * nodes, codec frames): unlike hash64 it has guaranteed detection of all
 * single- and double-bit errors and all burst errors up to 32 bits, which
 * is the fault model the storage layer injects. Pass the previous return
 * value as @p seed to continue a CRC across multiple ranges.
 */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

/**
 * The pair of hash functions a hardware cuckoo filter instantiates.
 *
 * Both functions map a token to a table row in [0, rows). The hardware
 * fixes the seeds at synthesis time; software reproduces the same values
 * so compiled query tables are portable between the query compiler and
 * the emulated filter.
 */
class HashPair
{
  public:
    /** @param rows table size; must be a power of two. */
    explicit HashPair(uint32_t rows,
                      uint64_t seed0 = 0x6d697468726c6f67ull,
                      uint64_t seed1 = 0x6c6f67746f6b656eull);

    uint32_t rows() const { return rows_; }

    /** First hash function: row index for @p token. */
    uint32_t
    h0(std::string_view token) const
    {
        return static_cast<uint32_t>(hash64(token, seed0_)) & mask_;
    }

    /** Second hash function: row index for @p token. */
    uint32_t
    h1(std::string_view token) const
    {
        return static_cast<uint32_t>(hash64(token, seed1_)) & mask_;
    }

  private:
    uint32_t rows_;
    uint32_t mask_;
    uint64_t seed0_;
    uint64_t seed1_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_HASH_H
