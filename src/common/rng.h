/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every randomized component in this repository (log synthesis, query
 * combination sampling, property tests) draws from this generator with an
 * explicit seed, so all benchmarks and tests are reproducible bit-for-bit.
 * The generator is xoshiro256** (public-domain construction), implemented
 * here directly.
 */
#ifndef MITHRIL_COMMON_RNG_H
#define MITHRIL_COMMON_RNG_H

#include <cmath>
#include <cstdint>

#include "common/hash.h"
#include "common/status.h"

namespace mithril {

/** xoshiro256** deterministic random number generator. */
class Rng
{
  public:
    /** Seeds the four state words via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x12345678u)
    {
        uint64_t x = seed;
        for (auto &word : state_) {
            x = mix64(x + 0x9e3779b97f4a7c15ull);
            word = x;
        }
        // xoshiro requires a nonzero state; mix64 of distinct inputs makes
        // all-zero astronomically unlikely, but guard anyway.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
            state_[0] = 1;
        }
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        MITHRIL_ASSERT(bound > 0);
        // Multiply-shift rejection-free mapping (bias < 2^-64 per call,
        // irrelevant at our sample counts).
        __uint128_t wide = static_cast<__uint128_t>(next()) * bound;
        return static_cast<uint64_t>(wide >> 64);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        MITHRIL_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Power-law skewed pick in [0, n): favors small indices.
     *  Larger @p bias concentrates more mass near zero. */
    uint64_t
    skewedBelow(uint64_t n, double bias = 2.0)
    {
        MITHRIL_ASSERT(n > 0);
        double v = std::pow(uniform(), bias);
        auto idx = static_cast<uint64_t>(v * static_cast<double>(n));
        return idx >= n ? n - 1 : idx;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace mithril

#endif // MITHRIL_COMMON_RNG_H
