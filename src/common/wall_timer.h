/**
 * @file
 * Wall-clock timing for the measured (software baseline) side of the
 * evaluation. MithriLog accelerator numbers are modeled (SimTime);
 * baseline numbers are real elapsed time on the host, and the two are
 * kept in clearly distinct types so a bench cannot mix them silently.
 */
#ifndef MITHRIL_COMMON_WALL_TIMER_H
#define MITHRIL_COMMON_WALL_TIMER_H

#include <chrono>

namespace mithril {

/** Monotonic stopwatch. */
class WallTimer
{
  public:
    WallTimer() : start_(clock::now()) {}

    void reset() { start_ = clock::now(); }

    /** Seconds since construction or the last reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_)
            .count();
    }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_WALL_TIMER_H
