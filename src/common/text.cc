#include "common/text.h"

#include <cstdarg>
#include <cstdio>

namespace mithril {

std::vector<std::string_view>
splitTokens(std::string_view line, std::string_view delims)
{
    std::vector<std::string_view> out;
    forEachToken(line, [&](std::string_view tok, uint32_t) {
        out.push_back(tok);
        return true;
    }, delims);
    return out;
}

std::vector<std::string_view>
splitLines(std::string_view text)
{
    std::vector<std::string_view> out;
    forEachLine(text, [&](std::string_view line) { out.push_back(line); });
    return out;
}

std::string
humanBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    int u = 0;
    while (bytes >= 1000.0 && u < 4) {
        bytes /= 1000.0;
        ++u;
    }
    return strprintf(u == 0 ? "%.0f %s" : "%.2f %s", bytes, units[u]);
}

std::string
humanBandwidth(double bytes_per_second)
{
    return humanBytes(bytes_per_second) + "/s";
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
    }
    va_end(args2);
    return out;
}

} // namespace mithril
