/**
 * @file
 * Statistics collection: named counters and simple distribution trackers
 * used by the device models and the benchmark harness (e.g. the Figure 15
 * effective-throughput histograms).
 */
#ifndef MITHRIL_COMMON_STATS_H
#define MITHRIL_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mithril {

/**
 * Running summary of a scalar sample stream (count/min/max/mean).
 */
class Distribution
{
  public:
    void record(double value);

    uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bucket histogram over explicit bin edges.
 *
 * Mirrors the paper's Figure 15 presentation, whose x-axis is non-linear:
 * callers provide the bucket boundaries directly.
 */
class Histogram
{
  public:
    /** @param edges ascending bucket upper bounds; a final +inf bucket is
     *  implied. */
    explicit Histogram(std::vector<double> edges);

    void record(double value);

    size_t buckets() const { return counts_.size(); }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }
    uint64_t total() const { return total_; }

    /** Label like "[lo, hi)" for bucket @p i. */
    std::string bucketLabel(size_t i) const;

    /** Renders an ASCII bar chart, one line per bucket. */
    std::string render(size_t bar_width = 40) const;

  private:
    std::vector<double> edges_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Destination for forwarded counter updates.
 *
 * Implemented by obs::MetricsRegistry; declared here so the device
 * models' legacy StatSet can forward into the unified metric
 * namespace without common depending on obs.
 */
class CounterSink
{
  public:
    virtual ~CounterSink() = default;
    virtual void addCounter(std::string_view name, uint64_t delta) = 0;
};

/**
 * Registry of named monotonically increasing counters.
 *
 * Device models expose one of these so tests can assert on modeled
 * behaviour (pages read, commands issued, stall cycles, ...).
 *
 * @deprecated New code should report into obs::MetricsRegistry
 * directly. StatSet remains as a thin shim: when bound via bind(),
 * every add() also forwards to the sink under `prefix + name`, so the
 * legacy per-component counters and the unified namespace stay in
 * lockstep with a single call site.
 */
class StatSet
{
  public:
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
        if (sink_ != nullptr) {
            forward(name, delta);
        }
    }

    /** Forwards all future (and already-accumulated) counters to
     *  @p sink under @p prefix, e.g. prefix "ssd." -> "ssd.pages_read".
     *  Pass nullptr to unbind. */
    void bind(CounterSink *sink, std::string prefix);

    uint64_t get(const std::string &name) const;

    const std::map<std::string, uint64_t> &all() const { return counters_; }

    void clear() { counters_.clear(); }

    /** Multi-line "name value" dump, sorted by name. */
    std::string toString() const;

  private:
    void forward(const std::string &name, uint64_t delta);

    std::map<std::string, uint64_t> counters_;
    CounterSink *sink_ = nullptr;
    std::string prefix_;
};

} // namespace mithril

#endif // MITHRIL_COMMON_STATS_H
