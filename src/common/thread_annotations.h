/**
 * @file
 * Clang thread-safety-analysis (capability) annotations.
 *
 * Layer 0 of the concurrency-safety gate (DESIGN.md §13): every lock
 * and every lock-guarded field in the tree is annotated with these
 * macros, and the `tsa` preset / `lint_tsa` ctest compile the tree
 * with `-Wthread-safety -Werror=thread-safety`, turning "forgot the
 * lock", "called without the required lock", and "acquired twice"
 * into compile errors instead of TSan findings that depend on which
 * interleavings the tests happen to hit.
 *
 * The macros expand to Clang `__attribute__`s under Clang and to
 * nothing elsewhere, so GCC builds (including the TSan tier, which
 * checks the same code dynamically) are unaffected. Use them through
 * the annotated primitives in common/mutex.h — raw std::mutex is
 * banned tree-wide by the `raw-mutex` domain lint precisely because
 * the analysis can only see locks that carry these attributes.
 */
#ifndef MITHRIL_COMMON_THREAD_ANNOTATIONS_H
#define MITHRIL_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define MITHRIL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MITHRIL_THREAD_ANNOTATION_(x)
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define MITHRIL_CAPABILITY(x) MITHRIL_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in its
 *  dtor (MutexLock). */
#define MITHRIL_SCOPED_CAPABILITY \
    MITHRIL_THREAD_ANNOTATION_(scoped_lockable)

/** Field may only be read/written while holding the given mutex. */
#define MITHRIL_GUARDED_BY(x) MITHRIL_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer field whose *pointee* is guarded by the given mutex (the
 *  pointer itself may be read freely once set). */
#define MITHRIL_PT_GUARDED_BY(x) \
    MITHRIL_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function acquires the capability and holds it on return. */
#define MITHRIL_ACQUIRE(...) \
    MITHRIL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the capability; caller must hold it. */
#define MITHRIL_RELEASE(...) \
    MITHRIL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns the given value. */
#define MITHRIL_TRY_ACQUIRE(...) \
    MITHRIL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Caller must already hold the capability (un-locked helper). */
#define MITHRIL_REQUIRES(...) \
    MITHRIL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (the function takes it). */
#define MITHRIL_EXCLUDES(...) \
    MITHRIL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Declared lock-order edges, checked by the analysis. */
#define MITHRIL_ACQUIRED_BEFORE(...) \
    MITHRIL_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MITHRIL_ACQUIRED_AFTER(...) \
    MITHRIL_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/** Function returns a reference to the given capability. */
#define MITHRIL_RETURN_CAPABILITY(x) \
    MITHRIL_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: the function's locking is deliberately outside the
 *  analysis (quiesced-only accessors). Every use carries a comment
 *  saying why, the same contract as a lint allow(). */
#define MITHRIL_NO_THREAD_SAFETY_ANALYSIS \
    MITHRIL_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // MITHRIL_COMMON_THREAD_ANNOTATIONS_H
