/**
 * @file
 * Bit- and byte-level utilities shared by the compression codecs and the
 * accelerator emulation: alignment helpers, little-endian scalar I/O, and
 * LSB-first bit stream reader/writer (used by MiniDeflate and by LZAH's
 * chunk headers).
 */
#ifndef MITHRIL_COMMON_BITS_H
#define MITHRIL_COMMON_BITS_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mithril {

// ---- sanctioned type-punning helpers ---------------------------------
//
// The log pipeline constantly crosses the text/bytes boundary: codecs
// and the page store work in uint8_t, tokenizers and matchers in
// char/string_view. char and unsigned char may alias anything
// ([basic.lval]/11), so these two views are well-defined; they are the
// ONLY reinterpret_cast sites permitted in the tree (enforced by
// tools/mithril_lint.py rule cast-outside-bits).

/** Views a byte buffer as text without copying. */
[[nodiscard]] inline std::string_view
asChars(const uint8_t *data, size_t len)
{
    // Justification: uint8_t -> char is the aliasing-safe direction.
    return {reinterpret_cast<const char *>(data), len};
}

/** Views a byte container (vector/span) as text without copying. */
template <typename Container>
[[nodiscard]] inline std::string_view
asChars(const Container &bytes)
{
    return asChars(bytes.data(), bytes.size());
}

/** Views text as a byte range without copying (inverse of asChars). */
[[nodiscard]] inline std::span<const uint8_t>
asByteSpan(std::string_view s)
{
    // Justification: char -> unsigned char is the aliasing-safe
    // direction.
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

/** Rounds @p v up to the next multiple of @p align (power of two). */
[[nodiscard]] constexpr size_t
alignUp(size_t v, size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True when @p v is a multiple of @p align (power of two). */
[[nodiscard]] constexpr bool
isAligned(size_t v, size_t align)
{
    return (v & (align - 1)) == 0;
}

/** Appends a little-endian scalar to a byte vector. */
template <typename T>
inline void
putLe(std::vector<uint8_t> &out, T value)
{
    size_t pos = out.size();
    out.resize(pos + sizeof(T));
    std::memcpy(out.data() + pos, &value, sizeof(T));
}

/** Reads a little-endian scalar; caller guarantees bounds. */
template <typename T>
[[nodiscard]] inline T
getLe(const uint8_t *p)
{
    T value;
    std::memcpy(&value, p, sizeof(T));
    return value;
}

/**
 * LSB-first bit writer appending to an owned byte buffer.
 *
 * Matches DEFLATE's bit order: the first bit written occupies the least
 * significant bit of the first byte.
 */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Writes the low @p nbits bits of @p value (nbits <= 57). */
    void
    write(uint64_t value, int nbits)
    {
        MITHRIL_ASSERT(nbits >= 0 && nbits <= 57);
        acc_ |= (value & ((nbits == 64 ? ~0ull : (1ull << nbits) - 1)))
                << accBits_;
        accBits_ += nbits;
        while (accBits_ >= 8) {
            bytes_.push_back(static_cast<uint8_t>(acc_));
            acc_ >>= 8;
            accBits_ -= 8;
        }
    }

    /** Pads with zero bits to the next byte boundary. */
    void
    alignByte()
    {
        if (accBits_ > 0) {
            bytes_.push_back(static_cast<uint8_t>(acc_));
            acc_ = 0;
            accBits_ = 0;
        }
    }

    /** Total bits written so far. */
    size_t bitCount() const { return bytes_.size() * 8 + accBits_; }

    /** Flushes and returns the byte buffer (writer becomes empty). */
    [[nodiscard]] std::vector<uint8_t>
    take()
    {
        alignByte();
        std::vector<uint8_t> out;
        out.swap(bytes_);
        return out;
    }

  private:
    std::vector<uint8_t> bytes_;
    uint64_t acc_ = 0;
    int accBits_ = 0;
};

/** LSB-first bit reader over a borrowed byte buffer. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t len) : data_(data), len_(len) {}

    /** Reads @p nbits bits (nbits <= 57); returns false past the end. */
    [[nodiscard]] bool
    read(int nbits, uint64_t *value)
    {
        MITHRIL_ASSERT(nbits >= 0 && nbits <= 57);
        while (accBits_ < nbits) {
            if (pos_ >= len_) {
                return false;
            }
            acc_ |= static_cast<uint64_t>(data_[pos_++]) << accBits_;
            accBits_ += 8;
        }
        *value = acc_ & ((nbits == 64 ? ~0ull : (1ull << nbits) - 1));
        acc_ >>= nbits;
        accBits_ -= nbits;
        return true;
    }

    /** Discards buffered bits so the next read starts byte-aligned. */
    void
    alignByte()
    {
        acc_ = 0;
        accBits_ = 0;
    }

    /** Byte offset of the next unbuffered byte. */
    size_t bytePos() const { return pos_; }

    /** True when all bytes are consumed and no bits remain buffered. */
    bool exhausted() const { return pos_ >= len_ && accBits_ == 0; }

  private:
    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    uint64_t acc_ = 0;
    int accBits_ = 0;
};

} // namespace mithril

#endif // MITHRIL_COMMON_BITS_H
