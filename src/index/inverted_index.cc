#include "index/inverted_index.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/bits.h"

namespace mithril::index {

using storage::PageId;
using storage::kInvalidPage;
using storage::kPageSize;
using storage::Link;

namespace {

constexpr size_t kLeafSlotsPerPage = kPageSize / sizeof(uint64_t[17]);
// Explicit values derived from the serialized node sizes.
constexpr size_t kLeafPerPage = 4096 / 136;   // 30
constexpr size_t kRootPerPage = 4096 / 144;   // 28

} // namespace

InvertedIndex::InvertedIndex(storage::SsdModel *ssd, IndexConfig config)
    : ssd_(ssd), config_(config),
      hashes_(config.hash_entries, 0x1d8f00d5ull, 0x9aa2c3b7ull),
      entries_(config.hash_entries)
{
    MITHRIL_ASSERT(config_.node_arity <= 16);
    MITHRIL_ASSERT(config_.buffer_slots <= 16);
    (void)kLeafSlotsPerPage;
}

uint32_t
InvertedIndex::entryFor(std::string_view token) const
{
    return hashes_.h0(token);
}

void
InvertedIndex::addPage(PageId data_page,
                       std::span<const std::string_view> tokens,
                       uint64_t timestamp)
{
    max_data_page_ = std::max(max_data_page_, data_page);
    for (std::string_view token : tokens) {
        uint32_t i0 = hashes_.h0(token);
        uint32_t i1 = hashes_.h1(token);
        Entry *target;
        if (config_.two_hash && i1 != i0) {
            // Push to the lighter entry: spreads heavy tokens across
            // their two candidate indices (Section 6.2).
            target = entries_[i0].total_pages <= entries_[i1].total_pages
                ? &entries_[i0]
                : &entries_[i1];
        } else {
            target = &entries_[i0];
        }
        push(target, data_page);
    }
    maybeSnapshot(timestamp);
}

void
InvertedIndex::push(Entry *entry, PageId page)
{
    // The same page arrives once per distinct token; different tokens
    // sharing this entry can repeat it back-to-back — skip those.
    if (entry->last_pushed == page) {
        return;
    }
    entry->buffer.push_back(page);
    entry->last_pushed = page;
    ++entry->total_pages;
    if (entry->buffer.size() >= config_.buffer_slots) {
        flushBuffer(entry);
    }
}

uint64_t
InvertedIndex::writeLeaf(const Entry &entry)
{
    if (open_leaf_page_ == kInvalidPage ||
        open_leaf_slot_ >= kLeafPerPage) {
        open_leaf_page_ = ssd_->allocate();
        open_leaf_slot_ = 0;
        stats_.add("leaf_pages_allocated");
    }
    LeafNode node{};
    node.count = static_cast<uint16_t>(entry.buffer.size());
    for (size_t i = 0; i < entry.buffer.size(); ++i) {
        node.addrs[i] = entry.buffer[i];
    }
    node.crc = nodeCrc(node);
    auto page = ssd_->store().mutablePage(open_leaf_page_);
    std::memcpy(page.data() + open_leaf_slot_ * sizeof(LeafNode), &node,
                sizeof(LeafNode));
    uint64_t ref = (open_leaf_page_ << kSlotBits) | open_leaf_slot_;
    ++open_leaf_slot_;
    // Meter the program cost once per filled page.
    if (open_leaf_slot_ >= kLeafPerPage) {
        ssd_->stats().add("pages_written");
        ssd_->stats().add("bytes_written", kPageSize);
    }
    return ref;
}

void
InvertedIndex::flushBuffer(Entry *entry)
{
    if (entry->buffer.empty()) {
        return;
    }
    uint64_t ref = writeLeaf(*entry);
    entry->buffer.clear();
    entry->leaf_refs.push_back(ref);
    ++leaf_flushes_;
    ++leaves_since_snapshot_;
    stats_.add("leaf_nodes_flushed");
    if (entry->leaf_refs.size() >= config_.node_arity) {
        flushRoot(entry);
    }
}

void
InvertedIndex::flushRoot(Entry *entry)
{
    if (entry->leaf_refs.empty()) {
        return;
    }
    if (open_root_page_ == kInvalidPage ||
        open_root_slot_ >= kRootPerPage) {
        open_root_page_ = ssd_->allocate();
        open_root_slot_ = 0;
        stats_.add("index_pages_allocated");
    }
    RootNode node{};
    node.next = entry->head_root;
    node.count = static_cast<uint16_t>(entry->leaf_refs.size());
    for (size_t i = 0; i < entry->leaf_refs.size(); ++i) {
        node.leaf_refs[i] = entry->leaf_refs[i];
    }
    node.crc = nodeCrc(node);
    auto page = ssd_->store().mutablePage(open_root_page_);
    std::memcpy(page.data() + open_root_slot_ * sizeof(RootNode), &node,
                sizeof(RootNode));
    entry->head_root = (open_root_page_ << kSlotBits) | open_root_slot_;
    ++open_root_slot_;
    entry->leaf_refs.clear();
    stats_.add("root_nodes_flushed");
}

void
InvertedIndex::flush()
{
    for (Entry &entry : entries_) {
        flushBuffer(&entry);
        flushRoot(&entry);
    }
}

void
InvertedIndex::maybeSnapshot(uint64_t timestamp)
{
    if (leaves_since_snapshot_ >= config_.snapshot_leaf_interval) {
        snapshots_.push_back({timestamp, max_data_page_});
        leaves_since_snapshot_ = 0;
        stats_.add("snapshots");
    }
}

void
InvertedIndex::collectEntry(const Entry &entry,
                            std::vector<PageId> *out,
                            bool *integrity_lost)
{
    // 1. In-memory buffer, newest first (no storage cost).
    for (auto it = entry.buffer.rbegin(); it != entry.buffer.rend(); ++it) {
        out->push_back(*it);
    }

    uint64_t page_count = ssd_->store().pageCount();

    // Defensive validation: the index is probabilistic and storage can
    // be corrupted under it; a reference or node that fails validation
    // terminates its chain (counted) instead of faulting, and flags the
    // lookup as incomplete so the query path can degrade to a full
    // scan rather than silently return a short result.
    auto lost = [&] {
        stats_.add("corrupt_refs");
        if (integrity_lost != nullptr) {
            *integrity_lost = true;
        }
    };
    auto valid_ref = [&](uint64_t ref, size_t slots_per_page) {
        return (ref >> kSlotBits) < page_count &&
               (ref & ((1u << kSlotBits) - 1)) < slots_per_page;
    };
    // CRC-driven rereads only help when a fault plan can change the
    // bytes between attempts; without one, damage is persistent and a
    // reread would return the identical copy.
    unsigned max_rereads = ssd_->faultPlan() != nullptr
                               ? ssd_->faultPlan()->config().max_retries
                               : 0;

    // Helper: fetch a batch of leaf nodes. The fanout reads are
    // independent of the *next* root hop, so they pipeline behind its
    // 100 us latency (Section 6.1's design argument); the model
    // charges them transfer time only. Each distinct page is read once
    // per batch; only CRC rejections trigger re-reads.
    auto read_leaves = [&](std::span<const uint64_t> refs) {
        std::map<PageId, std::vector<uint8_t>> cache;
        for (uint64_t ref : refs) {
            if (valid_ref(ref, kLeafPerPage)) {
                cache.emplace(ref >> kSlotBits, std::vector<uint8_t>());
            }
        }
        std::set<PageId> bad;
        for (auto &[page, bytes] : cache) {
            Status st = ssd_->readOverlapped(page, Link::kExternal,
                                             &bytes);
            if (!st.isOk()) {
                bad.insert(page);
            }
        }
        // Parse newest-first.
        for (auto it = refs.rbegin(); it != refs.rend(); ++it) {
            if (!valid_ref(*it, kLeafPerPage)) {
                lost();
                continue;
            }
            PageId page = *it >> kSlotBits;
            size_t slot = *it & ((1u << kSlotBits) - 1);
            if (bad.contains(page)) {
                lost();
                continue;
            }
            LeafNode node;
            auto extract = [&] {
                std::memcpy(&node,
                            cache[page].data() + slot * sizeof(LeafNode),
                            sizeof(LeafNode));
                return node.count <= 16 && node.crc == nodeCrc(node);
            };
            bool ok = extract();
            for (unsigned r = 0; !ok && r < max_rereads; ++r) {
                std::vector<uint8_t> fresh;
                if (!ssd_->rereadPage(page, Link::kExternal, &fresh)
                         .isOk()) {
                    break;
                }
                cache[page] = std::move(fresh);
                ok = extract();
                if (ok) {
                    stats_.add("node_crc_recoveries");
                }
            }
            if (!ok) {
                stats_.add("node_crc_failures");
                lost();
                continue;
            }
            for (size_t i = node.count; i-- > 0;) {
                // Data-page addresses are validated against the
                // index's own watermark (data pages may live on a
                // different device than the index structures).
                if (node.addrs[i] <= max_data_page_) {
                    out->push_back(node.addrs[i]);
                } else {
                    lost();
                }
            }
        }
    };

    // 2. Root under construction (leaf refs known without a chain hop).
    if (!entry.leaf_refs.empty()) {
        read_leaves(entry.leaf_refs);
    }

    // 3. The in-storage linked list of trees: one dependent read per
    //    root, then a parallel fanout over its leaves (Section 6.1).
    uint64_t ref = entry.head_root;
    uint64_t hops = 0;
    while (ref != kInvalidRef) {
        if (!valid_ref(ref, kRootPerPage) || ++hops > page_count + 1) {
            // Corrupt link or a cycle introduced by corruption.
            lost();
            break;
        }
        PageId page = ref >> kSlotBits;
        size_t slot = ref & ((1u << kSlotBits) - 1);
        std::vector<uint8_t> bytes;
        if (!ssd_->readChained(page, Link::kExternal, &bytes).isOk()) {
            lost();
            break;
        }
        RootNode node;
        auto extract = [&] {
            std::memcpy(&node, bytes.data() + slot * sizeof(RootNode),
                        sizeof(RootNode));
            return node.count <= 16 && node.crc == nodeCrc(node);
        };
        bool ok = extract();
        for (unsigned r = 0; !ok && r < max_rereads; ++r) {
            std::vector<uint8_t> fresh;
            if (!ssd_->rereadPage(page, Link::kExternal, &fresh).isOk()) {
                break;
            }
            bytes = std::move(fresh);
            ok = extract();
            if (ok) {
                stats_.add("node_crc_recoveries");
            }
        }
        if (!ok) {
            stats_.add("node_crc_failures");
            lost();
            break;
        }
        read_leaves(std::span<const uint64_t>(node.leaf_refs, node.count));
        ref = node.next;
        stats_.add("root_visits");
    }
}

std::vector<PageId>
InvertedIndex::lookup(std::string_view token, bool *integrity_lost)
{
    stats_.add("lookups");
    std::vector<PageId> pages;
    uint32_t i0 = hashes_.h0(token);
    collectEntry(entries_[i0], &pages, integrity_lost);
    if (config_.two_hash) {
        uint32_t i1 = hashes_.h1(token);
        if (i1 != i0) {
            collectEntry(entries_[i1], &pages, integrity_lost);
        }
    }
    // Traversal returned reverse chronological order; one sort restores
    // chronology and drops duplicates (page ids are allocation-ordered).
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    stats_.add("pages_returned", pages.size());
    return pages;
}

std::vector<PageId>
InvertedIndex::lookupAll(std::span<const std::string> tokens,
                         bool *integrity_lost)
{
    std::vector<PageId> result;
    bool first = true;
    for (const std::string &token : tokens) {
        std::vector<PageId> pages = lookup(token, integrity_lost);
        if (first) {
            result = std::move(pages);
            first = false;
        } else {
            std::vector<PageId> intersection;
            std::set_intersection(result.begin(), result.end(),
                                  pages.begin(), pages.end(),
                                  std::back_inserter(intersection));
            result = std::move(intersection);
        }
        if (result.empty()) {
            break;
        }
    }
    return result;
}

uint64_t
InvertedIndex::estimatePages(std::string_view token) const
{
    uint64_t estimate = entries_[hashes_.h0(token)].total_pages;
    if (config_.two_hash) {
        uint32_t i1 = hashes_.h1(token);
        if (i1 != hashes_.h0(token)) {
            estimate += entries_[i1].total_pages;
        }
    }
    return estimate;
}

std::pair<PageId, PageId>
InvertedIndex::pageRangeForTime(uint64_t t0, uint64_t t1) const
{
    // Snapshots are (timestamp, watermark) pairs in time order. The
    // range [t0, t1] maps to pages after the last watermark before t0
    // and up to the first watermark at/after t1.
    PageId lo = 0;
    PageId hi = max_data_page_;
    for (const SnapshotRecord &s : snapshots_) {
        if (s.timestamp < t0) {
            lo = s.max_data_page;
        }
        if (s.timestamp >= t1) {
            hi = s.max_data_page;
            break;
        }
    }
    return {lo, hi};
}

namespace {
constexpr uint32_t kIndexBlobMagic = 0x58444c4d;  // "MLDX"
} // namespace

void
InvertedIndex::serialize(std::vector<uint8_t> *out) const
{
    putLe<uint32_t>(*out, kIndexBlobMagic);
    putLe<uint32_t>(*out, config_.hash_entries);
    putLe<uint8_t>(*out, config_.two_hash ? 1 : 0);

    for (const Entry &entry : entries_) {
        putLe<uint16_t>(*out, static_cast<uint16_t>(entry.buffer.size()));
        for (PageId p : entry.buffer) {
            putLe<uint64_t>(*out, p);
        }
        putLe<uint16_t>(*out,
                        static_cast<uint16_t>(entry.leaf_refs.size()));
        for (uint64_t r : entry.leaf_refs) {
            putLe<uint64_t>(*out, r);
        }
        putLe<uint64_t>(*out, entry.head_root);
        putLe<uint64_t>(*out, entry.total_pages);
        putLe<uint64_t>(*out, entry.last_pushed);
    }

    putLe<uint64_t>(*out, open_leaf_page_);
    putLe<uint64_t>(*out, open_leaf_slot_);
    putLe<uint64_t>(*out, open_root_page_);
    putLe<uint64_t>(*out, open_root_slot_);
    putLe<uint64_t>(*out, leaf_flushes_);
    putLe<uint64_t>(*out, leaves_since_snapshot_);
    putLe<uint64_t>(*out, max_data_page_);
    putLe<uint32_t>(*out, static_cast<uint32_t>(snapshots_.size()));
    for (const SnapshotRecord &s : snapshots_) {
        putLe<uint64_t>(*out, s.timestamp);
        putLe<uint64_t>(*out, s.max_data_page);
    }
}

Status
InvertedIndex::deserialize(std::span<const uint8_t> in)
{
    size_t pos = 0;
    auto need = [&](size_t n) { return pos + n <= in.size(); };
    auto get16 = [&]() { uint16_t v = getLe<uint16_t>(in.data() + pos);
                         pos += 2; return v; };
    auto get32 = [&]() { uint32_t v = getLe<uint32_t>(in.data() + pos);
                         pos += 4; return v; };
    auto get64 = [&]() { uint64_t v = getLe<uint64_t>(in.data() + pos);
                         pos += 8; return v; };

    if (!need(9) ) {
        return Status::corruptData("index blob truncated");
    }
    if (get32() != kIndexBlobMagic) {
        return Status::corruptData("index blob magic mismatch");
    }
    if (get32() != config_.hash_entries ||
        (in[pos] != 0) != config_.two_hash) {
        return Status::corruptData("index blob config mismatch");
    }
    ++pos;

    for (Entry &entry : entries_) {
        if (!need(2)) {
            return Status::corruptData("index blob entry truncated");
        }
        uint16_t nbuf = get16();
        if (nbuf > config_.buffer_slots || !need(nbuf * 8ull + 2)) {
            return Status::corruptData("index blob buffer invalid");
        }
        entry.buffer.clear();
        for (uint16_t i = 0; i < nbuf; ++i) {
            entry.buffer.push_back(get64());
        }
        uint16_t nleaf = get16();
        if (nleaf > config_.node_arity || !need(nleaf * 8ull + 24)) {
            return Status::corruptData("index blob leaf refs invalid");
        }
        entry.leaf_refs.clear();
        for (uint16_t i = 0; i < nleaf; ++i) {
            entry.leaf_refs.push_back(get64());
        }
        entry.head_root = get64();
        entry.total_pages = get64();
        entry.last_pushed = get64();
    }

    if (!need(7 * 8 + 4)) {
        return Status::corruptData("index blob tail truncated");
    }
    open_leaf_page_ = get64();
    open_leaf_slot_ = get64();
    open_root_page_ = get64();
    open_root_slot_ = get64();
    leaf_flushes_ = get64();
    leaves_since_snapshot_ = get64();
    max_data_page_ = get64();
    uint32_t nsnap = get32();
    if (!need(nsnap * 16ull)) {
        return Status::corruptData("index blob snapshots truncated");
    }
    snapshots_.clear();
    for (uint32_t i = 0; i < nsnap; ++i) {
        SnapshotRecord s;
        s.timestamp = get64();
        s.max_data_page = get64();
        snapshots_.push_back(s);
    }
    return Status::ok();
}

std::vector<uint64_t>
InvertedIndex::entryLoads() const
{
    std::vector<uint64_t> loads;
    loads.reserve(entries_.size());
    for (const Entry &entry : entries_) {
        loads.push_back(entry.total_pages);
    }
    return loads;
}

size_t
InvertedIndex::memoryFootprint() const
{
    size_t total = entries_.size() * sizeof(Entry);
    for (const Entry &entry : entries_) {
        total += entry.buffer.capacity() * sizeof(PageId);
        total += entry.leaf_refs.capacity() * sizeof(uint64_t);
    }
    return total;
}

} // namespace mithril::index
