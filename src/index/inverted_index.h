/**
 * @file
 * In-storage inverted index (Section 6, Figure 11).
 *
 * The index maps tokens to the data pages containing them, with three
 * design goals from the paper: small host-memory footprint during
 * ingest, storage-bandwidth-saturating queries, and probabilistic
 * operation (no token text stored — false-positive pages are filtered
 * out downstream by the accelerator).
 *
 * Structure per in-memory hash entry:
 *   - a 16-slot buffer of data-page addresses (the only always-resident
 *     state);
 *   - a root-under-construction holding up to 16 leaf-node references;
 *   - the head of an in-storage linked list of height-2 trees: each
 *     tree root holds 16 leaf references, each leaf holds 16 data page
 *     addresses, so one latency-bound root visit yields up to 256
 *     independent data-page addresses (Section 6.1's bandwidth
 *     argument).
 *
 * Two hash functions index the table; each token's pages are pushed to
 * whichever of its two entries currently holds fewer pages, and queries
 * read both entries (Section 6.2). New roots are prepended, so
 * traversal returns pages in reverse chronological order; queries
 * intersect in read order and reverse once at the end (Section 6.3).
 *
 * Coarse time-based queries are supported through snapshots: after a
 * threshold of leaf activity, the index records a (timestamp, data-page
 * watermark) pair; a time range then maps to a page-id range
 * (Section 6.3).
 */
#ifndef MITHRIL_INDEX_INVERTED_INDEX_H
#define MITHRIL_INDEX_INVERTED_INDEX_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/stats.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/ssd_model.h"

namespace mithril::index {

/** Index configuration; defaults follow the prototype's sizes. */
struct IndexConfig {
    /** In-memory hash table entries (power of two). */
    uint32_t hash_entries = 1u << 15;
    /** Data-page addresses buffered in memory per entry. */
    size_t buffer_slots = 16;
    /** Arity of both tree levels (16 x 16 = 256 pages per root). */
    size_t node_arity = 16;
    /** Use the two-hash balancing scheme (false = single hash,
     *  kept for the Section 6.2 ablation). */
    bool two_hash = true;
    /** Leaf flushes between snapshot records (time indexing). */
    uint64_t snapshot_leaf_interval = 4096;
};

/** One coarse time-index record. */
struct SnapshotRecord {
    uint64_t timestamp;
    storage::PageId max_data_page;  ///< highest data page at the flush
};

/** The inverted index; shares an SsdModel with the data pages. */
class InvertedIndex
{
  public:
    InvertedIndex(storage::SsdModel *ssd, IndexConfig config = IndexConfig{});

    const IndexConfig &config() const { return config_; }

    /**
     * Ingest: registers that every token of @p tokens occurs in
     * @p data_page. Call once per sealed data page with the page's
     * distinct token set; @p timestamp drives snapshotting.
     */
    void addPage(storage::PageId data_page,
                 std::span<const std::string_view> tokens,
                 uint64_t timestamp);

    /** Flushes all partial buffers/roots to storage (end of ingest). */
    void flush();

    /**
     * Candidate data pages for @p token, in chronological order.
     * Includes false positives (other tokens sharing the entries).
     * Reads are metered on the shared SsdModel.
     *
     * When @p integrity_lost is non-null it is set to true if any part
     * of the traversal was unrecoverable (node CRC failure after
     * retries, unreadable index page, corrupt chain link) — the result
     * may then be missing candidate pages, and the caller must treat
     * it as incomplete (the query path degrades to a full scan).
     */
    std::vector<storage::PageId> lookup(std::string_view token,
                                        bool *integrity_lost = nullptr);

    /**
     * Candidate pages for a conjunction: intersection of the page sets
     * of @p tokens (computed in read order, reversed once at the end).
     * With an empty token list returns an empty vector.
     * @p integrity_lost aggregates across all per-token lookups.
     */
    std::vector<storage::PageId>
    lookupAll(std::span<const std::string> tokens,
              bool *integrity_lost = nullptr);

    /** Pages recorded between @p t0 and @p t1 according to snapshots
     *  (coarse: snapshot granularity). */
    std::pair<storage::PageId, storage::PageId>
    pageRangeForTime(uint64_t t0, uint64_t t1) const;

    /**
     * O(1) upper bound on the pages a lookup of @p token would return,
     * from the in-memory entry counters (includes false-positive
     * postings from sharing tokens). Query planning uses this to skip
     * index traversal when pruning cannot pay off.
     */
    uint64_t estimatePages(std::string_view token) const;

    /** All snapshot records (diagnostics / tests). */
    const std::vector<SnapshotRecord> &snapshots() const
    {
        return snapshots_;
    }

    /** Approximate resident memory of the index structures. */
    size_t memoryFootprint() const;

    /** Per-entry total page-postings (load-balance diagnostics for the
     *  Section 6.2 two-hash ablation). */
    std::vector<uint64_t> entryLoads() const;

    /**
     * Serializes the in-memory index state (entries, open-page
     * cursors, snapshot log) for device-image persistence. The
     * in-storage nodes live in the shared SsdModel and are persisted
     * with it, not here.
     */
    void serialize(std::vector<uint8_t> *out) const;

    /**
     * Restores state produced by serialize(). The configuration of
     * this index must match the one that serialized (validated).
     * @retval kCorruptData malformed blob or config mismatch.
     */
    Status deserialize(std::span<const uint8_t> in);

    /** Counters: leaf/root flushes, lookups, pages returned, ... */
    const StatSet &stats() const { return stats_; }

    /** Joins the unified metric namespace: counters forward as
     *  `index.*` (lookups, pages_returned = candidate pages, node
     *  flushes, corrupt refs). */
    void bindMetrics(obs::MetricsRegistry *metrics)
    {
        stats_.bind(metrics, "index.");
    }

  private:
    static constexpr uint64_t kInvalidRef = ~0ull;
    /** Node references pack (page << 6 | slot). */
    static constexpr uint64_t kSlotBits = 6;

    struct Entry {
        std::vector<storage::PageId> buffer;   // newest last
        std::vector<uint64_t> leaf_refs;       // root under construction
        uint64_t head_root = kInvalidRef;
        uint64_t total_pages = 0;
        storage::PageId last_pushed = storage::kInvalidPage;
    };

    /** Serialized leaf node: node_arity addresses, CRC-framed. */
    struct LeafNode {
        uint64_t addrs[16];
        uint16_t count;
        uint16_t pad;
        uint32_t crc;  ///< CRC-32 of the node with this field zeroed
    };
    static_assert(sizeof(LeafNode) == 136);

    /** Serialized root node: leaf refs + list link, CRC-framed. */
    struct RootNode {
        uint64_t leaf_refs[16];
        uint64_t next;
        uint16_t count;
        uint16_t pad;
        uint32_t crc;  ///< CRC-32 of the node with this field zeroed
    };
    static_assert(sizeof(RootNode) == 144);

    /** CRC over a node image with its crc field zeroed; detects any
     *  bit flip in the 136/144-byte node a read returned. */
    template <typename Node>
    static uint32_t
    nodeCrc(Node node)
    {
        node.crc = 0;
        return crc32(&node, sizeof node);
    }

    uint32_t entryFor(std::string_view token) const;
    void push(Entry *entry, storage::PageId page);
    void flushBuffer(Entry *entry);
    void flushRoot(Entry *entry);
    uint64_t writeLeaf(const Entry &entry);
    void maybeSnapshot(uint64_t timestamp);

    /** Reads pages of one entry, newest first; sets @p integrity_lost
     *  on unrecoverable traversal damage (may be null). */
    void collectEntry(const Entry &entry,
                      std::vector<storage::PageId> *out,
                      bool *integrity_lost);

    storage::SsdModel *ssd_;
    IndexConfig config_;
    HashPair hashes_;
    std::vector<Entry> entries_;

    // Open leaf/root pages being packed (one node at a time).
    storage::PageId open_leaf_page_ = storage::kInvalidPage;
    size_t open_leaf_slot_ = 0;
    storage::PageId open_root_page_ = storage::kInvalidPage;
    size_t open_root_slot_ = 0;

    uint64_t leaf_flushes_ = 0;
    uint64_t leaves_since_snapshot_ = 0;
    storage::PageId max_data_page_ = 0;
    std::vector<SnapshotRecord> snapshots_;
    StatSet stats_;
};

} // namespace mithril::index

#endif // MITHRIL_INDEX_INVERTED_INDEX_H
