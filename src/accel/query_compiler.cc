#include "accel/query_compiler.h"

#include "common/text.h"

namespace mithril::accel {

Status
compileQueries(std::span<const query::Query> queries, FilterProgram *out)
{
    *out = FilterProgram();

    // Count intersection sets first: they map 1:1 onto flag pairs.
    size_t total_sets = 0;
    for (const query::Query &q : queries) {
        MITHRIL_RETURN_IF_ERROR(q.validate());
        total_sets += q.sets().size();
    }
    if (total_sets == 0) {
        return Status::invalidArgument("no intersection sets to compile");
    }
    if (total_sets > kFlagPairs) {
        return Status::capacityExceeded(strprintf(
            "%zu intersection sets exceed %zu flag pairs",
            total_sets, kFlagPairs));
    }
    if (queries.size() > 64) {
        return Status::capacityExceeded("more than 64 batched queries");
    }

    uint32_t set_index = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
        for (const query::IntersectionSet &s : queries[qi].sets()) {
            for (const query::Term &t : s.terms) {
                MITHRIL_RETURN_IF_ERROR(
                    out->table.insert(t.token, set_index, t.negated));
            }
            out->set_owner[set_index] = static_cast<uint32_t>(qi);
            ++set_index;
        }
    }
    out->active_sets = set_index;

    // Rows are only final once every insertion (and eviction) is done,
    // so the query bitmaps are derived by scanning the finished table.
    for (uint32_t row = 0; row < out->table.rows(); ++row) {
        const CuckooEntry &e = out->table.entry(row);
        if (!e.occupied) {
            continue;
        }
        for (uint32_t s = 0; s < out->active_sets; ++s) {
            uint8_t bit = static_cast<uint8_t>(1u << s);
            if ((e.valid_mask & bit) && !(e.negative_mask & bit)) {
                out->query_bitmaps[s][row / 64] |= 1ull << (row % 64);
            }
        }
    }
    return Status::ok();
}

Status
compileQuery(const query::Query &q, FilterProgram *out)
{
    return compileQueries(std::span(&q, 1), out);
}

} // namespace mithril::accel
