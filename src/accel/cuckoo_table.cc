#include "accel/cuckoo_table.h"

#include <cstring>

namespace mithril::accel {

namespace {

/** Maximum evictions before declaring the insertion chain cyclic. */
constexpr size_t kMaxKicks = 512;

} // namespace

CuckooTable::CuckooTable(uint32_t rows)
    : hashes_(rows), entries_(rows), row_token_(rows)
{
}

bool
CuckooTable::tokenEquals(const CuckooEntry &e, std::string_view token) const
{
    if (!e.occupied || e.token_len != token.size()) {
        return false;
    }
    size_t first = std::min(token.size(), kDatapathBytes);
    if (std::memcmp(e.token_word.data(), token.data(), first) != 0) {
        return false;
    }
    size_t off = kDatapathBytes;
    for (uint16_t w = 0; w < e.overflow_words; ++w) {
        const Slot &slot = overflow_[e.overflow_offset + w];
        size_t take = std::min(token.size() - off, kDatapathBytes);
        if (std::memcmp(slot.data(), token.data() + off, take) != 0) {
            return false;
        }
        off += take;
    }
    return true;
}

Status
CuckooTable::storeToken(CuckooEntry *e, std::string_view token)
{
    e->token_word = Slot{};
    size_t first = std::min(token.size(), kDatapathBytes);
    std::memcpy(e->token_word.data(), token.data(), first);
    e->token_len = static_cast<uint16_t>(token.size());
    e->overflow_words = 0;
    e->overflow_offset = 0;
    if (token.size() > kDatapathBytes) {
        size_t words = tokenWords(token.size()) - 1;
        if (overflow_.size() + words > kOverflowWords) {
            return Status::capacityExceeded("overflow table full");
        }
        e->overflow_offset = static_cast<uint16_t>(overflow_.size());
        e->overflow_words = static_cast<uint16_t>(words);
        size_t off = kDatapathBytes;
        for (size_t w = 0; w < words; ++w) {
            Slot slot{};
            size_t take = std::min(token.size() - off, kDatapathBytes);
            std::memcpy(slot.data(), token.data() + off, take);
            overflow_.push_back(slot);
            off += take;
        }
    }
    return Status::ok();
}

Status
CuckooTable::insert(std::string_view token, uint32_t set, bool negated,
                    uint16_t column)
{
    if (token.empty()) {
        return Status::invalidArgument("empty token");
    }
    if (set >= kFlagPairs) {
        return Status::invalidArgument("intersection set index too large");
    }
    if (token.size() > 0xffff) {
        return Status::invalidArgument("token longer than 64 KiB");
    }

    uint32_t r0 = hashes_.h0(token);
    uint32_t r1 = hashes_.h1(token);

    // Merge into an existing entry for the same token.
    for (uint32_t r : {r0, r1}) {
        CuckooEntry &e = entries_[r];
        if (tokenEquals(e, token)) {
            if (e.column != column) {
                return Status::unsupported(
                    "token carries a conflicting column constraint");
            }
            uint8_t bit = static_cast<uint8_t>(1u << set);
            bool was_member = e.valid_mask & bit;
            bool was_negative = e.negative_mask & bit;
            if (was_member && was_negative != negated) {
                return Status::invalidArgument(
                    "token both positive and negative in one set");
            }
            e.valid_mask |= bit;
            if (negated) {
                e.negative_mask |= bit;
            }
            return Status::ok();
        }
    }

    // Build the new entry, then place it with cuckoo eviction.
    CuckooEntry incoming;
    incoming.occupied = true;
    incoming.column = column;
    incoming.valid_mask = static_cast<uint8_t>(1u << set);
    incoming.negative_mask = negated ? static_cast<uint8_t>(1u << set) : 0;
    MITHRIL_RETURN_IF_ERROR(storeToken(&incoming, token));
    std::string incoming_token(token);

    uint32_t target = r0;
    for (size_t kick = 0; kick < kMaxKicks; ++kick) {
        if (!entries_[target].occupied) {
            entries_[target] = incoming;
            row_token_[target] = std::move(incoming_token);
            ++occupied_;
            return Status::ok();
        }
        // Also try the incoming token's alternate before evicting.
        uint32_t alt_in = hashes_.h0(incoming_token) == target
            ? hashes_.h1(incoming_token)
            : hashes_.h0(incoming_token);
        if (!entries_[alt_in].occupied) {
            entries_[alt_in] = incoming;
            row_token_[alt_in] = std::move(incoming_token);
            ++occupied_;
            return Status::ok();
        }
        // Evict the occupant of `target` to its alternate slot.
        std::swap(entries_[target], incoming);
        std::swap(row_token_[target], incoming_token);
        uint32_t h0 = hashes_.h0(incoming_token);
        uint32_t h1 = hashes_.h1(incoming_token);
        target = (h0 == target) ? h1 : h0;
    }
    return Status::capacityExceeded("cuckoo eviction chain cycled");
}

std::optional<uint32_t>
CuckooTable::lookup(std::string_view token, uint16_t column) const
{
    uint32_t r0 = hashes_.h0(token);
    uint32_t r1 = hashes_.h1(token);
    for (uint32_t r : {r0, r1}) {
        const CuckooEntry &e = entries_[r];
        if (tokenEquals(e, token)) {
            if (e.column != kAnyColumn && e.column != column) {
                return std::nullopt;  // column constraint unsatisfied
            }
            return r;
        }
    }
    return std::nullopt;
}

double
CuckooTable::loadFactor() const
{
    return static_cast<double>(occupied_) / entries_.size();
}

} // namespace mithril::accel
