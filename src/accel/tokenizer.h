/**
 * @file
 * Tokenizer module emulation (Section 4.1, Figure 4).
 *
 * A hardware tokenizer ingests log text at 2 bytes/cycle and emits a
 * stream of tokens aligned to the 16-byte datapath, each word tagged
 * with last-of-token and last-of-line flags; short tokens are zero
 * padded, which amplifies the tokenized stream relative to the raw text
 * (the Figure 13 "useful bits" statistic).
 *
 * The emulation produces the same token stream functionally and charges
 * cycles structurally:
 *
 *     cycles(line) = max( ceil(line_bytes / 2),   // ingest bound
 *                         words_emitted )         // emit bound
 *
 * It also reports the padding statistics that drive the pipeline-level
 * throughput model and the Figure 13 reproduction.
 */
#ifndef MITHRIL_ACCEL_TOKENIZER_H
#define MITHRIL_ACCEL_TOKENIZER_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "accel/datapath.h"

namespace mithril::accel {

/** One emitted token (datapath words are implied by its length). */
struct TokenOut {
    std::string_view text;   ///< token bytes (view into the line)
    uint16_t column;         ///< token position in the line (prefix ext.)
    bool last_of_line;       ///< set on the line's final token
};

/** Result of tokenizing one line. */
struct TokenizedLine {
    std::vector<TokenOut> tokens;
    uint64_t ingest_cycles = 0;  ///< padded line bytes / 2
    uint64_t emit_words = 0;     ///< datapath words emitted (padded)
    uint64_t useful_bytes = 0;   ///< sum of token lengths (no padding)
};

/**
 * Tokenizer emulation; stateless apart from accumulated statistics.
 */
class Tokenizer
{
  public:
    /**
     * Tokenizes @p line (without trailing newline).
     * Views in the result point into @p line.
     */
    TokenizedLine run(std::string_view line);

    /** Cycles this tokenizer has spent (max of ingest/emit per line). */
    uint64_t busyCycles() const { return busy_cycles_; }

    /** Total datapath words emitted. */
    uint64_t wordsEmitted() const { return words_emitted_; }

    /** Total useful (non-padding) bytes across emitted words. */
    uint64_t usefulBytes() const { return useful_bytes_; }

    /** Fraction of useful bits in the tokenized stream (Figure 13). */
    double usefulRatio() const;

    void resetStats();

  private:
    uint64_t busy_cycles_ = 0;
    uint64_t words_emitted_ = 0;
    uint64_t useful_bytes_ = 0;
};

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_TOKENIZER_H
