/**
 * @file
 * Hardware datapath parameters of the MithriLog prototype.
 *
 * These constants pin down the structure the cycle-approximate emulation
 * charges time against. They reproduce the paper's FPGA prototype
 * (Sections 4, 7.2):
 *
 *  - 128-bit (16 B) datapath, chosen against the token-length statistics
 *    of Figure 13;
 *  - 8 tokenizers per pipeline, each ingesting 2 B/cycle (the
 *    performance/resource sweet spot found in design-space exploration);
 *  - 2 hash filter modules per pipeline, covering the ~2x padding
 *    amplification of the tokenized stream;
 *  - 256-row cuckoo tables with 8 flag pairs (8 concurrent intersection
 *    sets);
 *  - 4 pipelines at 200 MHz = 12.8 GB/s aggregate decompressed bound.
 */
#ifndef MITHRIL_ACCEL_DATAPATH_H
#define MITHRIL_ACCEL_DATAPATH_H

#include <cstddef>
#include <cstdint>

namespace mithril::accel {

/** Datapath width in bytes (128-bit bus). */
constexpr size_t kDatapathBytes = 16;

/** Fabric clock of the prototype. */
constexpr double kClockHz = 200e6;

/** Tokenizers instantiated per filter pipeline. */
constexpr size_t kTokenizersPerPipeline = 8;

/** Bytes each tokenizer ingests per cycle. */
constexpr size_t kTokenizerBytesPerCycle = 2;

/** Hash filter modules per pipeline (padding-amplification headroom). */
constexpr size_t kHashFiltersPerPipeline = 2;

/** Cuckoo hash table rows (R); bitmaps are R bits wide. */
constexpr size_t kTableRows = 256;

/** Flag pairs per hash entry = concurrent intersection sets (N). */
constexpr size_t kFlagPairs = 8;

/** Overflow table capacity in 16-byte words (long-token storage). */
constexpr size_t kOverflowWords = 128;

/** Filter pipelines in the prototype (two per Virtex-7 board). */
constexpr size_t kDefaultPipelines = 4;

/** Words in an R-bit bitmap. */
constexpr size_t kBitmapWords = kTableRows / 64;

/** Number of words a token of @p len bytes occupies on the datapath. */
constexpr uint64_t
tokenWords(size_t len)
{
    return (len + kDatapathBytes - 1) / kDatapathBytes;
}

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_DATAPATH_H
