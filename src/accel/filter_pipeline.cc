#include "accel/filter_pipeline.h"

#include <algorithm>

#include "common/bits.h"

namespace mithril::accel {

namespace {

/**
 * Splits the padded (line-aligned-word) decompressor output back into
 * lines. The decompressor guarantees a word's bytes past a newline are
 * padding, so a '\n' always terminates both a line and a word.
 */
void
splitPaddedLines(std::span<const uint8_t> padded,
                 std::vector<std::string> *lines)
{
    std::string current;
    for (size_t off = 0; off + kDatapathBytes <= padded.size();
         off += kDatapathBytes) {
        const uint8_t *w = padded.data() + off;
        size_t nl = kDatapathBytes;
        for (size_t b = 0; b < kDatapathBytes; ++b) {
            if (w[b] == '\n') {
                nl = b;
                break;
            }
        }
        if (nl == kDatapathBytes) {
            current.append(asChars(w, kDatapathBytes));
        } else {
            current.append(asChars(w, nl));
            lines->push_back(std::move(current));
            current.clear();
        }
    }
    // Well-formed LZAH pages end every line; anything left over would
    // indicate corruption, which lzahDecodePage already rejects.
}

} // namespace

FilterPipeline::FilterPipeline()
    : tokenizers_(kTokenizersPerPipeline)
{
    filters_.reserve(kHashFiltersPerPipeline);
    for (size_t i = 0; i < kHashFiltersPerPipeline; ++i) {
        filters_.emplace_back(nullptr);
    }
}

void
FilterPipeline::program(const FilterProgram *program)
{
    program_ = program;
    filters_.clear();
    for (size_t i = 0; i < kHashFiltersPerPipeline; ++i) {
        filters_.emplace_back(program);
    }
}

Status
FilterPipeline::process(std::span<const compress::ByteView> pages,
                        Mode mode, bool keep_lines, bool collect_masks,
                        PipelineResult *out)
{
    *out = PipelineResult{};

    if (mode == Mode::kRaw) {
        // Raw forwarding: the page crosses the datapath one word per
        // cycle with no processing.
        for (const auto &page : pages) {
            out->raw.insert(out->raw.end(), page.begin(), page.end());
            out->cycles += (page.size() + kDatapathBytes - 1) /
                           kDatapathBytes;
        }
        return Status::ok();
    }

    decompressor_.reset();
    for (Tokenizer &t : tokenizers_) {
        t.resetStats();
    }
    for (HashFilter &f : filters_) {
        f.resetStats();
    }

    if (mode == Mode::kDecompress) {
        compress::Bytes padded;
        for (const auto &page : pages) {
            MITHRIL_RETURN_IF_ERROR(
                decompressor_.decodePage(page, &padded));
        }
        out->padded_bytes = padded.size();

        std::vector<std::string> lines;
        splitPaddedLines(padded, &lines);
        for (const std::string &line : lines) {
            out->decompressed_bytes += line.size() + 1;
        }
        out->lines_in = lines.size();
        out->text.reserve(out->decompressed_bytes);
        for (const std::string &line : lines) {
            out->text += line;
            out->text += '\n';
        }
        out->cycles = decompressor_.cycles();
        return Status::ok();
    }

    MITHRIL_ASSERT(program_ != nullptr);

    // Scatter lines round-robin over the tokenizers; each group of
    // (kTokenizersPerPipeline / kHashFiltersPerPipeline) tokenizers
    // feeds one hash filter (Section 7.4.1). Pages decode one at a
    // time — LZAH pages are line-self-contained — so acceptance can be
    // attributed per page (pages_with_matches); the round-robin line
    // index stays continuous across pages, matching the hardware
    // scatter unit.
    constexpr size_t kGroup = kTokenizersPerPipeline /
                              kHashFiltersPerPipeline;
    out->kept_per_query.assign(64, 0);
    compress::Bytes padded;
    std::vector<std::string> lines;
    size_t line_idx = 0;
    uint32_t page_ord = 0;
    for (const auto &page : pages) {
        padded.clear();
        MITHRIL_RETURN_IF_ERROR(decompressor_.decodePage(page, &padded));
        out->padded_bytes += padded.size();
        lines.clear();
        splitPaddedLines(padded, &lines);
        out->lines_in += lines.size();
        uint64_t kept_before = out->lines_kept;
        uint32_t in_page = 0;
        for (const std::string &line : lines) {
            out->decompressed_bytes += line.size() + 1;
            size_t t = line_idx++ % kTokenizersPerPipeline;
            TokenizedLine tokenized = tokenizers_[t].run(line);
            uint64_t mask = filters_[t / kGroup].evaluate(tokenized);
            if (collect_masks) {
                out->line_masks.push_back(mask);
            }
            if (mask != 0) {
                ++out->lines_kept;
                for (size_t q = 0; q < 64; ++q) {
                    if (mask & (1ull << q)) {
                        ++out->kept_per_query[q];
                    }
                }
                if (keep_lines) {
                    out->kept.push_back({line, mask, page_ord, in_page});
                }
            }
            ++in_page;
        }
        if (out->lines_kept != kept_before) {
            ++out->pages_with_matches;
        }
        ++page_ord;
    }

    uint64_t tok_stage = 0;
    for (const Tokenizer &t : tokenizers_) {
        tok_stage = std::max(tok_stage, t.busyCycles());
        out->tokenized_words += t.wordsEmitted();
        out->useful_token_bytes += t.usefulBytes();
    }
    uint64_t filt_stage = 0;
    for (const HashFilter &f : filters_) {
        filt_stage = std::max(filt_stage, f.busyCycles());
    }
    out->cycles = std::max({decompressor_.cycles(), tok_stage, filt_stage});
    return Status::ok();
}

} // namespace mithril::accel
