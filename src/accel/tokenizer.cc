#include "accel/tokenizer.h"

#include "common/text.h"

namespace mithril::accel {

TokenizedLine
Tokenizer::run(std::string_view line)
{
    TokenizedLine out;
    forEachToken(line, [&](std::string_view tok, uint32_t column) {
        out.tokens.push_back({tok, static_cast<uint16_t>(column), false});
        out.emit_words += tokenWords(tok.size());
        out.useful_bytes += tok.size();
        return true;
    });
    if (!out.tokens.empty()) {
        out.tokens.back().last_of_line = true;
    }
    // The decompressor hands the tokenizer line-aligned words, so the
    // ingest stream includes the terminator word's padding.
    size_t padded_len = (line.size() + 1 + kDatapathBytes - 1) /
                        kDatapathBytes * kDatapathBytes;
    out.ingest_cycles = padded_len / kTokenizerBytesPerCycle;
    // A line with no tokens (all delimiters / empty) still consumes its
    // ingest cycles and emits one empty end-of-line marker word.
    if (out.tokens.empty()) {
        out.emit_words = 1;
    }

    busy_cycles_ += std::max(out.ingest_cycles, out.emit_words);
    words_emitted_ += out.emit_words;
    useful_bytes_ += out.useful_bytes;
    return out;
}

double
Tokenizer::usefulRatio() const
{
    if (words_emitted_ == 0) {
        return 0.0;
    }
    return static_cast<double>(useful_bytes_) /
           static_cast<double>(words_emitted_ * kDatapathBytes);
}

void
Tokenizer::resetStats()
{
    busy_cycles_ = 0;
    words_emitted_ = 0;
    useful_bytes_ = 0;
}

} // namespace mithril::accel
