/**
 * @file
 * Hash filter module emulation (Section 4.2.3, Figure 6).
 *
 * The hash filter consumes the tokenized stream one datapath word per
 * cycle, looks each token up in the cuckoo table, and maintains N R-bit
 * bitmaps (one per intersection set) plus N negative-violation flags per
 * line. At end of line the keep/drop decision is:
 *
 *     keep  <=>  exists set i:  !violated[i]  and  bitmap[i] == query[i]
 *
 * where query[i] has a bit set at every table row whose entry is a
 * positive member of set i.
 */
#ifndef MITHRIL_ACCEL_HASH_FILTER_H
#define MITHRIL_ACCEL_HASH_FILTER_H

#include <array>
#include <cstdint>
#include <vector>

#include "accel/cuckoo_table.h"
#include "accel/datapath.h"
#include "accel/tokenizer.h"

namespace mithril::accel {

/** R-bit bitmap, one per intersection set. */
using Bitmap = std::array<uint64_t, kBitmapWords>;

/**
 * The query image the host programs into a filter: the cuckoo table
 * plus per-set query bitmaps and the number of active sets.
 */
struct FilterProgram {
    CuckooTable table;
    std::array<Bitmap, kFlagPairs> query_bitmaps{};
    uint32_t active_sets = 0;
    /** Which original (pre-batching) query each set belongs to. */
    std::array<uint32_t, kFlagPairs> set_owner{};
};

/**
 * Hash filter emulation. Holds a borrowed program; per-line state is
 * internal scratch.
 */
class HashFilter
{
  public:
    explicit HashFilter(const FilterProgram *program)
        : program_(program) {}

    /**
     * Evaluates one tokenized line.
     *
     * @param line tokens + statistics from a Tokenizer
     * @return bitmask over original queries (bit q set when some
     *         intersection set owned by query q accepted the line);
     *         nonzero means "keep".
     */
    uint64_t evaluate(const TokenizedLine &line);

    /** Cycles spent: one per consumed tokenized word. */
    uint64_t busyCycles() const { return busy_cycles_; }

    /** Lines evaluated / kept. */
    uint64_t linesIn() const { return lines_in_; }
    uint64_t linesKept() const { return lines_kept_; }

    void resetStats();

  private:
    const FilterProgram *program_;
    uint64_t busy_cycles_ = 0;
    uint64_t lines_in_ = 0;
    uint64_t lines_kept_ = 0;

    // Per-line scratch, cleared at line start.
    std::array<Bitmap, kFlagPairs> bitmaps_{};
    std::array<bool, kFlagPairs> violated_{};
};

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_HASH_FILTER_H
