/**
 * @file
 * The near-storage accelerator: four filter pipelines behind the SSD's
 * internal link (Sections 3, 7.2).
 *
 * The Accelerator distributes compressed pages round-robin across its
 * pipelines, aggregates their results, and converts cycle counts into
 * modeled time at the fabric clock. Storage feed limits are applied by
 * the caller (core::MithriLog) via SsdModel, since whether the storage
 * or the accelerator is the bottleneck is exactly the question the
 * paper's Figure 14 answers.
 */
#ifndef MITHRIL_ACCEL_ACCELERATOR_H
#define MITHRIL_ACCEL_ACCELERATOR_H

#include <span>
#include <vector>

#include "accel/filter_pipeline.h"
#include "accel/query_compiler.h"
#include "common/simtime.h"
#include "obs/metrics.h"

namespace mithril::accel {

/** Accelerator configuration. */
struct AccelConfig {
    size_t pipelines = kDefaultPipelines;
    double clock_hz = kClockHz;
    /** Retain matched line text (disable for large counting scans). */
    bool keep_lines = true;
    /** Record every line's query mask (template tagging). Masks are in
     *  corpus order only when pages are fed one per process() call. */
    bool collect_masks = false;
};

/** Aggregated result of one accelerator run. */
struct AccelResult {
    std::vector<KeptLine> kept;
    uint64_t lines_in = 0;
    uint64_t lines_kept = 0;
    /** Per-original-query matched line counts (batched execution). */
    std::vector<uint64_t> kept_per_query;

    /** Per-line query masks (AccelConfig::collect_masks). */
    std::vector<uint64_t> line_masks;

    uint64_t cycles = 0;              ///< max over pipelines
    uint64_t decompressed_bytes = 0;  ///< unpadded text incl. newlines
    uint64_t padded_bytes = 0;
    uint64_t tokenized_words = 0;
    uint64_t useful_token_bytes = 0;
    /** Pages with >= 1 accepted line (kFilter mode). */
    uint64_t pages_with_matches = 0;
    /** Idle cycles across pipelines while the slowest one finished
     *  (page/line imbalance — the stall source Section 7.3 names). */
    uint64_t stall_cycles = 0;

    /** Decompressed text (kDecompress mode). */
    std::string text;
    /** Raw page bytes (kRaw mode). */
    std::vector<uint8_t> raw;

    /** Fraction of useful bits in the tokenized datapath (Figure 13). */
    double usefulRatio() const;

    /** Modeled compute time at @p clock_hz. */
    SimTime computeTime(double clock_hz = kClockHz) const;

    /** Effective filter throughput in bytes/s of decompressed text. */
    double filterThroughput(double clock_hz = kClockHz) const;
};

/** The emulated near-storage accelerator. */
class Accelerator
{
  public:
    explicit Accelerator(AccelConfig config = AccelConfig{});

    const AccelConfig &config() const { return config_; }

    /**
     * Joins the unified metric namespace: per-batch counters under
     * `accel.*` (busy/stall cycles, padding amplification, useful-bit
     * bytes, lines in/kept) and the `accel.useful_ratio` gauge.
     */
    void bindMetrics(obs::MetricsRegistry *metrics)
    {
        metrics_ = metrics;
    }

    /**
     * Programs all pipelines with a batch of queries.
     * On failure the previous program is kept.
     */
    [[nodiscard]] Status configure(std::span<const query::Query> queries);

    /** Programs a single query. */
    [[nodiscard]] Status configure(const query::Query &q);

    /** Programs a pre-compiled image (template queries build these). */
    void configureProgram(FilterProgram program);

    /** Number of queries in the current program's batch. */
    size_t queryCount() const { return query_count_; }

    /**
     * Runs @p pages (LZAH-compressed) through the pipelines in
     * @p mode. Pages are distributed round-robin, one page per
     * pipeline per turn, as the device's scatter unit does.
     */
    [[nodiscard]] Status process(std::span<const compress::ByteView> pages,
                                 Mode mode, AccelResult *out);

  private:
    void meterBatch(const AccelResult &r, uint64_t pages_in);

    AccelConfig config_;
    FilterProgram program_;
    bool programmed_ = false;
    size_t query_count_ = 0;
    std::vector<FilterPipeline> pipelines_;
    obs::MetricsRegistry *metrics_ = nullptr;
};

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_ACCELERATOR_H
