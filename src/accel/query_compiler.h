/**
 * @file
 * Compiles union-of-intersections queries into accelerator programs.
 *
 * This is the host-side step of Section 3's flow: before issuing page
 * reads, software encodes the query terms into a cuckoo hash table and
 * derives the per-set query bitmaps. Compilation can fail — too many
 * intersection sets for the N flag pairs, a cuckoo eviction cycle, or a
 * full overflow table — in which case the caller falls back to the
 * software matcher (Section 4.2.1).
 *
 * Multiple queries are batched into one program by assigning their
 * intersection sets to distinct flag pairs and recording ownership, so
 * one pass over the data evaluates all of them concurrently.
 */
#ifndef MITHRIL_ACCEL_QUERY_COMPILER_H
#define MITHRIL_ACCEL_QUERY_COMPILER_H

#include <span>

#include "accel/hash_filter.h"
#include "query/query.h"

namespace mithril::accel {

/**
 * Compiles a batch of queries into one FilterProgram.
 *
 * @retval kCapacityExceeded more intersection sets than flag pairs, a
 *                           cuckoo insertion failure, or overflow-table
 *                           exhaustion
 * @retval kInvalidArgument  a query fails Query::validate()
 */
[[nodiscard]] Status compileQueries(std::span<const query::Query> queries,
                                    FilterProgram *out);

/** Convenience wrapper for a single query. */
[[nodiscard]] Status compileQuery(const query::Query &q,
                                  FilterProgram *out);

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_QUERY_COMPILER_H
