/**
 * @file
 * One token filter pipeline (Section 4, Figure 3): an LZAH decompressor
 * feeding eight tokenizers round-robin, whose output is gathered in
 * order by two hash filter modules (one per group of four tokenizers).
 *
 * The emulation executes the same dataflow functionally and charges
 * cycles per stage; the pipeline's cycle count for a batch is the
 * maximum over its stages, reflecting that the stages stream
 * concurrently and the slowest one sets the pace:
 *
 *   - decompressor: one emitted word per cycle (deterministic);
 *   - tokenizer stage: max over the eight tokenizers of their busy
 *     cycles (captures the line-length imbalance the paper names as a
 *     stall source);
 *   - filter stage: max over the two hash filters of words consumed.
 */
#ifndef MITHRIL_ACCEL_FILTER_PIPELINE_H
#define MITHRIL_ACCEL_FILTER_PIPELINE_H

#include <span>
#include <string>
#include <vector>

#include "accel/hash_filter.h"
#include "accel/tokenizer.h"
#include "common/status.h"
#include "compress/lzah.h"

namespace mithril::accel {

/** What the pipeline does to each page (Section 3's three modes). */
enum class Mode {
    kRaw,         ///< forward the page bytes unprocessed
    kDecompress,  ///< decompress, forward the text
    kFilter,      ///< decompress, tokenize, filter
};

/** A line the filter kept, with the set of queries that accepted it. */
struct KeptLine {
    std::string text;
    uint64_t query_mask;
    /** Ordinal of the source page within this pipeline's batch;
     *  Accelerator::process rewrites it to the ordinal within the full
     *  submitted batch, so callers can attribute a kept line to its
     *  data page (typed-query line numbering, DESIGN.md §15). */
    uint32_t page_index = 0;
    /** The line's index within its source page. */
    uint32_t line_in_page = 0;
};

/** Per-batch output of one pipeline. */
struct PipelineResult {
    std::vector<KeptLine> kept;
    uint64_t lines_in = 0;
    uint64_t lines_kept = 0;
    /** Accepted-line count per original query (by set_owner id). */
    std::vector<uint64_t> kept_per_query;
    /** Per-line query masks in processing order (collect_masks mode;
     *  zero entries are lines no query accepted). */
    std::vector<uint64_t> line_masks;
    uint64_t cycles = 0;              ///< max over stages
    uint64_t decompressed_bytes = 0;  ///< unpadded text incl. newlines
    uint64_t padded_bytes = 0;        ///< datapath words x 16
    uint64_t tokenized_words = 0;
    uint64_t useful_token_bytes = 0;
    /** Pages with >= 1 accepted line (kFilter mode). The complement
     *  over a query's candidate set measures index false positives. */
    uint64_t pages_with_matches = 0;
    /** Raw page bytes forwarded in kRaw mode. */
    std::vector<uint8_t> raw;
    /** Decompressed text in kDecompress mode. */
    std::string text;
};

/** One filter pipeline instance. */
class FilterPipeline
{
  public:
    FilterPipeline();

    /** Points the hash filters at a compiled program (kFilter mode). */
    void program(const FilterProgram *program);

    /**
     * Processes a batch of LZAH-compressed pages.
     *
     * @param keep_lines when false, matched lines are counted but their
     *        text is not retained (large-scan benches).
     * @param collect_masks when true, every line's query mask is
     *        recorded in PipelineResult::line_masks (template tagging).
     */
    Status process(std::span<const compress::ByteView> pages, Mode mode,
                   bool keep_lines, bool collect_masks,
                   PipelineResult *out);

  private:
    compress::LzahDecompressorModel decompressor_;
    std::vector<Tokenizer> tokenizers_;
    std::vector<HashFilter> filters_;
    const FilterProgram *program_ = nullptr;
};

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_FILTER_PIPELINE_H
