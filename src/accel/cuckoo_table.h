/**
 * @file
 * The cuckoo hash table image the accelerator is programmed with
 * (Section 4.2, Figure 5).
 *
 * Each of the R (=256) rows stores:
 *  - a 16-byte token slot (the first datapath word of the token);
 *  - an overflow offset/length for tokens longer than one word, pointing
 *    into a shared overflow table of 16-byte words;
 *  - N (=8) pairs of (valid, negative) flags, one pair per intersection
 *    set;
 *  - an optional column constraint for prefix-tree template queries
 *    (Section 4.3's extension): when set, the token only matches at that
 *    token position within the line.
 *
 * Host software constructs this image (see QueryCompiler) and sends it to
 * the device as configuration; the emulated HashFilter then performs
 * read-only lookups against it, exactly like the BRAM in hardware.
 * Insertion uses cuckoo eviction with two hash functions; construction
 * fails — and the query must fall back to software — if an eviction chain
 * cycles, which is statistically rare below 0.5 load factor (the reason
 * the hardware over-provisions rows).
 */
#ifndef MITHRIL_ACCEL_CUCKOO_TABLE_H
#define MITHRIL_ACCEL_CUCKOO_TABLE_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "accel/datapath.h"
#include "common/hash.h"
#include "common/status.h"

namespace mithril::accel {

/** Sentinel: entry has no column constraint. */
constexpr uint16_t kAnyColumn = 0xffff;

/** One datapath word as stored in a token slot. */
using Slot = std::array<uint8_t, kDatapathBytes>;

/** One hash table row. */
struct CuckooEntry {
    bool occupied = false;
    Slot token_word{};           ///< first word, zero padded
    uint16_t token_len = 0;      ///< full token byte length
    uint16_t overflow_offset = 0;///< into the overflow table (words)
    uint16_t overflow_words = 0; ///< 0 when the token fits one word
    uint16_t column = kAnyColumn;///< prefix-tree column constraint
    uint8_t valid_mask = 0;      ///< bit i: member of intersection set i
    uint8_t negative_mask = 0;   ///< bit i: negated in set i
};

/**
 * Cuckoo table plus overflow storage, with construction-time insertion
 * and match-time lookup.
 */
class CuckooTable
{
  public:
    /** @param rows table rows (power of two), default hardware size. */
    explicit CuckooTable(uint32_t rows = kTableRows);

    uint32_t rows() const { return static_cast<uint32_t>(entries_.size()); }

    /**
     * Inserts @p token (or merges flags into its existing entry).
     *
     * @param set      intersection set index (< kFlagPairs)
     * @param negated  negative term flag for that set
     * @param column   prefix-tree column constraint or kAnyColumn
     *
     * @retval kCapacityExceeded cuckoo eviction chain cycled, or the
     *                           overflow table is full
     * @retval kUnsupported      the token already has a conflicting
     *                           column constraint
     * @retval kInvalidArgument  set index out of range or empty token
     */
    Status insert(std::string_view token, uint32_t set, bool negated,
                  uint16_t column = kAnyColumn);

    /**
     * Looks up @p token; nullopt when absent.
     * @param column  the token's position in the line, used only against
     *                entries carrying a column constraint.
     * @return row index of the matching entry.
     */
    std::optional<uint32_t> lookup(std::string_view token,
                                   uint16_t column = 0) const;

    const CuckooEntry &entry(uint32_t row) const { return entries_[row]; }

    /** Occupied rows / total rows. */
    double loadFactor() const;

    /** Overflow words in use. */
    size_t overflowUsed() const { return overflow_.size(); }

    /** Number of occupied entries. */
    size_t occupiedCount() const { return occupied_; }

  private:
    /** True when the stored entry's token equals @p token exactly. */
    bool tokenEquals(const CuckooEntry &e, std::string_view token) const;

    /** Fills an entry's token fields; appends overflow words. */
    Status storeToken(CuckooEntry *e, std::string_view token);

    HashPair hashes_;
    std::vector<CuckooEntry> entries_;
    std::vector<Slot> overflow_;
    // Full token text per row, kept host-side to re-insert on eviction
    // (hardware reconstructs this from slot+overflow; keeping the text
    // is an emulation convenience, not extra information).
    std::vector<std::string> row_token_;
    size_t occupied_ = 0;
};

} // namespace mithril::accel

#endif // MITHRIL_ACCEL_CUCKOO_TABLE_H
