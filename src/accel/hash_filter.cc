#include "accel/hash_filter.h"

namespace mithril::accel {

uint64_t
HashFilter::evaluate(const TokenizedLine &line)
{
    // Line start: clear the per-set bitmaps and violation flags.
    for (uint32_t s = 0; s < program_->active_sets; ++s) {
        bitmaps_[s] = Bitmap{};
        violated_[s] = false;
    }

    for (const TokenOut &tok : line.tokens) {
        // The filter consumes every word of the token (multi-word
        // tokens stream over multiple cycles, Figure 4).
        busy_cycles_ += tokenWords(tok.text.size());

        auto row = program_->table.lookup(tok.text, tok.column);
        if (!row) {
            continue;  // token of no interest to any query
        }
        const CuckooEntry &e = program_->table.entry(*row);
        for (uint32_t s = 0; s < program_->active_sets; ++s) {
            uint8_t bit = static_cast<uint8_t>(1u << s);
            if (!(e.valid_mask & bit)) {
                continue;  // not a member of this intersection set
            }
            if (e.negative_mask & bit) {
                violated_[s] = true;
            } else {
                bitmaps_[s][*row / 64] |= 1ull << (*row % 64);
            }
        }
    }
    if (line.tokens.empty()) {
        busy_cycles_ += 1;  // the end-of-line marker word
    }

    // End of line: exact bitmap match per set, negatives veto.
    uint64_t accepted_queries = 0;
    for (uint32_t s = 0; s < program_->active_sets; ++s) {
        if (violated_[s]) {
            continue;
        }
        if (bitmaps_[s] == program_->query_bitmaps[s]) {
            accepted_queries |= 1ull << program_->set_owner[s];
        }
    }

    ++lines_in_;
    if (accepted_queries != 0) {
        ++lines_kept_;
    }
    return accepted_queries;
}

void
HashFilter::resetStats()
{
    busy_cycles_ = 0;
    lines_in_ = 0;
    lines_kept_ = 0;
}

} // namespace mithril::accel
