#include "accel/accelerator.h"

#include <algorithm>

namespace mithril::accel {

double
AccelResult::usefulRatio() const
{
    if (tokenized_words == 0) {
        return 0.0;
    }
    return static_cast<double>(useful_token_bytes) /
           static_cast<double>(tokenized_words * kDatapathBytes);
}

SimTime
AccelResult::computeTime(double clock_hz) const
{
    return SimTime::cycles(cycles, clock_hz);
}

double
AccelResult::filterThroughput(double clock_hz) const
{
    SimTime t = computeTime(clock_hz);
    return throughputBps(decompressed_bytes, t);
}

Accelerator::Accelerator(AccelConfig config)
    : config_(config), pipelines_(config.pipelines)
{
    MITHRIL_ASSERT(config.pipelines >= 1);
}

Status
Accelerator::configure(std::span<const query::Query> queries)
{
    FilterProgram program;
    MITHRIL_RETURN_IF_ERROR(compileQueries(queries, &program));
    program_ = std::move(program);
    query_count_ = queries.size();
    programmed_ = true;
    for (FilterPipeline &p : pipelines_) {
        p.program(&program_);
    }
    return Status::ok();
}

Status
Accelerator::configure(const query::Query &q)
{
    return configure(std::span(&q, 1));
}

void
Accelerator::configureProgram(FilterProgram program)
{
    program_ = std::move(program);
    query_count_ = 1;
    // Owner ids in a prebuilt program may address several queries; use
    // the largest owner index to size per-query accounting.
    uint32_t max_owner = 0;
    for (uint32_t s = 0; s < program_.active_sets; ++s) {
        max_owner = std::max(max_owner, program_.set_owner[s]);
    }
    query_count_ = max_owner + 1;
    programmed_ = true;
    for (FilterPipeline &p : pipelines_) {
        p.program(&program_);
    }
}

Status
Accelerator::process(std::span<const compress::ByteView> pages, Mode mode,
                     AccelResult *out)
{
    *out = AccelResult{};
    if (mode == Mode::kFilter && !programmed_) {
        return Status::invalidArgument("accelerator not configured");
    }

    // Page-granular round-robin scatter across pipelines.
    std::vector<std::vector<compress::ByteView>> shards(pipelines_.size());
    for (size_t i = 0; i < pages.size(); ++i) {
        shards[i % pipelines_.size()].push_back(pages[i]);
    }

    out->kept_per_query.assign(std::max<size_t>(query_count_, 1), 0);
    std::vector<uint64_t> pipeline_cycles(pipelines_.size(), 0);
    for (size_t p = 0; p < pipelines_.size(); ++p) {
        PipelineResult r;
        MITHRIL_RETURN_IF_ERROR(pipelines_[p].process(
            shards[p], mode, config_.keep_lines, config_.collect_masks,
            &r));
        out->line_masks.insert(out->line_masks.end(),
                               r.line_masks.begin(),
                               r.line_masks.end());
        out->lines_in += r.lines_in;
        out->lines_kept += r.lines_kept;
        out->cycles = std::max(out->cycles, r.cycles);
        pipeline_cycles[p] = r.cycles;
        out->decompressed_bytes += r.decompressed_bytes;
        out->padded_bytes += r.padded_bytes;
        out->tokenized_words += r.tokenized_words;
        out->useful_token_bytes += r.useful_token_bytes;
        out->pages_with_matches += r.pages_with_matches;
        for (size_t q = 0; q < out->kept_per_query.size() &&
                           q < r.kept_per_query.size(); ++q) {
            out->kept_per_query[q] += r.kept_per_query[q];
        }
        for (KeptLine &line : r.kept) {
            // Undo the round-robin scatter: local page j of pipeline p
            // is batch page j * P + p, so callers can attribute kept
            // lines to the data pages they submitted.
            line.page_index = static_cast<uint32_t>(
                static_cast<size_t>(line.page_index)
                    * pipelines_.size()
                + p);
            out->kept.push_back(std::move(line));
        }
        out->text += r.text;
        out->raw.insert(out->raw.end(), r.raw.begin(), r.raw.end());
    }
    // All pipelines run until the slowest finishes; the others idle.
    for (uint64_t c : pipeline_cycles) {
        out->stall_cycles += out->cycles - c;
    }
    if (metrics_ != nullptr) {
        meterBatch(*out, pages.size());
    }
    return Status::ok();
}

void
Accelerator::meterBatch(const AccelResult &r, uint64_t pages_in)
{
    metrics_->counter("accel.batches").add();
    metrics_->counter("accel.pages_in").add(pages_in);
    metrics_->counter("accel.lines_in").add(r.lines_in);
    metrics_->counter("accel.lines_kept").add(r.lines_kept);
    metrics_->counter("accel.busy_cycles").add(r.cycles);
    metrics_->counter("accel.stall_cycles").add(r.stall_cycles);
    metrics_->counter("accel.decompressed_bytes")
        .add(r.decompressed_bytes);
    metrics_->counter("accel.padded_bytes").add(r.padded_bytes);
    metrics_->counter("accel.padding_bytes")
        .add(r.padded_bytes > r.decompressed_bytes
                 ? r.padded_bytes - r.decompressed_bytes
                 : 0);
    metrics_->counter("accel.tokenized_words").add(r.tokenized_words);
    metrics_->counter("accel.useful_token_bytes")
        .add(r.useful_token_bytes);
    if (r.tokenized_words != 0) {
        metrics_->gauge("accel.useful_ratio").set(r.usefulRatio());
    }
}

} // namespace mithril::accel
