#include "regex/regex.h"

#include <algorithm>

namespace mithril::regex {

namespace {

/** A dangling out-edge: (state index, field) to patch later. */
struct Dangle {
    int state;
    int field;  // 0 = next, 1 = eps0, 2 = eps1
};

/** NFA fragment under construction. */
struct Frag {
    int start;
    std::vector<Dangle> out;
};

/** Fills a bitset from an escape character; returns false if @p c is a
 *  plain escaped literal instead of a class shorthand. */
bool
classEscape(char c, std::bitset<256> *set)
{
    switch (c) {
      case 'd':
        for (int b = '0'; b <= '9'; ++b) set->set(b);
        return true;
      case 'w':
        for (int b = '0'; b <= '9'; ++b) set->set(b);
        for (int b = 'a'; b <= 'z'; ++b) set->set(b);
        for (int b = 'A'; b <= 'Z'; ++b) set->set(b);
        set->set('_');
        return true;
      case 's':
        set->set(' ');
        set->set('\t');
        set->set('\r');
        set->set('\n');
        return true;
      default:
        return false;
    }
}

/** Resolves simple escaped literals (\n, \t, \\, \., ...). */
char
literalEscape(char c)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      default: return c;  // \. \* \( etc: the character itself
    }
}

} // namespace

// -------------------------------------------------------------------------
// Parser / NFA builder

namespace {

class Builder
{
  public:
    explicit Builder(std::string_view pattern) : pattern_(pattern) {}

    Status
    run(std::vector<std::bitset<256>> *ons, std::vector<int> *nexts,
        std::vector<int> *eps0s, std::vector<int> *eps1s,
        std::vector<bool> *accepts, int *start)
    {
        Frag frag;
        MITHRIL_RETURN_IF_ERROR(parseAlt(&frag));
        if (pos_ != pattern_.size()) {
            return Status::invalidArgument("unexpected ')' in pattern");
        }
        int accept = newState();
        accept_[accept] = true;
        patch(frag.out, accept);
        *start = frag.start;

        *ons = std::move(on_);
        *nexts = std::move(next_);
        *eps0s = std::move(eps0_);
        *eps1s = std::move(eps1_);
        *accepts = std::move(accept_);
        return Status::ok();
    }

  private:
    int
    newState()
    {
        on_.emplace_back();
        next_.push_back(-1);
        eps0_.push_back(-1);
        eps1_.push_back(-1);
        accept_.push_back(false);
        return static_cast<int>(on_.size() - 1);
    }

    void
    patch(const std::vector<Dangle> &out, int target)
    {
        for (const Dangle &d : out) {
            switch (d.field) {
              case 0: next_[d.state] = target; break;
              case 1: eps0_[d.state] = target; break;
              default: eps1_[d.state] = target; break;
            }
        }
    }

    bool atEnd() const { return pos_ >= pattern_.size(); }
    char peek() const { return pattern_[pos_]; }

    Status
    parseAlt(Frag *out)
    {
        Frag left;
        MITHRIL_RETURN_IF_ERROR(parseConcat(&left));
        while (!atEnd() && peek() == '|') {
            ++pos_;
            Frag right;
            MITHRIL_RETURN_IF_ERROR(parseConcat(&right));
            int split = newState();
            eps0_[split] = left.start;
            eps1_[split] = right.start;
            Frag merged;
            merged.start = split;
            merged.out = left.out;
            merged.out.insert(merged.out.end(), right.out.begin(),
                              right.out.end());
            left = std::move(merged);
        }
        *out = std::move(left);
        return Status::ok();
    }

    Status
    parseConcat(Frag *out)
    {
        Frag acc;
        bool have = false;
        while (!atEnd() && peek() != '|' && peek() != ')') {
            Frag piece;
            MITHRIL_RETURN_IF_ERROR(parseRepeat(&piece));
            if (!have) {
                acc = std::move(piece);
                have = true;
            } else {
                patch(acc.out, piece.start);
                acc.out = std::move(piece.out);
            }
        }
        if (!have) {
            // Empty alternative: a single epsilon pass-through state.
            int s = newState();
            acc.start = s;
            acc.out = {{s, 1}};
        }
        *out = std::move(acc);
        return Status::ok();
    }

    Status
    parseRepeat(Frag *out)
    {
        Frag frag;
        MITHRIL_RETURN_IF_ERROR(parseAtom(&frag));
        while (!atEnd() &&
               (peek() == '*' || peek() == '+' || peek() == '?')) {
            char op = pattern_[pos_++];
            int split = newState();
            if (op == '*') {
                eps0_[split] = frag.start;
                patch(frag.out, split);
                frag.start = split;
                frag.out = {{split, 2}};
            } else if (op == '+') {
                eps0_[split] = frag.start;
                patch(frag.out, split);
                frag.out = {{split, 2}};
            } else {
                eps0_[split] = frag.start;
                Frag opt;
                opt.start = split;
                opt.out = frag.out;
                opt.out.push_back({split, 2});
                frag = std::move(opt);
            }
        }
        *out = std::move(frag);
        return Status::ok();
    }

    Status
    parseAtom(Frag *out)
    {
        if (atEnd()) {
            return Status::invalidArgument("pattern ends unexpectedly");
        }
        char c = pattern_[pos_++];
        switch (c) {
          case '(': {
            MITHRIL_RETURN_IF_ERROR(parseAlt(out));
            if (atEnd() || pattern_[pos_] != ')') {
                return Status::invalidArgument("missing ')'");
            }
            ++pos_;
            return Status::ok();
          }
          case ')':
          case '*':
          case '+':
          case '?':
          case '|':
            return Status::invalidArgument(
                std::string("misplaced '") + c + "'");
          case '.': {
            int s = newState();
            on_[s].set();
            on_[s].reset('\n');
            *out = {s, {{s, 0}}};
            return Status::ok();
          }
          case '[':
            return parseClass(out);
          case '\\': {
            if (atEnd()) {
                return Status::invalidArgument("trailing backslash");
            }
            char e = pattern_[pos_++];
            int s = newState();
            std::bitset<256> set;
            if (classEscape(e, &set)) {
                on_[s] = set;
            } else {
                on_[s].set(static_cast<uint8_t>(literalEscape(e)));
            }
            *out = {s, {{s, 0}}};
            return Status::ok();
          }
          default: {
            int s = newState();
            on_[s].set(static_cast<uint8_t>(c));
            *out = {s, {{s, 0}}};
            return Status::ok();
          }
        }
    }

    Status
    parseClass(Frag *out)
    {
        std::bitset<256> set;
        bool negate = false;
        if (!atEnd() && peek() == '^') {
            negate = true;
            ++pos_;
        }
        bool first = true;
        while (true) {
            if (atEnd()) {
                return Status::invalidArgument("missing ']'");
            }
            char c = pattern_[pos_++];
            if (c == ']' && !first) {
                break;
            }
            first = false;
            if (c == '\\') {
                if (atEnd()) {
                    return Status::invalidArgument("trailing backslash");
                }
                char e = pattern_[pos_++];
                std::bitset<256> esc;
                if (classEscape(e, &esc)) {
                    set |= esc;
                    continue;
                }
                c = literalEscape(e);
            }
            if (!atEnd() && peek() == '-' && pos_ + 1 < pattern_.size() &&
                pattern_[pos_ + 1] != ']') {
                ++pos_;
                char hi = pattern_[pos_++];
                if (hi == '\\') {
                    if (atEnd()) {
                        return Status::invalidArgument(
                            "trailing backslash");
                    }
                    hi = literalEscape(pattern_[pos_++]);
                }
                for (int b = static_cast<uint8_t>(c);
                     b <= static_cast<uint8_t>(hi); ++b) {
                    set.set(b);
                }
            } else {
                set.set(static_cast<uint8_t>(c));
            }
        }
        if (negate) {
            set.flip();
        }
        int s = newState();
        on_[s] = set;
        *out = {s, {{s, 0}}};
        return Status::ok();
    }

    std::string_view pattern_;
    size_t pos_ = 0;
    std::vector<std::bitset<256>> on_;
    std::vector<int> next_;
    std::vector<int> eps0_;
    std::vector<int> eps1_;
    std::vector<bool> accept_;
};

} // namespace

Status
Regex::compile(std::string_view pattern, Regex *out)
{
    *out = Regex();
    Builder builder(pattern);
    std::vector<std::bitset<256>> ons;
    std::vector<int> nexts, eps0s, eps1s;
    std::vector<bool> accepts;
    int start = -1;
    MITHRIL_RETURN_IF_ERROR(
        builder.run(&ons, &nexts, &eps0s, &eps1s, &accepts, &start));
    out->states_.resize(ons.size());
    for (size_t i = 0; i < ons.size(); ++i) {
        out->states_[i].on = ons[i];
        out->states_[i].next = nexts[i];
        out->states_[i].eps0 = eps0s[i];
        out->states_[i].eps1 = eps1s[i];
        out->states_[i].accept = accepts[i];
    }
    out->start_ = start;
    return Status::ok();
}

void
Regex::epsilonClosure(std::vector<int> *states) const
{
    std::vector<int> stack(*states);
    std::vector<bool> seen(states_.size(), false);
    for (int s : *states) {
        seen[s] = true;
    }
    while (!stack.empty()) {
        int s = stack.back();
        stack.pop_back();
        for (int e : {states_[s].eps0, states_[s].eps1}) {
            if (e >= 0 && !seen[e]) {
                seen[e] = true;
                states->push_back(e);
                stack.push_back(e);
            }
        }
    }
    std::sort(states->begin(), states->end());
}

int
Regex::internDfaState(std::vector<int> nfa_states) const
{
    auto it = dfa_index_.find(nfa_states);
    if (it != dfa_index_.end()) {
        return it->second;
    }
    DfaState d;
    d.nfa = nfa_states;
    d.accept = false;
    for (int s : d.nfa) {
        if (states_[s].accept) {
            d.accept = true;
            break;
        }
    }
    d.next.fill(-2);
    dfa_states_.push_back(std::move(d));
    int id = static_cast<int>(dfa_states_.size() - 1);
    dfa_index_.emplace(std::move(nfa_states), id);
    return id;
}

int
Regex::dfaStart() const
{
    if (dfa_start_ < 0) {
        std::vector<int> init{start_};
        epsilonClosure(&init);
        dfa_start_ = internDfaState(std::move(init));
    }
    return dfa_start_;
}

int
Regex::dfaStep(int dfa_state, uint8_t byte) const
{
    int cached = dfa_states_[dfa_state].next[byte];
    if (cached != -2) {
        return cached;
    }
    std::vector<int> moved;
    for (int s : dfa_states_[dfa_state].nfa) {
        if (states_[s].on.test(byte) && states_[s].next >= 0) {
            moved.push_back(states_[s].next);
        }
    }
    int target = -1;
    if (!moved.empty()) {
        std::sort(moved.begin(), moved.end());
        moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
        epsilonClosure(&moved);
        target = internDfaState(std::move(moved));
    }
    dfa_states_[dfa_state].next[byte] = target;
    return target;
}

bool
Regex::match(std::string_view text) const
{
    int state = dfaStart();
    for (char c : text) {
        state = dfaStep(state, static_cast<uint8_t>(c));
        if (state < 0) {
            return false;
        }
    }
    return dfa_states_[state].accept;
}

bool
Regex::search(std::string_view text) const
{
    // Unanchored search: restart the DFA at every offset, accepting as
    // soon as any prefix matches. Dead-state pruning keeps the common
    // case near O(n).
    for (size_t start = 0; start <= text.size(); ++start) {
        int state = dfaStart();
        if (dfa_states_[state].accept) {
            return true;  // empty match
        }
        for (size_t i = start; i < text.size(); ++i) {
            state = dfaStep(state, static_cast<uint8_t>(text[i]));
            if (state < 0) {
                break;
            }
            if (dfa_states_[state].accept) {
                return true;
            }
        }
    }
    return false;
}

} // namespace mithril::regex
