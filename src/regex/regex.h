/**
 * @file
 * From-scratch regular expression engine (Thompson NFA + lazy DFA).
 *
 * The paper positions token filtering against regular-expression-based
 * accelerators (HAWK/HARE, Section 2.1.2 and 7.4.3): regex engines are
 * strictly more expressive but cost far more chip resources per unit
 * bandwidth. This module provides the software substrate for that
 * comparison: a byte-at-a-time engine whose DFA state stepping mirrors
 * what a hardware FSM implementation does each cycle; the companion
 * resource/throughput model lives in sim/resource_model.h
 * (hareKlutPerGbps).
 *
 * Supported syntax: literals, '.', character classes [a-z0-9_] with
 * ranges and negation, grouping (), alternation '|', repetition
 * '*' '+' '?', and '\\' escapes. Anchors are implicit: match() tests
 * the whole string, search() finds the pattern anywhere.
 */
#ifndef MITHRIL_REGEX_REGEX_H
#define MITHRIL_REGEX_REGEX_H

#include <array>
#include <bitset>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mithril::regex {

/** A compiled regular expression. */
class Regex
{
  public:
    /** Compiles @p pattern; kInvalidArgument on syntax errors. */
    static Status compile(std::string_view pattern, Regex *out);

    /** True when the whole of @p text matches. */
    bool match(std::string_view text) const;

    /** True when some substring of @p text matches. */
    bool search(std::string_view text) const;

    /** NFA states (resource-model input: FSM size proxy). */
    size_t stateCount() const { return states_.size(); }

    /** DFA states materialized so far by the lazy subset construction. */
    size_t dfaStateCount() const { return dfa_states_.size(); }

  private:
    /** NFA state: byte-class transition + epsilon edges. */
    struct NfaState {
        std::bitset<256> on;   ///< consuming transition byte set
        int next = -1;         ///< target when a byte in `on` consumed
        int eps0 = -1;         ///< epsilon edges (split states)
        int eps1 = -1;
        bool accept = false;
    };

    /** DFA state: set of NFA states, transitions built lazily. */
    struct DfaState {
        std::vector<int> nfa;  ///< sorted NFA state ids
        bool accept = false;
        std::array<int, 256> next;  ///< -2 = not built, -1 = dead
    };

    void epsilonClosure(std::vector<int> *states) const;
    int dfaStart() const;
    int dfaStep(int dfa_state, uint8_t byte) const;
    int internDfaState(std::vector<int> nfa_states) const;
    bool runFrom(std::string_view text, bool anchored_end) const;

    std::vector<NfaState> states_;
    int start_ = -1;

    // Lazy DFA cache; mutable because matching is logically const.
    mutable std::vector<DfaState> dfa_states_;
    mutable std::map<std::vector<int>, int> dfa_index_;
    mutable int dfa_start_ = -1;
};

} // namespace mithril::regex

#endif // MITHRIL_REGEX_REGEX_H
