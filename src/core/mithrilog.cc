#include "core/mithrilog.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/bits.h"
#include "common/hash.h"
#include "common/text.h"
#include "common/wall_timer.h"
#include "obs/json.h"
#include "query/matcher.h"
#include "query/parser.h"

namespace mithril::core {

using storage::Link;
using storage::PageId;

MithriLog::MithriLog(MithriLogConfig config)
    : config_(config), ssd_(config.ssd), journal_(&ssd_),
      index_(std::make_unique<index::InvertedIndex>(&ssd_, config.index)),
      typed_index_(std::make_unique<typed::TypedIndex>(&ssd_)),
      accel_(config.accel)
{
    if (config_.metrics != nullptr) {
        metrics_ = config_.metrics;
    } else {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }
    if (config_.tracer != nullptr) {
        tracer_ = config_.tracer;
    } else {
        owned_tracer_ = std::make_unique<obs::Tracer>();
        tracer_ = owned_tracer_.get();
    }
    ssd_.bindMetrics(metrics_);
    journal_.bindMetrics(metrics_);
    index_->bindMetrics(metrics_);
    typed_index_->bindMetrics(metrics_);
    accel_.bindMetrics(metrics_);

    counters_.lines_ingested = &metrics_->counter("core.lines_ingested");
    counters_.lines_truncated =
        &metrics_->counter("core.lines_truncated");
    counters_.pages_sealed = &metrics_->counter("core.pages_sealed");
    counters_.lzah_bytes_in = &metrics_->counter("lzah.bytes_in");
    counters_.lzah_bytes_out = &metrics_->counter("lzah.bytes_out");
    counters_.queries = &metrics_->counter("core.queries");
    counters_.query_fallbacks =
        &metrics_->counter("core.query_fallbacks");
    counters_.planner_full_scans =
        &metrics_->counter("core.planner_full_scans");
    counters_.candidate_pages =
        &metrics_->counter("index.candidate_pages");
    counters_.false_positive_pages =
        &metrics_->counter("index.false_positive_pages");
    counters_.degraded_index_scans =
        &metrics_->counter("core.degraded_index_scans");
    counters_.degraded_software_scans =
        &metrics_->counter("core.degraded_software_scans");
    counters_.typed_queries = &metrics_->counter("core.typed_queries");
    counters_.degraded_typed_scans =
        &metrics_->counter("core.degraded_typed_scans");
    counters_.crc_failed_pages =
        &metrics_->counter("core.crc_failed_pages");
    counters_.pages_dropped = &metrics_->counter("core.pages_dropped");
    counters_.ssd_read_retries = &metrics_->counter("ssd.read_retries");

    stages_.lzah_encode = obs::StageLatency(metrics_, "lzah.encode");
    stages_.journal_commit =
        obs::StageLatency(metrics_, "journal.commit");
    stages_.query_compile =
        obs::StageLatency(metrics_, "query.compile");
}

Status
MithriLog::ingestLine(std::string_view line)
{
    if (sealed_) {
        return Status::invalidArgument("store is sealed");
    }
    if (dead_) {
        return Status::unavailable(
            "device lost power; recover() the image on a fresh system");
    }
    if (line.size() > compress::LzahPageEncoder::kMaxLineBytes) {
        if (!config_.truncate_long_lines) {
            return Status::invalidArgument("line exceeds page limit");
        }
        line = line.substr(0, compress::LzahPageEncoder::kMaxLineBytes);
        ++truncated_lines_;
        counters_.lines_truncated->add();
    }
    obs::StageTimer encode_timer(&stages_.lzah_encode);
    compress::AddLineResult r = encoder_.addLine(line);
    encode_timer.end();
    MITHRIL_ASSERT(r != compress::AddLineResult::kRejected);
    if (r == compress::AddLineResult::kSealedAndAppended) {
        // The sealed page holds the lines before this one; this line
        // opened the next page and its tokens belong there. A commit
        // failure means this line was never acknowledged.
        MITHRIL_RETURN_IF_ERROR(sealPendingPage());
    }
    forEachToken(line, [&](std::string_view tok, uint32_t) {
        if (!pending_tokens_.count(tok)) {
            pending_tokens_.emplace(tok);
        }
        return true;
    });
    if (config_.use_typed_index) {
        // Typed extraction rides the same tokenizer pass; `lines_` has
        // not been bumped yet, so it is this line's 0-based number.
        typed_index_->addLine(line, lines_);
    }
    ++lines_;
    raw_bytes_ += line.size() + 1;
    counters_.lines_ingested->add();
    counters_.lzah_bytes_in->add(line.size() + 1);
    return Status::ok();
}

Status
MithriLog::ingestText(std::string_view text)
{
    Status status = Status::ok();
    forEachLine(text, [&](std::string_view line) {
        if (status.isOk()) {
            status = ingestLine(line);
        }
    });
    return status;
}

Status
MithriLog::sealPendingPage()
{
    MITHRIL_ASSERT(!encoder_.pages().empty());
    compress::Bytes page = std::move(encoder_.pages().back());
    encoder_.pages().pop_back();

    // Commit protocol (order is the crash-safety argument):
    //   1. journal layout exists (lazy format on the first commit);
    //   2. program the data page;
    //   3. journal the commit record, whose barrier is the ack point —
    //      a crash before it loses only unacknowledged lines, a crash
    //      after it loses nothing;
    //   4. index the page (unjournaled: the index is rebuilt from
    //      committed data pages at recovery).
    obs::StageTimer commit_timer(&stages_.journal_commit);
    uint64_t commit_start_ps = ssd_.elapsed().ps();
    Status st = Status::ok();
    if (!journal_.formatted()) {
        st = journal_.format();
    }
    PageId id = storage::kInvalidPage;
    if (st.isOk()) {
        id = ssd_.allocate();
        st = ssd_.writePage(id, page);
    }
    if (st.isOk()) {
        st = journal_.appendPageCommit(
            id, crc32(page.data(), page.size()), lines_, raw_bytes_);
    }
    SimTime commit_busy =
        SimTime::picoseconds(ssd_.elapsed().ps() - commit_start_ps);
    commit_timer.setSimDuration(commit_busy);
    commit_timer.end();
    if (!st.isOk()) {
        dead_ = true;
        return st;
    }
    uint64_t first_line = committed_lines_;
    committed_lines_ = lines_;
    committed_raw_ = raw_bytes_;
    data_pages_.push_back(id);

    std::vector<std::string_view> tokens;
    tokens.reserve(pending_tokens_.size());
    for (const std::string &tok : pending_tokens_) {
        tokens.push_back(tok);
    }
    index_->addPage(id, tokens, lines_);
    // Sealed-page directory entry (typed posting hits map back to data
    // pages through it): this page covers [first_line, lines_).
    // Unconditional — line numbering must work with the typed index off
    // (the degraded-scan baseline still reports line numbers).
    typed_index_->notePage(id, first_line, lines_ - first_line);
    pending_tokens_.clear();
    counters_.pages_sealed->add();
    counters_.lzah_bytes_out->add(storage::kPageSize);
    if (config_.checkpoint_every_pages > 0 &&
        data_pages_.size() % config_.checkpoint_every_pages == 0) {
        // The page above is already acknowledged (its barrier passed);
        // a failure below is a device death, never a lost ack.
        MITHRIL_RETURN_IF_ERROR(runCheckpoint());
    }
    return Status::ok();
}

Status
MithriLog::flush()
{
    if (dead_) {
        return Status::unavailable(
            "device lost power; recover() the image on a fresh system");
    }
    encoder_.flush();
    if (!encoder_.pages().empty()) {
        MITHRIL_RETURN_IF_ERROR(sealPendingPage());
    }
    index_->flush();
    typed_index_->flush();
    metrics_->gauge("lzah.ratio").set(compressionRatio());
    return Status::ok();
}

Status
MithriLog::seal()
{
    if (sealed_) {
        return Status::ok(); // idempotent
    }
    if (dead_) {
        return Status::unavailable(
            "device lost power; recover() the image on a fresh system");
    }
    obs::Span span = tracer_->span("ingest.seal", "core");
    MITHRIL_RETURN_IF_ERROR(flush());
    if (journal_.formatted()) {
        Status st = journal_.appendSeal(lines_, raw_bytes_);
        if (!st.isOk()) {
            dead_ = true;
            return st;
        }
    }
    // An empty store never formatted a journal; sealing it is purely
    // an in-memory transition (recovery of an empty device is a no-op).
    sealed_ = true;
    return Status::ok();
}

Status
MithriLog::checkpoint()
{
    if (recovered_) {
        // A recovered mount is read-only and its journal cursor is not
        // live; reopen() first, then checkpoint the writable store.
        return Status::failedPrecondition(
            "recovered store is read-only; reopen() before checkpoint");
    }
    if (dead_) {
        return Status::unavailable(
            "device lost power; recover() the image on a fresh system");
    }
    // Commit everything the caller has handed over first, so the
    // snapshot covers the full acknowledged prefix at the truncation.
    // A sealed store has nothing pending by construction; checkpoint
    // is still allowed — it is maintenance (bounding mount replay for
    // an archived image), not mutation, and the seal survives it.
    if (!sealed_) {
        MITHRIL_RETURN_IF_ERROR(flush());
    }
    return runCheckpoint();
}

Status
MithriLog::runCheckpoint()
{
    if (!journal_.formatted()) {
        // Nothing was ever committed: no chain to truncate, no segments
        // worth cleaning. Succeeding as a no-op keeps the policy
        // trigger and the CLI path trivially correct on empty stores.
        return Status::ok();
    }
    obs::Span span = tracer_->span("checkpoint", "core");
    obs::Span truncate_span =
        tracer_->span("checkpoint.truncate", "core");
    Status st = journal_.checkpoint(sealed_);
    truncate_span.end();
    if (!st.isOk()) {
        // A cut inside the protocol is crash-safe on the media (replay
        // lands on the old or the new superblock), but the in-memory
        // cursor no longer matches it.
        dead_ = true;
        return st;
    }
    obs::Span clean_span = tracer_->span("checkpoint.clean", "core");
    st = cleanSegments();
    clean_span.end();
    if (!st.isOk()) {
        dead_ = true;
        return st;
    }
    updateStorageGauges();
    span.end();
    return Status::ok();
}

Status
MithriLog::cleanSegments()
{
    storage::PageStore &store = ssd_.store();
    obs::Counter &migrations = metrics_->counter("storage.migrations");
    obs::Counter &retries =
        metrics_->counter("storage.migration_retries");
    // Highest cold segment first: destinations are strictly below the
    // victim, so a migrated page can never land back in it and every
    // pass monotonically drains the top of the slot array.
    for (uint64_t seg = store.segmentCount(); seg-- > 0;) {
        uint64_t live = store.segmentLive(seg);
        if (live == 0 || live * 2 > storage::kSegmentPages) {
            continue; // hot (or already drained): not worth the copies
        }
        uint64_t seg_base = seg * storage::kSegmentPages;
        for (PageId id = 0; live > 0 && id < store.pageCount(); ++id) {
            uint64_t src_slot = store.physicalSlot(id);
            if (src_slot == storage::kUnmappedSlot ||
                src_slot / storage::kSegmentPages != seg) {
                continue;
            }
            uint64_t dst_slot = 0;
            if (!store.allocatePhysicalBelow(seg_base, &dst_slot)) {
                // No free slot below the victim: this pass cannot shrink
                // the device further. Nothing is half-moved.
                return Status::ok();
            }
            std::span<const uint8_t> src;
            MITHRIL_RETURN_IF_ERROR(store.read(id, &src));
            // Stable copy of intent: the fault plan may tear the
            // program, and the verify must compare against what the
            // cleaner meant to write, not what landed.
            std::vector<uint8_t> copy(src.begin(), src.end());
            uint32_t crc = crc32(copy.data(), copy.size());
            ssd_.chargeOverlappedRead(1, Link::kInternal);
            // Copy -> journal the intent -> barrier -> verify -> remap.
            // The map points at the old slot until the verify passes,
            // so no window in this protocol loses acknowledged data.
            Status st = ssd_.writePhysical(dst_slot, copy);
            if (st.isOk()) {
                st = journal_.appendMigrate(id, crc, src_slot, dst_slot);
            }
            if (!st.isOk()) {
                return st; // power cut: the device is dead
            }
            bool verified = false;
            for (int attempt = 0; attempt < 2 && !verified; ++attempt) {
                if (attempt > 0) {
                    retries.add();
                    MITHRIL_RETURN_IF_ERROR(
                        ssd_.writePhysical(dst_slot, copy));
                }
                std::span<const uint8_t> back;
                MITHRIL_RETURN_IF_ERROR(
                    ssd_.readPhysical(dst_slot, &back));
                verified = crc32(back.data(), back.size()) == crc;
            }
            if (!verified) {
                // Ladder rung 2: abandon the pass. The page stays where
                // it was (live, covered by its journaled CRC); the next
                // checkpoint re-schedules the segment.
                store.freePhysical(dst_slot);
                return Status::ok();
            }
            migrations.add();
            MITHRIL_RETURN_IF_ERROR(store.remap(id, dst_slot));
            --live;
        }
    }
    return Status::ok();
}

void
MithriLog::updateStorageGauges()
{
    const storage::PageStore &store = ssd_.store();
    metrics_->gauge("storage.segments_live")
        .set(static_cast<double>(store.segmentsLive()));
    metrics_->gauge("storage.segments_freed")
        .set(static_cast<double>(store.segmentsFreed()));
}

double
MithriLog::compressionRatio() const
{
    uint64_t compressed = data_pages_.size() * storage::kPageSize;
    if (compressed == 0) {
        return 0.0;
    }
    return static_cast<double>(raw_bytes_) /
           static_cast<double>(compressed);
}

std::vector<PageId>
MithriLog::candidatePages(std::span<const query::Query> queries,
                          SimTime *index_time, bool *integrity_lost)
{
    // Different tokens' index chains are independent, so the device
    // overlaps them across channels: the modeled index time is the
    // slowest single chain plus the residual traffic at `overlap`-way
    // parallelism, not the serial sum the meter records.
    // The device overlaps ~256 outstanding commands; dozens of token
    // chains progress concurrently, so residual traffic divides by a
    // deep factor while the slowest single chain sets the floor.
    constexpr uint64_t kOverlap = 32;
    SimTime max_lookup;
    uint64_t sum_ps = 0;

    std::set<PageId> pages;
    bool need_all = false;
    for (const query::Query &q : queries) {
        for (const query::IntersectionSet &set : q.sets()) {
            std::vector<std::string> positives;
            for (const query::Term &t : set.terms) {
                // Typed predicates have no keyword token; the typed
                // tier (runTyped) prunes on them, never this path.
                if (!t.negated && !t.isTyped()) {
                    positives.push_back(t.token);
                }
            }
            if (positives.empty()) {
                // A pure-negative set can occur anywhere: the index
                // cannot prune on absence (Section 7.5's slow cases).
                need_all = true;
                continue;
            }
            // Intersect per-token page lists (read order first,
            // Section 6.3), timing each token's chain separately:
            // chains for different tokens run concurrently on the
            // device.
            std::vector<PageId> found;
            bool first = true;
            for (const std::string &token : positives) {
                ssd_.resetClock();
                std::vector<PageId> token_pages =
                    index_->lookup(token, integrity_lost);
                SimTime lookup = ssd_.elapsed();
                max_lookup = SimTime::max(max_lookup, lookup);
                sum_ps += lookup.ps();
                if (first) {
                    found = std::move(token_pages);
                    first = false;
                } else {
                    std::vector<PageId> merged;
                    std::set_intersection(found.begin(), found.end(),
                                          token_pages.begin(),
                                          token_pages.end(),
                                          std::back_inserter(merged));
                    found = std::move(merged);
                }
                if (found.empty()) {
                    break;
                }
            }
            if (!need_all) {
                for (PageId p : found) {
                    pages.insert(p);
                }
            }
        }
    }
    *index_time = SimTime::max(
        max_lookup, SimTime::picoseconds(sum_ps / kOverlap));
    if (need_all) {
        return data_pages_;
    }
    return {pages.begin(), pages.end()};
}

Status
MithriLog::stagePages(std::span<const PageId> pages, Link link,
                      std::vector<compress::ByteView> *views,
                      std::vector<compress::Bytes> *storage,
                      QueryResult *out, std::vector<PageId> *staged_ids)
{
    fault::FaultPlan *plan = ssd_.faultPlan();
    views->reserve(pages.size());
    if (plan == nullptr) {
        // Unfaulted hot path: zero-copy views straight out of the
        // store, one bulk overlapped charge. A CRC failure here is
        // persistent damage (no plan means a re-read returns the same
        // bytes), so the page is dropped, not retried.
        for (PageId id : pages) {
            std::span<const uint8_t> view;
            if (!ssd_.store().read(id, &view).isOk() ||
                !compress::lzahVerifyPage(view).isOk()) {
                counters_.crc_failed_pages->add();
                counters_.pages_dropped->add();
                ++out->pages_dropped;
                continue;
            }
            views->push_back(view);
            if (staged_ids != nullptr) {
                staged_ids->push_back(id);
            }
        }
        ssd_.chargeOverlappedRead(pages.size(), link);
        return Status::ok();
    }
    // Fault plan attached: page-at-a-time reads so every page passes
    // the injection + retry machinery. A page that reads "cleanly" but
    // fails its LZAH CRC (silent corruption past the device's ECC)
    // spends the same retry budget on re-reads before being dropped.
    unsigned budget = plan->config().max_retries;
    storage->reserve(pages.size());
    for (PageId id : pages) {
        compress::Bytes buf;
        if (!ssd_.readOverlapped(id, link, &buf).isOk()) {
            counters_.pages_dropped->add();
            ++out->pages_dropped;
            continue;
        }
        bool ok = compress::lzahVerifyPage(buf).isOk();
        if (!ok) {
            counters_.crc_failed_pages->add();
        }
        for (unsigned r = 0; !ok && r < budget; ++r) {
            compress::Bytes fresh;
            if (!ssd_.rereadPage(id, link, &fresh).isOk()) {
                break;
            }
            buf = std::move(fresh);
            ok = compress::lzahVerifyPage(buf).isOk();
        }
        if (!ok) {
            counters_.pages_dropped->add();
            ++out->pages_dropped;
            continue;
        }
        storage->push_back(std::move(buf));
        if (staged_ids != nullptr) {
            staged_ids->push_back(id);
        }
    }
    for (const compress::Bytes &b : *storage) {
        views->push_back(compress::ByteView(b.data(), b.size()));
    }
    return Status::ok();
}

Status
MithriLog::execute(std::span<const PageId> pages,
                   std::span<const query::Query> queries, QueryResult *out)
{
    obs::Span compile_span = tracer_->span("query.compile", "core");
    obs::StageTimer compile_timer(&stages_.query_compile);
    Status compiled = accel_.configure(queries);
    compile_timer.end();
    compile_span.end();
    if (compiled.code() == StatusCode::kCapacityExceeded ||
        compiled.code() == StatusCode::kUnsupported) {
        counters_.query_fallbacks->add();
        return softwareScan(queries, out);
    }
    MITHRIL_RETURN_IF_ERROR(compiled);

    // Streaming and filtering overlap on the device; the spans carry
    // each stage's own modeled cost and the parent query span carries
    // the overlapped total.
    obs::Span stream_span = tracer_->span("query.page_stream", "core");
    uint64_t stage_start_ps = ssd_.elapsed().ps();
    std::vector<compress::ByteView> views;
    std::vector<compress::Bytes> staged;
    MITHRIL_RETURN_IF_ERROR(
        stagePages(pages, Link::kInternal, &views, &staged, out));
    // The stream pipelines behind index traversal and filtering, so the
    // reads are metered (ssd.pages_read, link busy) as overlapped. The
    // batch-read model bounds the stage from below; retry/backoff
    // charges under a fault plan can push it higher.
    SimTime stage_busy =
        SimTime::picoseconds(ssd_.elapsed().ps() - stage_start_ps);
    out->storage_time = SimTime::max(
        ssd_.timeBatchRead(pages.size(), Link::kInternal), stage_busy);
    stream_span.setSimDuration(out->storage_time);
    stream_span.end();

    obs::Span filter_span = tracer_->span("query.filter", "core");
    accel::AccelResult ar;
    Status processed = accel_.process(views, accel::Mode::kFilter, &ar);
    filter_span.setSimDuration(ar.computeTime(config_.accel.clock_hz));
    filter_span.end();
    if (processed.code() == StatusCode::kCorruptData ||
        processed.code() == StatusCode::kDataLoss) {
        // The filter pipeline choked on damage the page CRCs did not
        // cover: degrade to the host scan over the staged pages rather
        // than failing the query. The pages re-cross PCIe to the host.
        out->degraded_software_scan = true;
        counters_.degraded_software_scans->add();
        obs::Span degrade =
            tracer_->span("query.degraded_software_scan", "core");
        ssd_.chargeOverlappedRead(views.size(), Link::kExternal);
        Status scanned = hostScanViews(views, queries, out);
        out->storage_time =
            out->storage_time +
            ssd_.timeBatchRead(views.size(), Link::kExternal);
        out->total_time = out->index_time + out->storage_time +
                          ssd_.config().read_latency;
        degrade.setSimDuration(out->storage_time);
        return scanned;
    }
    MITHRIL_RETURN_IF_ERROR(processed);

    out->breakdown.pages_with_matches = ar.pages_with_matches;
    out->matched_lines = ar.lines_kept;
    out->lines = std::move(ar.kept);
    out->matched_per_query.assign(ar.kept_per_query.begin(),
                                  ar.kept_per_query.begin() +
                                      std::min<size_t>(
                                          queries.size(),
                                          ar.kept_per_query.size()));
    out->pages_scanned = pages.size();
    out->pages_total = data_pages_.size();
    out->bytes_scanned = ar.decompressed_bytes;
    out->useful_ratio = ar.usefulRatio();

    // Index traversal, data-page streaming, and the filter pipelines
    // all overlap: the index emits page addresses as it discovers them
    // and the accelerator consumes pages as they arrive (Section 6's
    // "fast enough to saturate the accelerator"). The slowest stage
    // paces the query; one read latency covers the un-overlapped first
    // hop.
    out->compute_time = ar.computeTime(config_.accel.clock_hz);
    out->total_time =
        SimTime::max(out->index_time,
                     SimTime::max(out->storage_time, out->compute_time)) +
        ssd_.config().read_latency;
    return Status::ok();
}

Status
MithriLog::hostScanViews(std::span<const compress::ByteView> views,
                         std::span<const query::Query> queries,
                         QueryResult *out)
{
    out->matched_lines = 0;
    out->matched_per_query.assign(queries.size(), 0);

    std::vector<query::SoftwareMatcher> matchers;
    matchers.reserve(queries.size());
    for (const query::Query &q : queries) {
        matchers.emplace_back(q);
    }

    compress::Bytes text;
    for (compress::ByteView v : views) {
        // Decode per page into a scratch buffer so a mid-page decode
        // failure (structural damage past the CRC) drops that page
        // cleanly instead of leaking partial garbage into the text.
        compress::Bytes page_text;
        if (compress::lzahDecodePage(v, /*padded=*/false, &page_text)
                .isOk()) {
            text.insert(text.end(), page_text.begin(), page_text.end());
        } else {
            counters_.pages_dropped->add();
            ++out->pages_dropped;
        }
    }
    std::string_view view = asChars(text);
    forEachLine(view, [&](std::string_view line) {
        bool any = false;
        for (size_t q = 0; q < matchers.size(); ++q) {
            if (matchers[q].matches(line)) {
                ++out->matched_per_query[q];
                any = true;
            }
        }
        if (any) {
            ++out->matched_lines;
        }
    });
    out->pages_scanned = views.size();
    out->pages_total = data_pages_.size();
    out->bytes_scanned = text.size();
    return Status::ok();
}

Status
MithriLog::softwareScan(std::span<const query::Query> queries,
                        QueryResult *out)
{
    obs::Span span = tracer_->span("query.fallback", "core");
    out->used_fallback = true;

    // Every page crosses PCIe to the host; stagePages meters the reads
    // (and, under a fault plan, runs injection/retry per page).
    uint64_t stage_start_ps = ssd_.elapsed().ps();
    std::vector<compress::ByteView> views;
    std::vector<compress::Bytes> staged;
    MITHRIL_RETURN_IF_ERROR(stagePages(data_pages_, Link::kExternal,
                                       &views, &staged, out));
    SimTime stage_busy =
        SimTime::picoseconds(ssd_.elapsed().ps() - stage_start_ps);
    MITHRIL_RETURN_IF_ERROR(hostScanViews(views, queries, out));

    out->pages_scanned = data_pages_.size();
    // Fallback ships every page to the host over PCIe and burns CPU;
    // the storage component alone is modeled here (the CPU side is a
    // measured quantity, reported by the benches that exercise it).
    out->storage_time = SimTime::max(
        ssd_.timeBatchRead(data_pages_.size(), Link::kExternal),
        stage_busy);
    out->total_time = out->index_time + out->storage_time;
    span.setSimDuration(out->storage_time);
    return Status::ok();
}

Status
MithriLog::typedScanPages(std::span<const PageId> pages,
                          std::span<const query::Query> queries,
                          QueryResult *out)
{
    // Candidate pages cross PCIe to the host matcher: the filter
    // pipelines hash whole tokens and cannot compare CIDR blocks or
    // time windows, so the typed tier's offload is the pruning and the
    // match set is evaluated exactly here (DESIGN.md §15).
    uint64_t stage_start_ps = ssd_.elapsed().ps();
    std::vector<compress::ByteView> views;
    std::vector<compress::Bytes> staged;
    std::vector<PageId> staged_ids;
    MITHRIL_RETURN_IF_ERROR(stagePages(pages, Link::kExternal, &views,
                                       &staged, out, &staged_ids));
    SimTime stage_busy =
        SimTime::picoseconds(ssd_.elapsed().ps() - stage_start_ps);
    out->storage_time =
        out->storage_time +
        SimTime::max(ssd_.timeBatchRead(pages.size(), Link::kExternal),
                     stage_busy);

    // First line of each staged page via the sealed-page directory, so
    // every match carries its global ingest line number (the identity
    // the oracle tests and the fan-out merge compare on).
    std::map<PageId, uint64_t> first_line;
    for (const typed::TypedIndex::PageSpan &s :
         typed_index_->pageDirectory()) {
        first_line[s.page] = s.first_line;
    }

    std::vector<query::SoftwareMatcher> matchers;
    matchers.reserve(queries.size());
    for (const query::Query &q : queries) {
        matchers.emplace_back(q);
    }
    out->matched_per_query.assign(queries.size(), 0);

    std::vector<std::pair<uint64_t, accel::KeptLine>> hits;
    for (size_t v = 0; v < views.size(); ++v) {
        compress::Bytes text;
        if (!compress::lzahDecodePage(views[v], /*padded=*/false, &text)
                 .isOk()) {
            counters_.pages_dropped->add();
            ++out->pages_dropped;
            continue;
        }
        out->bytes_scanned += text.size();
        auto it = first_line.find(staged_ids[v]);
        MITHRIL_ASSERT(it != first_line.end());
        uint64_t line_no = it->second;
        uint32_t in_page = 0;
        forEachLine(asChars(text), [&](std::string_view line) {
            uint64_t mask = 0;
            for (size_t q = 0; q < matchers.size(); ++q) {
                if (matchers[q].matches(line)) {
                    ++out->matched_per_query[q];
                    if (q < 64) {
                        mask |= 1ull << q;
                    }
                }
            }
            if (mask != 0) {
                ++out->matched_lines;
                hits.emplace_back(
                    line_no,
                    accel::KeptLine{config_.accel.keep_lines
                                        ? std::string(line)
                                        : std::string(),
                                    mask, static_cast<uint32_t>(v),
                                    in_page});
            }
            ++line_no;
            ++in_page;
        });
    }
    // Candidate sets arrive in page-id order, which segment cleaning
    // can decouple from ingest order: sort by global line number so
    // the pruned and full-scan paths report byte-identical results.
    std::sort(hits.begin(), hits.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    out->line_numbers.reserve(hits.size());
    out->lines.reserve(hits.size());
    for (auto &[line_no, kept] : hits) {
        out->line_numbers.push_back(line_no);
        out->lines.push_back(std::move(kept));
    }
    out->pages_scanned += views.size();
    out->pages_total = data_pages_.size();
    return Status::ok();
}

Status
MithriLog::runTyped(std::span<const query::Query> queries,
                    QueryResult *out)
{
    WallTimer wall;
    obs::Span qspan = tracer_->span("query", "core");
    counters_.queries->add(queries.size());
    counters_.typed_queries->add(queries.size());
    uint64_t retries_before = counters_.ssd_read_retries->value();
    QueryBreakdown &b = out->breakdown;
    for (const query::Query &q : queries) {
        b.typed_predicates += q.typedPredicateCount();
    }

    // Phase 1 — in-storage pruning: each set's typed posting lists are
    // intersected to a line set, mapped to data pages, and further
    // intersected with the keyword index's nomination where the set
    // also carries positive keywords. Chains for different predicates
    // overlap across channels exactly like token chains.
    constexpr uint64_t kOverlap = 32;
    SimTime max_lookup;
    uint64_t sum_ps = 0;
    bool lost = false;
    bool need_all = false;
    std::set<PageId> candidates;
    if (config_.use_typed_index) {
        obs::Span lookup_span =
            tracer_->span("query.typed_lookup", "core");
        for (const query::Query &q : queries) {
            for (const query::IntersectionSet &set : q.sets()) {
                std::vector<uint64_t> lines;
                bool have_lines = false;
                std::vector<std::string> positives;
                for (const query::Term &t : set.terms) {
                    if (t.isTyped()) {
                        ssd_.resetClock();
                        typed::LookupResult lr =
                            typed_index_->lookup(t.typed);
                        SimTime el = ssd_.elapsed();
                        max_lookup = SimTime::max(max_lookup, el);
                        sum_ps += el.ps();
                        b.typed_index_pages += lr.pages_read;
                        b.typed_index_bytes += lr.bytes_read;
                        lost = lost || lr.integrity_lost;
                        if (!have_lines) {
                            lines = std::move(lr.lines);
                            have_lines = true;
                        } else {
                            std::vector<uint64_t> merged;
                            std::set_intersection(
                                lines.begin(), lines.end(),
                                lr.lines.begin(), lr.lines.end(),
                                std::back_inserter(merged));
                            lines = std::move(merged);
                        }
                    } else if (!t.negated) {
                        positives.push_back(t.token);
                    }
                }
                std::vector<PageId> set_pages;
                bool have_pages = false;
                if (have_lines) {
                    set_pages = typed_index_->pagesForLines(lines);
                    have_pages = true;
                }
                if (config_.use_index && !positives.empty()) {
                    for (const std::string &tok : positives) {
                        ssd_.resetClock();
                        bool kw_lost = false;
                        std::vector<PageId> tok_pages =
                            index_->lookup(tok, &kw_lost);
                        SimTime el = ssd_.elapsed();
                        max_lookup = SimTime::max(max_lookup, el);
                        sum_ps += el.ps();
                        lost = lost || kw_lost;
                        if (!have_pages) {
                            set_pages = std::move(tok_pages);
                            have_pages = true;
                        } else {
                            std::vector<PageId> merged;
                            std::set_intersection(
                                set_pages.begin(), set_pages.end(),
                                tok_pages.begin(), tok_pages.end(),
                                std::back_inserter(merged));
                            set_pages = std::move(merged);
                        }
                        if (set_pages.empty()) {
                            break;
                        }
                    }
                }
                if (!have_pages) {
                    // Pure-negative set, or keyword-only set with the
                    // keyword index bypassed: no pruning possible.
                    need_all = true;
                } else {
                    candidates.insert(set_pages.begin(),
                                      set_pages.end());
                }
            }
        }
        out->index_time = SimTime::max(
            max_lookup, SimTime::picoseconds(sum_ps / kOverlap));
        lookup_span.setSimDuration(out->index_time);
        lookup_span.end();
        ssd_.resetClock();
    }

    Status st;
    if (!config_.use_typed_index || lost || need_all) {
        if (lost) {
            // The typed candidate set cannot be trusted to be
            // complete; scan everything rather than silently miss
            // matches. (The pruning traffic already spent stays in the
            // breakdown — honest accounting.)
            out->degraded_typed_scan = true;
            counters_.degraded_typed_scans->add();
            obs::Span degrade =
                tracer_->span("query.degraded_typed_scan", "core");
        }
        st = typedScanPages(data_pages_, queries, out);
    } else {
        std::vector<PageId> pages(candidates.begin(), candidates.end());
        b.candidate_pages = pages.size();
        counters_.candidate_pages->add(pages.size());
        st = typedScanPages(pages, queries, out);
    }
    out->total_time = out->index_time + out->storage_time +
                      ssd_.config().read_latency;
    finishQuery(out, &qspan, wall.seconds(), /*index_pruned=*/false,
                retries_before);
    return st;
}

Status
MithriLog::runBatch(std::span<const query::Query> queries, QueryResult *out)
{
    *out = QueryResult{};
    if (queries.empty()) {
        return Status::invalidArgument("empty query batch");
    }
    for (const query::Query &q : queries) {
        if (q.hasTypedPredicates()) {
            return runTyped(queries, out);
        }
    }
    WallTimer wall;
    obs::Span qspan = tracer_->span("query", "core");
    counters_.queries->add(queries.size());
    uint64_t retries_before = counters_.ssd_read_retries->value();

    bool index_pruned = false;
    std::vector<PageId> pages;
    if (config_.use_index && !plannerPrefersScan(queries)) {
        obs::Span lookup = tracer_->span("query.index_lookup", "core");
        bool integrity_lost = false;
        pages =
            candidatePages(queries, &out->index_time, &integrity_lost);
        lookup.setSimDuration(out->index_time);
        lookup.end();
        if (integrity_lost) {
            // The candidate set cannot be trusted to be complete:
            // degrade to a full accelerator scan rather than risk
            // silently missing matches.
            out->degraded_index_scan = true;
            counters_.degraded_index_scans->add();
            obs::Span degrade =
                tracer_->span("query.degraded_index_scan", "core");
            pages = data_pages_;
        } else {
            // Pure-negative sets degrade to all pages; that is a scan,
            // not an index nomination.
            index_pruned = pages.size() < data_pages_.size() ||
                           data_pages_.empty();
        }
        counters_.candidate_pages->add(pages.size());
        ssd_.resetClock();
    } else {
        pages = data_pages_;
        out->planned_full_scan = config_.use_index;
        if (out->planned_full_scan) {
            obs::Span plan = tracer_->span("query.plan_full_scan",
                                           "core");
            counters_.planner_full_scans->add();
        }
    }
    Status st = execute(pages, queries, out);
    out->breakdown.candidate_pages = index_pruned ? pages.size() : 0;
    finishQuery(out, &qspan, wall.seconds(), index_pruned,
                retries_before);
    return st;
}

void
MithriLog::finishQuery(QueryResult *out, obs::Span *span,
                       double wall_seconds, bool index_pruned,
                       uint64_t retries_before)
{
    QueryBreakdown &b = out->breakdown;
    b.index_time = out->index_time;
    b.storage_time = out->storage_time;
    b.compute_time = out->compute_time;
    b.total_time = out->total_time;
    b.pages_scanned = out->pages_scanned;
    b.pages_total = out->pages_total;
    b.matched_lines = out->matched_lines;
    b.used_fallback = out->used_fallback;
    b.planned_full_scan = out->planned_full_scan;
    b.degraded_index_scan = out->degraded_index_scan;
    b.degraded_software_scan = out->degraded_software_scan;
    b.degraded_typed_scan = out->degraded_typed_scan;
    b.pages_dropped = out->pages_dropped;
    b.read_retries =
        counters_.ssd_read_retries->value() - retries_before;
    b.wall_seconds = wall_seconds;
    if (index_pruned && !out->used_fallback &&
        b.pages_scanned >= b.pages_with_matches) {
        b.false_positive_pages = b.pages_scanned - b.pages_with_matches;
        counters_.false_positive_pages->add(b.false_positive_pages);
    }
    span->setSimDuration(out->total_time);
    span->end();
}

bool
MithriLog::plannerPrefersScan(std::span<const query::Query> queries) const
{
    if (config_.planner_scan_threshold >= 1.0 || data_pages_.empty()) {
        return false;
    }
    // A batch needs the union of its sets' candidates; each set's
    // candidate count is bounded by its most selective positive token.
    // All estimates come from the O(1) in-memory entry counters.
    uint64_t union_bound = 0;
    for (const query::Query &q : queries) {
        for (const query::IntersectionSet &set : q.sets()) {
            uint64_t set_bound = ~0ull;
            bool has_positive = false;
            for (const query::Term &t : set.terms) {
                if (t.negated) {
                    continue;
                }
                has_positive = true;
                set_bound = std::min(set_bound,
                                     index_->estimatePages(t.token));
            }
            if (!has_positive) {
                return true;  // pure-negative set: full scan anyway
            }
            union_bound += set_bound;
            if (union_bound >= data_pages_.size()) {
                break;
            }
        }
    }
    double fraction = static_cast<double>(
                          std::min<uint64_t>(union_bound,
                                             data_pages_.size())) /
                      static_cast<double>(data_pages_.size());
    return fraction >= config_.planner_scan_threshold;
}

Status
MithriLog::run(const query::Query &q, QueryResult *out)
{
    return runBatch(std::span(&q, 1), out);
}

Status
MithriLog::run(std::string_view query_text, QueryResult *out)
{
    query::Query q;
    MITHRIL_RETURN_IF_ERROR(query::parseQuery(query_text, &q));
    return run(q, out);
}

namespace {
constexpr uint32_t kImageMagic = 0x474f4c4d;  // "MLOG"
/** v6: a length-prefixed typed-index blob (key directory + sealed-page
 *  directory, DESIGN.md §15) follows the inverted-index blob; typed
 *  posting pages travel in the page dump like index pages. v5:
 *  storage-lifecycle images — the journal cursor is length-prefixed
 *  (it went variable: committed page table + chain/snapshot page lists)
 *  and a freed-logical-id list restores the FTL free list, with freed
 *  ids dumped as zero pages to keep the logical-order dump dense. v4
 *  widened the cursor to 8 words; v3 added the durable-commit state and
 *  the cursor; v2 images predate the journal layout. Older versions are
 *  rejected. */
constexpr uint32_t kImageVersion = 6;

/** Raw device dump header (saveDeviceImage / recover). */
constexpr uint32_t kDeviceMagic = 0x5645444d;  // "MDEV"
constexpr uint32_t kDeviceVersion = 1;
} // namespace

Status
MithriLog::saveImage(const std::string &path)
{
    MITHRIL_RETURN_IF_ERROR(flush());

    std::vector<uint8_t> blob;
    putLe<uint32_t>(blob, kImageMagic);
    putLe<uint32_t>(blob, kImageVersion);
    putLe<uint64_t>(blob, lines_);
    putLe<uint64_t>(blob, raw_bytes_);
    putLe<uint64_t>(blob, truncated_lines_);
    putLe<uint64_t>(blob, committed_lines_);
    putLe<uint64_t>(blob, committed_raw_);
    putLe<uint64_t>(blob, sealed_ ? 1 : 0);
    putLe<uint64_t>(blob, data_pages_.size());
    for (PageId p : data_pages_) {
        putLe<uint64_t>(blob, p);
    }

    // Logical ids the lifecycle layer freed (old journal chains and
    // snapshots): restored as burned ids whose slots rejoin the free
    // list, so post-load allocation order matches the live store's.
    std::vector<PageId> freed;
    for (PageId p = 0; p < ssd_.store().pageCount(); ++p) {
        if (!ssd_.store().contains(p)) {
            freed.push_back(p);
        }
    }
    putLe<uint64_t>(blob, freed.size());
    for (PageId p : freed) {
        putLe<uint64_t>(blob, p);
    }

    std::vector<uint8_t> index_blob;
    index_->serialize(&index_blob);
    putLe<uint64_t>(blob, index_blob.size());
    blob.insert(blob.end(), index_blob.begin(), index_blob.end());

    std::vector<uint8_t> typed_blob;
    typed_index_->serialize(&typed_blob);
    putLe<uint64_t>(blob, typed_blob.size());
    blob.insert(blob.end(), typed_blob.begin(), typed_blob.end());

    std::vector<uint8_t> journal_blob;
    journal_.serialize(&journal_blob);
    putLe<uint64_t>(blob, journal_blob.size());
    blob.insert(blob.end(), journal_blob.begin(), journal_blob.end());

    uint64_t pages = ssd_.store().pageCount();
    putLe<uint64_t>(blob, pages);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    bool ok = std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
    static const uint8_t kZeroPage[storage::kPageSize] = {};
    for (PageId p = 0; ok && p < pages; ++p) {
        if (!ssd_.store().contains(p)) {
            // Freed id: its slot is gone, but the logical-order dump
            // must stay dense for the positional load below.
            ok = std::fwrite(kZeroPage, 1, sizeof kZeroPage, f) ==
                 sizeof kZeroPage;
            continue;
        }
        std::span<const uint8_t> view;
        ok = ssd_.store().read(p, &view).isOk() &&
             std::fwrite(view.data(), 1, view.size(), f) == view.size();
    }
    if (std::fclose(f) != 0 || !ok) {
        return Status::internal("short write to " + path);
    }
    return Status::ok();
}

Status
MithriLog::loadImage(const std::string &path)
{
    if (lines_ != 0 || ssd_.store().pageCount() != 0) {
        return Status::invalidArgument(
            "loadImage requires a fresh system");
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    std::vector<uint8_t> blob;
    uint8_t chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
        blob.insert(blob.end(), chunk, chunk + n);
    }
    std::fclose(f);

    size_t pos = 0;
    auto need = [&](size_t k) { return pos + k <= blob.size(); };
    auto get64 = [&]() { uint64_t v = getLe<uint64_t>(blob.data() + pos);
                         pos += 8; return v; };
    if (!need(8) || getLe<uint32_t>(blob.data()) != kImageMagic ||
        getLe<uint32_t>(blob.data() + 4) != kImageVersion) {
        return Status::corruptData("bad image header");
    }
    pos = 8;
    if (!need(7 * 8)) {
        return Status::corruptData("image truncated");
    }
    lines_ = get64();
    raw_bytes_ = get64();
    truncated_lines_ = get64();
    committed_lines_ = get64();
    committed_raw_ = get64();
    sealed_ = get64() != 0;
    uint64_t n_data_pages = get64();
    if (!need(n_data_pages * 8 + 8)) {
        return Status::corruptData("image data-page list truncated");
    }
    data_pages_.clear();
    for (uint64_t i = 0; i < n_data_pages; ++i) {
        data_pages_.push_back(get64());
    }
    uint64_t n_freed = get64();
    if (!need(n_freed * 8 + 8)) {
        return Status::corruptData("image free list truncated");
    }
    std::vector<PageId> freed;
    freed.reserve(n_freed);
    for (uint64_t i = 0; i < n_freed; ++i) {
        freed.push_back(get64());
    }
    uint64_t index_size = get64();
    if (!need(index_size + 8)) {
        return Status::corruptData("image index blob truncated");
    }
    std::span<const uint8_t> index_blob(blob.data() + pos, index_size);
    pos += index_size;
    uint64_t typed_size = get64();
    if (!need(typed_size + 8)) {
        return Status::corruptData("image typed blob truncated");
    }
    std::span<const uint8_t> typed_blob(blob.data() + pos, typed_size);
    pos += typed_size;
    // The journal cursor references the current journal page image, so
    // it deserializes only after the pages below are in the store. It
    // is variable-length (committed table + page lists): the prefix
    // says how much to skip now and consume later.
    uint64_t cursor_bytes = get64();
    if (!need(cursor_bytes + 8)) {
        return Status::corruptData("image journal cursor truncated");
    }
    size_t cursor_pos = pos;
    pos += cursor_bytes;
    uint64_t pages = get64();
    if (!need(pages * storage::kPageSize)) {
        return Status::corruptData("image pages truncated");
    }
    for (uint64_t p = 0; p < pages; ++p) {
        PageId id = ssd_.allocate();
        MITHRIL_RETURN_IF_ERROR(ssd_.store().write(
            id, std::span<const uint8_t>(
                    blob.data() + pos + p * storage::kPageSize,
                    storage::kPageSize)));
    }
    // Re-burn the freed ids so the FTL state (free list, occupancy)
    // matches the saving store's.
    for (PageId p : freed) {
        MITHRIL_RETURN_IF_ERROR(ssd_.store().free(p));
    }
    size_t consumed = 0;
    MITHRIL_RETURN_IF_ERROR(journal_.deserialize(
        blob.data() + cursor_pos, cursor_bytes, &consumed));
    if (consumed != cursor_bytes) {
        return Status::corruptData("image journal cursor size mismatch");
    }
    MITHRIL_RETURN_IF_ERROR(index_->deserialize(index_blob));
    MITHRIL_RETURN_IF_ERROR(typed_index_->deserialize(typed_blob));
    updateStorageGauges();
    ssd_.resetClock();
    return Status::ok();
}

Status
MithriLog::saveDeviceImage(const std::string &path) const
{
    std::vector<uint8_t> header;
    putLe<uint32_t>(header, kDeviceMagic);
    putLe<uint32_t>(header, kDeviceVersion);
    uint64_t pages = ssd_.store().pageCount();
    putLe<uint64_t>(header, pages);

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    bool ok =
        std::fwrite(header.data(), 1, header.size(), f) == header.size();
    static const uint8_t kZeroPage[storage::kPageSize] = {};
    for (PageId p = 0; ok && p < pages; ++p) {
        if (!ssd_.store().contains(p)) {
            // Freed id: dumped as a zero page. The raw dump is taken in
            // logical order — the translation map is device metadata,
            // like a real FTL's table — so physical migration and
            // reclamation are invisible to crash recovery; replay never
            // references a freed id, and recover() sweeps the garbage.
            ok = std::fwrite(kZeroPage, 1, sizeof kZeroPage, f) ==
                 sizeof kZeroPage;
            continue;
        }
        std::span<const uint8_t> view;
        ok = ssd_.store().read(p, &view).isOk() &&
             std::fwrite(view.data(), 1, view.size(), f) == view.size();
    }
    if (std::fclose(f) != 0 || !ok) {
        return Status::internal("short write to " + path);
    }
    return Status::ok();
}

Status
MithriLog::recover(const std::string &path)
{
    if (lines_ != 0 || ssd_.store().pageCount() != 0) {
        return Status::invalidArgument("recover requires a fresh system");
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    std::vector<uint8_t> blob;
    uint8_t chunk[65536];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
        blob.insert(blob.end(), chunk, chunk + n);
    }
    std::fclose(f);
    if (blob.size() < 16 ||
        getLe<uint32_t>(blob.data()) != kDeviceMagic ||
        getLe<uint32_t>(blob.data() + 4) != kDeviceVersion) {
        return Status::corruptData("bad device image header");
    }
    uint64_t pages = getLe<uint64_t>(blob.data() + 8);
    if (blob.size() < 16 + pages * storage::kPageSize) {
        return Status::corruptData("device image pages truncated");
    }
    // Host-side restore of the NAND contents: not metered device
    // traffic (the bytes never crossed the modeled links).
    for (uint64_t p = 0; p < pages; ++p) {
        PageId id = ssd_.allocate();
        MITHRIL_RETURN_IF_ERROR(ssd_.store().write(
            id, std::span<const uint8_t>(
                    blob.data() + 16 + p * storage::kPageSize,
                    storage::kPageSize)));
    }
    ssd_.resetClock();

    obs::Span span = tracer_->span("recover", "core");

    // Step 1: replay the journal (metered chained reads).
    obs::Span replay_span = tracer_->span("recover.journal_replay",
                                          "core");
    storage::Journal::ReplayResult rr;
    Status replayed = journal_.replay(&rr);
    replay_span.end();
    MITHRIL_RETURN_IF_ERROR(replayed);

    // Step 2: verify every committed data page against its journaled
    // CRC and decode it. Verification failures (a lying device tore or
    // dropped an acked program) cut the recovered dataset to the
    // longest clean prefix — cumulative line counts only make sense
    // for a prefix, and a mid-stream hole could turn into phantom or
    // missing matches silently.
    obs::Span verify_span = tracer_->span("recover.verify_pages",
                                          "core");
    struct Survivor {
        storage::Journal::CommittedPage cp;
        compress::Bytes text;
    };
    std::vector<Survivor> survivors;
    survivors.reserve(rr.pages.size());
    for (const storage::Journal::CommittedPage &cp : rr.pages) {
        compress::Bytes buf;
        if (!ssd_.readOverlapped(cp.page, Link::kInternal, &buf)
                 .isOk() ||
            crc32(buf.data(), buf.size()) != cp.crc ||
            !compress::lzahVerifyPage(buf).isOk()) {
            break;
        }
        compress::Bytes text;
        if (!compress::lzahDecodePage(buf, /*padded=*/false, &text)
                 .isOk()) {
            break;
        }
        survivors.push_back(Survivor{cp, std::move(text)});
    }
    uint64_t discarded = rr.pages.size() - survivors.size();
    verify_span.end();

    // Step 2b: mark-sweep space reclamation. The journal footprint the
    // replay walked (chain + snapshot pages), the superblock slots, and
    // the surviving data pages are the only pages the recovered store
    // can ever reference. Everything else — the crashed store's index
    // pages, pages freed before the crash, data pages past the
    // verification cut — is garbage the mount reclaims, so the index
    // rebuild below reuses the slots deterministically.
    obs::Span sweep_span = tracer_->span("recover.sweep", "core");
    std::vector<bool> live(ssd_.store().pageCount(), false);
    for (PageId p = 0; p < 2 && p < live.size(); ++p) {
        live[p] = true; // superblock slots
    }
    for (PageId p : rr.chain_pages) {
        live[p] = true;
    }
    for (PageId p : rr.snapshot_pages) {
        live[p] = true;
    }
    for (const Survivor &s : survivors) {
        live[s.cp.page] = true;
    }
    uint64_t swept = 0;
    for (PageId p = 0; p < live.size(); ++p) {
        if (!live[p]) {
            MITHRIL_RETURN_IF_ERROR(ssd_.store().free(p));
            ++swept;
        }
    }
    sweep_span.end();

    // Step 3: rebuild the index from the surviving pages (the index is
    // unjournaled by design; committed data pages are the source of
    // truth).
    obs::Span index_span = tracer_->span("recover.index_rebuild",
                                         "core");
    uint64_t rebuilt_lines = 0;
    for (const Survivor &s : survivors) {
        std::set<std::string, std::less<>> tokens;
        uint64_t line_no = rebuilt_lines;
        forEachLine(asChars(s.text), [&](std::string_view line) {
            forEachToken(line, [&](std::string_view tok, uint32_t) {
                if (!tokens.count(tok)) {
                    tokens.emplace(tok);
                }
                return true;
            });
            // The typed index is unjournaled like the keyword index:
            // re-extract from the verified survivors, same pass.
            if (config_.use_typed_index) {
                typed_index_->addLine(line, line_no);
            }
            ++line_no;
        });
        std::vector<std::string_view> token_views;
        token_views.reserve(tokens.size());
        for (const std::string &tok : tokens) {
            token_views.push_back(tok);
        }
        // Timestamps are ingest line sequence numbers; the cumulative
        // count at commit time reproduces the original stamps.
        index_->addPage(s.cp.page, token_views, s.cp.lines);
        typed_index_->notePage(s.cp.page, rebuilt_lines,
                               s.cp.lines - rebuilt_lines);
        rebuilt_lines = s.cp.lines;
        data_pages_.push_back(s.cp.page);
    }
    index_->flush();
    typed_index_->flush();
    index_span.end();

    if (!survivors.empty()) {
        lines_ = survivors.back().cp.lines;
        raw_bytes_ = survivors.back().cp.raw_bytes;
    }
    committed_lines_ = lines_;
    committed_raw_ = raw_bytes_;
    // A recovered store is read-only until reopen(): the journal cursor
    // died with the device, and only a fresh generation (Journal::
    // reopen) can accept new records. Stash what reopen() needs — the
    // replay summary and the verification cut (the base-link budget).
    sealed_ = true;
    recovered_ = true;
    journal_sealed_ = rr.sealed;
    reopen_accepted_ =
        survivors.empty() ? 0 : survivors.back().cp.record_seq;
    reopen_rr_ = std::move(rr);

    metrics_->counter("recovery.journal_pages_replayed")
        .add(reopen_rr_.journal_pages);
    metrics_->counter("recovery.records_replayed")
        .add(reopen_rr_.records);
    metrics_->counter("recovery.pages_committed")
        .add(reopen_rr_.pages.size());
    metrics_->counter("recovery.pages_discarded").add(discarded);
    metrics_->counter("recovery.pages_swept").add(swept);
    metrics_->counter("recovery.lines_recovered").add(lines_);
    // Total logical records this mount replayed (snapshot + tail): the
    // quantity the checkpoint bounds, exposed for the bounded-replay
    // gates.
    metrics_->gauge("recovery.replay_records")
        .set(static_cast<double>(reopen_rr_.records));
    metrics_->gauge("journal.generation")
        .set(static_cast<double>(reopen_rr_.generation));
    updateStorageGauges();
    // mithril-lint: allow(adhoc-latency) one-shot mount-time total, not a latency sample
    metrics_->counter("recovery.modeled_ps").add(ssd_.elapsed().ps());
    span.end();
    return Status::ok();
}

Status
MithriLog::reopen()
{
    if (dead_) {
        return Status::unavailable(
            "device lost power; recover() the image on a fresh system");
    }
    if (!recovered_) {
        return Status::failedPrecondition(
            "reopen() requires a store produced by recover()");
    }
    if (journal_sealed_) {
        return Status::failedPrecondition(
            "store was sealed; seal is terminal across recovery");
    }
    obs::Span span = tracer_->span("recover.reopen", "core");
    // An empty recovered device (crash before the first commit) has no
    // chain to graft: leave the journal unformatted and let the first
    // commit lay it out lazily, exactly like a fresh store.
    if (ssd_.store().pageCount() > 0) {
        Status st = journal_.reopen(reopen_rr_, reopen_accepted_);
        if (!st.isOk()) {
            // The reopen writes are faultable device programs: a power
            // cut here is a real crash window (the pre-reopen state
            // replays unchanged).
            dead_ = true;
            return st;
        }
    }
    sealed_ = false;
    recovered_ = false;
    // A snapshot-bearing reopen collapses and reclaims the old journal
    // footprint; republish the occupancy it changed.
    updateStorageGauges();
    span.end();
    return Status::ok();
}

Status
MithriLog::runTimeRange(const query::Query &q, uint64_t t0, uint64_t t1,
                        QueryResult *out)
{
    *out = QueryResult{};
    if (q.hasTypedPredicates()) {
        // Typed batches carry their window as a time:[t0,t1] predicate
        // and take the typed tier; mixing the two mechanisms would
        // double-bound inconsistently.
        return Status::unsupported(
            "typed predicates take run()/runBatch() "
            "(use time:[t0,t1] for the window)");
    }
    WallTimer wall;
    obs::Span qspan = tracer_->span("query", "core");
    counters_.queries->add();
    uint64_t retries_before = counters_.ssd_read_retries->value();

    std::span<const query::Query> queries(&q, 1);
    bool index_pruned = false;
    std::vector<PageId> pages;
    if (config_.use_index) {
        obs::Span lookup = tracer_->span("query.index_lookup", "core");
        bool integrity_lost = false;
        pages =
            candidatePages(queries, &out->index_time, &integrity_lost);
        lookup.setSimDuration(out->index_time);
        lookup.end();
        if (integrity_lost) {
            out->degraded_index_scan = true;
            counters_.degraded_index_scans->add();
            pages = data_pages_;
        } else {
            index_pruned = pages.size() < data_pages_.size() ||
                           data_pages_.empty();
        }
        counters_.candidate_pages->add(pages.size());
        ssd_.resetClock();
    } else {
        pages = data_pages_;
    }
    auto [lo, hi] = index_->pageRangeForTime(t0, t1);
    std::vector<PageId> bounded;
    for (PageId p : pages) {
        if (p >= lo && p <= hi) {
            bounded.push_back(p);
        }
    }
    Status st = execute(bounded, queries, out);
    out->breakdown.candidate_pages = index_pruned ? pages.size() : 0;
    // The time bound prunes further than the index alone; the false-
    // positive account only makes sense against the executed set.
    finishQuery(out, &qspan, wall.seconds(),
                index_pruned || bounded.size() < pages.size(),
                retries_before);
    return st;
}

Status
MithriLog::runFullScan(std::span<const query::Query> queries,
                       QueryResult *out)
{
    *out = QueryResult{};
    if (queries.empty()) {
        return Status::invalidArgument("empty query batch");
    }
    WallTimer wall;
    obs::Span qspan = tracer_->span("query", "core");
    counters_.queries->add(queries.size());
    uint64_t retries_before = counters_.ssd_read_retries->value();
    for (const query::Query &q : queries) {
        if (q.hasTypedPredicates()) {
            // The cuckoo program hashes whole tokens and cannot
            // evaluate typed ranges: the exact full-scan analogue for
            // a typed batch is the host typed scan over every page.
            counters_.typed_queries->add(queries.size());
            Status st = typedScanPages(data_pages_, queries, out);
            out->total_time =
                out->storage_time + ssd_.config().read_latency;
            finishQuery(out, &qspan, wall.seconds(),
                        /*index_pruned=*/false, retries_before);
            return st;
        }
    }
    Status st = execute(data_pages_, queries, out);
    finishQuery(out, &qspan, wall.seconds(), /*index_pruned=*/false,
                retries_before);
    return st;
}

std::string
QueryBreakdown::toJson() const
{
    std::string out;
    obs::JsonWriter w(&out);
    w.beginObject();
    w.key("index_ps");
    w.value(static_cast<uint64_t>(index_time.ps()));
    w.key("storage_ps");
    w.value(static_cast<uint64_t>(storage_time.ps()));
    w.key("compute_ps");
    w.value(static_cast<uint64_t>(compute_time.ps()));
    w.key("total_ps");
    w.value(static_cast<uint64_t>(total_time.ps()));
    w.key("candidate_pages");
    w.value(candidate_pages);
    w.key("pages_scanned");
    w.value(pages_scanned);
    w.key("pages_total");
    w.value(pages_total);
    w.key("pages_with_matches");
    w.value(pages_with_matches);
    w.key("false_positive_pages");
    w.value(false_positive_pages);
    w.key("matched_lines");
    w.value(matched_lines);
    w.key("used_fallback");
    w.value(used_fallback);
    w.key("planned_full_scan");
    w.value(planned_full_scan);
    w.key("degraded_index_scan");
    w.value(degraded_index_scan);
    w.key("degraded_software_scan");
    w.value(degraded_software_scan);
    w.key("pages_dropped");
    w.value(pages_dropped);
    w.key("read_retries");
    w.value(read_retries);
    w.key("typed_predicates");
    w.value(typed_predicates);
    w.key("typed_index_pages");
    w.value(typed_index_pages);
    w.key("typed_index_bytes");
    w.value(typed_index_bytes);
    w.key("degraded_typed_scan");
    w.value(degraded_typed_scan);
    w.key("wall_seconds");
    w.value(wall_seconds);
    w.endObject();
    return out;
}

} // namespace mithril::core
