/**
 * @file
 * MithriLog — the end-to-end log analytics system (Section 3).
 *
 * Composition: a near-storage SSD model holding LZAH-compressed data
 * pages and index pages, the in-storage inverted index, and the
 * emulated four-pipeline token filter accelerator behind the device's
 * internal link. The public API covers the paper's full flow:
 *
 *   ingest  — lines are packed into independently-decompressible LZAH
 *             pages; each sealed page registers its distinct tokens
 *             with the inverted index;
 *   query   — host software compiles the query into a cuckoo program,
 *             consults the index for candidate pages, streams those
 *             pages through the accelerator over the internal link, and
 *             receives only matching lines over PCIe. Queries the
 *             cuckoo compiler cannot encode fall back to a software
 *             scan (Section 4.2.1).
 *
 * Timing discipline: MithriLog-side numbers are *modeled* (SimTime at
 * the paper's platform parameters); QueryResult separates index,
 * storage, and compute time so benches can report the same breakdowns
 * the paper discusses.
 *
 * Thread safety: none — a MithriLog is single-threaded by design and
 * the thread-ownership lint keeps it that way. Concurrent use goes
 * through svc::LogService, which owns one store per shard and
 * serializes all access to each (src/svc/log_service.h).
 */
#ifndef MITHRIL_CORE_MITHRILOG_H
#define MITHRIL_CORE_MITHRILOG_H

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "accel/accelerator.h"
#include "common/simtime.h"
#include "compress/lzah.h"
#include "index/inverted_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"
#include "storage/journal.h"
#include "storage/ssd_model.h"
#include "typed/typed_index.h"

namespace mithril::core {

/** Top-level system configuration. */
struct MithriLogConfig {
    storage::SsdConfig ssd{};
    index::IndexConfig index{};
    accel::AccelConfig accel{};
    /** Consult the inverted index during queries (false = full scan). */
    bool use_index = true;
    /**
     * Maintain and consult the typed-field pseudo-indexes (DESIGN.md
     * §15): IP/MAC/hex-id/timestamp keys extracted at ingest into
     * per-type posting lists. False disables both extraction and
     * typed-index pruning; typed queries then run as full scans over
     * the data pages (the bench_typed_query baseline configuration).
     */
    bool use_typed_index = true;
    /**
     * Query planner: skip index traversal when the O(1) entry-counter
     * estimate says the query would touch at least this fraction of
     * the data pages anyway (the paper's own example saw an index
     * reduce reads by only 30% on a common-token query — traversal is
     * then pure overhead). 1.0 disables the planner.
     */
    double planner_scan_threshold = 0.85;
    /** Lines longer than LZAH's page limit are truncated (with the
     *  `core.lines_truncated` counter) instead of rejected. */
    bool truncate_long_lines = true;
    /**
     * Background checkpoint policy: run checkpoint() after every N
     * sealed data pages (0 disables). The trigger sits just past the
     * commit barrier, so the page that tripped it is already
     * acknowledged whatever the checkpoint does; a checkpoint failure
     * is a device death, never a lost ack.
     */
    uint64_t checkpoint_every_pages = 0;
    /**
     * External metric registry / tracer to report into (benches and
     * services aggregating several systems share one). When null the
     * system owns private instances, reachable via metrics()/tracer().
     */
    obs::MetricsRegistry *metrics = nullptr;
    obs::Tracer *tracer = nullptr;
};

/**
 * Structured attribution of one query run — the Table 7 split
 * (index vs. storage vs. compute) plus the page-pruning account, in
 * machine-readable form. SimTime fields are deterministic for a given
 * image + query; wall_seconds is host-measured and is not.
 */
struct QueryBreakdown {
    SimTime index_time;    ///< modeled index traversal
    SimTime storage_time;  ///< modeled data-page streaming
    SimTime compute_time;  ///< modeled accelerator cycles
    SimTime total_time;    ///< index + max(storage, compute) + latency

    uint64_t candidate_pages = 0;   ///< pages the index nominated
    uint64_t pages_scanned = 0;
    uint64_t pages_total = 0;
    /** Pages that produced at least one accepted line. */
    uint64_t pages_with_matches = 0;
    /** Index-nominated pages with no match (probabilistic-index false
     *  positives plus legitimately empty candidates). Zero when the
     *  index was bypassed. */
    uint64_t false_positive_pages = 0;
    uint64_t matched_lines = 0;

    bool used_fallback = false;
    bool planned_full_scan = false;
    /** Index traversal hit unrecoverable damage; the query fell back
     *  to an accelerator full scan instead of trusting an incomplete
     *  candidate set. */
    bool degraded_index_scan = false;
    /** The accelerator path failed on faulted data; the query fell
     *  back to the host software scan over the staged pages. */
    bool degraded_software_scan = false;
    /** Pages unreadable (or CRC-rejected) after the device retry
     *  budget — dropped from the scan, counted, never silently
     *  misparsed. */
    uint64_t pages_dropped = 0;
    /** Device read retries charged during this query (fault plans). */
    uint64_t read_retries = 0;
    /** Typed predicates evaluated in this run (ip:/id:/mac:/time:). */
    uint64_t typed_predicates = 0;
    /** Typed posting pages traversed in-storage for this run. */
    uint64_t typed_index_pages = 0;
    /** Bytes of typed posting pages read — the index side of the
     *  typed-tier byte attribution (vs. bytes_scanned of data). */
    uint64_t typed_index_bytes = 0;
    /** Typed posting-list damage was unrecoverable; the query fell
     *  back to a typed full scan over every data page rather than
     *  trusting an incomplete typed candidate set. */
    bool degraded_typed_scan = false;
    /** Host-side measured time for the whole run (both domains kept,
     *  per the repo's measured-vs-modeled discipline). */
    double wall_seconds = 0.0;

    /** One-line JSON object (keys: phase times in ps, pages, flags). */
    std::string toJson() const;
};

/** End-to-end result of one query (or batch). */
struct QueryResult {
    uint64_t matched_lines = 0;
    std::vector<accel::KeptLine> lines;       ///< when accel.keep_lines
    /** Global (store-local) ingest line numbers parallel to `lines`;
     *  filled by the typed query tier, where match identity must be
     *  byte-comparable against a host oracle. Empty otherwise. */
    std::vector<uint64_t> line_numbers;
    std::vector<uint64_t> matched_per_query;  ///< batched execution

    uint64_t pages_scanned = 0;
    uint64_t pages_total = 0;
    uint64_t bytes_scanned = 0;   ///< decompressed text streamed

    SimTime index_time;    ///< index traversal (storage latency bound)
    SimTime storage_time;  ///< data page reads over the internal link
    SimTime compute_time;  ///< accelerator cycles
    SimTime total_time;    ///< index + max(storage, compute)

    bool used_fallback = false;  ///< software path (compile failure)
    /** Planner skipped index traversal (poor predicted pruning). */
    bool planned_full_scan = false;
    /** Corrupt index forced an accelerator full scan (see breakdown). */
    bool degraded_index_scan = false;
    /** Accelerator fault forced the host software scan. */
    bool degraded_software_scan = false;
    /** Typed posting-list damage forced a typed full scan. */
    bool degraded_typed_scan = false;
    /** Unreadable pages dropped after exhausting device retries. */
    uint64_t pages_dropped = 0;
    double useful_ratio = 0.0;   ///< tokenized-datapath utilization

    /** Structured phase attribution (duplicates the scalar fields
     *  above in reportable form, plus pruning/false-positive data). */
    QueryBreakdown breakdown;

    /** Effective throughput against the original dataset size. */
    double effectiveThroughput(uint64_t dataset_bytes) const
    {
        return throughputBps(dataset_bytes, total_time);
    }
};

/** The MithriLog system. */
class MithriLog
{
  public:
    explicit MithriLog(MithriLogConfig config = MithriLogConfig{});

    // ---- ingest --------------------------------------------------------

    /**
     * Ingests one line (without trailing newline).
     *
     * Durability contract: a line is *acknowledged* once the page
     * holding it seals — data page programmed, commit record journaled,
     * durability barrier passed (see durableLineCount()). Lines still
     * in the open page are durable only after flush()/seal().
     * @retval kInvalidArgument the store was sealed by seal().
     * @retval kUnavailable the device lost power (a fault-plan power
     *         cut); the caller's only move is saveDeviceImage() +
     *         recover() on a fresh system.
     */
    [[nodiscard]] Status ingestLine(std::string_view line);

    /** Ingests newline-separated text. */
    [[nodiscard]] Status ingestText(std::string_view text);

    /**
     * Seals the open page and flushes the index — a repeatable
     * checkpoint (ingest may continue afterwards). On return every
     * ingested line is journaled and crash-durable.
     */
    [[nodiscard]] Status flush();

    /**
     * Terminal durability barrier: flush(), then append the journal's
     * seal record and publish the sealed superblock. Idempotent; after
     * it returns ok the store is immutable (ingestLine fails with
     * kInvalidArgument) and a crash at any later point recovers the
     * complete dataset.
     */
    [[nodiscard]] Status seal();

    /**
     * Storage-lifecycle maintenance point (DESIGN.md §14): flushes
     * pending lines, truncates the journal chain into a snapshot
     * (Journal::checkpoint — bounded mount-time replay), then runs the
     * segment cleaner (cleanSegments — crash-safe space reclamation).
     * Committed data and the acknowledged prefix are exactly preserved;
     * a crash anywhere inside replays either the pre- or the
     * post-checkpoint state. No-op ok on a store that never committed.
     * Allowed on a sealed store (the seal survives in the superblock
     * flag — maintenance on an archived image, not mutation).
     * @retval kFailedPrecondition the store is a read-only recovered
     *         mount; reopen() first.
     * @retval kUnavailable the device died mid-protocol (power cut);
     *         recover() the image on a fresh system.
     */
    [[nodiscard]] Status checkpoint();

    /** checkpoint() calls completed over this journal cursor. */
    uint64_t checkpoints() const { return journal_.checkpoints(); }

    /** Records in the live journal chain since the last checkpoint
     *  (replay tail a crash right now would walk). */
    uint64_t journalChainRecords() const
    {
        return journal_.chainRecords();
    }

    /** Records summarized by the live snapshot (0 when the chain has
     *  never been truncated). */
    uint64_t journalSnapshotRecords() const
    {
        return journal_.snapshotRecords();
    }

    // ---- dataset statistics -------------------------------------------

    uint64_t lineCount() const { return lines_; }
    uint64_t rawBytes() const { return raw_bytes_; }
    uint64_t dataPageCount() const { return data_pages_.size(); }
    uint64_t truncatedLines() const { return truncated_lines_; }

    /** Lines covered by a journaled commit + durability barrier: the
     *  prefix of the ingest stream guaranteed to survive a crash. */
    uint64_t durableLineCount() const { return committed_lines_; }

    /** True after seal(), or after recover() until reopen() clears it
     *  (a freshly recovered store is read-only by default). */
    bool sealed() const { return sealed_; }

    /** True when this store was produced by recover() and has not been
     *  reopen()ed: it is sealed *because* the journal cursor died with
     *  the crashed device, not because the caller chose to seal.
     *  Service layers use this to answer ingest against a recovered
     *  shard with kFailedPrecondition instead of a generic
     *  sealed-store error, and to offer reopen() instead. */
    bool recovered() const { return recovered_; }

    /** Data pages in ingest order (tests and ablations; the journal
     *  owns the device's leading pages, so "page 0" is not data). */
    const std::vector<storage::PageId> &dataPages() const
    {
        return data_pages_;
    }

    /** raw bytes / compressed data page bytes. */
    double compressionRatio() const;

    // ---- query ---------------------------------------------------------

    /** Runs one query end to end. */
    [[nodiscard]] Status run(const query::Query &q, QueryResult *out);

    /** Parses and runs a query text. */
    [[nodiscard]] Status run(std::string_view query_text,
                             QueryResult *out);

    /**
     * Runs a batch concurrently on one accelerator pass (Section 4).
     *
     * Batches carrying typed predicates (ip:/id:/mac:/time:) take the
     * incident-response tier (DESIGN.md §15): typed posting lists are
     * intersected in-storage — alongside the keyword index — to prune
     * the candidate pages, which then cross PCIe to the host matcher.
     * The filter pipelines hash whole tokens and cannot compare CIDR
     * or time ranges, so the typed tier's offload is the pruning; the
     * match set is exact (host-evaluated) and byte-identical to a full
     * scan, with line numbers reported in QueryResult::line_numbers.
     */
    [[nodiscard]] Status runBatch(std::span<const query::Query> queries,
                                  QueryResult *out);

    /**
     * Runs a batch as a full scan, bypassing the index — the Section
     * 7.4.2 configuration isolating filter-engine performance.
     */
    [[nodiscard]] Status runFullScan(
        std::span<const query::Query> queries, QueryResult *out);

    /**
     * Time-bounded query (Section 6.3's snapshot mechanism): candidate
     * pages are additionally restricted to the page range the index's
     * snapshot log maps [t0, t1] to. Timestamps are the values passed
     * to ingest — by default the ingest line sequence number — and the
     * restriction is coarse (snapshot granularity), so the time window
     * may over-approximate but never cuts matching lines inside it.
     */
    [[nodiscard]] Status runTimeRange(const query::Query &q, uint64_t t0,
                                      uint64_t t1, QueryResult *out);

    // ---- persistence ----------------------------------------------------

    /**
     * Writes a device image (all pages, index state, counters) to
     * @p path. Flushes first, so the image is self-contained.
     */
    [[nodiscard]] Status saveImage(const std::string &path);

    /**
     * Restores a device image into this system. Must be called on a
     * freshly constructed MithriLog whose configuration matches the
     * saving one (the index validates its part).
     * @retval kCorruptData unreadable, malformed, or mismatched image.
     */
    [[nodiscard]] Status loadImage(const std::string &path);

    /**
     * Dumps the raw NAND contents (every page, no host-side state) to
     * @p path. Unlike saveImage this works on a device that lost
     * power — it reads the store directly, exactly what pulling the
     * flash out of a dead device would yield. Input for recover().
     */
    [[nodiscard]] Status saveDeviceImage(const std::string &path) const;

    /**
     * Mount-time crash recovery. Loads a raw device image (from
     * saveDeviceImage) into this freshly constructed system, replays
     * the journal, verifies every committed data page against its
     * journaled CRC, discards torn/uncommitted pages (always a clean
     * *prefix* cut: the recovered store is exactly the first
     * durableLineCount() lines of the original ingest stream), and
     * rebuilds the index from the surviving pages. The recovered store
     * is sealed until reopen() makes it writable again. Every step is
     * counted (`recovery.*` metrics) and spanned (`recover.*`); modeled
     * device time accrues into SimTime. A device with no valid
     * superblock (crash before the first commit completed) recovers to
     * a valid empty store.
     */
    [[nodiscard]] Status recover(const std::string &path);

    /**
     * Makes a recovered store writable again: re-opens the journal at
     * the replayed tail under a fresh generation (Journal::reopen) and
     * clears the recovery seal, so ingestLine() resumes through the
     * normal durable commit protocol and the acknowledged prefix keeps
     * growing past the crash. Only valid on a store produced by
     * recover().
     * @retval kFailedPrecondition the store is not recovered, or the
     *         replayed journal carried a seal — seal() is terminal by
     *         design and survives any number of crash/recover cycles.
     * @retval kUnavailable the device died (reopen writes are faultable:
     *         a power cut *during* reopen replays the pre-reopen state).
     */
    [[nodiscard]] Status reopen();

    /** Generation of the newest chain the last recover() replayed
     *  (0 when no valid superblock was found). */
    uint64_t recoveredGeneration() const { return reopen_rr_.generation; }

    /** Generation chains the last recover() replayed — 1 for a
     *  never-reopened store, +1 per reopen in the image's history. */
    uint64_t recoveredGenerations() const
    {
        return reopen_rr_.generations;
    }

    /** Live journal incarnation (0 before the first commit/reopen). */
    uint64_t journalGeneration() const { return journal_.generation(); }

    /** Of the records the last recover() replayed: how many came from
     *  the checkpoint snapshot vs. the live chain tail. Their sum is
     *  the `recovery.records_replayed` counter; the chain share is the
     *  part checkpointing bounds. */
    uint64_t recoveredSnapshotRecords() const
    {
        return reopen_rr_.snapshot_records;
    }
    uint64_t recoveredChainRecords() const
    {
        return reopen_rr_.records - reopen_rr_.snapshot_records;
    }

    // ---- component access (benches, tests, ablations) ------------------

    storage::SsdModel &ssd() { return ssd_; }
    index::InvertedIndex &index() { return *index_; }
    typed::TypedIndex &typedIndex() { return *typed_index_; }
    accel::Accelerator &accelerator() { return accel_; }
    const MithriLogConfig &config() const { return config_; }

    // ---- observability --------------------------------------------------

    /** The unified metric namespace (`ssd.*`, `index.*`, `accel.*`,
     *  `lzah.*`, `core.*`); config-supplied or system-owned. */
    obs::MetricsRegistry &metrics() { return *metrics_; }
    const obs::MetricsRegistry &metrics() const { return *metrics_; }

    /** Span buffer covering the query datapath in both time domains. */
    obs::Tracer &tracer() { return *tracer_; }
    const obs::Tracer &tracer() const { return *tracer_; }

  private:
    /** Candidate data pages for a batch via the inverted index.
     *  @param index_time receives the modeled traversal time, with
     *  independent token chains overlapped across channels.
     *  @param integrity_lost set true when traversal damage makes the
     *  candidate set untrustworthy (caller must full-scan). */
    std::vector<storage::PageId>
    candidatePages(std::span<const query::Query> queries,
                   SimTime *index_time, bool *integrity_lost);

    /**
     * Reads @p pages for scanning, verifying each staged page's LZAH
     * CRC. With a fault plan attached the reads go page-at-a-time
     * (faultable, retried); CRC rejections trigger re-reads up to the
     * plan's retry budget. Pages still unreadable are dropped and
     * counted (`out->pages_dropped`), never passed on corrupt.
     * @p storage owns faulted copies; @p views index into it (or
     * zero-copy into the store on the unfaulted path). @p staged_ids,
     * when non-null, receives the page id of each surviving view in
     * order (the typed tier numbers lines per source page).
     */
    Status stagePages(std::span<const storage::PageId> pages,
                      storage::Link link,
                      std::vector<compress::ByteView> *views,
                      std::vector<compress::Bytes> *storage,
                      QueryResult *out,
                      std::vector<storage::PageId> *staged_ids = nullptr);

    /** Streams @p pages through the accelerator and fills @p out.
     *  Degrades to hostScanViews when the filter pipeline faults. */
    Status execute(std::span<const storage::PageId> pages,
                   std::span<const query::Query> queries,
                   QueryResult *out);

    /** Host-side matching over already-staged pages (tolerant: pages
     *  that fail to decode are dropped and counted). */
    Status hostScanViews(std::span<const compress::ByteView> views,
                         std::span<const query::Query> queries,
                         QueryResult *out);

    /** Software fallback for non-offloadable queries. */
    Status softwareScan(std::span<const query::Query> queries,
                        QueryResult *out);

    /**
     * The incident-response tier (DESIGN.md §15): typed + keyword
     * index pruning in-storage, then an exact host-side evaluation of
     * the full batch over the pruned pages. Owns the whole query
     * lifecycle (span, wall clock, finishQuery). Degrades to
     * typedScanPages over every data page when typed posting lists
     * lost integrity or config_.use_typed_index is off.
     */
    Status runTyped(std::span<const query::Query> queries,
                    QueryResult *out);

    /** Stages @p pages to the host (external link) and evaluates the
     *  batch exactly — keyword terms and typed predicates — filling
     *  match counts, kept lines, and global line numbers. */
    Status typedScanPages(std::span<const storage::PageId> pages,
                          std::span<const query::Query> queries,
                          QueryResult *out);

    /** True when the entry-counter estimate says index traversal
     *  cannot prune enough to pay for itself. */
    bool plannerPrefersScan(std::span<const query::Query> queries) const;

    /** Durable page commit: program the data page, journal the commit
     *  record, pass the barrier (ack point), then index the page. Any
     *  failure marks the system dead_ (in-memory state no longer
     *  matches the media). */
    Status sealPendingPage();

    /** checkpoint() minus the flush: journal truncation + segment
     *  cleaning. The auto-policy calls this from inside the commit path
     *  (where flush() would recurse); any failure marks dead_. */
    Status runCheckpoint();

    /**
     * Segment cleaner (DESIGN.md §14): migrates live pages out of cold
     * segments (occupancy <= half) into free slots in strictly earlier
     * segments, so drained segments return to the allocator and the
     * physical footprint shrinks. Per page: copy (faultable program),
     * journal a migrate record, barrier, read back and CRC-verify, only
     * then retarget the translation map. Degradation ladder: one
     * rewrite retry per page, then the pass is abandoned (ok — the next
     * checkpoint re-schedules); only a dead device surfaces an error.
     * Never touches acknowledged data: the map points at the old slot
     * until the copy verified.
     */
    Status cleanSegments();

    /** Publishes `storage.segments_live` / `storage.segments_freed`. */
    void updateStorageGauges();

    /** Fills QueryResult::breakdown, closes the query span, and
     *  records the per-query counters. @p index_pruned says whether
     *  the candidate set came from index traversal (false-positive
     *  accounting only applies then); @p retries_before is the
     *  `ssd.read_retries` value at query start (delta attribution). */
    void finishQuery(QueryResult *out, obs::Span *span,
                     double wall_seconds, bool index_pruned,
                     uint64_t retries_before);

    MithriLogConfig config_;
    std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
    std::unique_ptr<obs::Tracer> owned_tracer_;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::Tracer *tracer_ = nullptr;

    /** Hot-path counters, resolved once (registry refs are stable). */
    struct CoreCounters {
        obs::Counter *lines_ingested = nullptr;
        obs::Counter *lines_truncated = nullptr;
        obs::Counter *pages_sealed = nullptr;
        obs::Counter *lzah_bytes_in = nullptr;
        obs::Counter *lzah_bytes_out = nullptr;
        obs::Counter *queries = nullptr;
        obs::Counter *query_fallbacks = nullptr;
        obs::Counter *planner_full_scans = nullptr;
        obs::Counter *candidate_pages = nullptr;
        obs::Counter *false_positive_pages = nullptr;
        obs::Counter *degraded_index_scans = nullptr;
        obs::Counter *degraded_software_scans = nullptr;
        obs::Counter *typed_queries = nullptr;
        obs::Counter *degraded_typed_scans = nullptr;
        obs::Counter *crc_failed_pages = nullptr;
        obs::Counter *pages_dropped = nullptr;
        obs::Counter *ssd_read_retries = nullptr;
    } counters_;
    /** Per-stage latency histograms (obs/histogram.h), dual-domain
     *  where the stage has a modeled cost. */
    struct CoreStages {
        obs::StageLatency lzah_encode;     ///< per-line encode (wall)
        obs::StageLatency journal_commit;  ///< page commit + barrier
        obs::StageLatency query_compile;   ///< cuckoo compile (wall)
    } stages_;
    storage::SsdModel ssd_;
    storage::Journal journal_;
    std::unique_ptr<index::InvertedIndex> index_;
    /** Typed-field pseudo-indexes (DESIGN.md §15). Always constructed:
     *  its page directory numbers lines for the typed tier even when
     *  use_typed_index is off (extraction is then skipped). */
    std::unique_ptr<typed::TypedIndex> typed_index_;
    accel::Accelerator accel_;

    compress::LzahPageEncoder encoder_;
    std::set<std::string, std::less<>> pending_tokens_;
    uint64_t lines_ = 0;
    uint64_t raw_bytes_ = 0;
    uint64_t truncated_lines_ = 0;
    /** Cumulative lines / raw bytes covered by the last durable
     *  commit (the acknowledged prefix). */
    uint64_t committed_lines_ = 0;
    uint64_t committed_raw_ = 0;
    /** seal() ran: the store is immutable. */
    bool sealed_ = false;
    /** recover() produced this store and reopen() has not run yet
     *  (sealed_ is then implied). */
    bool recovered_ = false;
    /** The replayed journal carried a seal: the *original* store was
     *  seal()ed, so reopen() must refuse — seal is terminal. */
    bool journal_sealed_ = false;
    /** Replay summary of the last recover(), kept for reopen(). */
    storage::Journal::ReplayResult reopen_rr_;
    /** Verification cut of the last recover(): global logical records
     *  accepted (the base-link budget a reopen grafts). */
    uint64_t reopen_accepted_ = 0;
    /** A commit failed mid-protocol (power cut or device error): the
     *  in-memory state no longer matches the media, so every mutating
     *  call fails until the image is recovered on a fresh system. */
    bool dead_ = false;
    std::vector<storage::PageId> data_pages_;
};

} // namespace mithril::core

#endif // MITHRIL_CORE_MITHRILOG_H
