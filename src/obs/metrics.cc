#include "obs/metrics.h"

#include <algorithm>

namespace mithril::obs {

std::string
MetricsRegistry::fullName(std::string_view name,
                          std::initializer_list<Label> labels)
{
    std::string full(name);
    if (labels.size() != 0) {
        std::vector<Label> sorted(labels);
        std::sort(sorted.begin(), sorted.end());
        full += '{';
        bool first = true;
        for (const Label &l : sorted) {
            if (!first) {
                full += ',';
            }
            first = false;
            full += l.first;
            full += '=';
            full += l.second;
        }
        full += '}';
    }
    return full;
}

Counter &
MetricsRegistry::counter(std::string_view name,
                         std::initializer_list<Label> labels)
{
    MutexLock lock(mu_);
    if (labels.size() == 0) {
        return findOrCreateLocked(
            counters_, name, [] { return std::make_unique<Counter>(); });
    }
    return findOrCreateLocked(
        counters_, fullName(name, labels),
        [] { return std::make_unique<Counter>(); });
}

Gauge &
MetricsRegistry::gauge(std::string_view name,
                       std::initializer_list<Label> labels)
{
    MutexLock lock(mu_);
    if (labels.size() == 0) {
        return findOrCreateLocked(
            gauges_, name, [] { return std::make_unique<Gauge>(); });
    }
    return findOrCreateLocked(
        gauges_, fullName(name, labels),
        [] { return std::make_unique<Gauge>(); });
}

LogHistogram &
MetricsRegistry::histogram(std::string_view name,
                           std::initializer_list<Label> labels)
{
    auto make = [] { return std::make_unique<LogHistogram>(); };
    MutexLock lock(mu_);
    if (labels.size() == 0) {
        return findOrCreateLocked(histograms_, name, make);
    }
    return findOrCreateLocked(histograms_, fullName(name, labels),
                              make);
}

Histogram &
MetricsRegistry::quantileHistogram(std::string_view name,
                                   std::initializer_list<Label> labels)
{
    auto make = [] { return std::make_unique<Histogram>(); };
    MutexLock lock(mu_);
    if (labels.size() == 0) {
        return findOrCreateLocked(quantile_histograms_, name, make);
    }
    return findOrCreateLocked(quantile_histograms_,
                              fullName(name, labels), make);
}

uint64_t
MetricsRegistry::counterValue(std::string_view name) const
{
    MutexLock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(mu_);
    for (const auto &[name, c] : counters_) {
        snap.counters.emplace(name, c->value());
    }
    for (const auto &[name, g] : gauges_) {
        snap.gauges.emplace(name, g->value());
    }
    for (const auto &[name, h] : histograms_) {
        MetricsSnapshot::HistogramData data;
        data.count = h->count();
        data.sum = h->sum();
        for (size_t i = 0; i < LogHistogram::kBuckets; ++i) {
            uint64_t c = h->bucketCount(i);
            if (c != 0) {
                data.buckets.emplace_back(LogHistogram::bucketLo(i), c);
            }
        }
        snap.histograms.emplace(name, std::move(data));
    }
    for (const auto &[name, h] : quantile_histograms_) {
        MetricsSnapshot::QuantileHistogramData data;
        data.count = h->count();
        data.sum = h->sum();
        data.min = h->min();
        data.max = h->max();
        data.quantiles = h->quantiles();
        for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            uint64_t c = h->bucketCount(i);
            if (c != 0) {
                data.buckets.emplace_back(Histogram::bucketLo(i), c);
            }
        }
        snap.quantile_histograms.emplace(name, std::move(data));
    }
    return snap;
}

} // namespace mithril::obs
