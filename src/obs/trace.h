/**
 * @file
 * mithril::obs — RAII span tracing in two time domains.
 *
 * Every span records *wall-clock* time (host-side, measured) and,
 * when the instrumented phase has a modeled cost, *SimTime* (the
 * deterministic device-model clock at the paper's platform
 * parameters). The two domains are the repo's measured-vs-modeled
 * discipline (see common/wall_timer.h) carried into tracing: a trace
 * shows both what the host spent and where the modeled cycles went.
 *
 * Spans append completed events into a bounded ring (oldest events are
 * overwritten; a drop counter records how many). The buffer exports as
 * Chrome trace-event JSON loadable in chrome://tracing or Perfetto:
 * wall-domain events appear under process "wall (measured)" and
 * sim-domain events under process "simtime (modeled)".
 *
 * SimTime layout: the tracer keeps a monotonic sim cursor. A span
 * captures the cursor when it opens; closing with setSimDuration()
 * advances the cursor past the span. Phases the performance model
 * overlaps (page streaming vs. filter compute) therefore appear
 * sequentially in the sim track — the track is an attribution of
 * modeled cost, and the parent span carries the overlapped total.
 * Sim-domain values are deterministic run-to-run; wall values are not.
 */
#ifndef MITHRIL_OBS_TRACE_H
#define MITHRIL_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/simtime.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace mithril::obs {

/** One completed span. */
struct TraceEvent {
    std::string name;
    std::string category;
    uint64_t wall_start_ns = 0;  ///< relative to the tracer's epoch
    uint64_t wall_dur_ns = 0;
    uint64_t sim_start_ps = 0;
    uint64_t sim_dur_ps = 0;
    bool has_sim = false;  ///< span carried a modeled duration
    uint32_t depth = 0;    ///< nesting depth at open
    uint64_t seq = 0;      ///< completion order
};

class Tracer;

/**
 * RAII span: records on destruction (or an explicit end()).
 * Movable, not copyable. A default-constructed span is inert, so
 * instrumented code can run without a tracer attached.
 */
class Span
{
  public:
    Span() = default;
    Span(Tracer *tracer, std::string_view name,
         std::string_view category);
    Span(Span &&other) noexcept;
    Span &operator=(Span &&other) noexcept;
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span() { end(); }

    /** Attaches the modeled cost of this phase; the event then also
     *  appears in the sim track. */
    void setSimDuration(SimTime dur);

    /** Completes the span now (idempotent). */
    void end();

  private:
    Tracer *tracer_ = nullptr;
    TraceEvent event_;
};

/** Bounded ring of spans + the sim-domain cursor. */
class Tracer
{
  public:
    static constexpr size_t kDefaultCapacity = 16384;

    explicit Tracer(size_t capacity = kDefaultCapacity);

    /** Opens a span; completed when the returned object dies. */
    Span span(std::string_view name, std::string_view category = "query")
    {
        return Span(this, name, category);
    }

    /** Completed events, oldest first (bounded by capacity). */
    std::vector<TraceEvent> events() const;

    /** Events overwritten because the ring was full. */
    uint64_t dropped() const;

    /** Current end of the sim-domain timeline. */
    SimTime simCursor() const;

    /** Chrome trace-event JSON (the whole buffer). */
    std::string chromeTraceJson() const;

    /** Writes chromeTraceJson() to @p path. */
    Status writeChromeTrace(const std::string &path) const;

    /** Empties the ring (sim cursor keeps advancing monotonically). */
    void clear();

  private:
    friend class Span;

    uint64_t nowNs() const;
    void record(TraceEvent event);

    /** The span ring is shared by every tracing thread; everything
     *  that moves after construction sits under one lock. */
    mutable Mutex mu_;
    std::vector<TraceEvent> ring_ MITHRIL_GUARDED_BY(mu_);
    const size_t capacity_;
    uint64_t next_seq_ MITHRIL_GUARDED_BY(mu_) = 0;
    uint64_t dropped_ MITHRIL_GUARDED_BY(mu_) = 0;
    uint64_t sim_cursor_ps_ MITHRIL_GUARDED_BY(mu_) = 0;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace mithril::obs

#endif // MITHRIL_OBS_TRACE_H
