#include "obs/report.h"

namespace mithril::obs {

std::string
metricsToJson(const MetricsSnapshot &snapshot)
{
    std::string out;
    JsonWriter w(&out);
    w.beginObject();

    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : snapshot.counters) {
        w.key(name);
        w.value(value);
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &[name, value] : snapshot.gauges) {
        w.key(name);
        w.value(value);
    }
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : snapshot.histograms) {
        w.key(name);
        w.beginObject();
        w.key("count");
        w.value(h.count);
        w.key("sum");
        w.value(h.sum);
        w.key("buckets");
        w.beginArray();
        for (const auto &[lo, count] : h.buckets) {
            w.beginObject();
            w.key("lo");
            w.value(lo);
            w.key("count");
            w.value(count);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.key("quantiles");
    w.beginObject();
    for (const auto &[name, h] : snapshot.quantile_histograms) {
        w.key(name);
        w.beginObject();
        w.key("count");
        w.value(h.count);
        w.key("sum");
        w.value(h.sum);
        w.key("min");
        w.value(h.min);
        w.key("max");
        w.value(h.max);
        w.key("p50");
        w.value(h.quantiles.p50);
        w.key("p90");
        w.value(h.quantiles.p90);
        w.key("p99");
        w.value(h.quantiles.p99);
        w.key("p999");
        w.value(h.quantiles.p999);
        w.key("buckets");
        w.beginArray();
        for (const auto &[lo, count] : h.buckets) {
            w.beginObject();
            w.key("lo");
            w.value(lo);
            w.key("count");
            w.value(count);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    return out;
}

std::string
metricsToJson(const MetricsRegistry &registry)
{
    return metricsToJson(registry.snapshot());
}

Status
writeMetricsJson(const MetricsRegistry &registry, const std::string &path)
{
    std::string json = metricsToJson(registry);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
        return Status::internal("short write to " + path);
    }
    return Status::ok();
}

std::string
chromeTraceWithQuantiles(const Tracer &tracer,
                         const MetricsRegistry &registry)
{
    std::string base = tracer.chromeTraceJson();
    MetricsSnapshot snap = registry.snapshot();
    if (snap.quantile_histograms.empty()) {
        return base;
    }
    // The tracer's JSON closes with "]}" (traceEvents array, then the
    // top object); splice the counter events in front of that tail.
    size_t tail = base.rfind("]}");
    if (tail == std::string::npos) {
        return base;
    }
    constexpr int kQuantilePid = 3;
    std::string extra;
    JsonWriter w(&extra);
    w.beginArray();  // matches the open traceEvents array
    w.beginObject();
    w.key("name");
    w.value("process_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(static_cast<uint64_t>(kQuantilePid));
    w.key("args");
    w.beginObject();
    w.key("name");
    w.value("latency quantiles");
    w.endObject();
    w.endObject();
    for (const auto &[name, h] : snap.quantile_histograms) {
        w.beginObject();
        w.key("name");
        w.value(name);
        w.key("ph");
        w.value("C");
        w.key("pid");
        w.value(static_cast<uint64_t>(kQuantilePid));
        w.key("tid");
        w.value(static_cast<uint64_t>(1));
        w.key("ts");
        w.value(static_cast<uint64_t>(0));
        w.key("args");
        w.beginObject();
        w.key("p50");
        w.value(h.quantiles.p50);
        w.key("p90");
        w.value(h.quantiles.p90);
        w.key("p99");
        w.value(h.quantiles.p99);
        w.key("p999");
        w.value(h.quantiles.p999);
        w.endObject();
        w.endObject();
    }
    // Drop the synthetic "[" so `extra` is ",{...},{...}" ready to
    // append after the last real trace event.
    extra.erase(0, 1);
    if (!extra.empty() && extra.front() != ',') {
        extra.insert(extra.begin(), ',');
    }
    base.insert(tail, extra);
    return base;
}

Status
writeChromeTrace(const Tracer &tracer, const MetricsRegistry &registry,
                 const std::string &path)
{
    std::string json = chromeTraceWithQuantiles(tracer, registry);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
        return Status::internal("short write to " + path);
    }
    return Status::ok();
}

JsonRecord::JsonRecord(std::string_view bench) : writer_(&body_)
{
    writer_.beginObject();
    writer_.key("bench");
    writer_.value(bench);
}

JsonRecord &
JsonRecord::field(std::string_view key, std::string_view v)
{
    writer_.key(key);
    writer_.value(v);
    return *this;
}

JsonRecord &
JsonRecord::field(std::string_view key, double v)
{
    writer_.key(key);
    writer_.value(v);
    return *this;
}

JsonRecord &
JsonRecord::field(std::string_view key, uint64_t v)
{
    writer_.key(key);
    writer_.value(v);
    return *this;
}

JsonRecord &
JsonRecord::field(std::string_view key, bool v)
{
    writer_.key(key);
    writer_.value(v);
    return *this;
}

std::string
JsonRecord::json() const
{
    return body_ + "}";
}

void
JsonRecord::emit(std::FILE *out, const std::string &file_path)
{
    std::string line = json();
    if (out != nullptr) {
        std::fprintf(out, "BENCH_JSON %s\n", line.c_str());
    }
    if (!file_path.empty()) {
        std::FILE *f = std::fopen(file_path.c_str(), "ab");
        if (f != nullptr) {
            std::fprintf(f, "%s\n", line.c_str());
            std::fclose(f);
        }
    }
}

} // namespace mithril::obs
