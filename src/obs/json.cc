#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mithril::obs {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (!pending_.empty()) {
        if (pending_.back() == '1') {
            *out_ += ',';
        } else {
            pending_.back() = '1';
        }
    }
}

void
JsonWriter::beginObject()
{
    separate();
    *out_ += '{';
    pending_ += '0';
}

void
JsonWriter::endObject()
{
    *out_ += '}';
    pending_.pop_back();
}

void
JsonWriter::beginArray()
{
    separate();
    *out_ += '[';
    pending_ += '0';
}

void
JsonWriter::endArray()
{
    *out_ += ']';
    pending_.pop_back();
}

void
JsonWriter::key(std::string_view k)
{
    separate();
    *out_ += '"';
    *out_ += jsonEscape(k);
    *out_ += "\":";
    after_key_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    separate();
    *out_ += '"';
    *out_ += jsonEscape(v);
    *out_ += '"';
}

void
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        *out_ += "null";  // JSON has no Inf/NaN
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    *out_ += buf;
}

void
JsonWriter::value(uint64_t v)
{
    separate();
    *out_ += std::to_string(v);
}

void
JsonWriter::value(int64_t v)
{
    separate();
    *out_ += std::to_string(v);
}

void
JsonWriter::value(bool v)
{
    separate();
    *out_ += v ? "true" : "false";
}

namespace {

/** Recursive-descent JSON validator (syntax only, no value capture). */
class Validator
{
  public:
    explicit Validator(std::string_view text) : text_(text) {}

    bool
    run(std::string *err)
    {
        bool ok = value() && (skipWs(), pos_ == text_.size());
        if (!ok && err != nullptr) {
            *err = error_.empty()
                       ? "trailing data at offset " + std::to_string(pos_)
                       : error_;
        }
        return ok;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_.empty()) {
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("bad literal");
        }
        pos_ += word.size();
        return true;
    }

    bool
    string()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return fail("expected string");
        }
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("control char in string");
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    break;
                }
                char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            return fail("bad \\u escape");
                        }
                    }
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            return fail("bad number");
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad fraction");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                return fail("bad exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            return fail("unexpected end");
        }
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return fail("expected ':'");
            }
            ++pos_;
            if (!value()) {
                return false;
            }
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array()
    {
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value()) {
                return false;
            }
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

/** Recursive-descent parser building a JsonValue DOM. Reuses the
 *  validator's grammar; kept separate so the hot validity check never
 *  pays for allocation. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    run(JsonValue *out, std::string *err)
    {
        bool ok = value(out) && (skipWs(), pos_ == text_.size());
        if (!ok && err != nullptr) {
            *err = error_.empty()
                       ? "trailing data at offset " + std::to_string(pos_)
                       : error_;
        }
        return ok;
    }

  private:
    bool
    fail(const char *what)
    {
        if (error_.empty()) {
            error_ = std::string(what) + " at offset " +
                     std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("bad literal");
        }
        pos_ += word.size();
        return true;
    }

    bool
    string(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"') {
            return fail("expected string");
        }
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("control char in string");
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    break;
                }
                char e = text_[pos_];
                switch (e) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            return fail("bad \\u escape");
                        }
                        char h = text_[pos_ + i];
                        code = code * 16 +
                               static_cast<unsigned>(
                                   std::isdigit(
                                       static_cast<unsigned char>(h))
                                       ? h - '0'
                                       : (std::tolower(h) - 'a') + 10);
                    }
                    pos_ += 4;
                    // Telemetry keys/values are ASCII; anything
                    // beyond is preserved byte-wise as UTF-8 would
                    // need surrogate handling this layer never emits.
                    if (code < 0x80) {
                        *out += static_cast<char>(code);
                    } else {
                        *out += '?';
                    }
                    break;
                }
                default: return fail("bad escape");
                }
                ++pos_;
                continue;
            }
            *out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        std::string token(text_.substr(start, pos_ - start));
        // Lean on the validator for the grammar; then strtod is safe.
        if (!Validator(token).run(nullptr)) {
            pos_ = start;
            return fail("bad number");
        }
        out->kind = JsonValue::Kind::kNumber;
        out->number = std::strtod(token.c_str(), nullptr);
        return true;
    }

    bool
    value(JsonValue *out)
    {
        skipWs();
        if (pos_ >= text_.size()) {
            return fail("unexpected end");
        }
        switch (text_[pos_]) {
        case '{': return object(out);
        case '[': return array(out);
        case '"':
            out->kind = JsonValue::Kind::kString;
            return string(&out->text);
        case 't':
            out->kind = JsonValue::Kind::kBool;
            out->boolean = true;
            return literal("true");
        case 'f':
            out->kind = JsonValue::Kind::kBool;
            out->boolean = false;
            return literal("false");
        case 'n':
            out->kind = JsonValue::Kind::kNull;
            return literal("null");
        default: return number(out);
        }
    }

    bool
    object(JsonValue *out)
    {
        out->kind = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key)) {
                return false;
            }
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return fail("expected ':'");
            }
            ++pos_;
            JsonValue member;
            if (!value(&member)) {
                return false;
            }
            out->members.emplace_back(std::move(key),
                                      std::move(member));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue *out)
    {
        out->kind = JsonValue::Kind::kArray;
        ++pos_;  // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!value(&item)) {
                return false;
            }
            out->items.push_back(std::move(item));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

bool
jsonValid(std::string_view text, std::string *err)
{
    return Validator(text).run(err);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::kObject) {
        return nullptr;
    }
    for (const auto &[k, v] : members) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

double
JsonValue::numberOr(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

bool
jsonParse(std::string_view text, JsonValue *out, std::string *err)
{
    *out = JsonValue{};
    return Parser(text).run(out, err);
}

} // namespace mithril::obs
