/**
 * @file
 * mithril::obs — machine-readable snapshots.
 *
 * Serializes a MetricsRegistry to JSON (`--metrics-out`) and provides
 * the one-line bench record format: every table/figure bench emits
 * `BENCH_JSON {...}` lines alongside its human-readable output, so
 * runs are comparable and the repo's BENCH_*.json perf trajectory can
 * accumulate without scraping free-form text.
 */
#ifndef MITHRIL_OBS_REPORT_H
#define MITHRIL_OBS_REPORT_H

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mithril::obs {

/**
 * Snapshot JSON:
 * {
 *   "counters":   {"ssd.pages_read": 123, ...},
 *   "gauges":     {"lzah.ratio": 2.1, ...},
 *   "histograms": {"ssd.batch_pages":
 *                    {"count": n, "sum": s,
 *                     "buckets": [{"lo": 1, "count": 4}, ...]}, ...},
 *   "quantiles":  {"svc.queue_wait.sim_ps":
 *                    {"count": n, "sum": s, "min": m, "max": M,
 *                     "p50": ..., "p90": ..., "p99": ..., "p999": ...,
 *                     "buckets": [{"lo": 1, "count": 4}, ...]}, ...}
 * }
 */
std::string metricsToJson(const MetricsSnapshot &snapshot);
std::string metricsToJson(const MetricsRegistry &registry);

/** Writes metricsToJson(registry) to @p path. */
Status writeMetricsJson(const MetricsRegistry &registry,
                        const std::string &path);

/**
 * Chrome-trace export carrying the registry's latency quantiles along
 * with the span buffer: the tracer's own JSON plus one counter-track
 * event (`"ph":"C"`, pid 3 "latency quantiles") per quantile
 * histogram, so a trace opened in Perfetto shows the tail next to the
 * spans that produced it.
 */
std::string chromeTraceWithQuantiles(const Tracer &tracer,
                                     const MetricsRegistry &registry);

/** Writes chromeTraceWithQuantiles() to @p path. */
Status writeChromeTrace(const Tracer &tracer,
                        const MetricsRegistry &registry,
                        const std::string &path);

/**
 * One-line machine-readable record: `BENCH_JSON {"bench": ..., ...}`.
 *
 * Chained field() calls build the object; emit() prints the line (and
 * optionally appends it to a file). Keys appear in call order.
 */
class JsonRecord
{
  public:
    explicit JsonRecord(std::string_view bench);

    JsonRecord &field(std::string_view key, std::string_view v);
    JsonRecord &field(std::string_view key, const char *v)
    {
        return field(key, std::string_view(v));
    }
    JsonRecord &field(std::string_view key, double v);
    JsonRecord &field(std::string_view key, uint64_t v);
    JsonRecord &field(std::string_view key, int v)
    {
        return field(key, static_cast<uint64_t>(v));
    }
    JsonRecord &field(std::string_view key, bool v);

    /** Prints `BENCH_JSON {...}` to @p out and appends the bare JSON
     *  line to @p file_path when non-empty. */
    void emit(std::FILE *out = stdout,
              const std::string &file_path = std::string());

    /** The JSON object built so far (closed). */
    std::string json() const;

  private:
    std::string body_;  // open object, without the closing brace
    JsonWriter writer_;
};

} // namespace mithril::obs

#endif // MITHRIL_OBS_REPORT_H
