/**
 * @file
 * Minimal JSON utilities for the observability layer: a streaming
 * writer (commas and escaping handled), and a strict validity checker
 * used by tests and the bench-output checker. No external
 * dependencies, by repo policy.
 */
#ifndef MITHRIL_OBS_JSON_H
#define MITHRIL_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mithril::obs {

/** Escapes @p s for use inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Streaming JSON writer appending to a caller-owned string.
 *
 * Usage:
 *   JsonWriter w(&out);
 *   w.beginObject();
 *   w.key("name"); w.value("x");
 *   w.key("list"); w.beginArray(); w.value(1.0); w.endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::string *out) : out_(out) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(bool v);

  private:
    void separate();

    std::string *out_;
    /** Whether a comma is due before the next element, per depth. */
    std::string pending_;  // stack of 0/1 chars
    bool after_key_ = false;
};

/**
 * Strict syntax check of one complete JSON document.
 * @param err if non-null, receives a short description on failure.
 */
bool jsonValid(std::string_view text, std::string *err = nullptr);

/**
 * Parsed JSON document (a small DOM), for the schema checks the
 * syntax-only validator cannot express — e.g. json_check verifying
 * that a metrics snapshot's histogram quantiles are internally
 * consistent. Numbers are held as double (every value the
 * observability layer emits fits), object members keep insertion
 * order, and lookup is linear — fine at telemetry sizes.
 */
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;                            ///< kArray
    std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isNumber() const { return kind == Kind::kNumber; }

    /** Member lookup; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
    /** The member's number, or @p fallback when absent/non-numeric. */
    double numberOr(std::string_view key, double fallback) const;
};

/**
 * Parses one complete JSON document into @p out.
 * @param err if non-null, receives a short description on failure.
 */
bool jsonParse(std::string_view text, JsonValue *out,
               std::string *err = nullptr);

} // namespace mithril::obs

#endif // MITHRIL_OBS_JSON_H
