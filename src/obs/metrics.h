/**
 * @file
 * mithril::obs — unified metrics for every subsystem.
 *
 * The paper's evaluation is built on breakdowns (Figure 15's
 * effective-throughput histograms, Table 7's index/storage/compute
 * splits), so the reproduction carries a first-class metrics layer:
 * one process-wide namespace of named counters, gauges, and log-scale
 * histograms that the device models, the accelerator emulation, the
 * index, and the core query path all report into.
 *
 * Naming convention: `subsystem.noun_unit`, e.g. `ssd.pages_read`,
 * `accel.stall_cycles`, `lzah.bytes_in`. Optional labels render into
 * the name Prometheus-style: `ssd.pages_read{link=internal}`.
 *
 * Thread safety: metric handles returned by the registry are stable
 * for the registry's lifetime and internally atomic, so hot paths
 * resolve a metric once and then update it lock-free. Registry lookups
 * take a mutex.
 *
 * All values fed from the modeled (SimTime) domain are deterministic:
 * two runs over the same input produce bit-identical counter values.
 */
#ifndef MITHRIL_OBS_METRICS_H
#define MITHRIL_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace mithril::obs {

/** Monotonically increasing counter (relaxed atomics). */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        // relaxed: independent monotonic counter; snapshot readers
        // tolerate a torn view across counters.
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        // relaxed: see add() — a count, not a publication.
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins scalar (compression ratio, utilization, ...). */
class Gauge
{
  public:
    // relaxed: last-write-wins scalar; no other data rides on it.
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        // relaxed: see set().
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log2-scale histogram over unsigned samples.
 *
 * Bucket 0 holds zeros; bucket i >= 1 holds values in
 * [2^(i-1), 2^i). 65 buckets cover the full uint64 range, so there is
 * never an overflow bucket to reason about. Recording is lock-free.
 */
class LogHistogram
{
  public:
    static constexpr size_t kBuckets = 65;

    void record(uint64_t value)
    {
        // relaxed: every cell is an independent monotonic counter;
        // readers tolerate bucket/count/sum tearing mid-record.
        counts_[bucketFor(value)].fetch_add(1,
                                            std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    /** Bucket index a value lands in: 0 for 0, else 1 + floor(log2). */
    static size_t bucketFor(uint64_t value)
    {
        size_t bits = 0;
        while (value != 0) {
            ++bits;
            value >>= 1;
        }
        return bits;
    }

    /** Inclusive lower bound of bucket @p i (0, 1, 2, 4, 8, ...). */
    static uint64_t bucketLo(size_t i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }

    uint64_t bucketCount(size_t i) const
    {
        // relaxed: reporting-side read of an independent counter.
        return counts_.at(i).load(std::memory_order_relaxed);
    }

    uint64_t count() const
    {
        // relaxed: reporting-side read of an independent counter.
        return count_.load(std::memory_order_relaxed);
    }

    // relaxed: reporting-side read of an independent counter.
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    double mean() const
    {
        uint64_t n = count();
        return n ? static_cast<double>(sum()) / static_cast<double>(n)
                 : 0.0;
    }

  private:
    std::array<std::atomic<uint64_t>, kBuckets> counts_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** One metric label (key=value); labels sort into the metric name. */
using Label = std::pair<std::string_view, std::string_view>;

/** Point-in-time copy of a registry, for reporting and tests. */
struct MetricsSnapshot {
    struct HistogramData {
        uint64_t count = 0;
        uint64_t sum = 0;
        /** (bucket lower bound, count) for non-empty buckets only. */
        std::vector<std::pair<uint64_t, uint64_t>> buckets;
    };

    /** Quantile histogram (obs::Histogram) with extracted tail. */
    struct QuantileHistogramData {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t min = 0;
        uint64_t max = 0;
        Quantiles quantiles;
        /** (bucket lower bound, count) for non-empty buckets only. */
        std::vector<std::pair<uint64_t, uint64_t>> buckets;
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
    std::map<std::string, QuantileHistogramData> quantile_histograms;
};

/**
 * The process-wide metric namespace.
 *
 * Also implements common's CounterSink so legacy StatSet instances
 * (SsdModel, InvertedIndex) forward their counters here with a
 * subsystem prefix — one namespace, no double bookkeeping required by
 * callers.
 */
class MetricsRegistry : public CounterSink
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Returns (creating on first use) the named counter. The
     *  reference stays valid for the registry's lifetime. */
    Counter &counter(std::string_view name,
                     std::initializer_list<Label> labels = {});

    Gauge &gauge(std::string_view name,
                 std::initializer_list<Label> labels = {});

    LogHistogram &histogram(std::string_view name,
                            std::initializer_list<Label> labels = {});

    /** Returns (creating on first use) the named quantile histogram —
     *  the tail-latency instrument (obs/histogram.h). Snapshot under
     *  the `quantiles` section with p50/p90/p99/p999 extracted. */
    Histogram &quantileHistogram(std::string_view name,
                                 std::initializer_list<Label> labels = {});

    /** Current value of a counter; 0 if it was never touched. */
    uint64_t counterValue(std::string_view name) const;

    /** CounterSink: legacy StatSet forwarding. */
    void addCounter(std::string_view name, uint64_t delta) override
    {
        counter(name).add(delta);
    }

    MetricsSnapshot snapshot() const;

    /** Renders `name{k=v,...}` (labels sorted by key). */
    static std::string fullName(std::string_view name,
                                std::initializer_list<Label> labels);

  private:
    /** Lookup-or-insert in one of the guarded maps. Callers (the
     *  public accessors) hold mu_; keeping the lock at the call site
     *  means the guarded maps are never passed around unlocked, which
     *  is exactly what -Wthread-safety-reference checks. */
    template <typename Map, typename Factory>
    auto &
    findOrCreateLocked(Map &map, std::string_view full, Factory make)
        MITHRIL_REQUIRES(mu_)
    {
        auto it = map.find(full);
        if (it == map.end()) {
            it = map.emplace(std::string(full), make()).first;
        }
        return *it->second;
    }

    /** Registry lookups are the cross-thread meeting point: every
     *  subsystem reports into obs, so the maps are guarded and the
     *  returned handles (stable for the registry's lifetime) are
     *  lock-free atomics. */
    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ MITHRIL_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_ MITHRIL_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>>
        histograms_ MITHRIL_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        quantile_histograms_ MITHRIL_GUARDED_BY(mu_);
};

} // namespace mithril::obs

#endif // MITHRIL_OBS_METRICS_H
