#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace mithril::obs {

void
Histogram::merge(const Histogram &other)
{
    // relaxed: merge runs on quiesced histograms (header contract);
    // every cell is an independent counter, order never matters.
    for (size_t i = 0; i < kBuckets; ++i) {
        uint64_t c = other.counts_[i].load(std::memory_order_relaxed);
        if (c != 0) {
            counts_[i].fetch_add(c, std::memory_order_relaxed);
        }
    }
    // relaxed: same quiesced-merge contract as the bucket loop above.
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    if (other.count() != 0) {
        // relaxed: standalone extremum cells, see relaxMin/relaxMax.
        relaxMin(min_, other.min_.load(std::memory_order_relaxed));
        relaxMax(max_, other.max_.load(std::memory_order_relaxed));
    }
}

uint64_t
Histogram::min() const
{
    // relaxed: reporting-side read of an independent cell.
    uint64_t m = min_.load(std::memory_order_relaxed);
    return m == ~0ull ? 0 : m;
}

uint64_t
Histogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based: ceil(q*n), at least 1.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<uint64_t>(rank, 1, n);
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        // relaxed: rank walk over independent counters; racing
        // writers are handled by the max() fallback below.
        seen += counts_[i].load(std::memory_order_relaxed);
        if (seen >= rank) {
            return bucketLo(i);
        }
    }
    // Racing writers bumped count_ before the bucket slot; the highest
    // non-empty bucket is still the right answer for reporting.
    return max();
}

Quantiles
Histogram::quantiles() const
{
    Quantiles out;
    const uint64_t n = count();
    if (n == 0) {
        return out;
    }
    const double qs[4] = {0.50, 0.90, 0.99, 0.999};
    uint64_t *slots[4] = {&out.p50, &out.p90, &out.p99, &out.p999};
    uint64_t ranks[4];
    for (int k = 0; k < 4; ++k) {
        uint64_t r = static_cast<uint64_t>(
            std::ceil(qs[k] * static_cast<double>(n)));
        ranks[k] = std::clamp<uint64_t>(r, 1, n);
        *slots[k] = max();  // fallback under racing writers
    }
    uint64_t seen = 0;
    int next = 0;
    for (size_t i = 0; i < kBuckets && next < 4; ++i) {
        // relaxed: rank walk, same contract as quantile() above.
        seen += counts_[i].load(std::memory_order_relaxed);
        while (next < 4 && seen >= ranks[next]) {
            *slots[next] = bucketLo(i);
            ++next;
        }
    }
    return out;
}

StageLatency::StageLatency(MetricsRegistry *metrics,
                           std::string_view stage)
{
    if (metrics == nullptr) {
        return;
    }
    std::string base(stage);
    wall_ns_ = &metrics->quantileHistogram(base + ".wall_ns");
    sim_ps_ = &metrics->quantileHistogram(base + ".sim_ps");
}

} // namespace mithril::obs
