/**
 * @file
 * mithril::obs — mergeable quantile histograms for tail latency.
 *
 * LogHistogram (metrics.h) answers "what order of magnitude" — fine
 * for sizes and depths, far too coarse for p99/p999 latency, where a
 * power-of-two bucket hides an 8x regression. Histogram here is the
 * tail-latency instrument: log-linear (HDR-style) buckets with
 * kSubCount linear sub-buckets per power of two, bounding the relative
 * quantile error at 1/kSubCount (3.125%) over the full uint64 range
 * while staying a fixed-size array of relaxed atomics — recording is
 * three wait-free adds plus two bounded CAS loops (min/max), cheap
 * enough for every stage of the datapath.
 *
 * Merge is bucket-wise addition: associative and commutative, so
 * per-shard / per-worker histograms roll up to the same totals in any
 * order — the property the sharded service layer needs for
 * deterministic reports.
 *
 * Quantiles are extracted by rank walk over the bucket array and
 * reported as the containing bucket's lower bound: deterministic
 * (pure function of the recorded multiset, never of timing), exact in
 * the linear region (values < kSubCount), and within the documented
 * 1/kSubCount relative bound elsewhere.
 *
 * Dual-domain use: latency stages record into *two* histograms, one
 * per time domain (`<stage>.wall_ns`, host-measured; `<stage>.sim_ps`,
 * modeled SimTime) — see StageLatency below. SLO gates assert on the
 * sim_ps side, which is deterministic run-to-run.
 */
#ifndef MITHRIL_OBS_HISTOGRAM_H
#define MITHRIL_OBS_HISTOGRAM_H

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/simtime.h"
#include "common/wall_timer.h"

namespace mithril::obs {

class MetricsRegistry;

/** The four quantiles every latency report carries. */
struct Quantiles {
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
};

/**
 * Log-linear quantile histogram over unsigned samples (latencies).
 * Thread-safe recording (relaxed atomics); merge and quantile reads
 * are designed for quiesced roll-up/reporting and see a consistent
 * multiset once writers are done.
 */
class Histogram
{
  public:
    /** Linear sub-buckets per power of two: 2^5 = 32 slots, so any
     *  value lands in a bucket no wider than value/32. */
    static constexpr uint32_t kSubBits = 5;
    static constexpr uint32_t kSubCount = 1u << kSubBits;
    /** Values 0..kSubCount-1 map one-to-one; every wider exponent
     *  contributes kSubCount linear buckets. */
    static constexpr size_t kBuckets =
        (64 - kSubBits + 1) * static_cast<size_t>(kSubCount);

    void
    record(uint64_t value)
    {
        // relaxed: each cell is an independent monotonic counter;
        // readers tolerate bucket/count/sum tearing (header note).
        counts_[indexFor(value)].fetch_add(1,
                                           std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        relaxMin(min_, value);
        relaxMax(max_, value);
    }

    /** Bucket a value lands in. */
    static size_t
    indexFor(uint64_t value)
    {
        if (value < kSubCount) {
            return static_cast<size_t>(value);
        }
        const uint32_t exp =
            static_cast<uint32_t>(std::bit_width(value)) - 1;
        const uint64_t sub = (value >> (exp - kSubBits)) - kSubCount;
        return (static_cast<size_t>(exp) - kSubBits + 1) * kSubCount +
               static_cast<size_t>(sub);
    }

    /** Inclusive lower bound of bucket @p i (its reported value). */
    static uint64_t
    bucketLo(size_t i)
    {
        if (i < kSubCount) {
            return i;
        }
        const uint64_t block = i / kSubCount;  // >= 1
        const uint64_t sub = i % kSubCount;
        return (static_cast<uint64_t>(kSubCount) + sub)
               << (block - 1);
    }

    /** Folds @p other into this histogram (bucket-wise addition;
     *  associative and commutative, so shard roll-up order never
     *  changes the result). */
    void merge(const Histogram &other);

    /**
     * Value at quantile @p q in [0, 1]: the lower bound of the bucket
     * holding the ceil(q*count)-th smallest sample. 0 when empty.
     * Exact for samples < kSubCount; relative error < 1/kSubCount
     * otherwise.
     */
    uint64_t quantile(double q) const;

    /** p50/p90/p99/p999 in one bucket walk. */
    Quantiles quantiles() const;

    uint64_t
    bucketCount(size_t i) const
    {
        // relaxed: reporting-side read of an independent counter.
        return counts_.at(i).load(std::memory_order_relaxed);
    }

    uint64_t count() const
    {
        // relaxed: reporting-side read of an independent counter.
        return count_.load(std::memory_order_relaxed);
    }
    // relaxed: reporting-side read of an independent counter.
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Smallest / largest recorded sample; 0 when empty. */
    uint64_t min() const;
    uint64_t max() const
    {
        // relaxed: reporting-side read of an independent cell.
        return max_.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        uint64_t n = count();
        return n ? static_cast<double>(sum()) / static_cast<double>(n)
                 : 0.0;
    }

  private:
    static void
    relaxMin(std::atomic<uint64_t> &slot, uint64_t value)
    {
        // relaxed: bounded CAS race on a standalone extremum cell —
        // the winning value is the same under any ordering.
        uint64_t cur = slot.load(std::memory_order_relaxed);
        while (value < cur &&
               !slot.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed)) {
        }
    }

    static void
    relaxMax(std::atomic<uint64_t> &slot, uint64_t value)
    {
        // relaxed: bounded CAS race on a standalone extremum cell —
        // the winning value is the same under any ordering.
        uint64_t cur = slot.load(std::memory_order_relaxed);
        while (value > cur &&
               !slot.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed)) {
        }
    }

    std::array<std::atomic<uint64_t>, kBuckets> counts_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{~0ull};
    std::atomic<uint64_t> max_{0};
};

/**
 * One instrumented pipeline stage, in both time domains: a pair of
 * registry-owned Histograms named `<stage>.wall_ns` (host-measured)
 * and `<stage>.sim_ps` (modeled SimTime). The split keeps the repo's
 * measured-vs-modeled discipline inside the latency data itself — SLO
 * assertions read sim_ps (deterministic), humans read both.
 */
class StageLatency
{
  public:
    /** Inert: records are dropped (instrumented code without obs). */
    StageLatency() = default;

    StageLatency(MetricsRegistry *metrics, std::string_view stage);

    void
    recordWallNs(uint64_t ns)
    {
        if (wall_ns_ != nullptr) {
            wall_ns_->record(ns);
        }
    }

    void
    recordSim(SimTime dur)
    {
        if (sim_ps_ != nullptr) {
            sim_ps_->record(dur.ps());
        }
    }

    Histogram *wallNs() const { return wall_ns_; }
    Histogram *simPs() const { return sim_ps_; }

  private:
    Histogram *wall_ns_ = nullptr;
    Histogram *sim_ps_ = nullptr;
};

/**
 * RAII wall-clock sample into a StageLatency (the histogram analogue
 * of obs::Span): measures from construction to end()/destruction,
 * records into `<stage>.wall_ns`, and — when the stage has a modeled
 * cost attached via setSimDuration() — into `<stage>.sim_ps` too.
 * Movable; a default-constructed timer is inert.
 */
class StageTimer
{
  public:
    StageTimer() = default;
    explicit StageTimer(StageLatency *stage) : stage_(stage) {}
    StageTimer(StageTimer &&other) noexcept { *this = std::move(other); }
    StageTimer &
    operator=(StageTimer &&other) noexcept
    {
        if (this != &other) {
            end();
            stage_ = other.stage_;
            wall_ = other.wall_;
            sim_ = other.sim_;
            has_sim_ = other.has_sim_;
            other.stage_ = nullptr;
        }
        return *this;
    }
    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;
    ~StageTimer() { end(); }

    /** Attaches the stage's modeled cost (recorded at end()). */
    void
    setSimDuration(SimTime dur)
    {
        sim_ = dur;
        has_sim_ = true;
    }

    /** Records the sample now (idempotent). */
    void
    end()
    {
        if (stage_ == nullptr) {
            return;
        }
        stage_->recordWallNs(
            static_cast<uint64_t>(wall_.seconds() * 1e9));
        if (has_sim_) {
            stage_->recordSim(sim_);
        }
        stage_ = nullptr;
    }

  private:
    StageLatency *stage_ = nullptr;
    WallTimer wall_;
    SimTime sim_;
    bool has_sim_ = false;
};

} // namespace mithril::obs

#endif // MITHRIL_OBS_HISTOGRAM_H
