#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace mithril::obs {

namespace {
/** Nesting depth of open spans on this thread (display only). */
thread_local uint32_t t_depth = 0;
} // namespace

// ---- Span ---------------------------------------------------------------

Span::Span(Tracer *tracer, std::string_view name,
           std::string_view category)
    : tracer_(tracer)
{
    event_.name = name;
    event_.category = category;
    event_.wall_start_ns = tracer_->nowNs();
    event_.sim_start_ps = tracer_->simCursor().ps();
    event_.depth = t_depth++;
}

Span::Span(Span &&other) noexcept
    : tracer_(other.tracer_), event_(std::move(other.event_))
{
    other.tracer_ = nullptr;
}

Span &
Span::operator=(Span &&other) noexcept
{
    if (this != &other) {
        end();
        tracer_ = other.tracer_;
        event_ = std::move(other.event_);
        other.tracer_ = nullptr;
    }
    return *this;
}

void
Span::setSimDuration(SimTime dur)
{
    event_.sim_dur_ps = dur.ps();
    event_.has_sim = true;
}

void
Span::end()
{
    if (tracer_ == nullptr) {
        return;
    }
    event_.wall_dur_ns = tracer_->nowNs() - event_.wall_start_ns;
    --t_depth;
    tracer_->record(std::move(event_));
    tracer_ = nullptr;
}

// ---- Tracer -------------------------------------------------------------

Tracer::Tracer(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now())
{
    ring_.reserve(std::min<size_t>(capacity_, 1024));
}

uint64_t
Tracer::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SimTime
Tracer::simCursor() const
{
    MutexLock lock(mu_);
    return SimTime::picoseconds(sim_cursor_ps_);
}

void
Tracer::record(TraceEvent event)
{
    MutexLock lock(mu_);
    event.seq = next_seq_++;
    if (event.has_sim) {
        sim_cursor_ps_ = std::max(sim_cursor_ps_,
                                  event.sim_start_ps + event.sim_dur_ps);
    }
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
    } else {
        ring_[event.seq % capacity_] = std::move(event);
        ++dropped_;
    }
}

std::vector<TraceEvent>
Tracer::events() const
{
    MutexLock lock(mu_);
    std::vector<TraceEvent> out = ring_;
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.seq < b.seq;
              });
    return out;
}

uint64_t
Tracer::dropped() const
{
    MutexLock lock(mu_);
    return dropped_;
}

void
Tracer::clear()
{
    MutexLock lock(mu_);
    ring_.clear();
    dropped_ = 0;
}

std::string
Tracer::chromeTraceJson() const
{
    // Two "processes": pid 1 is the wall-clock domain, pid 2 the
    // SimTime domain. Complete events (ph "X") with ts/dur in
    // microseconds, as chrome://tracing and Perfetto expect.
    constexpr int kWallPid = 1;
    constexpr int kSimPid = 2;

    std::vector<TraceEvent> evs = events();
    std::string out;
    JsonWriter w(&out);
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ns");
    w.key("traceEvents");
    w.beginArray();

    auto meta = [&](int pid, const char *name) {
        w.beginObject();
        w.key("name");
        w.value("process_name");
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(static_cast<uint64_t>(pid));
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(name);
        w.endObject();
        w.endObject();
    };
    meta(kWallPid, "wall (measured)");
    meta(kSimPid, "simtime (modeled)");

    auto complete = [&](const TraceEvent &e, int pid, double ts_us,
                        double dur_us) {
        w.beginObject();
        w.key("name");
        w.value(e.name);
        w.key("cat");
        w.value(e.category);
        w.key("ph");
        w.value("X");
        w.key("pid");
        w.value(static_cast<uint64_t>(pid));
        w.key("tid");
        w.value(static_cast<uint64_t>(1));
        w.key("ts");
        w.value(ts_us);
        w.key("dur");
        w.value(dur_us);
        w.key("args");
        w.beginObject();
        w.key("depth");
        w.value(static_cast<uint64_t>(e.depth));
        if (e.has_sim) {
            w.key("sim_ps");
            w.value(e.sim_dur_ps);
        }
        w.endObject();
        w.endObject();
    };

    for (const TraceEvent &e : evs) {
        complete(e, kWallPid, e.wall_start_ns * 1e-3,
                 e.wall_dur_ns * 1e-3);
        if (e.has_sim) {
            complete(e, kSimPid, e.sim_start_ps * 1e-6,
                     e.sim_dur_ps * 1e-6);
        }
    }

    w.endArray();
    w.endObject();
    return out;
}

Status
Tracer::writeChromeTrace(const std::string &path) const
{
    std::string json = chromeTraceJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        return Status::invalidArgument("cannot open " + path);
    }
    bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
        return Status::internal("short write to " + path);
    }
    return Status::ok();
}

} // namespace mithril::obs
