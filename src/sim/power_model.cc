#include "sim/power_model.h"

namespace mithril::sim {

PowerModel::PowerModel()
{
    // Table 8. MithriLog: measured wall power (2x VC707 at ~18 W, four
    // BlueDBM cards at 6-7 W, host CPU+memory). Software platform: CPU
    // and memory under full load, minus Samsung's published SSD power.
    components_ = {
        {"CPU+Memory", 90.0, 160.0},
        {"Total Storage", 24.0, 10.0},
        {"2x FPGA", 36.0, 0.0},
    };
}

double
PowerModel::mithrilogTotal() const
{
    double total = 0;
    for (const PowerComponent &c : components_) {
        total += c.mithrilog_watts;
    }
    return total;
}

double
PowerModel::softwareTotal() const
{
    double total = 0;
    for (const PowerComponent &c : components_) {
        total += c.software_watts;
    }
    return total;
}

double
PowerModel::efficiencyGain(double accel_bps, double software_bps) const
{
    if (software_bps <= 0 || accel_bps <= 0) {
        return 0;
    }
    double accel_eff = accel_bps / mithrilogTotal();
    double sw_eff = software_bps / softwareTotal();
    return accel_eff / sw_eff;
}

} // namespace mithril::sim
