#include "sim/perf_model.h"

#include <algorithm>

namespace mithril::sim {

double
decompressorBound(const PerfInputs &in)
{
    // One word per cycle per pipeline, deterministic (Section 7.3).
    return static_cast<double>(in.pipelines) * in.clock_hz *
           static_cast<double>(in.datapath_bytes);
}

double
filterBound(const PerfInputs &in)
{
    // Filters consume tokenized words; raw text expands by
    // 1/useful_ratio when tokenized. Each filter sustains one word per
    // cycle.
    double tokenized_bps = static_cast<double>(in.pipelines) *
                           static_cast<double>(in.hash_filters) *
                           in.clock_hz *
                           static_cast<double>(in.datapath_bytes);
    return tokenized_bps * in.useful_ratio;
}

double
storageBound(const PerfInputs &in)
{
    return in.storage_bw_bps * in.compression_ratio;
}

double
modeledThroughput(const PerfInputs &in)
{
    return std::min({decompressorBound(in), filterBound(in),
                     storageBound(in)});
}

double
pipelineLutsAtWidth(size_t datapath_bytes)
{
    // Parametric scaling around the synthesized module costs:
    //  - a fixed per-pipeline overhead (control, scatter/gather FIFOs)
    //    that does NOT shrink with the datapath — the reason the paper
    //    found 8-byte pipelines wasteful ("too slow, requiring too many
    //    pipelines");
    //  - tokenizer count scales with width (one per 2 B/cycle lane);
    //  - the filter comparators/bitmaps and the decompressor shifters
    //    scale ~linearly with width.
    // Per-pipeline share of scatter/gather, page handling, and flash
    // port plumbing; dominated by interface logic that does not shrink
    // with a narrower datapath.
    constexpr double kFixedOverhead = 20000.0;
    double scale = static_cast<double>(datapath_bytes) / 16.0;
    double tokenizers = 1134.0 * (static_cast<double>(datapath_bytes) / 2);
    double filters = 2 * 30334.0 * scale;
    double decompressor = 4245.0 * scale;
    return kFixedOverhead + tokenizers + filters + decompressor;
}

} // namespace mithril::sim
