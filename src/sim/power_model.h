/**
 * @file
 * System power ledger (Table 8) and performance-per-watt derivation.
 *
 * The paper measures wall-plug power for the MithriLog prototype and
 * estimates the software platform's breakdown from published component
 * numbers. This model records those per-component figures and combines
 * them with throughput measurements/models to produce the paper's
 * power-efficiency claim (an order of magnitude, Section 7.6).
 */
#ifndef MITHRIL_SIM_POWER_MODEL_H
#define MITHRIL_SIM_POWER_MODEL_H

#include <string>
#include <vector>

namespace mithril::sim {

/** One Table 8 row. */
struct PowerComponent {
    std::string name;
    double mithrilog_watts;
    double software_watts;
};

/** Power breakdown of both platforms. */
class PowerModel
{
  public:
    PowerModel();

    const std::vector<PowerComponent> &components() const
    {
        return components_;
    }

    double mithrilogTotal() const;
    double softwareTotal() const;

    /**
     * Power-efficiency improvement factor:
     * (accel_bps / mithrilog_watts) / (sw_bps / software_watts).
     */
    double efficiencyGain(double accel_bps, double software_bps) const;

  private:
    std::vector<PowerComponent> components_;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_POWER_MODEL_H
