#include "sim/resource_model.h"

#include <algorithm>

#include "accel/datapath.h"

namespace mithril::sim {

ResourceModel::ResourceModel()
{
    // Synthesis results from Table 2 (VC707, Vivado; published numbers).
    modules_ = {
        {"Decompressor", 4245, 4, 0, 1},
        {"Tokenizer", 1134, 0, 0,
         static_cast<uint32_t>(accel::kTokenizersPerPipeline)},
        {"Filter", 30334, 10, 2,
         static_cast<uint32_t>(accel::kHashFiltersPerPipeline)},
        {"Pipeline", 61698, 66, 18, 0},
        {"Total", 225793, 430, 43, 0},
    };
}

ModuleCost
ResourceModel::pipelineCost() const
{
    return modules_[3];
}

ModuleCost
ResourceModel::totalCost() const
{
    return modules_[4];
}

ModuleCost
ResourceModel::pipelineComponentSum() const
{
    ModuleCost sum{"ComponentSum", 0, 0, 0, 0};
    for (size_t i = 0; i < 3; ++i) {
        sum.luts += modules_[i].luts * modules_[i].per_pipeline;
        sum.ramb36 += modules_[i].ramb36 * modules_[i].per_pipeline;
        sum.ramb18 += modules_[i].ramb18 * modules_[i].per_pipeline;
    }
    return sum;
}

DeviceCapacity
ResourceModel::vc707()
{
    // XC7VX485T: 303,600 LUTs, 1,030 RAMB36 (2,060 RAMB18).
    return {"VC707 (XC7VX485T)", 303600, 1030, 2060};
}

DeviceCapacity
ResourceModel::ku15p()
{
    // XCKU15P: 522,720 LUTs, 984 RAMB36.
    return {"SmartSSD (XCKU15P)", 522720, 984, 1968};
}

uint32_t
ResourceModel::pipelinesFitting(const DeviceCapacity &device,
                                uint32_t infrastructure_luts) const
{
    ModuleCost p = pipelineCost();
    if (device.luts <= infrastructure_luts) {
        return 0;
    }
    uint32_t by_luts = (device.luts - infrastructure_luts) / p.luts;
    uint32_t by_b36 = device.ramb36 / std::max<uint32_t>(p.ramb36, 1);
    uint32_t by_b18 = device.ramb18 / std::max<uint32_t>(p.ramb18, 1);
    return std::min({by_luts, by_b36, by_b18});
}

std::vector<CompressionCore>
ResourceModel::compressionCores()
{
    // Table 4: published FPGA implementations on comparable Xilinx
    // parts; LZAH is this design (one pipeline's decompressor path).
    return {
        {"LZ4", 1.68, 35.0, "[76] Xilinx xil_lz4"},
        {"LZRW", 0.175, 0.64, "[20] Helion"},
        {"Snappy", 1.72, 35.0, "[77] Xilinx xil_snappy"},
        {"LZAH", 3.2, 4.0, "this work"},
    };
}

double
ResourceModel::mithrilKlutPerGbps()
{
    // One pipeline: 61,698 LUTs for 3.2 GB/s of filtered bandwidth
    // (Section 7.4.3 rounds to ~19 KLUT per GB/s).
    return 61.698 / 3.2;
}

double
ResourceModel::hareKlutPerGbps()
{
    // HARE: 400 MB/s at ~55K logic elements; add an LZRW core sized to
    // feed it (0.64 KLUT per 175 MB/s). Section 7.4.3's estimate is
    // ~145 KLUT per GB/s.
    double hare = 55.0 / 0.4;
    double lzrw = 0.64 / 0.175;
    return hare + lzrw;
}

} // namespace mithril::sim
