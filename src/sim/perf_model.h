/**
 * @file
 * Analytic performance model of the filter engine + storage pairing.
 *
 * Complements the cycle-approximate emulation with the closed-form
 * bounds the paper reasons with (Sections 4.1, 7.4.1): the deterministic
 * decompressor bound, the tokenized-stream amplification bound, and the
 * storage-feed bound through compression. Also hosts the datapath-width
 * ablation (8/16/32-byte alternatives the design-space exploration
 * rejected).
 */
#ifndef MITHRIL_SIM_PERF_MODEL_H
#define MITHRIL_SIM_PERF_MODEL_H

#include <cstddef>

namespace mithril::sim {

/** Inputs to the analytic throughput model. */
struct PerfInputs {
    size_t pipelines = 4;
    double clock_hz = 200e6;
    size_t datapath_bytes = 16;
    /** Fraction of useful bits in the tokenized stream (Figure 13). */
    double useful_ratio = 0.5;
    /** Hash filters per pipeline. */
    size_t hash_filters = 2;
    /** LZAH compression ratio of the dataset. */
    double compression_ratio = 6.0;
    /** Storage internal bandwidth feeding the accelerator (bytes/s). */
    double storage_bw_bps = 4.8e9;
};

/** Decompressed-data bound of the decompressors (bytes/s). */
double decompressorBound(const PerfInputs &in);

/**
 * Filter-stage bound (bytes/s of raw text): each pipeline's filters
 * consume datapath words of tokenized data; padding amplification
 * (1 / useful_ratio) inflates the tokenized stream relative to raw
 * text.
 */
double filterBound(const PerfInputs &in);

/** Storage-feed bound: compressed stream expanded by the ratio. */
double storageBound(const PerfInputs &in);

/** Overall modeled throughput: min of the three bounds. */
double modeledThroughput(const PerfInputs &in);

/**
 * LUT cost model for a pipeline at a given datapath width, scaling the
 * synthesized module costs (tokenizer count scales with width; filter
 * and decompressor datapaths scale ~linearly). Used by the width
 * ablation bench.
 */
double pipelineLutsAtWidth(size_t datapath_bytes);

} // namespace mithril::sim

#endif // MITHRIL_SIM_PERF_MODEL_H
