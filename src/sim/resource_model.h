/**
 * @file
 * FPGA chip-resource ledger (Tables 2 and 4, Section 7.4.3).
 *
 * Synthesis results for the prototype's modules are published constants
 * in the paper; this model records them, derives pipeline/device
 * feasibility (how many pipelines fit a VC707- or KU15P-class part),
 * and computes the resource-efficiency comparisons: GB/s per KLUT for
 * the compression cores (Table 4) and KLUTs per GB/s for MithriLog
 * versus a hypothetical HARE + LZRW accelerator (Section 7.4.3).
 */
#ifndef MITHRIL_SIM_RESOURCE_MODEL_H
#define MITHRIL_SIM_RESOURCE_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace mithril::sim {

/** LUT/BRAM cost of one module. */
struct ModuleCost {
    std::string name;
    uint32_t luts;
    uint32_t ramb36;
    uint32_t ramb18;
    /** Instances per filter pipeline (0 = whole-design entry). */
    uint32_t per_pipeline;
};

/** Device capacity (for feasibility checks). */
struct DeviceCapacity {
    std::string name;
    uint32_t luts;
    uint32_t ramb36;
    uint32_t ramb18;
};

/** Throughput/area data point for a compression core (Table 4). */
struct CompressionCore {
    std::string name;
    double gbps;       ///< decompression throughput, GB/s
    double kluts;      ///< thousands of LUTs
    std::string source;
    double gbpsPerKlut() const { return gbps / kluts; }
};

/** The prototype's resource ledger. */
class ResourceModel
{
  public:
    ResourceModel();

    /** Module costs as synthesized (Table 2 rows). */
    const std::vector<ModuleCost> &modules() const { return modules_; }

    /** Published per-pipeline and whole-design costs (Table 2). */
    ModuleCost pipelineCost() const;
    ModuleCost totalCost() const;

    /** Sum of component costs for one pipeline (model cross-check;
     *  slightly below the synthesized pipeline, which includes glue). */
    ModuleCost pipelineComponentSum() const;

    /** The Virtex-7 (VC707) part used by the prototype. */
    static DeviceCapacity vc707();
    /** The KU15P part in Samsung's SmartSSD. */
    static DeviceCapacity ku15p();

    /** Pipelines of the synthesized cost that fit @p device, after
     *  reserving @p infrastructure_luts for PCIe/flash/links. */
    uint32_t pipelinesFitting(const DeviceCapacity &device,
                              uint32_t infrastructure_luts) const;

    /** Table 4's compression-core comparison (LZAH last). */
    static std::vector<CompressionCore> compressionCores();

    /** KLUTs needed per GB/s: MithriLog filter + LZAH (Section 7.4.3). */
    static double mithrilKlutPerGbps();

    /** KLUTs per GB/s for HARE (400 MB/s @ ~55 KLE) + LZRW decompressor,
     *  the hypothetical regex-based competitor of Section 7.4.3. */
    static double hareKlutPerGbps();

  private:
    std::vector<ModuleCost> modules_;
};

} // namespace mithril::sim

#endif // MITHRIL_SIM_RESOURCE_MODEL_H
