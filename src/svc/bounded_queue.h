/**
 * @file
 * Bounded MPMC queue for the service layer's worker pool.
 *
 * A deliberately simple mutex + condition-variable queue: every svc
 * concurrency test runs under the ThreadSanitizer tier, and a queue
 * whose correctness is obvious under a single lock is worth more here
 * than a lock-free one whose memory ordering must be re-argued every
 * PR. Throughput is not queue-bound: each popped item is a whole
 * ingest batch or a per-shard query, thousands of times the cost of
 * one lock handoff.
 *
 * The lock is an annotated mithril::Mutex and every piece of queue
 * state is MITHRIL_GUARDED_BY it, so `-Wthread-safety` (DESIGN.md
 * §13) proves statically that no method touches the deque or the
 * closed flag outside the lock — the static complement to the TSan
 * tier's dynamic check.
 *
 * close() wakes every waiter; after it, push() fails and pop() drains
 * the remaining items before reporting exhaustion.
 */
#ifndef MITHRIL_SVC_BOUNDED_QUEUE_H
#define MITHRIL_SVC_BOUNDED_QUEUE_H

#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"

namespace mithril::svc {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /** Blocks until space is available; false if the queue is closed. */
    bool
    push(T item)
    {
        MutexLock lock(mu_);
        while (!closed_ && items_.size() >= capacity_) {
            not_full_.wait(mu_);
        }
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        not_empty_.notifyOne();
        return true;
    }

    /** Non-blocking push; false when full or closed (item untouched
     *  in that case — the caller keeps ownership). */
    bool
    tryPush(T &item)
    {
        MutexLock lock(mu_);
        if (closed_ || items_.size() >= capacity_) {
            return false;
        }
        items_.push_back(std::move(item));
        not_empty_.notifyOne();
        return true;
    }

    /** Blocks until an item arrives; empty optional once the queue is
     *  closed *and* drained. */
    std::optional<T>
    pop()
    {
        MutexLock lock(mu_);
        while (!closed_ && items_.empty()) {
            not_empty_.wait(mu_);
        }
        if (items_.empty()) {
            return std::nullopt;
        }
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notifyOne();
        return item;
    }

    /** Wakes every producer and consumer; push() fails from now on. */
    void
    close()
    {
        MutexLock lock(mu_);
        closed_ = true;
        not_empty_.notifyAll();
        not_full_.notifyAll();
    }

    size_t
    size() const
    {
        MutexLock lock(mu_);
        return items_.size();
    }

  private:
    const size_t capacity_;
    mutable Mutex mu_;
    CondVar not_empty_;
    CondVar not_full_;
    std::deque<T> items_ MITHRIL_GUARDED_BY(mu_);
    bool closed_ MITHRIL_GUARDED_BY(mu_) = false;
};

} // namespace mithril::svc

#endif // MITHRIL_SVC_BOUNDED_QUEUE_H
