/**
 * @file
 * Bounded MPMC queue for the service layer's worker pool.
 *
 * A deliberately simple mutex + condition-variable queue: every svc
 * concurrency test runs under the ThreadSanitizer tier, and a queue
 * whose correctness is obvious under a single lock is worth more here
 * than a lock-free one whose memory ordering must be re-argued every
 * PR. Throughput is not queue-bound: each popped item is a whole
 * ingest batch or a per-shard query, thousands of times the cost of
 * one lock handoff.
 *
 * close() wakes every waiter; after it, push() fails and pop() drains
 * the remaining items before reporting exhaustion.
 */
#ifndef MITHRIL_SVC_BOUNDED_QUEUE_H
#define MITHRIL_SVC_BOUNDED_QUEUE_H

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mithril::svc {

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /** Blocks until space is available; false if the queue is closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_) {
            return false;
        }
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /** Non-blocking push; false when full or closed (item untouched
     *  in that case — the caller keeps ownership). */
    bool
    tryPush(T &item)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || items_.size() >= capacity_) {
            return false;
        }
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /** Blocks until an item arrives; empty optional once the queue is
     *  closed *and* drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) {
            return std::nullopt;
        }
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    /** Wakes every producer and consumer; push() fails from now on. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace mithril::svc

#endif // MITHRIL_SVC_BOUNDED_QUEUE_H
