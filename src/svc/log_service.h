/**
 * @file
 * mithril::svc — the sharded, multi-threaded log service layer.
 *
 * The paper's device exposes four independent filter pipelines; the
 * host side mirrors that shape here. A LogService owns N *shards*,
 * each a fully independent core::MithriLog (its own SsdModel, journal,
 * inverted index, and accelerator instance), plus a fixed pool of M
 * worker threads fed by bounded work queues:
 *
 *   ingest  — append() routes each line to a shard (round-robin or
 *             hash-by-first-token), buffers it into the shard's open
 *             batch, and hands full batches to the pool. Each shard's
 *             batches apply strictly in FIFO order under the shard's
 *             lock, so the per-shard durable-commit invariants
 *             (DESIGN.md §10) hold unchanged while shards proceed
 *             concurrently. When a shard's batch queue is full,
 *             append() answers kResourceExhausted — admission control
 *             instead of unbounded memory.
 *   query   — parsed/validated once, then fanned out to every shard in
 *             parallel (each shard's accelerator compiles and runs the
 *             same query program over that shard's pages). Per-shard
 *             results merge deterministically: kept lines concatenate
 *             in (shard, shard-local line order) — independent of
 *             worker count or completion order — and the SimTime
 *             roll-up takes max-over-shards for the fanned-out phases
 *             (the shards run in parallel) while scalar counts sum.
 *
 * Thread-safety model (annotated for -Wthread-safety, DESIGN.md §13,
 * and audited dynamically by the TSan tier):
 *   - each shard carries two locks, never held together: `mu` guards
 *     the producer-facing queue state (open batch, backlog, flags) so
 *     append() only ever pays a brief queue push, and `log_mu`
 *     serializes every touch of the shard's MithriLog (batch apply,
 *     query, flush, recovery) so the single-threaded core never sees
 *     two threads; every guarded field carries MITHRIL_GUARDED_BY and
 *     the lock-order lint's declared table pins which locks may nest;
 *   - per-shard FIFO apply order is guaranteed by a single-drainer
 *     flag (`draining`), not by lock order;
 *   - the shared obs::MetricsRegistry / obs::Tracer are internally
 *     synchronized (atomic counters, mutexed lookups/ring);
 *   - routing state is atomic; idle tracking has its own mutex +
 *     condvar.
 *
 * Determinism: routing happens on the caller's thread in append order,
 * so shard assignment — and therefore every shard's page contents,
 * SimTime, and query results — is bit-identical for any worker count.
 */
#ifndef MITHRIL_SVC_LOG_SERVICE_H
#define MITHRIL_SVC_LOG_SERVICE_H

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/wall_timer.h"
#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "svc/bounded_queue.h"

namespace mithril::svc {

/** How append() picks the destination shard for a line. */
enum class RoutingPolicy {
    kRoundRobin,  ///< strict rotation — perfect balance, no locality
    kHashToken,   ///< hash of the line's first token — keeps a
                  ///< template's lines together at the cost of skew
};

/** Service configuration. */
struct LogServiceConfig {
    /** Independent MithriLog partitions (the unit of parallelism). */
    size_t shards = 4;
    /** Worker threads shared by ingest batches and query fan-out. */
    size_t threads = 4;
    RoutingPolicy routing = RoutingPolicy::kRoundRobin;
    /** Lines buffered per shard before a batch is handed to the pool. */
    size_t batch_lines = 256;
    /** Full batches a shard may queue before append() answers
     *  kResourceExhausted (the backpressure bound). */
    size_t queue_depth = 8;
    /** Base configuration for every shard's MithriLog. The metrics /
     *  tracer fields here are overridden by the service-level ones. */
    core::MithriLogConfig shard{};
    /**
     * Per-shard background checkpoint policy: after a batch applies,
     * the drainer checkpoints its shard once the shard has sealed this
     * many data pages since its last checkpoint (0 disables). Runs
     * under the shard's log_mu between batches — never mid-batch — so
     * the ingest path observes checkpoint latency as ordinary apply
     * time and the FIFO/durability invariants are untouched.
     */
    uint64_t checkpoint_every_pages = 0;
    /** Per-shard read/write fault plans, parsed from this FaultPlan
     *  spec with the seed re-derived per shard (seed ^ mix64(shard+1))
     *  so shards draw independent, reproducible fault streams. Empty =
     *  no injection. */
    std::string fault_spec;
    /** Shared registry/tracer (`svc.*` plus every shard's subsystems);
     *  when null the service owns private instances. */
    obs::MetricsRegistry *metrics = nullptr;
    obs::Tracer *tracer = nullptr;
};

/** Merged result of one fanned-out query. */
struct ServiceQueryResult {
    uint64_t matched_lines = 0;
    /** Kept lines, concatenated in shard order (shard-local order
     *  within); byte-identical across worker counts. */
    std::vector<accel::KeptLine> lines;
    /** Typed-tier shard-local line numbers, parallel to `lines` when
     *  the batch carried typed predicates (empty otherwise). */
    std::vector<uint64_t> line_numbers;
    std::vector<uint64_t> matched_per_query;

    uint64_t pages_scanned = 0;
    uint64_t pages_total = 0;
    uint64_t pages_dropped = 0;
    uint64_t bytes_scanned = 0;

    /** Modeled roll-up: shards run in parallel, so each phase (and the
     *  total) is the max over shards; one shard's serialized interior
     *  structure is preserved inside its own breakdown. */
    SimTime index_time;
    SimTime storage_time;
    SimTime compute_time;
    SimTime total_time;

    /** Aggregated breakdown (times max-over-shards, counts summed). */
    core::QueryBreakdown breakdown;
    /** Each shard's own breakdown, indexed by shard. */
    std::vector<core::QueryBreakdown> per_shard;

    /** Host-measured fan-out wall time (merge included). */
    double wall_seconds = 0.0;

    /** Load imbalance across shards in percent:
     *  100 * (1 - mean/max) over per-shard modeled total time.
     *  0 = perfectly balanced; rises as one shard paces the fan-out. */
    double shardImbalancePct() const;
};

/**
 * The sharded log service. All public entry points are safe to call
 * from any number of threads concurrently (multi-producer ingest,
 * queries overlapping ingest); see the file comment for the model.
 */
class LogService
{
  public:
    explicit LogService(LogServiceConfig config = LogServiceConfig{});
    ~LogService();

    LogService(const LogService &) = delete;
    LogService &operator=(const LogService &) = delete;

    // ---- ingest --------------------------------------------------------

    /**
     * Routes one line to its shard and buffers it.
     * @retval kResourceExhausted the shard's batch queue is full
     *         (admission control) — nothing was accepted; retry after
     *         the backlog drains.
     * @retval kFailedPrecondition the target shard is a recovered,
     *         read-only store (see recoverShard(); reopenShard()
     *         re-admits it).
     * Any sticky shard ingest error (device fault mid-batch) is
     * reported on the next append() to that shard.
     */
    [[nodiscard]] Status append(std::string_view line);

    /** Appends newline-separated text line by line. */
    [[nodiscard]] Status appendText(std::string_view text);

    /**
     * Drains every queued batch, then seals each shard's open page and
     * flushes its index — the service-wide repeatable checkpoint.
     */
    [[nodiscard]] Status flush();

    /** Drains, then runs each shard's terminal durability barrier.
     *  Shards still in the recovered read-only state are skipped (their
     *  journal is frozen until reopenShard()); a shard brought back
     *  live by reopenShard() seals like a fresh one. */
    [[nodiscard]] Status seal();

    /** Blocks until every queued ingest batch has been applied. */
    void drain();

    // ---- query ---------------------------------------------------------

    /** Runs @p q on every shard in parallel and merges the results. */
    [[nodiscard]] Status query(const query::Query &q,
                               ServiceQueryResult *out);

    /** Parses once, then fans out. */
    [[nodiscard]] Status query(std::string_view query_text,
                               ServiceQueryResult *out);

    // ---- recovery ------------------------------------------------------

    /**
     * Mounts a raw device image (saveDeviceImage dump) into shard
     * @p shard, which must still be empty. The shard comes back
     * sealed+recovered: it serves queries but answers ingest with
     * kFailedPrecondition, and counts into the `svc.shards_readonly`
     * gauge — a degraded-but-explicit state instead of a generic
     * error from deep in the stack. reopenShard() flips it back live.
     */
    [[nodiscard]] Status recoverShard(size_t shard,
                                      const std::string &device_image);

    /**
     * Brings a recovered read-only shard back live: re-opens its
     * journal under a fresh generation (core::MithriLog::reopen(),
     * DESIGN.md §10) and re-admits the shard to ingest. The shard was
     * never taken out of the deterministic routing rotation — a
     * read-only shard bounces its appends with kFailedPrecondition —
     * so after reopen the accepted-line → shard assignment is again a
     * pure function of the accepted sequence. Decrements the
     * `svc.shards_readonly` gauge and counts into
     * `svc.shards_reopened`.
     * @retval kFailedPrecondition the shard is not in the recovered
     *         read-only state, or its store carries a durable seal
     *         (seal is terminal across recovery).
     */
    [[nodiscard]] Status reopenShard(size_t shard);

    // ---- introspection -------------------------------------------------

    size_t shardCount() const { return shards_.size(); }
    size_t threadCount() const { return workers_.size(); }

    /** Sum of every shard's ingested lines / raw bytes. Quiesce
     *  (drain/flush) first for an exact snapshot. */
    uint64_t lineCount() const;
    uint64_t rawBytes() const;

    /** Shards currently in the recovered read-only state. */
    size_t readonlyShards() const;

    /** Direct shard access for tests and benches. Only valid while
     *  the service is quiesced (drained, no concurrent append/query) —
     *  which is why the guarded-pointee dereference is exempted from
     *  the analysis here instead of taking log_mu. */
    core::MithriLog &
    shard(size_t i) MITHRIL_NO_THREAD_SAFETY_ANALYSIS
    {
        return *shards_[i]->log;
    }

    obs::MetricsRegistry &metrics() { return *metrics_; }
    obs::Tracer &tracer() { return *tracer_; }

  private:
    struct Shard {
        /** Guards the queue state below (open/batches/draining/
         *  readonly/error). Never held across a log operation. */
        Mutex mu;
        /** Serializes all access to `log` (batch apply, query, flush,
         *  recovery). Never acquired while holding `mu` — the
         *  lock-order lint's declared table enforces that pair. */
        Mutex log_mu;

        /** The shard's store: the pointer is set once at construction,
         *  the pointee is only ever touched under log_mu. */
        std::unique_ptr<core::MithriLog> log
            MITHRIL_PT_GUARDED_BY(log_mu);
        std::unique_ptr<fault::FaultPlan> fault;

        /** Lines accumulating toward the next batch. */
        std::vector<std::string> open MITHRIL_GUARDED_BY(mu);
        /** One queued batch, timestamped at enqueue so the drain can
         *  attribute its queue wait (`svc.queue_wait.wall_ns`). */
        struct QueuedBatch {
            std::vector<std::string> lines;
            WallTimer waited;
        };
        /** Full batches awaiting a worker, FIFO, bounded by
         *  queue_depth. */
        std::deque<QueuedBatch> batches MITHRIL_GUARDED_BY(mu);
        /** A drain task for this shard is queued or running. */
        bool draining MITHRIL_GUARDED_BY(mu) = false;
        /** Data pages in the shard at its last checkpoint (the policy
         *  trigger's baseline); touched only by the drainer. */
        uint64_t checkpointed_pages MITHRIL_GUARDED_BY(log_mu) = 0;
        /** Recovered read-only shard (kFailedPrecondition on ingest). */
        bool readonly MITHRIL_GUARDED_BY(mu) = false;
        /** First ingest failure; sticky until recovery. */
        Status error MITHRIL_GUARDED_BY(mu) = Status::ok();
    };

    /** One unit of pool work. */
    struct Task {
        /** Shard to drain (ingest), or a query closure. */
        size_t shard = 0;
        std::function<void()> run;  ///< when set, a query-side task
    };

    size_t routeLine(std::string_view line);
    void workerLoop();
    /** Applies up to queue_depth batches of shard @p si, then either
     *  marks it idle or re-queues itself (fairness under M < N). */
    void drainShard(size_t si);
    /** Schedules a drain task for @p si unless one is in flight.
     *  Call *without* holding the shard mutex. */
    void scheduleDrain(size_t si);
    void noteBatchEnqueued();
    void noteBatchDone();
    void mergeResults(std::vector<core::QueryResult> &shard_results,
                      double wall_seconds, ServiceQueryResult *out);

    LogServiceConfig config_;
    std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
    std::unique_ptr<obs::Tracer> owned_tracer_;
    obs::MetricsRegistry *metrics_ = nullptr;
    obs::Tracer *tracer_ = nullptr;

    /** Hot-path svc.* counters, resolved once. */
    struct SvcCounters {
        obs::Counter *lines_routed = nullptr;
        obs::Counter *lines_rejected = nullptr;
        obs::Counter *batches_enqueued = nullptr;
        obs::Counter *batches_processed = nullptr;
        obs::Counter *ingest_errors = nullptr;
        obs::Counter *queries = nullptr;
        obs::Counter *shard_queries = nullptr;
        obs::Counter *checkpoints = nullptr;
        obs::LogHistogram *batch_lines = nullptr;
        obs::LogHistogram *queue_depth = nullptr;
    } counters_;

    /** Per-stage latency histograms (obs/histogram.h): the request
     *  path from enqueue to merge. Wall-only stages (queue wait,
     *  merge) have no modeled cost; the rest carry both domains. */
    struct SvcStages {
        obs::StageLatency queue_wait;   ///< batch enqueue -> dequeue
        obs::StageLatency batch_apply;  ///< batch ingest into the shard
        obs::StageLatency shard_query;  ///< one shard's query run
        obs::StageLatency query_fanout; ///< fan-out + merge, end to end
        obs::StageLatency merge;        ///< deterministic result merge
    } stages_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<uint64_t> next_shard_{0};
    /** Shards in the recovered read-only state (gauge + accessor
     *  without taking every shard lock). */
    std::atomic<size_t> readonly_count_{0};

    BoundedQueue<Task> tasks_;
    std::vector<std::thread> workers_;

    /** Ingest quiescence: queued-but-unapplied batches. idle_mu_ is
     *  the one lock that may be acquired while a shard's `mu` is held
     *  (noteBatchEnqueued() under append/flush) — the declared
     *  shard-queue → svc-idle edge in the lock-order table. */
    Mutex idle_mu_;
    CondVar idle_cv_;
    uint64_t pending_batches_ MITHRIL_GUARDED_BY(idle_mu_) = 0;
};

} // namespace mithril::svc

#endif // MITHRIL_SVC_LOG_SERVICE_H
