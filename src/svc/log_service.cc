#include "svc/log_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/hash.h"
#include "common/text.h"
#include "common/wall_timer.h"
#include "query/parser.h"

namespace mithril::svc {

namespace {

/** Construction-time config normalization: zero shards/threads/bounds
 *  would deadlock or divide by zero, so they clamp to the minimum
 *  working service instead. */
LogServiceConfig
normalize(LogServiceConfig config)
{
    config.shards = std::max<size_t>(1, config.shards);
    config.threads = std::max<size_t>(1, config.threads);
    config.batch_lines = std::max<size_t>(1, config.batch_lines);
    config.queue_depth = std::max<size_t>(1, config.queue_depth);
    return config;
}

} // namespace

LogService::LogService(LogServiceConfig config)
    : config_(normalize(std::move(config))),
      tasks_(config_.shards * 4 + 64)
{
    if (config_.metrics != nullptr) {
        metrics_ = config_.metrics;
    } else {
        owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }
    if (config_.tracer != nullptr) {
        tracer_ = config_.tracer;
    } else {
        owned_tracer_ = std::make_unique<obs::Tracer>();
        tracer_ = owned_tracer_.get();
    }
    counters_.lines_routed = &metrics_->counter("svc.lines_routed");
    counters_.lines_rejected = &metrics_->counter("svc.lines_rejected");
    counters_.batches_enqueued =
        &metrics_->counter("svc.batches_enqueued");
    counters_.batches_processed =
        &metrics_->counter("svc.batches_processed");
    counters_.ingest_errors = &metrics_->counter("svc.ingest_errors");
    counters_.queries = &metrics_->counter("svc.queries");
    counters_.shard_queries = &metrics_->counter("svc.shard_queries");
    counters_.checkpoints = &metrics_->counter("svc.checkpoints");
    counters_.batch_lines = &metrics_->histogram("svc.batch_lines");
    counters_.queue_depth = &metrics_->histogram("svc.queue_depth");
    stages_.queue_wait = obs::StageLatency(metrics_, "svc.queue_wait");
    stages_.batch_apply =
        obs::StageLatency(metrics_, "svc.batch_apply");
    stages_.shard_query =
        obs::StageLatency(metrics_, "svc.shard_query");
    stages_.query_fanout =
        obs::StageLatency(metrics_, "svc.query_fanout");
    stages_.merge = obs::StageLatency(metrics_, "svc.merge");
    metrics_->gauge("svc.shards")
        .set(static_cast<double>(config_.shards));
    metrics_->gauge("svc.threads")
        .set(static_cast<double>(config_.threads));
    metrics_->gauge("svc.shards_readonly").set(0.0);
    // Registered up front so a service that never reopens still
    // publishes the counter at zero.
    metrics_->counter("svc.shards_reopened");

    fault::FaultPlanConfig fault_config;
    bool with_faults = !config_.fault_spec.empty();
    if (with_faults) {
        Status parsed =
            fault::FaultPlan::parse(config_.fault_spec, &fault_config);
        // A malformed spec is a caller bug (the CLI validates before
        // constructing); failing loudly beats silently running clean.
        MITHRIL_ASSERT(parsed.isOk());
    }

    shards_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; ++i) {
        auto shard = std::make_unique<Shard>();
        core::MithriLogConfig shard_config = config_.shard;
        shard_config.metrics = metrics_;
        shard_config.tracer = tracer_;
        shard->log = std::make_unique<core::MithriLog>(shard_config);
        if (with_faults) {
            // Independent, reproducible fault streams per shard: the
            // same spec, seed re-derived so shard i's draws never
            // depend on shard j's traffic.
            fault::FaultPlanConfig fc = fault_config;
            fc.seed ^= mix64(static_cast<uint64_t>(i) + 1);
            shard->fault = std::make_unique<fault::FaultPlan>(fc);
            MutexLock log_lock(shard->log_mu);
            shard->log->ssd().attachFaultPlan(shard->fault.get());
        }
        shards_.push_back(std::move(shard));
    }

    workers_.reserve(config_.threads);
    for (size_t i = 0; i < config_.threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

LogService::~LogService()
{
    tasks_.close();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

void
LogService::workerLoop()
{
    while (std::optional<Task> task = tasks_.pop()) {
        if (task->run) {
            task->run();
        } else {
            drainShard(task->shard);
        }
    }
}

size_t
LogService::routeLine(std::string_view line)
{
    if (config_.routing == RoutingPolicy::kRoundRobin ||
        shards_.size() == 1) {
        // relaxed: pure rotation counter — no data is published
        // through this increment, only the slot number matters.
        return next_shard_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size();
    }
    // Hash-by-token: a template's lines land on one shard (locality
    // for template-heavy queries) at the price of skew the imbalance
    // metric makes visible.
    std::string_view first;
    forEachToken(line, [&](std::string_view tok, uint32_t) {
        first = tok;
        return false;
    });
    if (first.empty()) {
        first = line;
    }
    return hash64(first) % shards_.size();
}

Status
LogService::append(std::string_view line)
{
    size_t si = routeLine(line);
    Shard &s = *shards_[si];
    bool need_schedule = false;
    {
        MutexLock lock(s.mu);
        if (s.readonly) {
            return Status::failedPrecondition(
                "shard " + std::to_string(si) +
                " is a recovered read-only store");
        }
        if (!s.error.isOk()) {
            return s.error;
        }
        // Admission control: reject *before* accepting a line that
        // would complete a batch with nowhere to go.
        if (s.open.size() + 1 >= config_.batch_lines &&
            s.batches.size() >= config_.queue_depth) {
            counters_.lines_rejected->add();
            if (config_.routing == RoutingPolicy::kRoundRobin ||
                shards_.size() == 1) {
                // Give the rotation slot back: whether this append got
                // rejected depends on worker timing, so a consumed slot
                // would make the retry's shard — and from there every
                // page boundary — schedule-dependent. Returning it
                // keeps routing a pure function of the accepted line
                // sequence.
                // relaxed: same rotation counter as routeLine().
                next_shard_.fetch_sub(1, std::memory_order_relaxed);
            }
            return Status::resourceExhausted(
                "shard " + std::to_string(si) + " backlog full (" +
                std::to_string(s.batches.size()) +
                " batches queued); retry after it drains");
        }
        s.open.emplace_back(line);
        if (s.open.size() >= config_.batch_lines) {
            counters_.queue_depth->record(s.batches.size());
            s.batches.push_back(
                Shard::QueuedBatch{std::move(s.open), WallTimer()});
            s.open = std::vector<std::string>();
            counters_.batches_enqueued->add();
            noteBatchEnqueued();
            if (!s.draining) {
                s.draining = true;
                need_schedule = true;
            }
        }
    }
    counters_.lines_routed->add();
    if (need_schedule) {
        scheduleDrain(si);
    }
    return Status::ok();
}

Status
LogService::appendText(std::string_view text)
{
    Status status = Status::ok();
    forEachLine(text, [&](std::string_view line) {
        if (status.isOk()) {
            status = append(line);
        }
    });
    return status;
}

void
LogService::scheduleDrain(size_t si)
{
    Task task;
    task.shard = si;
    if (!tasks_.push(std::move(task))) {
        // Pool shut down mid-ingest (destructor racing a producer);
        // un-mark the shard so state stays consistent.
        MutexLock lock(shards_[si]->mu);
        shards_[si]->draining = false;
    }
}

void
LogService::drainShard(size_t si)
{
    Shard &s = *shards_[si];
    // Bounded work per task so M workers stay fair across N shards
    // under sustained ingest; the tail re-queues itself.
    for (size_t applied = 0; applied < config_.queue_depth; ++applied) {
        std::vector<std::string> batch;
        bool skip;
        {
            MutexLock lock(s.mu);
            if (s.batches.empty()) {
                s.draining = false;
                return;
            }
            double waited = s.batches.front().waited.seconds();
            stages_.queue_wait.recordWallNs(
                static_cast<uint64_t>(waited * 1e9));
            batch = std::move(s.batches.front().lines);
            s.batches.pop_front();
            // A shard that already failed (or went read-only) skips
            // its remaining backlog — the device is dead or the store
            // sealed; replaying onto it would only repeat the error.
            skip = !s.error.isOk() || s.readonly;
        }
        // Apply outside `mu` so producers only ever wait on a queue
        // push, never on LZAH encoding. Per-shard FIFO order still
        // holds: this is the shard's single drainer (`draining` flag).
        Status batch_error = Status::ok();
        if (!skip) {
            MutexLock log_lock(s.log_mu);
            obs::Span span = tracer_->span("svc.ingest_batch", "svc");
            obs::StageTimer apply_timer(&stages_.batch_apply);
            uint64_t busy_start_ps = s.log->ssd().elapsed().ps();
            for (const std::string &line : batch) {
                Status st = s.log->ingestLine(line);
                if (!st.isOk()) {
                    batch_error = st;
                    break;
                }
            }
            uint64_t busy_end_ps = s.log->ssd().elapsed().ps();
            SimTime apply_busy =
                SimTime::picoseconds(busy_end_ps - busy_start_ps);
            apply_timer.setSimDuration(apply_busy);
            span.setSimDuration(apply_busy);
            // Background checkpoint policy: between batches (never
            // mid-batch), once the shard grew enough since its last
            // checkpoint. A failure is a device death — sticky, like
            // any other ingest error on this shard.
            if (batch_error.isOk() &&
                config_.checkpoint_every_pages > 0 &&
                s.log->dataPageCount() - s.checkpointed_pages >=
                    config_.checkpoint_every_pages) {
                obs::Span ck_span =
                    tracer_->span("svc.checkpoint", "svc");
                uint64_t ck_start_ps = s.log->ssd().elapsed().ps();
                batch_error = s.log->checkpoint();
                ck_span.setSimDuration(SimTime::picoseconds(
                    s.log->ssd().elapsed().ps() - ck_start_ps));
                if (batch_error.isOk()) {
                    s.checkpointed_pages = s.log->dataPageCount();
                    counters_.checkpoints->add();
                }
            }
        }
        if (!batch_error.isOk()) {
            counters_.ingest_errors->add();
            MutexLock lock(s.mu);
            if (s.error.isOk()) {
                // Sticky: reported on the next append() to this shard.
                s.error = batch_error;
            }
        }
        counters_.batches_processed->add();
        counters_.batch_lines->record(batch.size());
        noteBatchDone();
    }
    bool more;
    {
        MutexLock lock(s.mu);
        more = !s.batches.empty();
        if (!more) {
            s.draining = false;
        }
    }
    if (more) {
        scheduleDrain(si);
    }
}

void
LogService::noteBatchEnqueued()
{
    MutexLock lock(idle_mu_);
    ++pending_batches_;
}

void
LogService::noteBatchDone()
{
    MutexLock lock(idle_mu_);
    --pending_batches_;
    if (pending_batches_ == 0) {
        idle_cv_.notifyAll();
    }
}

void
LogService::drain()
{
    MutexLock lock(idle_mu_);
    while (pending_batches_ != 0) {
        idle_cv_.wait(idle_mu_);
    }
}

Status
LogService::flush()
{
    // Hand every open (partial) batch to the pool. This may exceed
    // queue_depth by one batch per shard — a caller-driven checkpoint
    // is not admission-controlled traffic.
    for (size_t si = 0; si < shards_.size(); ++si) {
        Shard &s = *shards_[si];
        bool need_schedule = false;
        {
            MutexLock lock(s.mu);
            if (s.open.empty() || s.readonly || !s.error.isOk()) {
                continue;
            }
            counters_.queue_depth->record(s.batches.size());
            s.batches.push_back(
                Shard::QueuedBatch{std::move(s.open), WallTimer()});
            s.open = std::vector<std::string>();
            counters_.batches_enqueued->add();
            noteBatchEnqueued();
            if (!s.draining) {
                s.draining = true;
                need_schedule = true;
            }
        }
        if (need_schedule) {
            scheduleDrain(si);
        }
    }
    drain();
    Status first = Status::ok();
    for (const std::unique_ptr<Shard> &shard : shards_) {
        Status st = Status::ok();
        {
            MutexLock lock(shard->mu);
            if (shard->readonly) {
                continue;
            }
            st = shard->error;
        }
        if (st.isOk()) {
            MutexLock log_lock(shard->log_mu);
            st = shard->log->flush();
        }
        if (!st.isOk() && first.isOk()) {
            first = st;
        }
    }
    return first;
}

Status
LogService::seal()
{
    MITHRIL_RETURN_IF_ERROR(flush());
    Status first = Status::ok();
    for (const std::unique_ptr<Shard> &shard : shards_) {
        Status st = Status::ok();
        {
            MutexLock lock(shard->mu);
            if (shard->readonly) {
                // Still read-only from recovery: the journal is frozen
                // until reopenShard(). A reopened shard has readonly
                // cleared and seals below like a fresh one.
                continue;
            }
            st = shard->error;
        }
        if (st.isOk()) {
            MutexLock log_lock(shard->log_mu);
            st = shard->log->seal();
        }
        if (!st.isOk() && first.isOk()) {
            first = st;
        }
    }
    return first;
}

Status
LogService::query(const query::Query &q, ServiceQueryResult *out)
{
    *out = ServiceQueryResult{};
    WallTimer wall;
    obs::Span fanout = tracer_->span("svc.query_fanout", "svc");
    obs::StageTimer fanout_timer(&stages_.query_fanout);
    counters_.queries->add();

    size_t n = shards_.size();
    std::vector<core::QueryResult> results(n);
    std::vector<Status> statuses(n, Status::ok());
    Mutex done_mu;
    CondVar done_cv;
    size_t done = 0;

    for (size_t i = 0; i < n; ++i) {
        Task task;
        task.run = [this, i, n, &q, &results, &statuses, &done_mu,
                    &done_cv, &done] {
            Shard &s = *shards_[i];
            {
                MutexLock log_lock(s.log_mu);
                obs::Span span = tracer_->span("svc.shard_query", "svc");
                obs::StageTimer shard_timer(&stages_.shard_query);
                counters_.shard_queries->add();
                statuses[i] = s.log->run(q, &results[i]);
                span.setSimDuration(results[i].total_time);
                shard_timer.setSimDuration(results[i].total_time);
            }
            MutexLock lock(done_mu);
            if (++done == n) {
                done_cv.notifyAll();
            }
        };
        bool pushed = tasks_.push(std::move(task));
        MITHRIL_ASSERT(pushed);
    }
    {
        MutexLock lock(done_mu);
        while (done != n) {
            done_cv.wait(done_mu);
        }
    }

    double seconds = wall.seconds();
    mergeResults(results, seconds, out);
    fanout.setSimDuration(out->total_time);
    fanout.end();
    fanout_timer.setSimDuration(out->total_time);
    fanout_timer.end();

    for (const Status &st : statuses) {
        MITHRIL_RETURN_IF_ERROR(st);
    }
    return Status::ok();
}

Status
LogService::query(std::string_view query_text, ServiceQueryResult *out)
{
    // Compiled once: one parse + validation; every shard's accelerator
    // then programs the same query object against its own pages.
    query::Query q;
    MITHRIL_RETURN_IF_ERROR(query::parseQuery(query_text, &q));
    return query(q, out);
}

void
LogService::mergeResults(std::vector<core::QueryResult> &shard_results,
                         double wall_seconds, ServiceQueryResult *out)
{
    obs::Span span = tracer_->span("svc.merge", "svc");
    obs::StageTimer merge_timer(&stages_.merge);
    out->per_shard.reserve(shard_results.size());
    for (core::QueryResult &r : shard_results) {
        // Deterministic merge: shard index order, shard-local order
        // within — (shard, lineNo) — independent of which worker
        // finished first.
        out->matched_lines += r.matched_lines;
        out->lines.insert(out->lines.end(),
                          std::make_move_iterator(r.lines.begin()),
                          std::make_move_iterator(r.lines.end()));
        // Typed-tier line numbers stay shard-local (each shard numbers
        // its own ingest stream); shard order keeps them deterministic.
        out->line_numbers.insert(out->line_numbers.end(),
                                 r.line_numbers.begin(),
                                 r.line_numbers.end());
        if (out->matched_per_query.size() < r.matched_per_query.size()) {
            out->matched_per_query.resize(r.matched_per_query.size());
        }
        for (size_t qi = 0; qi < r.matched_per_query.size(); ++qi) {
            out->matched_per_query[qi] += r.matched_per_query[qi];
        }
        out->pages_scanned += r.pages_scanned;
        out->pages_total += r.pages_total;
        out->pages_dropped += r.pages_dropped;
        out->bytes_scanned += r.bytes_scanned;
        // Shards run concurrently: the slowest shard paces each phase
        // and the fan-out total.
        out->index_time = SimTime::max(out->index_time, r.index_time);
        out->storage_time =
            SimTime::max(out->storage_time, r.storage_time);
        out->compute_time =
            SimTime::max(out->compute_time, r.compute_time);
        out->total_time = SimTime::max(out->total_time, r.total_time);
        out->per_shard.push_back(r.breakdown);
    }
    out->wall_seconds = wall_seconds;

    core::QueryBreakdown &b = out->breakdown;
    b.index_time = out->index_time;
    b.storage_time = out->storage_time;
    b.compute_time = out->compute_time;
    b.total_time = out->total_time;
    b.pages_scanned = out->pages_scanned;
    b.pages_total = out->pages_total;
    b.pages_dropped = out->pages_dropped;
    b.matched_lines = out->matched_lines;
    b.wall_seconds = wall_seconds;
    for (const core::QueryBreakdown &sb : out->per_shard) {
        b.candidate_pages += sb.candidate_pages;
        b.pages_with_matches += sb.pages_with_matches;
        b.false_positive_pages += sb.false_positive_pages;
        b.read_retries += sb.read_retries;
        b.used_fallback = b.used_fallback || sb.used_fallback;
        b.planned_full_scan =
            b.planned_full_scan || sb.planned_full_scan;
        b.degraded_index_scan =
            b.degraded_index_scan || sb.degraded_index_scan;
        b.degraded_software_scan =
            b.degraded_software_scan || sb.degraded_software_scan;
        b.typed_predicates += sb.typed_predicates;
        b.typed_index_pages += sb.typed_index_pages;
        b.typed_index_bytes += sb.typed_index_bytes;
        b.degraded_typed_scan =
            b.degraded_typed_scan || sb.degraded_typed_scan;
    }
    metrics_->gauge("svc.shard_imbalance_pct")
        .set(out->shardImbalancePct());
}

double
ServiceQueryResult::shardImbalancePct() const
{
    if (per_shard.empty()) {
        return 0.0;
    }
    uint64_t max_ps = 0;
    uint64_t sum_ps = 0;
    for (const core::QueryBreakdown &b : per_shard) {
        max_ps = std::max<uint64_t>(max_ps, b.total_time.ps());
        sum_ps += b.total_time.ps();
    }
    if (max_ps == 0) {
        return 0.0;
    }
    double mean = static_cast<double>(sum_ps) /
                  static_cast<double>(per_shard.size());
    return 100.0 * (1.0 - mean / static_cast<double>(max_ps));
}

Status
LogService::recoverShard(size_t shard, const std::string &device_image)
{
    if (shard >= shards_.size()) {
        return Status::invalidArgument("no shard " +
                                       std::to_string(shard));
    }
    // The caller must quiesce the service around recovery (mount time,
    // not steady state). Locks still cover each individual step so a
    // misuse shows up as a precondition error, not a race.
    Shard &s = *shards_[shard];
    {
        MutexLock lock(s.mu);
        if (!s.open.empty() || !s.batches.empty() || s.draining) {
            return Status::failedPrecondition(
                "recoverShard requires an empty, quiesced shard");
        }
    }
    bool recovered;
    {
        MutexLock log_lock(s.log_mu);
        if (s.log->lineCount() != 0) {
            return Status::failedPrecondition(
                "recoverShard requires an empty, quiesced shard");
        }
        MITHRIL_RETURN_IF_ERROR(s.log->recover(device_image));
        recovered = s.log->recovered();
    }
    {
        MutexLock lock(s.mu);
        s.readonly = recovered;
        s.error = Status::ok();
    }
    if (recovered) {
        // relaxed: monotonic count; readers only ever want a snapshot
        // and the gauge below carries the published value.
        size_t now = readonly_count_.fetch_add(
                         1, std::memory_order_relaxed) + 1;
        metrics_->gauge("svc.shards_readonly")
            .set(static_cast<double>(now));
    }
    return Status::ok();
}

Status
LogService::reopenShard(size_t shard)
{
    if (shard >= shards_.size()) {
        return Status::invalidArgument("no shard " +
                                       std::to_string(shard));
    }
    // Mount-time operation like recoverShard(): the caller quiesces
    // the service around it. Each step still takes its own lock so a
    // misuse surfaces as a precondition error, not a race.
    Shard &s = *shards_[shard];
    {
        MutexLock lock(s.mu);
        if (!s.readonly) {
            return Status::failedPrecondition(
                "reopenShard requires a recovered read-only shard");
        }
    }
    {
        MutexLock log_lock(s.log_mu);
        // A sealed donor (terminal seal) or dead device refuses here;
        // the shard stays read-only.
        MITHRIL_RETURN_IF_ERROR(s.log->reopen());
    }
    {
        MutexLock lock(s.mu);
        s.readonly = false;
        s.error = Status::ok();
    }
    // relaxed: snapshot count; the gauge below carries the published
    // value, same discipline as recoverShard().
    size_t now = readonly_count_.fetch_sub(
                     1, std::memory_order_relaxed) - 1;
    metrics_->gauge("svc.shards_readonly")
        .set(static_cast<double>(now));
    metrics_->counter("svc.shards_reopened").add();
    return Status::ok();
}

uint64_t
LogService::lineCount() const
{
    uint64_t total = 0;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        MutexLock log_lock(shard->log_mu);
        total += shard->log->lineCount();
    }
    return total;
}

uint64_t
LogService::rawBytes() const
{
    uint64_t total = 0;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        MutexLock log_lock(shard->log_mu);
        total += shard->log->rawBytes();
    }
    return total;
}

size_t
LogService::readonlyShards() const
{
    // relaxed: monotonic counter snapshot; no associated data.
    return readonly_count_.load(std::memory_order_relaxed);
}

} // namespace mithril::svc
