/**
 * @file
 * Microbenchmarks: software compression/decompression throughput of
 * all four codecs on synthetic log data (google-benchmark). These are
 * host-CPU numbers; the hardware-relevant figures are in
 * bench_table4_comp_resources.
 */
#include <benchmark/benchmark.h>

#include "compress/compressor.h"
#include "loggen/log_generator.h"

using namespace mithril;

namespace {

const std::string &
corpus()
{
    static const std::string text = [] {
        loggen::LogGenerator gen(loggen::hpc4Datasets()[1]);
        return gen.generate(2 << 20);
    }();
    return text;
}

void
BM_Compress(benchmark::State &state)
{
    auto codecs = compress::allCompressors();
    const compress::Compressor &codec = *codecs[state.range(0)];
    const std::string &text = corpus();
    size_t out_size = 0;
    for (auto _ : state) {
        compress::Bytes c = codec.compress(compress::asBytes(text));
        out_size = c.size();
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
    state.SetLabel(codec.name() + " ratio=" +
                   std::to_string(compress::compressionRatio(
                       text.size(), out_size)));
}

void
BM_Decompress(benchmark::State &state)
{
    auto codecs = compress::allCompressors();
    const compress::Compressor &codec = *codecs[state.range(0)];
    const std::string &text = corpus();
    compress::Bytes compressed =
        codec.compress(compress::asBytes(text));
    for (auto _ : state) {
        compress::Bytes out;
        Status st = codec.decompress(compressed, &out);
        if (!st.isOk()) {
            state.SkipWithError(st.toString().c_str());
            return;
        }
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
    state.SetLabel(codec.name());
}

} // namespace

BENCHMARK(BM_Compress)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
