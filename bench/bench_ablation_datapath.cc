/**
 * @file
 * Ablation: datapath width (Section 7.4.1's design-space discussion).
 * For 8-, 16-, and 32-byte datapaths, computes the useful-bit ratio
 * from the real token-length distribution of each dataset, then the
 * modeled throughput and throughput-per-LUT of a 4-pipeline design at
 * that width. Reproduces the argument for the 16-byte design point:
 * 8 B needs too many pipelines per GB/s, 32 B drowns in padding.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/text.h"
#include "sim/perf_model.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

/** Useful-byte ratio of the tokenized stream at width @p w. */
double
usefulRatioAtWidth(const std::string &text, size_t w)
{
    uint64_t useful = 0, padded = 0;
    forEachLine(text, [&](std::string_view line) {
        forEachToken(line, [&](std::string_view tok, uint32_t) {
            useful += tok.size();
            padded += (tok.size() + w - 1) / w * w;
            return true;
        });
    });
    return padded ? static_cast<double>(useful) / padded : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Datapath width ablation (8/16/32 bytes)",
           "Section 7.4.1 design-space discussion");
    for (const auto &spec : loggen::hpc4Datasets()) {
        loggen::LogGenerator gen(spec);
        std::string text = gen.generate(2 << 20);
        std::printf("%s:\n", spec.name.c_str());
        std::printf("  %-8s %10s %12s %12s %14s\n", "width",
                    "useful%", "GB/s (4pl)", "KLUT (4pl)",
                    "MB/s per KLUT");
        for (size_t w : {8u, 16u, 32u}) {
            sim::PerfInputs in;
            in.datapath_bytes = w;
            in.useful_ratio = usefulRatioAtWidth(text, w);
            in.compression_ratio = 6.0;
            double tput = sim::modeledThroughput(in);
            double kluts =
                4.0 * sim::pipelineLutsAtWidth(w) / 1000.0;
            std::printf("  %-8zu %9.1f%% %12.2f %12.1f %14.1f\n", w,
                        in.useful_ratio * 100.0, tput / 1e9, kluts,
                        tput / 1e6 / kluts);
            obs::JsonRecord rec("ablation_datapath");
            rec.field("dataset", spec.name)
                .field("width_bytes", w)
                .field("useful_ratio", in.useful_ratio)
                .field("throughput_bps", tput)
                .field("kluts", kluts)
                .field("mbps_per_klut", tput / 1e6 / kluts);
            emitRecord(&rec);
        }
    }
    std::printf("\nThe 16-byte column should dominate MB/s-per-KLUT, "
                "matching the paper's\nchoice after design-space "
                "exploration.\n");
    finishBench();
    return 0;
}
