/**
 * @file
 * Table 7: average end-to-end improvement over the Splunk-like indexed
 * engine. SplunkLite runs every query single-threaded (measured); as
 * the paper does, its time is divided by 12 (the comparison host's
 * hyper-thread count) to credit it with perfect parallel scaling.
 * MithriLog times are modeled end-to-end: index traversal + page
 * streaming + accelerator compute.
 */
#include <cstdio>
#include <vector>

#include "baseline/splunk_lite.h"
#include "bench_util.h"
#include "core/mithrilog.h"

using namespace mithril;
using namespace mithril::bench;

namespace {
constexpr double kSplunkThreads = 12.0;  // paper's generous division
} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Average end-to-end improvement over Splunk-like engine",
           "Table 7");
    std::printf("%-12s %10s %14s %14s %12s\n", "dataset", "queries",
                "Splunk total", "MithriLog tot", "improvement");

    double paper[] = {9.93, 352.26, 201.20, 86.32};
    size_t d = 0;
    for (const auto &spec : loggen::hpc4Datasets()) {
        // End-to-end comparisons need enough data that scan costs
        // dominate fixed latencies on both sides.
        BenchDataset ds = makeDataset(spec, 24 << 20);

        baseline::SplunkLite splunk;
        splunk.ingest(ds.text);

        core::MithriLog system(obsConfig());
        expectOk(system.ingestText(ds.text), "ingest");
        expectOk(system.flush(), "flush");

        // All singles (capped) + all combinations, same set for both.
        std::vector<query::Query> queries;
        for (size_t i = 0; i < ds.singles.size() && i < 24; ++i) {
            queries.push_back(ds.singles[i]);
        }
        for (const auto &q : ds.pairs) {
            queries.push_back(q);
        }
        for (const auto &q : ds.eights) {
            queries.push_back(q);
        }

        double splunk_total = 0, mithril_total = 0;
        size_t ran = 0;
        for (const query::Query &q : queries) {
            core::QueryResult mr;
            if (!system.run(q, &mr).isOk() || mr.used_fallback) {
                continue;  // keep the comparison on offloaded queries
            }
            baseline::IndexedResult sr = splunk.runQuery(q);
            splunk_total += sr.elapsed_seconds / kSplunkThreads;
            mithril_total += mr.total_time.toSeconds();
            ++ran;
        }
        double improvement = mithril_total > 0
                                 ? splunk_total / mithril_total
                                 : 0.0;
        std::printf("%-12s %10zu %12.4fs %12.4fs %11.1fx "
                    "(paper %.1fx)\n",
                    spec.name.c_str(), ran, splunk_total,
                    mithril_total, improvement, paper[d]);
        obs::JsonRecord rec("table7_endtoend");
        rec.field("dataset", spec.name)
            .field("queries", ran)
            .field("splunk_seconds", splunk_total)
            .field("mithrilog_seconds", mithril_total)
            .field("improvement", improvement)
            .field("paper_improvement", paper[d]);
        emitRecord(&rec);
        ++d;
    }
    std::printf("\nSplunk times are divided by %g; MithriLog times are "
                "modeled at the\npaper's platform parameters. Absolute "
                "factors depend on this host's CPU;\nthe target is "
                "order-of-magnitude improvement, largest on "
                "scan-heavy queries.\n", kSplunkThreads);
    finishBench();
    return 0;
}
