/**
 * @file
 * Microbenchmarks for the inverted index: ingest rate (page
 * registrations per second) and lookup latency at several stored
 * depths, plus the end-to-end MithriLog ingest path.
 */
#include <benchmark/benchmark.h>

#include "core/mithrilog.h"
#include "index/inverted_index.h"
#include "loggen/log_generator.h"
#include "storage/ssd_model.h"

using namespace mithril;

namespace {

void
BM_IndexAddPage(benchmark::State &state)
{
    storage::SsdModel ssd;
    index::InvertedIndex idx(&ssd);
    std::vector<std::string> tokens;
    for (int i = 0; i < 40; ++i) {
        tokens.push_back("token" + std::to_string(i % 25));
    }
    std::vector<std::string_view> token_views(tokens.begin(),
                                              tokens.end());
    storage::PageId page = 0;
    for (auto _ : state) {
        idx.addPage(page, token_views, page);
        ++page;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void
BM_IndexLookup(benchmark::State &state)
{
    storage::SsdModel ssd;
    index::InvertedIndex idx(&ssd);
    std::vector<std::string_view> tokens{"needle"};
    for (storage::PageId p = 0;
         p < static_cast<storage::PageId>(state.range(0)); ++p) {
        idx.addPage(p, tokens, p);
    }
    idx.flush();
    for (auto _ : state) {
        auto pages = idx.lookup("needle");
        benchmark::DoNotOptimize(pages);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * state.range(0)));
}

void
BM_MithriLogIngest(benchmark::State &state)
{
    loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
    std::string text = gen.generate(1 << 20);
    for (auto _ : state) {
        core::MithriLog system;
        Status st = system.ingestText(text);
        if (!st.isOk()) {
            state.SkipWithError(st.toString().c_str());
            return;
        }
        st = system.flush();
        if (!st.isOk()) {
            state.SkipWithError(st.toString().c_str());
            return;
        }
        benchmark::DoNotOptimize(system.dataPageCount());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

} // namespace

BENCHMARK(BM_IndexAddPage);
BENCHMARK(BM_IndexLookup)->Arg(256)->Arg(4096)->Arg(65536)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MithriLogIngest)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
