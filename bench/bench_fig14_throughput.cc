/**
 * @file
 * Figure 14: total effective throughput of the four filtering-engine
 * pipelines per dataset, against the PCIe bound — the paper's headline
 * "near-storage + compression beats the external link by ~4x" result.
 *
 * The emulation runs a representative query over each compressed
 * dataset; throughput is decompressed text bytes divided by the
 * modeled pipeline time at 200 MHz, capped by the storage feed
 * (internal bandwidth x compression ratio).
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mithrilog.h"
#include "sim/perf_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Filter engine effective throughput vs PCIe", "Figure 14");
    std::printf("%-12s %10s %10s %12s %12s %12s\n", "dataset",
                "LZAH", "useful%", "filter GB/s", "bound GB/s",
                "paper GB/s");
    double paper[] = {12.62, 11.8, 11.9, 11.9};

    size_t d = 0;
    for (const auto &spec : loggen::hpc4Datasets()) {
        BenchDataset ds = makeDataset(spec, 12 << 20);
        core::MithriLog system(obsConfig());
        expectOk(system.ingestText(ds.text), "ingest");
        expectOk(system.flush(), "flush");

        std::vector<query::Query> q{ds.singles.empty()
                                        ? query::Query::allOf(
                                              std::vector<std::string>{
                                                  "ERROR"})
                                        : ds.singles[0]};
        core::QueryResult r;
        if (!system.runFullScan(q, &r).isOk()) {
            std::printf("%-12s query failed\n", spec.name.c_str());
            continue;
        }
        double eff = r.effectiveThroughput(system.rawBytes());

        sim::PerfInputs in;
        in.useful_ratio = r.useful_ratio;
        in.compression_ratio = system.compressionRatio();
        double bound = sim::modeledThroughput(in);

        std::printf("%-12s %9.2fx %9.1f%% %12.2f %12.2f %12.2f\n",
                    spec.name.c_str(), system.compressionRatio(),
                    r.useful_ratio * 100.0, eff / 1e9, bound / 1e9,
                    paper[d]);
        obs::JsonRecord rec("fig14_throughput");
        rec.field("dataset", spec.name)
            .field("lzah_ratio", system.compressionRatio())
            .field("useful_ratio", r.useful_ratio)
            .field("filter_bps", eff)
            .field("bound_bps", bound)
            .field("paper_gbps", paper[d]);
        emitRecord(&rec);
        ++d;
    }
    std::printf("\nPCIe bound: 3.1 GB/s. The filter engines exceed it "
                "~4x; datasets with\nlow LZAH ratios (BGL2-like) are "
                "storage-bound, the rest decompressor-bound.\n");
    finishBench();
    return 0;
}
