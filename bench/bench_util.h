/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench uses the same scaled synthetic datasets and the same
 * FT-tree-derived query library construction the paper describes in
 * Section 7.1: all machine-extracted template queries, plus random
 * 2-query and 8-query OR-combinations (the same combinations for every
 * system, from a fixed seed).
 */
#ifndef MITHRIL_BENCH_BENCH_UTIL_H
#define MITHRIL_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/mithrilog.h"
#include "loggen/log_generator.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "query/query.h"
#include "templates/ft_tree.h"

namespace mithril::bench {

// ---- machine-readable output -----------------------------------------
//
// Every bench accepts three optional flags (anywhere on the line):
//   --json-out=<path>      append each BENCH_JSON record to a file
//   --metrics-out=<path>   write the shared metric registry on exit
//   --trace-out=<path>     write the shared span buffer on exit
// and emits `BENCH_JSON {...}` lines on stdout alongside its
// human-readable tables, one record per reported row.

/** Parsed bench command line. */
struct BenchArgs {
    std::string json_out;
    std::string metrics_out;
    std::string trace_out;
};

inline BenchArgs &
benchArgs()
{
    static BenchArgs args;
    return args;
}

/** The registry/tracer every MithriLog in a bench reports into (one
 *  namespace across datasets; see obsConfig()). */
inline obs::MetricsRegistry &
benchMetrics()
{
    static obs::MetricsRegistry registry;
    return registry;
}

inline obs::Tracer &
benchTracer()
{
    static obs::Tracer tracer;
    return tracer;
}

/** Parses the shared flags. Call first thing in main(). */
inline void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view a = argv[i];
        auto flag = [&](std::string_view prefix, std::string *out) {
            if (a.rfind(prefix, 0) == 0) {
                *out = a.substr(prefix.size());
                return true;
            }
            return false;
        };
        flag("--json-out=", &benchArgs().json_out) ||
            flag("--metrics-out=", &benchArgs().metrics_out) ||
            flag("--trace-out=", &benchArgs().trace_out);
    }
}

/** Aborts the bench when a setup step fails: a bench that silently
 *  ingests nothing would print plausible-looking zeros. */
inline void
expectOk(const Status &status, const char *what)
{
    if (!status.isOk()) {
        std::fprintf(stderr, "%s: %s\n", what,
                     status.toString().c_str());
        std::abort();
    }
}

/** MithriLog configuration wired to the bench-wide registry/tracer. */
inline core::MithriLogConfig
obsConfig()
{
    core::MithriLogConfig config;
    config.metrics = &benchMetrics();
    config.tracer = &benchTracer();
    return config;
}

/** Emits @p record to stdout (and --json-out when given). */
inline void
emitRecord(obs::JsonRecord *record)
{
    record->emit(stdout, benchArgs().json_out);
}

/** Writes --metrics-out / --trace-out files. Call before returning
 *  from main(); harmless when the flags were not given. */
inline void
finishBench()
{
    if (!benchArgs().metrics_out.empty()) {
        Status st = obs::writeMetricsJson(benchMetrics(),
                                          benchArgs().metrics_out);
        if (!st.isOk()) {
            std::fprintf(stderr, "metrics-out: %s\n",
                         st.toString().c_str());
        }
    }
    if (!benchArgs().trace_out.empty()) {
        Status st =
            benchTracer().writeChromeTrace(benchArgs().trace_out);
        if (!st.isOk()) {
            std::fprintf(stderr, "trace-out: %s\n",
                         st.toString().c_str());
        }
    }
}

/** Scaled dataset size used by the heavier benches. */
constexpr uint64_t kBenchBytes = 6ull << 20;

/** A dataset plus its machine-extracted query library. */
struct BenchDataset {
    loggen::DatasetSpec spec;
    std::string text;
    std::vector<templates::ExtractedTemplate> templates;
    std::vector<query::Query> singles;   ///< one per template
    std::vector<query::Query> pairs;     ///< random 2-combinations
    std::vector<query::Query> eights;    ///< random 8-combinations
};

/** Generates one dataset and its query library (deterministic). */
inline BenchDataset
makeDataset(const loggen::DatasetSpec &spec,
            uint64_t bytes = kBenchBytes, size_t pair_count = 20,
            size_t eight_count = 8)
{
    BenchDataset ds;
    ds.spec = spec;
    loggen::LogGenerator gen(spec);
    ds.text = gen.generate(bytes);

    templates::FtTreeConfig cfg;
    cfg.max_depth = 8;
    // Support threshold scales with corpus size so library sizes stay
    // in the paper's range (tens to low hundreds of templates).
    cfg.template_min_support =
        std::max<uint64_t>(24, bytes / (128 << 10));
    templates::FtTree tree = templates::FtTree::build(ds.text, cfg);
    ds.templates = tree.extractTemplates();

    for (const auto &tpl : ds.templates) {
        ds.singles.push_back(templates::templateToQuery(tpl));
    }

    // Random OR-combinations, fixed seed per dataset (Section 7.1:
    // "the same set of randomly generated combinations were used for
    // all systems tested").
    Rng rng(spec.seed ^ 0xc0417b0);
    auto combine = [&](size_t k) {
        std::vector<query::Query> picked;
        for (size_t i = 0; i < k; ++i) {
            picked.push_back(
                ds.singles[rng.below(ds.singles.size())]);
        }
        return query::Query::unionOf(picked);
    };
    if (!ds.singles.empty()) {
        for (size_t i = 0; i < pair_count; ++i) {
            ds.pairs.push_back(combine(2));
        }
        for (size_t i = 0; i < eight_count; ++i) {
            ds.eights.push_back(combine(8));
        }
    }
    return ds;
}

/** Prints a bench banner naming the table/figure being reproduced. */
inline void
banner(const char *what, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n(reproduces %s of MithriLog, MICRO'21; synthetic "
                "scaled datasets)\n", what, paper_ref);
    std::printf("==============================================="
                "=====================\n");
}

} // namespace mithril::bench

#endif // MITHRIL_BENCH_BENCH_UTIL_H
