/**
 * @file
 * Figure 16: per-query elapsed-time scatter, MithriLog (modeled,
 * indexed) versus SplunkLite (measured single-thread time divided by
 * 12, as the paper does). Emits one line per query — a CSV-ready
 * scatter — plus the cluster summary the paper narrates: indexed
 * queries finish sub-second on both; negative-heavy queries blow up
 * the software side but not MithriLog.
 */
#include <cstdio>
#include <vector>

#include "baseline/splunk_lite.h"
#include "bench_util.h"
#include "core/mithrilog.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Per-query time scatter: MithriLog vs Splunk-like",
           "Figure 16");
    constexpr double kThreads = 12.0;

    // Two datasets bound runtime; the full sweep is bench_table7.
    for (size_t which : {1u, 3u}) {
        BenchDataset ds = makeDataset(loggen::hpc4Datasets()[which],
                                      24 << 20);
        baseline::SplunkLite splunk;
        splunk.ingest(ds.text);
        core::MithriLog system(obsConfig());
        expectOk(system.ingestText(ds.text), "ingest");
        expectOk(system.flush(), "flush");

        std::printf("\ndataset %s  (columns: splunk_s mithrilog_s "
                    "splunk_buckets_scanned matched)\n",
                    ds.spec.name.c_str());

        std::vector<query::Query> queries;
        for (size_t i = 0; i < ds.singles.size() && i < 16; ++i) {
            queries.push_back(ds.singles[i]);
        }
        for (size_t i = 0; i < ds.pairs.size() && i < 8; ++i) {
            queries.push_back(ds.pairs[i]);
        }

        double worst_ratio = 0, sum_ratio = 0;
        size_t n = 0;
        for (const query::Query &q : queries) {
            core::QueryResult mr;
            if (!system.run(q, &mr).isOk() || mr.used_fallback) {
                continue;
            }
            baseline::IndexedResult sr = splunk.runQuery(q);
            double splunk_s = sr.elapsed_seconds / kThreads;
            double mithril_s = mr.total_time.toSeconds();
            std::printf("  %.6f %.6f %llu %llu\n", splunk_s, mithril_s,
                        static_cast<unsigned long long>(
                            sr.buckets_scanned),
                        static_cast<unsigned long long>(
                            sr.matched_lines));
            double ratio = splunk_s / std::max(mithril_s, 1e-9);
            worst_ratio = std::max(worst_ratio, ratio);
            sum_ratio += ratio;
            ++n;
        }
        if (n > 0) {
            std::printf("  -> mean speedup %.1fx, max %.1fx over %zu "
                        "queries\n", sum_ratio / n, worst_ratio, n);
        }
        obs::JsonRecord rec("fig16_scatter");
        rec.field("dataset", ds.spec.name)
            .field("queries", n)
            .field("mean_speedup", n ? sum_ratio / n : 0.0)
            .field("max_speedup", worst_ratio);
        emitRecord(&rec);
    }
    std::printf("\nShape target: points lie above the diagonal "
                "(MithriLog faster), with the\nlargest gaps on queries "
                "whose index pruning fails (scan-heavy cluster at\nthe "
                "left edge of the paper's plots).\n");
    finishBench();
    return 0;
}
