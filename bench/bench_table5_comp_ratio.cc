/**
 * @file
 * Table 5: compression effectiveness of LZAH vs LZRW1, LZ4, and
 * gzip-class DEFLATE on the four datasets, with the paper's full-scale
 * ratios printed for comparison.
 */
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "compress/compressor.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

/** Paper's Table 5 (full-scale HPC4 logs). */
const std::map<std::string, std::map<std::string, double>> kPaper = {
    {"LZAH", {{"BGL2", 2.63}, {"Liberty2", 3.85}, {"Spirit2", 6.60},
              {"Thunderbird", 7.35}}},
    {"LZRW1", {{"BGL2", 4.39}, {"Liberty2", 5.79}, {"Spirit2", 6.00},
               {"Thunderbird", 3.89}}},
    {"LZ4", {{"BGL2", 5.95}, {"Liberty2", 27.27}, {"Spirit2", 27.14},
             {"Thunderbird", 9.68}}},
    {"Gzip", {{"BGL2", 11.82}, {"Liberty2", 47.93}, {"Spirit2", 45.04},
              {"Thunderbird", 15.79}}},
};

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Compression effectiveness (ratio, higher is better)",
           "Table 5");
    std::printf("%-8s", "algo");
    for (const auto &spec : loggen::hpc4Datasets()) {
        std::printf(" %11s", spec.name.c_str());
    }
    std::printf("\n");

    std::map<std::string, std::map<std::string, double>> measured;
    for (const auto &spec : loggen::hpc4Datasets()) {
        loggen::LogGenerator gen(spec);
        std::string text = gen.generate(4 << 20);
        for (const auto &codec : compress::allCompressors()) {
            compress::Bytes c = codec->compress(compress::asBytes(text));
            double ratio =
                compress::compressionRatio(text.size(), c.size());
            measured[codec->name()][spec.name] = ratio;
            obs::JsonRecord rec("table5_comp_ratio");
            rec.field("algo", codec->name())
                .field("dataset", spec.name)
                .field("ratio", ratio)
                .field("paper_ratio",
                       kPaper.at(codec->name()).at(spec.name));
            emitRecord(&rec);
        }
    }

    for (const auto &codec : compress::allCompressors()) {
        const std::string &name = codec->name();
        std::printf("%-8s", name.c_str());
        for (const auto &spec : loggen::hpc4Datasets()) {
            std::printf("      %5.2fx", measured[name][spec.name]);
        }
        std::printf("   (measured)\n%-8s", "");
        for (const auto &spec : loggen::hpc4Datasets()) {
            std::printf("      %5.2fx",
                        kPaper.at(name).at(spec.name));
        }
        std::printf("   (paper)\n");
    }
    std::printf("\nShape targets: gzip > LZ4 > word/byte-granular "
                "codecs on every dataset;\nLZAH ratio rises with "
                "dataset repetitiveness (BGL2 lowest).\n");
    finishBench();
    return 0;
}
