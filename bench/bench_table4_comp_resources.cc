/**
 * @file
 * Table 4: compression accelerator resource efficiency — GB/s, KLUTs,
 * and GB/s per KLUT for LZ4, LZRW, Snappy, and LZAH. The third-party
 * numbers are the published synthesis results the paper cites; LZAH's
 * throughput is additionally cross-checked against the cycle-model
 * decompressor (one word per cycle at 200 MHz).
 */
#include <cstdio>

#include "bench_util.h"
#include "common/simtime.h"
#include "compress/lzah.h"
#include "sim/resource_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Compression core resource efficiency", "Table 4");
    std::printf("%-8s %8s %8s %12s   %s\n", "algo", "GB/s", "KLUT",
                "GB/s/KLUT", "source");
    for (const auto &core : sim::ResourceModel::compressionCores()) {
        std::printf("%-8s %8.3f %8.2f %12.3f   %s\n",
                    core.name.c_str(), core.gbps, core.kluts,
                    core.gbpsPerKlut(), core.source.c_str());
        obs::JsonRecord rec("table4_comp_resources");
        rec.field("algo", core.name)
            .field("gbps", core.gbps)
            .field("kluts", core.kluts)
            .field("gbps_per_klut", core.gbpsPerKlut());
        emitRecord(&rec);
    }

    // Cross-check: the emulated decompressor emits exactly one 16-byte
    // word per cycle; at 200 MHz that is 3.2 GB/s of padded output,
    // independent of content.
    BenchDataset ds = makeDataset(loggen::hpc4Datasets()[0], 2 << 20);
    compress::LzahPageEncoder enc;
    size_t pos = 0;
    while (pos < ds.text.size()) {
        size_t nl = ds.text.find('\n', pos);
        enc.addLine(std::string_view(ds.text).substr(pos, nl - pos));
        pos = nl + 1;
    }
    enc.flush();

    compress::LzahDecompressorModel model;
    compress::Bytes out;
    for (const auto &page : enc.pages()) {
        expectOk(model.decodePage(page, &out), "lzah decode");
    }
    double gbps = throughputBps(model.bytesOut(),
                                SimTime::cycles(model.cycles(), 200e6)) /
                  1e9;
    std::printf("\ncycle-model check: %llu words in %llu cycles -> "
                "%.2f GB/s at 200 MHz (deterministic)\n",
                static_cast<unsigned long long>(model.cycles()),
                static_cast<unsigned long long>(model.cycles()),
                gbps);
    obs::JsonRecord rec("table4_cycle_check");
    rec.field("cycles", model.cycles())
        .field("bytes_out", model.bytesOut())
        .field("gbps_at_200mhz", gbps);
    emitRecord(&rec);
    finishBench();
    return 0;
}
