/**
 * @file
 * Per-query breakdown telemetry: runs a handful of indexed template
 * queries over one small dataset and emits each query's structured
 * QueryBreakdown (the Table 7 index/storage/compute split plus the
 * index's candidate/false-positive page account) as BENCH_JSON
 * records. The fastest end-to-end exercise of the whole observability
 * surface — CTest runs it with --metrics-out and validates the output
 * with json_check.
 */
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/mithrilog.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Per-query breakdown telemetry", "Table 7 methodology");

    BenchDataset ds = makeDataset(loggen::hpc4Datasets()[0], 2 << 20);
    core::MithriLog system(obsConfig());
    if (!system.ingestText(ds.text).isOk()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
    }
    if (!system.flush().isOk()) {
        std::fprintf(stderr, "flush failed\n");
        return 1;
    }

    std::printf("dataset %s: %llu lines, %llu pages\n",
                ds.spec.name.c_str(),
                static_cast<unsigned long long>(system.lineCount()),
                static_cast<unsigned long long>(
                    system.dataPageCount()));

    size_t n = std::min<size_t>(8, ds.singles.size());
    for (size_t i = 0; i < n; ++i) {
        core::QueryResult r;
        if (!system.run(ds.singles[i], &r).isOk()) {
            continue;
        }
        std::printf("query %zu: %s\n", i, r.breakdown.toJson().c_str());
        obs::JsonRecord rec("query_breakdown");
        rec.field("query", i)
            .field("total_ps",
                   static_cast<uint64_t>(r.total_time.ps()))
            .field("candidate_pages", r.breakdown.candidate_pages)
            .field("pages_scanned", r.breakdown.pages_scanned)
            .field("false_positive_pages",
                   r.breakdown.false_positive_pages)
            .field("matched_lines", r.breakdown.matched_lines);
        emitRecord(&rec);
    }

    obs::MetricsSnapshot snap = benchMetrics().snapshot();
    std::printf("\n%zu counters, %zu gauges, %zu histograms in the "
                "registry; %zu spans traced\n",
                snap.counters.size(), snap.gauges.size(),
                snap.histograms.size(), benchTracer().events().size());
    finishBench();
    return 0;
}
