/**
 * @file
 * Table 6: average effective throughput (GB/s) of 1-, 2-, and 8-query
 * batches on the MonetDB-like ScanDb (measured wall-clock on this
 * host) versus MithriLog (modeled at the paper's platform parameters,
 * index disabled — full scans, as in Section 7.4.2).
 *
 * Absolute software numbers depend on this machine; the reproduction
 * targets are (a) MithriLog constant ~11-12 GB/s regardless of batch
 * size, (b) software throughput decaying with query complexity, and
 * (c) an order-of-magnitude average improvement.
 */
#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "baseline/scan_db.h"
#include "bench_util.h"
#include "core/mithrilog.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

double
scanDbAvgTput(const baseline::ScanDb &db,
              const std::vector<query::Query> &queries, size_t limit)
{
    double total = 0;
    size_t n = std::min(limit, queries.size());
    for (size_t i = 0; i < n; ++i) {
        baseline::ScanResult r = db.runQuery(queries[i]);
        total += db.rawBytes() / std::max(r.elapsed_seconds, 1e-9);
    }
    return n ? total / n : 0;
}

double
mithrilAvgTput(core::MithriLog *system,
               const std::vector<query::Query> &queries, size_t limit)
{
    double total = 0;
    size_t n = std::min(limit, queries.size());
    for (size_t i = 0; i < n; ++i) {
        std::vector<query::Query> one{queries[i]};
        core::QueryResult r;
        Status st = system->runFullScan(one, &r);
        if (!st.isOk()) {
            continue;  // non-offloadable: excluded as in the paper
        }
        total += r.effectiveThroughput(system->rawBytes());
    }
    return n ? total / n : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Average effective throughput of batched queries (GB/s)",
           "Table 6");
    std::printf("%-12s", "system");
    for (const auto &spec : loggen::hpc4Datasets()) {
        std::printf(" %12s", spec.name.c_str());
    }
    std::printf("\n");

    std::vector<std::array<double, 3>> scan_rows(4), dict_rows(4),
        accel_rows(4);
    size_t d = 0;
    double improvement_sum = 0;
    int improvement_n = 0;
    for (const auto &spec : loggen::hpc4Datasets()) {
        BenchDataset ds = makeDataset(spec, 8 << 20);

        baseline::ScanDb db(baseline::ScanDbMode::kCompressedText);
        db.ingest(ds.text);
        // A stronger software baseline: dictionary-encoded token
        // columns (the columnar trick real MonetDB leans on).
        baseline::ScanDb dict_db(baseline::ScanDbMode::kDictionary);
        dict_db.ingest(ds.text);

        core::MithriLog system(obsConfig());
        expectOk(system.ingestText(ds.text), "ingest");
        expectOk(system.flush(), "flush");

        scan_rows[d] = {scanDbAvgTput(db, ds.singles, 10),
                        scanDbAvgTput(db, ds.pairs, 6),
                        scanDbAvgTput(db, ds.eights, 3)};
        dict_rows[d] = {scanDbAvgTput(dict_db, ds.singles, 10),
                        scanDbAvgTput(dict_db, ds.pairs, 6),
                        scanDbAvgTput(dict_db, ds.eights, 3)};
        accel_rows[d] = {mithrilAvgTput(&system, ds.singles, 10),
                         mithrilAvgTput(&system, ds.pairs, 6),
                         mithrilAvgTput(&system, ds.eights, 3)};
        const size_t batch_sizes[] = {1, 2, 8};
        for (int k = 0; k < 3; ++k) {
            // Credit software with its best mode.
            double best_sw = std::max(scan_rows[d][k], dict_rows[d][k]);
            if (best_sw > 0 && accel_rows[d][k] > 0) {
                improvement_sum += accel_rows[d][k] / best_sw;
                ++improvement_n;
            }
            obs::JsonRecord rec("table6_throughput");
            rec.field("dataset", spec.name)
                .field("batch", batch_sizes[k])
                .field("scandb_bps", scan_rows[d][k])
                .field("scandb_dict_bps", dict_rows[d][k])
                .field("mithrilog_bps", accel_rows[d][k]);
            emitRecord(&rec);
        }
        ++d;
    }

    const char *labels[] = {"1", "2", "8"};
    for (int k = 0; k < 3; ++k) {
        std::printf("ScanDb%-6s", labels[k]);
        for (size_t i = 0; i < 4; ++i) {
            std::printf(" %12.3f", scan_rows[i][k] / 1e9);
        }
        std::printf("\nScanDbDict%-2s", labels[k]);
        for (size_t i = 0; i < 4; ++i) {
            std::printf(" %12.3f", dict_rows[i][k] / 1e9);
        }
        std::printf("\nMithriLog%-3s", labels[k]);
        for (size_t i = 0; i < 4; ++i) {
            std::printf(" %12.3f", accel_rows[i][k] / 1e9);
        }
        std::printf("\n");
    }
    std::printf("\naverage improvement (vs best software mode) across datasets and batch "
                "sizes: %.1fx\n",
                improvement_n ? improvement_sum / improvement_n : 0.0);
    std::printf("(paper: 5.8x-84.8x depending on dataset; MonetDB rows "
                "0.05-2.84 GB/s,\n MithriLog rows constant 11.2-11.8 "
                "GB/s)\n");
    finishBench();
    return 0;
}
