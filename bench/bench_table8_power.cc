/**
 * @file
 * Table 8: power consumption breakdown and the derived
 * performance-per-watt improvement. Component powers are the paper's
 * published/measured figures; the throughputs feeding the efficiency
 * derivation come from this reproduction's Table 6 methodology (one
 * dataset, single queries).
 */
#include <cstdio>

#include "baseline/scan_db.h"
#include "bench_util.h"
#include "core/mithrilog.h"
#include "sim/power_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Power consumption breakdown and efficiency", "Table 8");
    sim::PowerModel model;
    std::printf("%-22s %12s %12s\n", "component", "MithriLog(W)",
                "Software(W)");
    for (const auto &c : model.components()) {
        std::printf("%-22s %12.0f %12.0f\n", c.name.c_str(),
                    c.mithrilog_watts, c.software_watts);
    }
    std::printf("%-22s %12.0f %12.0f\n", "Total",
                model.mithrilogTotal(), model.softwareTotal());

    // Derive performance-per-watt from one dataset's measurements.
    BenchDataset ds = makeDataset(loggen::hpc4Datasets()[1], 4 << 20);
    baseline::ScanDb db;
    db.ingest(ds.text);
    core::MithriLog system(obsConfig());
    expectOk(system.ingestText(ds.text), "ingest");
    expectOk(system.flush(), "flush");

    double sw_tput = 0, accel_tput = 0;
    size_t n = std::min<size_t>(8, ds.singles.size());
    size_t accel_n = 0;
    for (size_t i = 0; i < n; ++i) {
        baseline::ScanResult sr = db.runQuery(ds.singles[i]);
        sw_tput += db.rawBytes() / std::max(sr.elapsed_seconds, 1e-9);
        std::vector<query::Query> one{ds.singles[i]};
        core::QueryResult mr;
        if (system.runFullScan(one, &mr).isOk()) {
            accel_tput += mr.effectiveThroughput(system.rawBytes());
            ++accel_n;
        }
    }
    sw_tput /= n;
    accel_tput /= std::max<size_t>(accel_n, 1);

    std::printf("\nthroughput: MithriLog %.2f GB/s (modeled), software "
                "%.3f GB/s (measured)\n", accel_tput / 1e9,
                sw_tput / 1e9);
    std::printf("performance per watt: MithriLog %.3f GB/s/W, software "
                "%.4f GB/s/W\n", accel_tput / 1e9 /
                model.mithrilogTotal(),
                sw_tput / 1e9 / model.softwareTotal());
    std::printf("power-efficiency gain: %.1fx (paper: over an order of "
                "magnitude)\n",
                model.efficiencyGain(accel_tput, sw_tput));
    obs::JsonRecord rec("table8_power");
    rec.field("mithrilog_watts", model.mithrilogTotal())
        .field("software_watts", model.softwareTotal())
        .field("mithrilog_bps", accel_tput)
        .field("software_bps", sw_tput)
        .field("efficiency_gain",
               model.efficiencyGain(accel_tput, sw_tput));
    emitRecord(&rec);
    finishBench();
    return 0;
}
