/**
 * @file
 * Table 2 (chip resource utilization) and Table 3 (platform
 * comparison): the resource ledger of the prototype's modules and the
 * storage/compute parameters both platforms run with in this
 * reproduction.
 */
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "sim/resource_model.h"
#include "storage/ssd_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    std::printf("Table 2: chip resource utilization on VC707\n");
    std::printf("%-14s %10s %8s %8s %s\n", "module", "LUTs", "RAMB36",
                "RAMB18", "per-pipeline");
    sim::ResourceModel model;
    sim::DeviceCapacity device = sim::ResourceModel::vc707();
    for (const auto &m : model.modules()) {
        std::string per = m.per_pipeline
            ? std::to_string(m.per_pipeline) : std::string("-");
        std::printf("%-14s %10u %8u %8u %s\n", m.name.c_str(), m.luts,
                    m.ramb36, m.ramb18, per.c_str());
    }
    std::printf("device %-7s %10u %8u %8u\n", device.name.c_str(),
                device.luts, device.ramb36, device.ramb18);
    std::printf("total utilization: %.0f%% LUTs, %.0f%% RAMB36\n",
                100.0 * model.totalCost().luts / device.luts,
                100.0 * model.totalCost().ramb36 / device.ramb36);

    sim::ModuleCost sum = model.pipelineComponentSum();
    std::printf("component sum per pipeline (model cross-check): "
                "%u LUTs vs %u synthesized\n",
                sum.luts, model.pipelineCost().luts);

    uint32_t infra =
        model.totalCost().luts - 2 * model.pipelineCost().luts;
    std::printf("pipelines fitting one VC707 after %u-LUT "
                "infrastructure: %u (prototype built 2/board)\n\n",
                infra, model.pipelinesFitting(device, infra));

    std::printf("Table 3: computation and storage of compared "
                "platforms\n");
    storage::SsdConfig mithril_ssd;
    storage::SsdConfig sw_ssd = storage::comparisonSsdConfig();
    std::printf("%-22s %-22s %s\n", "", "MithriLog", "Comparison");
    std::printf("%-22s %-22s %s\n", "Computation", "2x Virtex-7 (model)",
                "host CPU (measured)");
    std::printf("%-22s %.1f GB/s (PCIe)      %.1f GB/s\n",
                "Storage Bandwidth", mithril_ssd.external_bw_bps / 1e9,
                sw_ssd.external_bw_bps / 1e9);
    std::printf("%-22s %.1f GB/s (Internal)\n", "",
                mithril_ssd.internal_bw_bps / 1e9);
    obs::JsonRecord rec("table2_resources");
    rec.field("total_luts",
              static_cast<uint64_t>(model.totalCost().luts))
        .field("total_ramb36",
               static_cast<uint64_t>(model.totalCost().ramb36))
        .field("device_luts", static_cast<uint64_t>(device.luts))
        .field("lut_utilization",
               static_cast<double>(model.totalCost().luts) /
                   device.luts)
        .field("pipelines_fitting",
               static_cast<uint64_t>(
                   model.pipelinesFitting(device, infra)))
        .field("internal_bw_bps", mithril_ssd.internal_bw_bps)
        .field("external_bw_bps", mithril_ssd.external_bw_bps);
    emitRecord(&rec);
    finishBench();
    return 0;
}
