/**
 * @file
 * Section 7.4.3: resource efficiency against a hypothetical
 * regex-based accelerator (HARE + LZRW). Prints the KLUT-per-GB/s
 * estimate and, as a software cross-check, measures this repository's
 * own NFA/DFA regex engine against the token filter on the same
 * workload — demonstrating the computational-cost gap that motivates
 * token-based filtering.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/text.h"
#include "common/wall_timer.h"
#include "query/matcher.h"
#include "query/parser.h"
#include "regex/regex.h"
#include "sim/resource_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Resource efficiency vs regex accelerators", "Section 7.4.3");
    std::printf("%-24s %14s\n", "design", "KLUT per GB/s");
    std::printf("%-24s %14.1f\n", "HARE + LZRW (est.)",
                sim::ResourceModel::hareKlutPerGbps());
    std::printf("%-24s %14.1f\n", "MithriLog + LZAH",
                sim::ResourceModel::mithrilKlutPerGbps());
    std::printf("advantage: %.1fx (paper: ~145 vs ~19 KLUT/GB/s)\n\n",
                sim::ResourceModel::hareKlutPerGbps() /
                    sim::ResourceModel::mithrilKlutPerGbps());

    // Software cross-check on one dataset: regex search vs token
    // matching for an equivalent query.
    loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
    std::string text = gen.generate(2 << 20);

    regex::Regex re;
    Status st = regex::Regex::compile(
        "RAS [A-Z]+ (FATAL|FAILURE|SEVERE)", &re);
    if (!st.isOk()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    query::Query q;
    if (!query::parseQuery("RAS & (FATAL | FAILURE | SEVERE)",
                           &q).isOk()) {
        return 1;
    }
    query::SoftwareMatcher matcher(q);

    WallTimer timer;
    uint64_t regex_hits = 0;
    forEachLine(text, [&](std::string_view line) {
        if (re.search(line)) {
            ++regex_hits;
        }
    });
    double regex_s = timer.seconds();

    timer.reset();
    uint64_t token_hits = 0;
    forEachLine(text, [&](std::string_view line) {
        if (matcher.matches(line)) {
            ++token_hits;
        }
    });
    double token_s = timer.seconds();

    std::printf("software cross-check on %s of text:\n",
                humanBytes(static_cast<double>(text.size())).c_str());
    std::printf("  regex engine : %8llu hits, %s\n",
                static_cast<unsigned long long>(regex_hits),
                humanBandwidth(text.size() / std::max(regex_s, 1e-9))
                    .c_str());
    std::printf("  token matcher: %8llu hits, %s\n",
                static_cast<unsigned long long>(token_hits),
                humanBandwidth(text.size() / std::max(token_s, 1e-9))
                    .c_str());
    std::printf("  (regex accepts a superset: substring-anchored "
                "match; %llu vs %llu)\n",
                static_cast<unsigned long long>(regex_hits),
                static_cast<unsigned long long>(token_hits));
    obs::JsonRecord rec("hare_compare");
    rec.field("hare_klut_per_gbps",
              sim::ResourceModel::hareKlutPerGbps())
        .field("mithril_klut_per_gbps",
               sim::ResourceModel::mithrilKlutPerGbps())
        .field("regex_hits", regex_hits)
        .field("token_hits", token_hits)
        .field("regex_bps", text.size() / std::max(regex_s, 1e-9))
        .field("token_bps", text.size() / std::max(token_s, 1e-9));
    emitRecord(&rec);
    finishBench();
    return 0;
}
