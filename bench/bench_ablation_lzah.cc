/**
 * @file
 * Ablation: LZAH's newline realignment (Section 5, Figure 8).
 *
 * LZAH moves its 16-byte window in fixed word steps, which would lose
 * most cross-line redundancy because log patterns repeat at intra-line
 * offsets, not absolute file offsets. The newline special case
 * realigns the window at each line start to recover that redundancy.
 *
 * This bench compares the match rate and modeled compressed size of
 * the real (realigning) encoder against a no-realignment variant that
 * slides the same window/table over the raw stream in blind 16-byte
 * steps. The variant is a faithful size model of the ablated encoder
 * (same hash, same table, same 2-byte match / 16-byte literal items).
 */
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "compress/compressor.h"
#include "compress/lzah.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

/** Compressed-size model for LZAH without newline realignment. */
size_t
noRealignCompressedSize(const std::string &text, uint64_t *matches,
                        uint64_t *words)
{
    std::vector<compress::Word> table(compress::kLzahTableEntries);
    uint64_t match_items = 0, total_items = 0;
    size_t payload = 0;
    for (size_t pos = 0; pos < text.size();
         pos += compress::kLzahWord) {
        compress::Word w{};
        size_t take = std::min(compress::kLzahWord, text.size() - pos);
        std::memcpy(w.data(), text.data() + pos, take);
        uint32_t idx = compress::lzahHash(w);
        ++total_items;
        if (table[idx] == w) {
            ++match_items;
            payload += 2;
        } else {
            table[idx] = w;
            payload += compress::kLzahWord;
        }
    }
    *matches = match_items;
    *words = total_items;
    // Headers: one bit per item, word-aligned per 128-item chunk.
    size_t chunks =
        (total_items + compress::kLzahChunkItems - 1) /
        compress::kLzahChunkItems;
    return payload + chunks * compress::kLzahWord;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("LZAH newline-realignment ablation", "Section 5 / Figure 8");
    std::printf("%-12s %10s %12s %12s %12s\n", "dataset",
                "realign", "no-realign", "match% re", "match% no");
    compress::Lzah codec;
    for (const auto &spec : loggen::hpc4Datasets()) {
        loggen::LogGenerator gen(spec);
        std::string text = gen.generate(4 << 20);

        compress::Bytes real = codec.compress(compress::asBytes(text));
        double real_ratio =
            compress::compressionRatio(text.size(), real.size());

        uint64_t matches = 0, words = 0;
        size_t ablated = noRealignCompressedSize(text, &matches, &words);
        double ablated_ratio =
            compress::compressionRatio(text.size(), ablated);

        // Match rate of the real encoder, recovered from its size:
        // size ~ headers + 2m + 16(w - m).
        compress::LzahPageEncoder enc;
        size_t pos = 0;
        while (pos < text.size()) {
            size_t nl = text.find('\n', pos);
            enc.addLine(
                std::string_view(text).substr(pos, nl - pos));
            pos = nl + 1;
        }
        enc.flush();
        uint64_t real_words = 0;
        compress::Bytes scratch;
        for (const auto &page : enc.pages()) {
            expectOk(compress::lzahDecodePage(page, true, &scratch,
                                              &real_words),
                     "lzah decode");
        }
        double real_payload =
            static_cast<double>(enc.pages().size() * 4096);
        double real_match_frac =
            (16.0 * real_words - real_payload) / (14.0 * real_words);
        real_match_frac = std::min(std::max(real_match_frac, 0.0), 1.0);

        std::printf("%-12s %9.2fx %11.2fx %11.1f%% %11.1f%%\n",
                    spec.name.c_str(), real_ratio, ablated_ratio,
                    real_match_frac * 100.0,
                    100.0 * matches / std::max<uint64_t>(words, 1));
        obs::JsonRecord rec("ablation_lzah");
        rec.field("dataset", spec.name)
            .field("realign_ratio", real_ratio)
            .field("no_realign_ratio", ablated_ratio)
            .field("realign_match_frac", real_match_frac)
            .field("no_realign_match_frac",
                   static_cast<double>(matches) /
                       std::max<uint64_t>(words, 1));
        emitRecord(&rec);
    }
    std::printf("\nWithout realignment the window drifts relative to "
                "line structure, so\nrepeated line content stops "
                "matching; the realigned encoder should hold a\n"
                "large ratio advantage on every dataset.\n");
    finishBench();
    return 0;
}
