/**
 * @file
 * Table 1: dataset statistics — lines, size, and FT-tree-extracted
 * template counts for the four (synthetic, scaled) HPC4 datasets,
 * printed next to the paper's full-scale numbers.
 */
#include "bench_util.h"

#include "common/text.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Dataset statistics", "Table 1");
    std::printf("%-12s | %12s %10s %10s | %10s %8s %10s\n",
                "dataset", "lines", "size", "templates",
                "paperM", "paperGB", "paperTpl");
    std::printf("%-12s | %12s %10s %10s | (full-scale HPC4 values)\n",
                "", "(synthetic,", "scaled", "extracted");

    for (const auto &spec : loggen::hpc4Datasets()) {
        BenchDataset ds = makeDataset(spec);
        size_t lines = splitLines(ds.text).size();
        std::printf("%-12s | %12zu %10s %10zu | %9.1fM %7.1f %10d\n",
                    spec.name.c_str(), lines,
                    humanBytes(static_cast<double>(ds.text.size()))
                        .c_str(),
                    ds.templates.size(), spec.paper_lines_millions,
                    spec.paper_size_gb, spec.paper_templates);
        obs::JsonRecord rec("table1_datasets");
        rec.field("dataset", spec.name)
            .field("lines", lines)
            .field("bytes", ds.text.size())
            .field("templates", ds.templates.size())
            .field("paper_templates", spec.paper_templates);
        emitRecord(&rec);
    }
    std::printf("\nTemplate counts depend on corpus scale and FT-tree "
                "thresholds; the\nreproduction target is the order of "
                "magnitude (tens to hundreds).\n");
    finishBench();
    return 0;
}
