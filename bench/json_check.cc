/**
 * @file
 * json_check — validates machine-readable bench/metrics output.
 *
 * Usage: json_check <file> [required-key ...]
 *
 * Every non-empty line of <file> must be a syntactically valid JSON
 * document (metrics snapshots are one document; --json-out files are
 * one record per line), and every required key must appear as a quoted
 * string somewhere in the file. Exits non-zero with a message on the
 * first violation — CTest runs this after a bench's --metrics-out to
 * keep the telemetry contract honest.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: json_check <file> [required-key ...]\n");
        return 2;
    }
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (text.empty()) {
        std::fprintf(stderr, "json_check: %s is empty\n", argv[1]);
        return 1;
    }

    size_t pos = 0, line_no = 0, documents = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            nl = text.size();
        }
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        std::string err;
        if (!mithril::obs::jsonValid(line, &err)) {
            std::fprintf(stderr, "json_check: %s:%zu: %s\n", argv[1],
                         line_no, err.c_str());
            return 1;
        }
        ++documents;
    }
    if (documents == 0) {
        std::fprintf(stderr, "json_check: %s has no JSON documents\n",
                     argv[1]);
        return 1;
    }

    for (int i = 2; i < argc; ++i) {
        std::string quoted = "\"" + std::string(argv[i]) + "\"";
        if (text.find(quoted) == std::string::npos) {
            std::fprintf(stderr,
                         "json_check: %s: required key %s missing\n",
                         argv[1], argv[i]);
            return 1;
        }
    }
    std::printf("json_check: %s ok (%zu documents, %d required keys)\n",
                argv[1], documents, argc - 2);
    return 0;
}
