/**
 * @file
 * json_check — validates machine-readable bench/metrics output.
 *
 * Usage: json_check <file> [required-key ...]
 *
 * Every non-empty line of <file> must be a syntactically valid JSON
 * document (metrics snapshots are one document; --json-out files are
 * one record per line), and every required key must appear as a quoted
 * string somewhere in the file. Exits non-zero with a message on the
 * first violation — CTest runs this after a bench's --metrics-out to
 * keep the telemetry contract honest.
 *
 * Documents carrying a "quantiles" object (metrics snapshots with
 * obs::Histogram data) additionally get a schema check per histogram:
 *   - bucket lower bounds strictly increasing;
 *   - bucket counts summing exactly to the histogram count;
 *   - p50 <= p90 <= p99 <= p999, bracketed by the first bucket's
 *     lower bound and the exact max (quantiles are reported as bucket
 *     lower bounds, so they may sit below the exact min but never
 *     below the min's bucket, and never above the max);
 *   - count/sum/min/max/quantile fields present and numeric.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

/** Schema check of one histogram entry in a "quantiles" object.
 *  Returns false after printing the first violation. */
bool
checkQuantileHistogram(const char *file, const std::string &name,
                       const mithril::obs::JsonValue &h)
{
    auto complain = [&](const std::string &what) {
        std::fprintf(stderr, "json_check: %s: quantiles[%s]: %s\n",
                     file, name.c_str(), what.c_str());
        return false;
    };
    if (!h.isObject()) {
        return complain("not an object");
    }
    for (const char *key :
         {"count", "sum", "min", "max", "p50", "p90", "p99", "p999"}) {
        const mithril::obs::JsonValue *v = h.find(key);
        if (v == nullptr || !v->isNumber()) {
            return complain(std::string(key) + " missing or not a number");
        }
    }
    double p50 = h.numberOr("p50", 0), p90 = h.numberOr("p90", 0);
    double p99 = h.numberOr("p99", 0), p999 = h.numberOr("p999", 0);
    if (!(p50 <= p90 && p90 <= p99 && p99 <= p999)) {
        return complain("quantiles not monotone (p50<=p90<=p99<=p999)");
    }
    double count = h.numberOr("count", 0);
    double max = h.numberOr("max", 0);
    if (count > 0 && p999 > max) {
        return complain("p999 above the exact max");
    }

    const mithril::obs::JsonValue *buckets = h.find("buckets");
    if (buckets == nullptr || !buckets->isArray()) {
        return complain("buckets missing or not an array");
    }
    double bucket_total = 0.0;
    double prev_lo = -1.0;
    for (size_t i = 0; i < buckets->items.size(); ++i) {
        const mithril::obs::JsonValue &b = buckets->items[i];
        const mithril::obs::JsonValue *lo = b.find("lo");
        const mithril::obs::JsonValue *c = b.find("count");
        if (!b.isObject() || lo == nullptr || !lo->isNumber() ||
            c == nullptr || !c->isNumber()) {
            return complain("bucket " + std::to_string(i) +
                            " malformed (want {lo, count})");
        }
        if (lo->number <= prev_lo) {
            return complain("bucket lower bounds not strictly "
                            "increasing at index " + std::to_string(i));
        }
        prev_lo = lo->number;
        bucket_total += c->number;
    }
    if (bucket_total != count) {
        return complain("bucket counts sum to " +
                        std::to_string(bucket_total) + ", count is " +
                        std::to_string(count));
    }
    if (count > 0 && !buckets->items.empty() &&
        p50 < buckets->items.front().numberOr("lo", 0)) {
        return complain("p50 below the first bucket's lower bound");
    }
    return true;
}

/** Validates every histogram under a document's "quantiles" key; a
 *  document without one passes vacuously. */
bool
checkQuantilesSchema(const char *file,
                     const mithril::obs::JsonValue &doc)
{
    const mithril::obs::JsonValue *quantiles = doc.find("quantiles");
    if (quantiles == nullptr) {
        return true;
    }
    if (!quantiles->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: \"quantiles\" is not an object\n",
                     file);
        return false;
    }
    for (const auto &[name, h] : quantiles->members) {
        if (!checkQuantileHistogram(file, name, h)) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: json_check <file> [required-key ...]\n");
        return 2;
    }
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot open %s\n", argv[1]);
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    if (text.empty()) {
        std::fprintf(stderr, "json_check: %s is empty\n", argv[1]);
        return 1;
    }

    size_t pos = 0, line_no = 0, documents = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            nl = text.size();
        }
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        ++line_no;
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        std::string err;
        if (!mithril::obs::jsonValid(line, &err)) {
            std::fprintf(stderr, "json_check: %s:%zu: %s\n", argv[1],
                         line_no, err.c_str());
            return 1;
        }
        mithril::obs::JsonValue doc;
        if (!mithril::obs::jsonParse(line, &doc, &err)) {
            std::fprintf(stderr, "json_check: %s:%zu: %s\n", argv[1],
                         line_no, err.c_str());
            return 1;
        }
        if (!checkQuantilesSchema(argv[1], doc)) {
            return 1;
        }
        ++documents;
    }
    if (documents == 0) {
        std::fprintf(stderr, "json_check: %s has no JSON documents\n",
                     argv[1]);
        return 1;
    }

    for (int i = 2; i < argc; ++i) {
        std::string quoted = "\"" + std::string(argv[i]) + "\"";
        if (text.find(quoted) == std::string::npos) {
            std::fprintf(stderr,
                         "json_check: %s: required key %s missing\n",
                         argv[1], argv[i]);
            return 1;
        }
    }
    std::printf("json_check: %s ok (%zu documents, %d required keys)\n",
                argv[1], documents, argc - 2);
    return 0;
}
