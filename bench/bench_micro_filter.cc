/**
 * @file
 * Microbenchmarks for the filtering path: cuckoo lookups, software
 * matching, tokenization, and the full pipeline emulation — the
 * emulation's host-side speed determines how fast the benches
 * themselves run (its *modeled* throughput is what the paper reports).
 */
#include <benchmark/benchmark.h>

#include "accel/accelerator.h"
#include "common/text.h"
#include "compress/lzah.h"
#include "loggen/log_generator.h"
#include "query/matcher.h"
#include "query/parser.h"

using namespace mithril;

namespace {

const std::string &
corpus()
{
    static const std::string text = [] {
        loggen::LogGenerator gen(loggen::hpc4Datasets()[0]);
        return gen.generate(1 << 20);
    }();
    return text;
}

query::Query
benchQuery()
{
    query::Query q;
    Status st = query::parseQuery(
        "(RAS & KERNEL & !FATAL) | (ERROR & cache)", &q);
    MITHRIL_ASSERT(st.isOk());
    return q;
}

void
BM_CuckooLookup(benchmark::State &state)
{
    accel::FilterProgram program;
    Status st = accel::compileQuery(benchQuery(), &program);
    MITHRIL_ASSERT(st.isOk());
    const char *tokens[] = {"RAS", "KERNEL", "missing", "cache",
                            "2005.06.03", "FATAL"};
    size_t i = 0;
    for (auto _ : state) {
        auto row = program.table.lookup(tokens[i++ % 6]);
        benchmark::DoNotOptimize(row);
    }
}

void
BM_SoftwareMatcher(benchmark::State &state)
{
    query::SoftwareMatcher matcher(benchQuery());
    const std::string &text = corpus();
    for (auto _ : state) {
        uint64_t hits = 0;
        forEachLine(text, [&](std::string_view line) {
            hits += matcher.matches(line);
        });
        benchmark::DoNotOptimize(hits);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

void
BM_Tokenizer(benchmark::State &state)
{
    const std::string &text = corpus();
    for (auto _ : state) {
        accel::Tokenizer tokenizer;
        forEachLine(text, [&](std::string_view line) {
            benchmark::DoNotOptimize(tokenizer.run(line));
        });
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

void
BM_PipelineEmulation(benchmark::State &state)
{
    const std::string &text = corpus();
    compress::LzahPageEncoder enc;
    forEachLine(text, [&](std::string_view line) {
        enc.addLine(line);
    });
    enc.flush();
    std::vector<compress::ByteView> views;
    for (const auto &p : enc.pages()) {
        views.emplace_back(p);
    }
    accel::Accelerator accelerator(
        accel::AccelConfig{.keep_lines = false});
    Status st = accelerator.configure(benchQuery());
    MITHRIL_ASSERT(st.isOk());
    for (auto _ : state) {
        accel::AccelResult result;
        st = accelerator.process(views, accel::Mode::kFilter, &result);
        if (!st.isOk()) {
            state.SkipWithError(st.toString().c_str());
            return;
        }
        benchmark::DoNotOptimize(result.lines_kept);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

} // namespace

BENCHMARK(BM_CuckooLookup);
BENCHMARK(BM_SoftwareMatcher)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Tokenizer)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineEmulation)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
