/**
 * @file
 * Open-loop soak: sustained mixed traffic against the service layer,
 * with tail-latency SLO enforcement.
 *
 * Every other bench here is closed-loop — it offers work only as fast
 * as the system completes it, so queueing never builds and the tail
 * never shows. This bench drives soak::SoakDriver instead: a seeded
 * arrival schedule (ingest lines + queries) over a virtual clock,
 * played against a real svc::LogService, with per-shard modeled
 * service times feeding an open-loop queueing model (DESIGN.md §12).
 *
 * Calibration: the offered ingest rate defaults to ~70% of the
 * measured closed-loop capacity (soak::estimateIngestCapacity), so the
 * run is loaded but stable — the regime where p99/p999 are meaningful.
 *
 * Output:
 *   - one `soak_snapshot` record per time-series point;
 *   - one `soak_slo` record: offered/accepted/dropped load, drop rate,
 *     per-stage sim-domain quantiles, end-to-end ingest and query
 *     p50/p99/p999, and the SLO verdict.
 *
 * Everything in the record is in the SimTime domain and derived from
 * the seed: the same seed and flags reproduce the record byte for
 * byte. The SLO assertion is self-enforcing — the bench exits 1 when
 * end-to-end ingest p99 exceeds the bound, and `--slo-p99-ms=` can
 * tighten the bound below the measured p99 to prove the gate fires
 * (the CI fixture does exactly that).
 *
 * Flags (besides the shared --json-out/--metrics-out/--trace-out):
 *   --shape=steady|bursty|diurnal   arrival shape        [steady]
 *   --duration=<virtual seconds>    schedule length      [0.25]
 *   --seed=<n>                      schedule seed        [1]
 *   --qps=<queries per second>      offered query rate   [40]
 *   --load-frac=<f>                 offered ingest rate as a fraction
 *                                   of measured capacity [0.7]
 *   --slo-p99-ms=<ms>               end-to-end ingest p99 bound in
 *                                   modeled milliseconds [5.0]
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "bench_util.h"
#include "obs/report.h"
#include "soak/soak_driver.h"

namespace mithril::bench {
namespace {

struct SoakArgs {
    soak::SoakConfig config;
    double load_frac = 0.7;
    double slo_p99_ms = 5.0;
};

bool
parseSoakArgs(int argc, char **argv, SoakArgs *out)
{
    for (int i = 1; i < argc; ++i) {
        std::string_view a = argv[i];
        auto value = [&](std::string_view prefix,
                         std::string_view *v) {
            if (a.rfind(prefix, 0) == 0) {
                *v = a.substr(prefix.size());
                return true;
            }
            return false;
        };
        std::string_view v;
        if (value("--shape=", &v)) {
            Status st = soak::parseShape(v, &out->config.shape);
            if (!st.isOk()) {
                std::fprintf(stderr, "%s\n", st.toString().c_str());
                return false;
            }
        } else if (value("--duration=", &v)) {
            out->config.duration_s = std::atof(std::string(v).c_str());
        } else if (value("--seed=", &v)) {
            out->config.seed = static_cast<uint64_t>(
                std::atoll(std::string(v).c_str()));
        } else if (value("--qps=", &v)) {
            out->config.query_qps = std::atof(std::string(v).c_str());
        } else if (value("--load-frac=", &v)) {
            out->load_frac = std::atof(std::string(v).c_str());
        } else if (value("--slo-p99-ms=", &v)) {
            out->slo_p99_ms = std::atof(std::string(v).c_str());
        }
    }
    return true;
}

/** Per-stage sim-domain quantiles from the run's registry snapshot. */
void
stageFields(const obs::MetricsSnapshot &snap, std::string_view stage,
            obs::JsonRecord *record)
{
    auto it = snap.quantile_histograms.find(
        std::string(stage) + ".sim_ps");
    if (it == snap.quantile_histograms.end()) {
        return;
    }
    std::string base(stage);
    record->field(base + "_p50_ps", it->second.quantiles.p50)
        .field(base + "_p99_ps", it->second.quantiles.p99)
        .field(base + "_p999_ps", it->second.quantiles.p999);
}

} // namespace

int
run(int argc, char **argv)
{
    initBench(argc, argv);
    SoakArgs args;
    if (!parseSoakArgs(argc, argv, &args)) {
        return 2;
    }
    banner("Open-loop soak: sustained mixed traffic, tail-latency SLO",
           "the sustained-ingest claims (Sections 6 and 7)");

    // Calibrate offered load against measured closed-loop capacity so
    // the run lands in the loaded-but-stable regime on any model
    // parameters.
    double capacity = 0.0;
    expectOk(soak::estimateIngestCapacity(args.config, &capacity),
             "capacity probe");
    args.config.ingest_lps = capacity * args.load_frac;
    std::printf("capacity %.0f lines/s (modeled), offering %.0f "
                "(%.0f%%), shape %s, %.2fs virtual, seed %llu\n\n",
                capacity, args.config.ingest_lps,
                args.load_frac * 100.0,
                std::string(soak::shapeName(args.config.shape)).c_str(),
                args.config.duration_s,
                static_cast<unsigned long long>(args.config.seed));

    args.config.metrics = &benchMetrics();
    args.config.tracer = &benchTracer();
    soak::SoakDriver driver(args.config);
    soak::SoakReport report;
    expectOk(driver.run(&report), "soak run");

    std::printf("%10s %10s %10s %8s %8s %14s\n", "t_ms", "offered",
                "accepted", "dropped", "queries", "ingest p99 us");
    for (const soak::SoakSnapshot &s : report.series) {
        std::printf("%10.1f %10llu %10llu %8llu %8llu %14.1f\n",
                    static_cast<double>(s.t_ps) / 1e9,
                    static_cast<unsigned long long>(s.offered_lines),
                    static_cast<unsigned long long>(s.accepted_lines),
                    static_cast<unsigned long long>(s.dropped_lines),
                    static_cast<unsigned long long>(s.queries_done),
                    static_cast<double>(s.ingest_p99_ps) / 1e6);
        obs::JsonRecord snap_record("soak_snapshot");
        snap_record.field("t_ps", s.t_ps)
            .field("offered_lines", s.offered_lines)
            .field("accepted_lines", s.accepted_lines)
            .field("dropped_lines", s.dropped_lines)
            .field("queries_done", s.queries_done)
            .field("ingest_p99_ps", s.ingest_p99_ps);
        emitRecord(&snap_record);
    }

    std::printf("\ningest e2e p50/p99/p999: %.1f / %.1f / %.1f us "
                "(modeled)\n",
                static_cast<double>(report.ingest_e2e_ps.p50) / 1e6,
                static_cast<double>(report.ingest_e2e_ps.p99) / 1e6,
                static_cast<double>(report.ingest_e2e_ps.p999) / 1e6);
    std::printf("query  e2e p50/p99/p999: %.1f / %.1f / %.1f us "
                "(modeled)\n",
                static_cast<double>(report.query_e2e_ps.p50) / 1e6,
                static_cast<double>(report.query_e2e_ps.p99) / 1e6,
                static_cast<double>(report.query_e2e_ps.p999) / 1e6);
    std::printf("offered %llu accepted %llu dropped %llu "
                "(drop rate %.2f%%), %llu queries, %llu matches\n",
                static_cast<unsigned long long>(report.offered_lines),
                static_cast<unsigned long long>(report.accepted_lines),
                static_cast<unsigned long long>(report.dropped_lines),
                report.drop_rate * 100.0,
                static_cast<unsigned long long>(
                    report.completed_queries),
                static_cast<unsigned long long>(report.matched_lines));

    const uint64_t slo_ps =
        static_cast<uint64_t>(args.slo_p99_ms * 1e9);
    const bool slo_pass = report.ingest_e2e_ps.p99 <= slo_ps;

    obs::MetricsSnapshot snap = benchMetrics().snapshot();
    obs::JsonRecord record("soak_slo");
    record.field("seed", args.config.seed)
        .field("shape", soak::shapeName(args.config.shape))
        .field("duration_s", args.config.duration_s)
        .field("shards", static_cast<uint64_t>(args.config.shards))
        .field("threads", static_cast<uint64_t>(args.config.threads))
        .field("capacity_lps", capacity)
        .field("offered_lps", args.config.ingest_lps)
        .field("offered_lines", report.offered_lines)
        .field("accepted_lines", report.accepted_lines)
        .field("dropped_lines", report.dropped_lines)
        .field("drop_rate", report.drop_rate)
        .field("offered_queries", report.offered_queries)
        .field("completed_queries", report.completed_queries)
        .field("matched_lines", report.matched_lines)
        .field("ingest_e2e_p50_ps", report.ingest_e2e_ps.p50)
        .field("ingest_e2e_p99_ps", report.ingest_e2e_ps.p99)
        .field("ingest_e2e_p999_ps", report.ingest_e2e_ps.p999)
        .field("query_e2e_p50_ps", report.query_e2e_ps.p50)
        .field("query_e2e_p99_ps", report.query_e2e_ps.p99)
        .field("query_e2e_p999_ps", report.query_e2e_ps.p999);
    stageFields(snap, "svc.batch_apply", &record);
    stageFields(snap, "journal.commit", &record);
    stageFields(snap, "svc.shard_query", &record);
    stageFields(snap, "svc.query_fanout", &record);
    record.field("slo_p99_ps", slo_ps).field("slo_pass", slo_pass);
    emitRecord(&record);

    finishBench();

    if (!slo_pass) {
        std::fprintf(stderr,
                     "FATAL: ingest e2e p99 %.3f ms exceeds the "
                     "%.3f ms SLO\n",
                     static_cast<double>(report.ingest_e2e_ps.p99) /
                         1e9,
                     args.slo_p99_ms);
        return 1;
    }
    std::printf("\nSLO: ingest e2e p99 %.3f ms <= %.3f ms bound — "
                "pass\n",
                static_cast<double>(report.ingest_e2e_ps.p99) / 1e9,
                args.slo_p99_ms);
    return 0;
}

} // namespace mithril::bench

int
main(int argc, char **argv)
{
    return mithril::bench::run(argc, argv);
}
