/**
 * @file
 * Incident-response typed-query tier (DESIGN.md §15): ingests the
 * seeded incident scenario into two stores — typed pseudo-indexes on
 * and off — runs the same typed queries against both, and reports the
 * device-byte reduction the typed posting lists buy.
 *
 * Self-enforcing: the two paths must produce byte-identical match
 * sets (line numbers and text), and the exact-address query must
 * recover exactly the planted ground-truth lines; any divergence
 * exits nonzero. The typed path must also read strictly fewer device
 * bytes than the full scan — the tier's reason to exist.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mithrilog.h"
#include "loggen/incident.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

/** Device bytes one run touched: staged data pages plus the typed
 *  posting pages it traversed. */
uint64_t
deviceBytes(const core::QueryResult &r)
{
    return r.breakdown.pages_scanned * storage::kPageSize +
           r.breakdown.typed_index_bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Typed-query incident tier", "DESIGN.md SS15 workload");

    loggen::IncidentSpec spec;
    loggen::IncidentGroundTruth truth;
    std::string text = loggen::generateIncident(spec, &truth);
    std::printf("scenario: %llu lines, %zu attacker / %zu session / "
                "%zu decoy planted\n",
                static_cast<unsigned long long>(truth.total_lines),
                truth.attacker_lines.size(), truth.session_lines.size(),
                truth.decoy_lines.size());

    core::MithriLogConfig typed_cfg = obsConfig();
    typed_cfg.accel.keep_lines = true;
    core::MithriLogConfig scan_cfg = typed_cfg;
    scan_cfg.use_typed_index = false;

    core::MithriLog typed_store(typed_cfg);
    core::MithriLog scan_store(scan_cfg);
    expectOk(typed_store.ingestText(text), "typed ingest");
    expectOk(typed_store.flush(), "typed flush");
    expectOk(scan_store.ingestText(text), "scan ingest");
    expectOk(scan_store.flush(), "scan flush");

    struct Case {
        const char *label;
        std::string query;
    };
    std::vector<Case> cases = {
        {"attacker_exact", "ip:" + spec.attacker_ip},
        {"attacker_subnet", "ip:192.0.2.64/26"},
        {"session_id", "id:" + spec.session_id},
        {"attacker_and_keyword", "ip:" + spec.attacker_ip + " & password"},
    };

    bool ok = true;
    for (const Case &c : cases) {
        core::QueryResult rt, rs;
        expectOk(typed_store.run(c.query, &rt), "typed query");
        expectOk(scan_store.run(c.query, &rs), "scan query");

        // Byte-identical match sets across the two paths.
        if (rt.matched_lines != rs.matched_lines ||
            rt.line_numbers != rs.line_numbers) {
            std::fprintf(stderr,
                         "%s: match sets diverge (typed %llu vs scan "
                         "%llu lines)\n",
                         c.label,
                         static_cast<unsigned long long>(
                             rt.matched_lines),
                         static_cast<unsigned long long>(
                             rs.matched_lines));
            ok = false;
        }
        for (size_t i = 0;
             ok && i < rt.lines.size() && i < rs.lines.size(); ++i) {
            if (rt.lines[i].text != rs.lines[i].text) {
                std::fprintf(stderr, "%s: line text diverges at %zu\n",
                             c.label, i);
                ok = false;
            }
        }
        uint64_t typed_bytes = deviceBytes(rt);
        uint64_t scan_bytes = deviceBytes(rs);
        if (rt.matched_lines > 0 && typed_bytes >= scan_bytes) {
            std::fprintf(stderr,
                         "%s: typed path read %llu device bytes, full "
                         "scan %llu — no reduction\n",
                         c.label,
                         static_cast<unsigned long long>(typed_bytes),
                         static_cast<unsigned long long>(scan_bytes));
            ok = false;
        }
        double reduction =
            typed_bytes > 0 ? static_cast<double>(scan_bytes) /
                                  static_cast<double>(typed_bytes)
                            : 0.0;
        std::printf("%-22s matches %6llu  typed %8llu B (%llu idx) "
                    "full %8llu B  x%.1f\n",
                    c.label,
                    static_cast<unsigned long long>(rt.matched_lines),
                    static_cast<unsigned long long>(typed_bytes),
                    static_cast<unsigned long long>(
                        rt.breakdown.typed_index_bytes),
                    static_cast<unsigned long long>(scan_bytes),
                    reduction);

        obs::JsonRecord rec("typed_query");
        rec.field("label", c.label)
            .field("query", c.query)
            .field("matched_lines", rt.matched_lines)
            .field("typed_predicates", rt.breakdown.typed_predicates)
            .field("typed_index_pages", rt.breakdown.typed_index_pages)
            .field("typed_index_bytes", rt.breakdown.typed_index_bytes)
            .field("typed_pages_scanned", rt.breakdown.pages_scanned)
            .field("full_pages_scanned", rs.breakdown.pages_scanned)
            .field("typed_device_bytes", typed_bytes)
            .field("full_scan_device_bytes", scan_bytes)
            .field("byte_reduction", reduction)
            .field("degraded_typed_scan",
                   rt.breakdown.degraded_typed_scan);
        emitRecord(&rec);
    }

    // Ground-truth oracle: the exact-address query is exactly the
    // planted attacker lines (TEST-NET addresses cannot occur in the
    // background traffic), and the subnet query adds only the decoy.
    {
        core::QueryResult r;
        expectOk(typed_store.run("ip:" + spec.attacker_ip, &r),
                 "oracle query");
        if (r.line_numbers != truth.attacker_lines) {
            std::fprintf(stderr,
                         "ground truth mismatch: %zu attacker lines "
                         "found, %zu planted\n",
                         r.line_numbers.size(),
                         truth.attacker_lines.size());
            ok = false;
        }
        core::QueryResult sub;
        expectOk(typed_store.run("ip:192.0.2.64/26", &sub),
                 "oracle subnet");
        if (sub.matched_lines != truth.attacker_lines.size() +
                                     truth.decoy_lines.size()) {
            std::fprintf(stderr, "subnet ground truth mismatch\n");
            ok = false;
        }
    }

    finishBench();
    if (!ok) {
        std::fprintf(stderr, "typed-query contract violated\n");
        return 1;
    }
    return 0;
}
