/**
 * @file
 * Figure 13: percentage of useful bits in the tokenized datapath per
 * dataset — the padding-amplification statistic that drove the 16-byte
 * datapath choice and the 2x hash filter replication.
 */
#include <cstdio>

#include "accel/tokenizer.h"
#include "bench_util.h"
#include "common/text.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Useful bits in the tokenized datapath", "Figure 13");
    std::printf("%-12s %14s %14s %12s\n", "dataset", "tokenized words",
                "useful bytes", "useful %");
    for (const auto &spec : loggen::hpc4Datasets()) {
        loggen::LogGenerator gen(spec);
        std::string text = gen.generate(4 << 20);
        accel::Tokenizer tokenizer;
        forEachLine(text, [&](std::string_view line) {
            tokenizer.run(line);
        });
        std::printf("%-12s %14llu %14llu %11.1f%%\n",
                    spec.name.c_str(),
                    static_cast<unsigned long long>(
                        tokenizer.wordsEmitted()),
                    static_cast<unsigned long long>(
                        tokenizer.usefulBytes()),
                    tokenizer.usefulRatio() * 100.0);
        obs::JsonRecord rec("fig13_useful_bits");
        rec.field("dataset", spec.name)
            .field("tokenized_words", tokenizer.wordsEmitted())
            .field("useful_bytes", tokenizer.usefulBytes())
            .field("useful_ratio", tokenizer.usefulRatio());
        emitRecord(&rec);
    }
    std::printf("\npaper: roughly half the tokenized datapath is "
                "useful data on all four\ndatasets, motivating two "
                "hash filters per pipeline.\n");
    finishBench();
    return 0;
}
