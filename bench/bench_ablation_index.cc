/**
 * @file
 * Index ablations (Section 6):
 *  1. one vs two hash functions — false-positive page volume seen by
 *     probe tokens when a few tokens are very hot (Section 6.2);
 *  2. naive linked list vs linked-list-of-trees — modeled query time
 *     for the same page count (Section 6.1's latency argument).
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "index/inverted_index.h"
#include "storage/ssd_model.h"

using namespace mithril;
using namespace mithril::bench;

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Inverted index ablations", "Section 6.1 / 6.2");

    // --- two-hash balancing --------------------------------------------
    // Hot tokens (many pages each) land in a small table. With one
    // hash, several hot tokens can pile onto one entry, and any query
    // token sharing that entry pays for all of them; insert-to-lighter
    // with two hashes bounds the pile-up (power of two choices,
    // Section 6.2).
    auto run = [](bool two_hash) {
        storage::SsdModel ssd;
        index::IndexConfig cfg;
        cfg.hash_entries = 1u << 8;
        cfg.two_hash = two_hash;
        index::InvertedIndex idx(&ssd, cfg);

        for (int hot = 0; hot < 160; ++hot) {
            std::string tok = "hot-token-" + std::to_string(hot);
            std::vector<std::string_view> tokens{tok};
            for (storage::PageId p = 0; p < 256; ++p) {
                idx.addPage(p, tokens, p);
            }
        }
        auto loads = idx.entryLoads();
        std::sort(loads.begin(), loads.end());
        uint64_t max_load = loads.back();
        uint64_t p99 = loads[loads.size() * 99 / 100];
        return std::pair<uint64_t, uint64_t>(max_load, p99);
    };
    auto [max1, p99_1] = run(false);
    auto [max2, p99_2] = run(true);
    std::printf("entry load (pages) with 160 hot tokens x 256 pages in "
                "a 256-entry table:\n");
    std::printf("  %-18s max %8llu, p99 %8llu\n", "single hash",
                static_cast<unsigned long long>(max1),
                static_cast<unsigned long long>(p99_1));
    std::printf("  %-18s max %8llu, p99 %8llu\n", "two-hash balanced",
                static_cast<unsigned long long>(max2),
                static_cast<unsigned long long>(p99_2));
    std::printf("  a query token sharing the worst entry reads %.1fx "
                "fewer false pages\n",
                static_cast<double>(max1) / std::max<uint64_t>(max2, 1));
    obs::JsonRecord hash_rec("ablation_index_two_hash");
    hash_rec.field("single_hash_max", max1)
        .field("single_hash_p99", p99_1)
        .field("two_hash_max", max2)
        .field("two_hash_p99", p99_2);
    emitRecord(&hash_rec);

    // --- list-of-trees vs naive list -------------------------------------
    std::printf("\nmodeled time to fetch N data-page addresses "
                "(100 us/hop, 16-ary nodes):\n");
    storage::SsdModel ssd;
    std::printf("  %-10s %14s %14s %10s\n", "pages", "naive list",
                "tree of lists", "speedup");
    for (uint64_t pages : {256ull, 4096ull, 65536ull}) {
        // Naive: one dependent hop per 16-address node.
        SimTime naive =
            ssd.timeChainRead(pages / 16, 0, storage::Link::kExternal);
        // Trees: one dependent hop per 256 addresses, leaves fanned out
        // (16 leaf nodes -> at most 16 leaf pages per hop).
        SimTime tree = ssd.timeChainRead(
            std::max<uint64_t>(pages / 256, 1), 16,
            storage::Link::kExternal);
        std::printf("  %-10llu %11.2f ms %11.2f ms %9.1fx\n",
                    static_cast<unsigned long long>(pages),
                    naive.toSeconds() * 1e3, tree.toSeconds() * 1e3,
                    static_cast<double>(naive.ps()) /
                        std::max<uint64_t>(tree.ps(), 1));
        obs::JsonRecord rec("ablation_index_tree");
        rec.field("pages", pages)
            .field("naive_ps", static_cast<uint64_t>(naive.ps()))
            .field("tree_ps", static_cast<uint64_t>(tree.ps()));
        emitRecord(&rec);
    }
    std::printf("\nThe tree layout retrieves 256 addresses per "
                "latency-bound hop, keeping\nthe 16-entry in-memory "
                "write buffers (low footprint) without the naive\n"
                "list's latency wall — Section 6.1's design argument.\n");
    finishBench();
    return 0;
}
