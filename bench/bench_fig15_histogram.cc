/**
 * @file
 * Figure 15: per-query effective-throughput histograms, ScanDb
 * (MonetDB-like, measured) versus MithriLog (modeled), for 1-, 2- and
 * 8-query combinations. The paper's x-axis is non-linear; the same
 * bucket edges are used here.
 */
#include <cstdio>
#include <vector>

#include "baseline/scan_db.h"
#include "bench_util.h"
#include "common/stats.h"
#include "core/mithrilog.h"

using namespace mithril;
using namespace mithril::bench;

namespace {

// Non-linear buckets in GB/s, mirroring the paper's axis.
const std::vector<double> kEdges = {0.05, 0.1, 0.25, 0.5, 1.0, 2.0,
                                    4.0, 8.0, 12.0};

void
runSet(const baseline::ScanDb &db, core::MithriLog *system,
       const std::vector<query::Query> &queries, size_t limit,
       const char *label)
{
    Histogram scan_h(kEdges), accel_h(kEdges);
    size_t n = std::min(limit, queries.size());
    double scan_sum = 0, accel_sum = 0;
    size_t accel_n = 0;
    for (size_t i = 0; i < n; ++i) {
        baseline::ScanResult sr = db.runQuery(queries[i]);
        double scan_gbps = db.rawBytes() /
                           std::max(sr.elapsed_seconds, 1e-9) / 1e9;
        scan_h.record(scan_gbps);
        scan_sum += scan_gbps;
        std::vector<query::Query> one{queries[i]};
        core::QueryResult mr;
        if (system->runFullScan(one, &mr).isOk()) {
            double accel_gbps =
                mr.effectiveThroughput(system->rawBytes()) / 1e9;
            accel_h.record(accel_gbps);
            accel_sum += accel_gbps;
            ++accel_n;
        }
    }
    std::printf("--- %s: ScanDb (measured GB/s) ---\n%s", label,
                scan_h.render(30).c_str());
    std::printf("--- %s: MithriLog (modeled GB/s) ---\n%s\n", label,
                accel_h.render(30).c_str());
    obs::JsonRecord rec("fig15_histogram");
    rec.field("set", label)
        .field("queries", n)
        .field("scandb_mean_gbps", n ? scan_sum / n : 0.0)
        .field("mithrilog_mean_gbps",
               accel_n ? accel_sum / accel_n : 0.0);
    emitRecord(&rec);
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Per-query effective throughput histograms", "Figure 15");
    // One representative dataset keeps runtime bounded; the remaining
    // datasets show the same separation (see bench_table6).
    BenchDataset ds = makeDataset(loggen::hpc4Datasets()[2], 8 << 20);
    baseline::ScanDb db;
    db.ingest(ds.text);
    core::MithriLog system(obsConfig());
    expectOk(system.ingestText(ds.text), "ingest");
    expectOk(system.flush(), "flush");

    std::printf("dataset %s, %zu template queries\n\n",
                ds.spec.name.c_str(), ds.singles.size());
    runSet(db, &system, ds.singles, 12, "single queries");
    runSet(db, &system, ds.pairs, 8, "2-query combinations");
    runSet(db, &system, ds.eights, 4, "8-query combinations");

    std::printf("Shape target: ScanDb mass shifts left (slower) as "
                "combinations grow;\nMithriLog mass stays pinned in "
                "the top bucket regardless of complexity.\n");
    finishBench();
    return 0;
}
