/**
 * @file
 * Shard/thread scaling for the service layer (mithril::svc).
 *
 * The paper's device hosts four independent filter pipelines; the
 * service layer mirrors that with N independent MithriLog shards fed
 * by M workers. This bench sweeps (shards, threads) over one dataset
 * and reports, per configuration:
 *
 *   - modeled ingest throughput: rawBytes / max-over-shards device
 *     time — the paper-domain number (shards are independent devices
 *     running in parallel), deterministic and host-independent;
 *   - host wall-clock ingest throughput, for reference (on a 1-core
 *     runner the wall numbers cannot scale; the modeled ones must);
 *   - query p50/p99 over the template library, in modeled
 *     milliseconds (max-over-shards per query, i.e. fan-out latency);
 *   - shard imbalance (100 * (1 - mean/max) of per-shard query time);
 *   - a match fingerprint — hash over the sorted merged result lines
 *     of the full query sweep. Every configuration must produce the
 *     same fingerprint; the bench aborts on divergence.
 *
 * BENCH_JSON: one `shard_scaling` record per configuration with
 * `speedup_vs_serial` on the modeled ingest number.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/wall_timer.h"
#include "obs/report.h"
#include "svc/log_service.h"

namespace mithril::bench {
namespace {

struct ConfigResult {
    size_t shards = 0;
    size_t threads = 0;
    double modeled_gbps = 0.0;
    double wall_gbps = 0.0;
    double query_p50_ms = 0.0;
    double query_p99_ms = 0.0;
    double imbalance_pct = 0.0;
    uint64_t matched = 0;
    uint64_t fingerprint = 0;
};

double
percentile(std::vector<double> values, double p)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
    return values[std::min(idx, values.size() - 1)];
}

ConfigResult
runConfig(const BenchDataset &ds, size_t shards, size_t threads)
{
    svc::LogServiceConfig cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.queue_depth = 16;
    cfg.shard = obsConfig();
    cfg.metrics = &benchMetrics();
    cfg.tracer = &benchTracer();
    svc::LogService service(cfg);

    WallTimer wall;
    size_t start = 0;
    while (start < ds.text.size()) {
        size_t end = ds.text.find('\n', start);
        if (end == std::string::npos) {
            end = ds.text.size();
        }
        std::string_view line(ds.text.data() + start, end - start);
        Status st = service.append(line);
        if (!st.isOk()) {
            // Backpressure: let the backlog clear, retry same line.
            service.drain();
            continue;
        }
        start = end + 1;
    }
    expectOk(service.flush(), "flush");
    double ingest_wall = wall.seconds();

    // Modeled ingest time: each shard is an independent device, so
    // the service-level figure is the slowest shard's device clock.
    double modeled_s = 0.0;
    for (size_t i = 0; i < service.shardCount(); ++i) {
        modeled_s = std::max(
            modeled_s, service.shard(i).ssd().elapsed().toSeconds());
    }

    ConfigResult out;
    out.shards = shards;
    out.threads = threads;
    double gb = static_cast<double>(service.rawBytes()) / 1e9;
    out.modeled_gbps = modeled_s > 0 ? gb / modeled_s : 0.0;
    out.wall_gbps = ingest_wall > 0 ? gb / ingest_wall : 0.0;

    // Query sweep: the template library singles plus the fixed random
    // pairs — enough samples for a stable p50/p99.
    std::vector<double> modeled_ms;
    std::vector<std::string> kept;
    double imbalance_sum = 0.0;
    size_t imbalance_n = 0;
    auto sweep = [&](const std::vector<query::Query> &queries,
                     size_t limit) {
        for (size_t i = 0; i < queries.size() && i < limit; ++i) {
            svc::ServiceQueryResult r;
            expectOk(service.query(queries[i], &r), "query");
            modeled_ms.push_back(r.total_time.toSeconds() * 1e3);
            out.matched += r.matched_lines;
            for (const accel::KeptLine &line : r.lines) {
                kept.push_back(line.text);
            }
            imbalance_sum += r.shardImbalancePct();
            ++imbalance_n;
        }
    };
    sweep(ds.singles, 16);
    sweep(ds.pairs, 8);

    out.query_p50_ms = percentile(modeled_ms, 0.50);
    out.query_p99_ms = percentile(modeled_ms, 0.99);
    out.imbalance_pct =
        imbalance_n > 0 ? imbalance_sum / imbalance_n : 0.0;

    // Canonical fingerprint: shard count changes the merge interleave
    // but never the match *set*, so hash the sorted lines.
    std::sort(kept.begin(), kept.end());
    uint64_t h = 0x5ca11e5ull;
    for (const std::string &line : kept) {
        h = mix64(h ^ hash64(line));
    }
    out.fingerprint = h;
    return out;
}

} // namespace

int
run(int argc, char **argv)
{
    initBench(argc, argv);
    banner("Shard scaling: N service shards x M worker threads",
           "the four-pipeline scaling argument (Sections 4 and 6)");

    BenchDataset ds = makeDataset(loggen::hpc4Datasets()[1]);
    std::printf("dataset %s: %.1f MB, %zu templates\n\n",
                ds.spec.name.c_str(),
                static_cast<double>(ds.text.size()) / 1e6,
                ds.singles.size());

    const size_t sweep[][2] = {{1, 1}, {2, 2}, {4, 4}, {4, 8}};
    std::printf("%7s %8s %14s %12s %10s %10s %10s\n", "shards",
                "threads", "modeled GB/s", "wall GB/s", "p50 ms",
                "p99 ms", "imbal %");

    std::vector<ConfigResult> results;
    for (const auto &c : sweep) {
        results.push_back(runConfig(ds, c[0], c[1]));
        const ConfigResult &r = results.back();
        std::printf("%7zu %8zu %14.3f %12.3f %10.3f %10.3f %10.1f\n",
                    r.shards, r.threads, r.modeled_gbps, r.wall_gbps,
                    r.query_p50_ms, r.query_p99_ms, r.imbalance_pct);
    }

    const ConfigResult &serial = results.front();
    for (const ConfigResult &r : results) {
        if (r.fingerprint != serial.fingerprint ||
            r.matched != serial.matched) {
            std::fprintf(stderr,
                         "FATAL: %zux%zu query results diverge from "
                         "1x1 (fingerprint %016llx vs %016llx)\n",
                         r.shards, r.threads,
                         static_cast<unsigned long long>(r.fingerprint),
                         static_cast<unsigned long long>(
                             serial.fingerprint));
            return 1;
        }
        double speedup = serial.modeled_gbps > 0
                             ? r.modeled_gbps / serial.modeled_gbps
                             : 0.0;
        obs::JsonRecord record("shard_scaling");
        record.field("shards", static_cast<uint64_t>(r.shards))
            .field("threads", static_cast<uint64_t>(r.threads))
            .field("modeled_ingest_gbps", r.modeled_gbps)
            .field("wall_ingest_gbps", r.wall_gbps)
            .field("query_p50_ms", r.query_p50_ms)
            .field("query_p99_ms", r.query_p99_ms)
            .field("shard_imbalance_pct", r.imbalance_pct)
            .field("matched_lines", r.matched)
            .field("speedup_vs_serial", speedup)
            .field("results_identical", true);
        emitRecord(&record);
    }

    double scaling = results[2].modeled_gbps / serial.modeled_gbps;
    std::printf("\n4x4 over 1x1 modeled ingest speedup: %.2fx\n",
                scaling);
    if (scaling < 2.5) {
        std::fprintf(stderr,
                     "FATAL: 4-shard modeled ingest speedup %.2fx "
                     "below the 2.5x floor\n",
                     scaling);
        return 1;
    }

    finishBench();
    return 0;
}

} // namespace mithril::bench

int
main(int argc, char **argv)
{
    return mithril::bench::run(argc, argv);
}
