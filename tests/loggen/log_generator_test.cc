#include "loggen/log_generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/text.h"

namespace mithril::loggen {
namespace {

TEST(DatasetsTest, FourDatasetsWithPaperMetadata)
{
    const auto &specs = hpc4Datasets();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].name, "BGL2");
    EXPECT_EQ(specs[0].paper_templates, 93);
    EXPECT_EQ(specs[1].name, "Liberty2");
    EXPECT_EQ(specs[2].name, "Spirit2");
    EXPECT_EQ(specs[2].paper_templates, 241);
    EXPECT_EQ(specs[3].name, "Thunderbird");
    EXPECT_DOUBLE_EQ(specs[3].paper_size_gb, 30.0);
}

TEST(DatasetsTest, LookupByName)
{
    EXPECT_EQ(datasetByName("Spirit2").template_count, 241u);
}

TEST(LogGeneratorTest, DeterministicForSameSpec)
{
    LogGenerator a(hpc4Datasets()[0]);
    LogGenerator b(hpc4Datasets()[0]);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.line(), b.line());
    }
}

TEST(LogGeneratorTest, DatasetsDiffer)
{
    LogGenerator a(hpc4Datasets()[0]);
    LogGenerator b(hpc4Datasets()[1]);
    EXPECT_NE(a.line(), b.line());
}

TEST(LogGeneratorTest, TemplateLibrarySizeMatchesSpec)
{
    for (const DatasetSpec &spec : hpc4Datasets()) {
        LogGenerator gen(spec);
        EXPECT_EQ(gen.templates().size(), spec.template_count);
    }
}

TEST(LogGeneratorTest, GenerateApproximatesRequestedSize)
{
    LogGenerator gen(hpc4Datasets()[1]);
    std::string text = gen.generate(1 << 20);
    EXPECT_GE(text.size(), 1u << 20);
    EXPECT_LT(text.size(), (1u << 20) + 4096);
    EXPECT_EQ(text.back(), '\n');
}

TEST(LogGeneratorTest, TraceMatchesLineCount)
{
    LogGenerator gen(hpc4Datasets()[0]);
    std::vector<uint32_t> trace;
    std::string text = gen.generate(200 * 1024, &trace);
    EXPECT_EQ(trace.size(), gen.linesEmitted());
    EXPECT_EQ(splitLines(text).size(), trace.size());
    for (uint32_t t : trace) {
        EXPECT_LT(t, gen.templates().size());
    }
}

TEST(LogGeneratorTest, TemplatePopularityIsSkewed)
{
    LogGenerator gen(hpc4Datasets()[3]);
    std::vector<uint32_t> trace;
    gen.generate(1 << 20, &trace);
    std::map<uint32_t, uint64_t> counts;
    for (uint32_t t : trace) {
        ++counts[t];
    }
    // Template 0 (Zipf head) must dominate the median template.
    uint64_t head = counts[0];
    std::vector<uint64_t> all;
    for (auto &[t, c] : counts) {
        all.push_back(c);
    }
    std::sort(all.begin(), all.end());
    EXPECT_GT(head, all[all.size() / 2] * 5);
}

TEST(LogGeneratorTest, BglHeaderShape)
{
    LogGenerator gen(datasetByName("BGL2"));
    std::string line = gen.line();
    auto tokens = splitTokens(line);
    ASSERT_GE(tokens.size(), 9u);
    EXPECT_EQ(tokens[0], "-");
    EXPECT_EQ(tokens[6], "RAS");
    // Node name appears twice (positions 3 and 5).
    EXPECT_EQ(tokens[3], tokens[5]);
}

TEST(LogGeneratorTest, SyslogHeaderShape)
{
    LogGenerator gen(datasetByName("Thunderbird"));
    std::string line = gen.line();
    auto tokens = splitTokens(line);
    ASSERT_GE(tokens.size(), 10u);
    // "SEQ EPOCH DATE NODE MONTH DAY TIME NODE daemon: ..."
    EXPECT_EQ(tokens[3], tokens[7]);   // node repeats
    EXPECT_EQ(tokens[8].back(), ':');  // daemon tag
}

TEST(LogGeneratorTest, LinesHaveNoForbiddenBytes)
{
    // LZAH requires NUL-free, newline-terminated lines.
    LogGenerator gen(hpc4Datasets()[2]);
    for (int i = 0; i < 500; ++i) {
        std::string line = gen.line();
        EXPECT_EQ(line.find('\0'), std::string::npos);
        EXPECT_EQ(line.find('\n'), std::string::npos);
        EXPECT_LT(line.size(), 1000u);
        EXPECT_GT(line.size(), 20u);
    }
}

TEST(LogGeneratorTest, VariabilityOrderingAcrossDatasets)
{
    // Thunderbird-like must be more repetitive (more compressible)
    // than BGL2-like, reproducing Table 5's ordering for LZAH.
    auto distinct_ratio = [](const DatasetSpec &spec) {
        LogGenerator gen(spec);
        std::string text = gen.generate(512 * 1024);
        std::set<std::string_view> distinct;
        size_t total = 0;
        forEachLine(text, [&](std::string_view line) {
            forEachToken(line, [&](std::string_view tok, uint32_t) {
                distinct.insert(tok);
                ++total;
                return true;
            });
        });
        return static_cast<double>(distinct.size()) / total;
    };
    EXPECT_GT(distinct_ratio(datasetByName("BGL2")),
              distinct_ratio(datasetByName("Thunderbird")));
}

} // namespace
} // namespace mithril::loggen
