/**
 * @file
 * End-to-end fault determinism: two systems built from the same corpus
 * with the same FaultPlan seed must produce byte-identical query
 * outcomes — Status, matches, degradation flags, fault counters, and
 * modeled SimTime — across the whole query sequence. This is the
 * property that makes fault-injection results debuggable and CI-able.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/mithrilog.h"
#include "fault/fault_plan.h"
#include "query/parser.h"

namespace mithril::core {
namespace {

std::string
corpus()
{
    std::string text;
    for (int i = 0; i < 4000; ++i) {
        text += "svc" + std::to_string(i % 7) + " request " +
                std::to_string(i) +
                (i % 9 == 0 ? " error timeout\n" : " ok fast\n");
    }
    return text;
}

fault::FaultPlanConfig
aggressivePlan()
{
    fault::FaultPlanConfig cfg;
    cfg.seed = 1234;
    cfg.bit_error_rate = 1e-5;
    cfg.uncorrectable_rate = 0.01;
    cfg.timeout_rate = 0.05;
    cfg.block_garble_rate = 0.005;
    return cfg;
}

struct RunOutcome {
    std::vector<Status> statuses;
    std::vector<uint64_t> matches;
    std::vector<uint64_t> pages_dropped;
    std::vector<uint64_t> retries;
    std::vector<bool> degraded_index;
    std::vector<bool> degraded_software;
    std::vector<uint64_t> total_ps;
    fault::FaultCounters fault_counters;
};

RunOutcome
runSequence(const fault::FaultPlanConfig &plan_cfg)
{
    MithriLog system;
    EXPECT_TRUE(system.ingestText(corpus()).isOk());
    EXPECT_TRUE(system.flush().isOk());

    fault::FaultPlan plan(plan_cfg);
    system.ssd().attachFaultPlan(&plan);

    RunOutcome run;
    const char *queries[] = {"error", "timeout & error", "svc3 & ok",
                             "request", "error | fast"};
    for (const char *text : queries) {
        query::Query q;
        EXPECT_TRUE(query::parseQuery(text, &q).isOk());
        QueryResult r;
        Status st = system.run(q, &r);
        run.statuses.push_back(st);
        run.matches.push_back(r.matched_lines);
        run.pages_dropped.push_back(r.pages_dropped);
        run.retries.push_back(r.breakdown.read_retries);
        run.degraded_index.push_back(r.degraded_index_scan);
        run.degraded_software.push_back(r.degraded_software_scan);
        run.total_ps.push_back(r.total_time.ps());
    }
    run.fault_counters = plan.counters();
    system.ssd().attachFaultPlan(nullptr);
    return run;
}

TEST(FaultDeterminismTest, SamePlanSeedReproducesEverything)
{
    RunOutcome a = runSequence(aggressivePlan());
    RunOutcome b = runSequence(aggressivePlan());

    ASSERT_EQ(a.statuses.size(), b.statuses.size());
    for (size_t i = 0; i < a.statuses.size(); ++i) {
        EXPECT_EQ(a.statuses[i].code(), b.statuses[i].code()) << i;
        EXPECT_EQ(a.statuses[i].toString(), b.statuses[i].toString())
            << i;
    }
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.pages_dropped, b.pages_dropped);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.degraded_index, b.degraded_index);
    EXPECT_EQ(a.degraded_software, b.degraded_software);
    EXPECT_EQ(a.total_ps, b.total_ps);

    EXPECT_EQ(a.fault_counters.draws, b.fault_counters.draws);
    EXPECT_EQ(a.fault_counters.timeouts, b.fault_counters.timeouts);
    EXPECT_EQ(a.fault_counters.uncorrectable,
              b.fault_counters.uncorrectable);
    EXPECT_EQ(a.fault_counters.bits_flipped,
              b.fault_counters.bits_flipped);
    EXPECT_EQ(a.fault_counters.blocks_garbled,
              b.fault_counters.blocks_garbled);

    // The plan must have actually injected something, or this test
    // proves nothing.
    EXPECT_GT(a.fault_counters.draws, 0u);
    EXPECT_GT(a.fault_counters.timeouts + a.fault_counters.uncorrectable +
                  a.fault_counters.bits_flipped +
                  a.fault_counters.blocks_garbled,
              0u);
}

TEST(FaultDeterminismTest, DifferentSeedsDiverge)
{
    fault::FaultPlanConfig other = aggressivePlan();
    other.seed = 99;
    RunOutcome a = runSequence(aggressivePlan());
    RunOutcome b = runSequence(other);
    // Same rates, different seed: the fault tallies should differ
    // somewhere (draws match — same read sequence feeds both plans —
    // but outcomes should not all coincide).
    EXPECT_TRUE(a.fault_counters.timeouts != b.fault_counters.timeouts ||
                a.fault_counters.bits_flipped !=
                    b.fault_counters.bits_flipped ||
                a.fault_counters.uncorrectable !=
                    b.fault_counters.uncorrectable ||
                a.fault_counters.blocks_garbled !=
                    b.fault_counters.blocks_garbled);
}

TEST(FaultDeterminismTest, QueriesStayCorrectUnderAcceptanceRates)
{
    // The ISSUE acceptance condition: 1e-6 BER plus 1% timeouts must
    // leave every query answer exactly correct (recovered by retries /
    // CRC re-reads, or answered via a documented degraded path).
    MithriLog clean_system;
    ASSERT_TRUE(clean_system.ingestText(corpus()).isOk());
    EXPECT_TRUE(clean_system.flush().isOk());

    MithriLog faulted_system;
    ASSERT_TRUE(faulted_system.ingestText(corpus()).isOk());
    EXPECT_TRUE(faulted_system.flush().isOk());
    fault::FaultPlanConfig cfg;
    cfg.seed = 42;
    cfg.bit_error_rate = 1e-6;
    cfg.timeout_rate = 0.01;
    fault::FaultPlan plan(cfg);
    faulted_system.ssd().attachFaultPlan(&plan);

    const char *queries[] = {"error", "timeout & error", "svc3 & ok",
                             "error | fast"};
    for (const char *text : queries) {
        query::Query q;
        ASSERT_TRUE(query::parseQuery(text, &q).isOk());
        QueryResult clean_r, faulted_r;
        ASSERT_TRUE(clean_system.run(q, &clean_r).isOk());
        Status st = faulted_system.run(q, &faulted_r);
        ASSERT_TRUE(st.isOk()) << text << ": " << st.toString();
        EXPECT_EQ(faulted_r.matched_lines, clean_r.matched_lines)
            << text;
    }
    faulted_system.ssd().attachFaultPlan(nullptr);
}

} // namespace
} // namespace mithril::core
