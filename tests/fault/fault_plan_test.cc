/**
 * @file
 * FaultPlan unit tests: spec parsing, rate behavior, corruption
 * application, and the determinism contract (same config => identical
 * draw sequences and counters).
 */
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"

namespace mithril::fault {
namespace {

constexpr size_t kPage = 4096;

TEST(FaultPlanParseTest, EmptySpecIsNullPlan)
{
    FaultPlanConfig cfg;
    ASSERT_TRUE(FaultPlan::parse("", &cfg).isOk());
    EXPECT_EQ(cfg.bit_error_rate, 0.0);
    EXPECT_EQ(cfg.uncorrectable_rate, 0.0);
    EXPECT_EQ(cfg.timeout_rate, 0.0);
    EXPECT_EQ(cfg.block_garble_rate, 0.0);
}

TEST(FaultPlanParseTest, FullSpecRoundTrips)
{
    FaultPlanConfig cfg;
    ASSERT_TRUE(FaultPlan::parse("seed=7,ber=1e-6,ecc=1e-4,timeout=0.01,"
                                 "garble=2e-3,retries=6,backoff_us=100",
                                 &cfg)
                    .isOk());
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_DOUBLE_EQ(cfg.bit_error_rate, 1e-6);
    EXPECT_DOUBLE_EQ(cfg.uncorrectable_rate, 1e-4);
    EXPECT_DOUBLE_EQ(cfg.timeout_rate, 0.01);
    EXPECT_DOUBLE_EQ(cfg.block_garble_rate, 2e-3);
    EXPECT_EQ(cfg.max_retries, 6u);
    EXPECT_EQ(cfg.retry_backoff.ps(), SimTime::microseconds(100).ps());
}

TEST(FaultPlanParseTest, RejectsUnknownAndMalformedKeys)
{
    FaultPlanConfig cfg;
    EXPECT_FALSE(FaultPlan::parse("bogus=1", &cfg).isOk());
    EXPECT_FALSE(FaultPlan::parse("ber", &cfg).isOk());
    EXPECT_FALSE(FaultPlan::parse("ber=notanumber", &cfg).isOk());
    EXPECT_FALSE(FaultPlan::parse("seed=12junk", &cfg).isOk());
}

TEST(FaultPlanTest, NullPlanNeverFaults)
{
    FaultPlan plan{FaultPlanConfig{}};
    for (uint64_t page = 0; page < 64; ++page) {
        ReadFault f = plan.drawRead(page, kPage);
        EXPECT_FALSE(f.failed());
        EXPECT_FALSE(f.corrupts());
    }
    EXPECT_EQ(plan.counters().draws, 64u);
    EXPECT_EQ(plan.counters().timeouts, 0u);
    EXPECT_EQ(plan.counters().bits_flipped, 0u);
}

TEST(FaultPlanTest, CertainTimeoutAlwaysFails)
{
    FaultPlanConfig cfg;
    cfg.timeout_rate = 1.0;
    FaultPlan plan(cfg);
    for (uint64_t page = 0; page < 16; ++page) {
        EXPECT_TRUE(plan.drawRead(page, kPage).timeout);
    }
    EXPECT_EQ(plan.counters().timeouts, 16u);
}

TEST(FaultPlanTest, BitErrorRateScalesWithRate)
{
    FaultPlanConfig cfg;
    cfg.seed = 11;
    cfg.bit_error_rate = 1e-3;  // ~33 expected flips per 4 KB page
    FaultPlan plan(cfg);
    uint64_t flips = 0;
    for (uint64_t page = 0; page < 100; ++page) {
        flips += plan.drawRead(page, kPage).flipped_bits.size();
    }
    double expected = 100.0 * kPage * 8 * cfg.bit_error_rate;
    EXPECT_GT(flips, expected * 0.5);
    EXPECT_LT(flips, expected * 1.5);
    EXPECT_EQ(plan.counters().bits_flipped, flips);
}

TEST(FaultPlanTest, DrawSequencesAreDeterministic)
{
    FaultPlanConfig cfg;
    cfg.seed = 3;
    cfg.bit_error_rate = 1e-5;
    cfg.timeout_rate = 0.05;
    cfg.uncorrectable_rate = 0.01;
    cfg.block_garble_rate = 0.02;
    FaultPlan plan_a(cfg);
    FaultPlan plan_b(cfg);
    for (uint64_t page = 0; page < 500; ++page) {
        ReadFault fa = plan_a.drawRead(page, kPage);
        ReadFault fb = plan_b.drawRead(page, kPage);
        EXPECT_EQ(fa.timeout, fb.timeout);
        EXPECT_EQ(fa.uncorrectable, fb.uncorrectable);
        EXPECT_EQ(fa.garble, fb.garble);
        EXPECT_EQ(fa.garble_offset, fb.garble_offset);
        EXPECT_EQ(fa.garble_seed, fb.garble_seed);
        EXPECT_EQ(fa.flipped_bits, fb.flipped_bits);
    }
    EXPECT_EQ(plan_a.counters().draws, plan_b.counters().draws);
    EXPECT_EQ(plan_a.counters().timeouts, plan_b.counters().timeouts);
    EXPECT_EQ(plan_a.counters().uncorrectable, plan_b.counters().uncorrectable);
    EXPECT_EQ(plan_a.counters().bits_flipped, plan_b.counters().bits_flipped);
    EXPECT_EQ(plan_a.counters().blocks_garbled, plan_b.counters().blocks_garbled);
}

TEST(FaultPlanTest, RepeatedReadsOfSamePageDrawIndependently)
{
    // The draw counter separates attempts: a page that timed out once
    // must not time out forever (that is what makes retries work).
    FaultPlanConfig cfg;
    cfg.seed = 5;
    cfg.timeout_rate = 0.5;
    FaultPlan plan(cfg);
    int timeouts = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
        timeouts += plan.drawRead(/*page_id=*/9, kPage).timeout ? 1 : 0;
    }
    EXPECT_GT(timeouts, 10);
    EXPECT_LT(timeouts, 54);
}

TEST(FaultPlanTest, ApplyCorruptionFlipsExactlyTheDrawnBits)
{
    FaultPlanConfig cfg;
    cfg.seed = 17;
    cfg.bit_error_rate = 1e-4;
    FaultPlan plan(cfg);
    ReadFault f;
    while (f.flipped_bits.empty()) {
        f = plan.drawRead(plan.counters().draws, kPage);
    }
    std::vector<uint8_t> page(kPage, 0);
    plan.applyCorruption(f, std::span<uint8_t>(page));
    size_t set_bits = 0;
    for (uint8_t b : page) {
        set_bits += static_cast<size_t>(__builtin_popcount(b));
    }
    EXPECT_EQ(set_bits, f.flipped_bits.size());
}

TEST(FaultPlanTest, GarbleReplacesTailDeterministically)
{
    FaultPlanConfig cfg;
    cfg.seed = 23;
    cfg.block_garble_rate = 1.0;
    FaultPlan plan(cfg);
    ReadFault f = plan.drawRead(0, kPage);
    ASSERT_TRUE(f.garble);
    ASSERT_LT(f.garble_offset, kPage);
    std::vector<uint8_t> p1(kPage, 0xaa);
    std::vector<uint8_t> p2(kPage, 0xaa);
    plan.applyCorruption(f, std::span<uint8_t>(p1));
    plan.applyCorruption(f, std::span<uint8_t>(p2));
    EXPECT_EQ(p1, p2);
    for (size_t i = 0; i < f.garble_offset; ++i) {
        ASSERT_EQ(p1[i], 0xaa);
    }
    EXPECT_EQ(plan.counters().blocks_garbled, 1u);
}

TEST(FaultPlanParseTest, WriteFaultKeysRoundTrip)
{
    FaultPlanConfig cfg;
    ASSERT_TRUE(
        FaultPlan::parse("seed=9,torn=0.25,drop=0.125,cut_after=42", &cfg)
            .isOk());
    EXPECT_EQ(cfg.seed, 9u);
    EXPECT_DOUBLE_EQ(cfg.torn_write_rate, 0.25);
    EXPECT_DOUBLE_EQ(cfg.dropped_write_rate, 0.125);
    EXPECT_EQ(cfg.power_cut_after_writes, 42u);
    EXPECT_FALSE(FaultPlan::parse("torn=nope", &cfg).isOk());
    EXPECT_FALSE(FaultPlan::parse("cut_after=1x", &cfg).isOk());
}

TEST(FaultPlanTest, NullPlanNeverFaultsWrites)
{
    FaultPlan plan{FaultPlanConfig{}};
    for (uint64_t page = 0; page < 64; ++page) {
        WriteFault f = plan.drawWrite(page, kPage);
        EXPECT_FALSE(f.damages());
        EXPECT_FALSE(f.power_cut);
    }
    EXPECT_EQ(plan.counters().write_draws, 64u);
    EXPECT_EQ(plan.counters().torn_writes, 0u);
    EXPECT_EQ(plan.counters().dropped_writes, 0u);
    EXPECT_EQ(plan.counters().power_cuts, 0u);
}

TEST(FaultPlanTest, PowerCutFiresOnExactWriteOrdinal)
{
    FaultPlanConfig cfg;
    cfg.seed = 13;
    cfg.power_cut_after_writes = 5;
    FaultPlan plan(cfg);
    for (uint64_t i = 1; i <= 8; ++i) {
        WriteFault f = plan.drawWrite(/*page_id=*/100 + i, kPage);
        EXPECT_EQ(f.power_cut, i == 5) << "write ordinal " << i;
        if (f.power_cut) {
            EXPECT_LE(f.persisted_bytes, kPage);
        }
    }
    EXPECT_EQ(plan.counters().write_draws, 8u);
    EXPECT_EQ(plan.counters().power_cuts, 1u);
}

TEST(FaultPlanTest, WriteDrawSequencesAreDeterministic)
{
    FaultPlanConfig cfg;
    cfg.seed = 19;
    cfg.torn_write_rate = 0.3;
    cfg.dropped_write_rate = 0.2;
    cfg.power_cut_after_writes = 400;
    FaultPlan plan_a(cfg);
    FaultPlan plan_b(cfg);
    for (uint64_t page = 0; page < 500; ++page) {
        WriteFault fa = plan_a.drawWrite(page, kPage);
        WriteFault fb = plan_b.drawWrite(page, kPage);
        EXPECT_EQ(fa.torn, fb.torn);
        EXPECT_EQ(fa.dropped, fb.dropped);
        EXPECT_EQ(fa.power_cut, fb.power_cut);
        EXPECT_EQ(fa.persisted_bytes, fb.persisted_bytes);
    }
    EXPECT_EQ(plan_a.counters().torn_writes,
              plan_b.counters().torn_writes);
    EXPECT_EQ(plan_a.counters().dropped_writes,
              plan_b.counters().dropped_writes);
    EXPECT_EQ(plan_a.counters().power_cuts, 1u);
    EXPECT_EQ(plan_b.counters().power_cuts, 1u);
}

TEST(FaultPlanTest, ReadDrawsDoNotShiftThePowerCutPoint)
{
    // Read retries draw from a separate ordinal stream, so a plan that
    // also injects read faults must cut power at the same write.
    FaultPlanConfig cfg;
    cfg.seed = 21;
    cfg.power_cut_after_writes = 3;
    FaultPlan quiet_plan(cfg);
    cfg.timeout_rate = 0.5;  // noisy read stream
    FaultPlan noisy_plan(cfg);
    for (uint64_t i = 0; i < 32; ++i) {
        noisy_plan.drawRead(i, kPage);
    }
    for (uint64_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(quiet_plan.drawWrite(i, kPage).power_cut, i == 3);
        EXPECT_EQ(noisy_plan.drawWrite(i, kPage).power_cut, i == 3);
    }
}

TEST(FaultPlanTest, WriteMetricsMirrorCounters)
{
    obs::MetricsRegistry metrics;
    FaultPlanConfig cfg;
    cfg.seed = 31;
    cfg.torn_write_rate = 1.0;
    FaultPlan plan(cfg);
    plan.bindMetrics(&metrics);
    for (uint64_t page = 0; page < 6; ++page) {
        plan.drawWrite(page, kPage);
    }
    EXPECT_EQ(metrics.counter("fault.write_draws").value(), 6u);
    EXPECT_EQ(metrics.counter("fault.torn_writes").value(), 6u);
}

TEST(FaultPlanTest, MetricsMirrorCounters)
{
    obs::MetricsRegistry metrics;
    FaultPlanConfig cfg;
    cfg.seed = 29;
    cfg.timeout_rate = 1.0;
    FaultPlan plan(cfg);
    plan.bindMetrics(&metrics);
    for (uint64_t page = 0; page < 8; ++page) {
        plan.drawRead(page, kPage);
    }
    EXPECT_EQ(metrics.counter("fault.draws").value(), 8u);
    EXPECT_EQ(metrics.counter("fault.timeouts").value(), 8u);
}

} // namespace
} // namespace mithril::fault
