#include "regex/regex.h"

#include <gtest/gtest.h>

namespace mithril::regex {
namespace {

Regex
mustCompile(std::string_view pattern)
{
    Regex re;
    Status st = Regex::compile(pattern, &re);
    EXPECT_TRUE(st.isOk()) << pattern << ": " << st.toString();
    return re;
}

TEST(RegexTest, LiteralMatch)
{
    Regex re = mustCompile("abc");
    EXPECT_TRUE(re.match("abc"));
    EXPECT_FALSE(re.match("ab"));
    EXPECT_FALSE(re.match("abcd"));
    EXPECT_FALSE(re.match("xbc"));
}

TEST(RegexTest, DotMatchesAnyExceptNewline)
{
    Regex re = mustCompile("a.c");
    EXPECT_TRUE(re.match("abc"));
    EXPECT_TRUE(re.match("a c"));
    EXPECT_FALSE(re.match("a\nc"));
}

TEST(RegexTest, StarRepetition)
{
    Regex re = mustCompile("ab*c");
    EXPECT_TRUE(re.match("ac"));
    EXPECT_TRUE(re.match("abc"));
    EXPECT_TRUE(re.match("abbbbc"));
    EXPECT_FALSE(re.match("adc"));
}

TEST(RegexTest, PlusRepetition)
{
    Regex re = mustCompile("ab+c");
    EXPECT_FALSE(re.match("ac"));
    EXPECT_TRUE(re.match("abc"));
    EXPECT_TRUE(re.match("abbc"));
}

TEST(RegexTest, QuestionOptional)
{
    Regex re = mustCompile("colou?r");
    EXPECT_TRUE(re.match("color"));
    EXPECT_TRUE(re.match("colour"));
    EXPECT_FALSE(re.match("colouur"));
}

TEST(RegexTest, Alternation)
{
    Regex re = mustCompile("cat|dog|bird");
    EXPECT_TRUE(re.match("cat"));
    EXPECT_TRUE(re.match("dog"));
    EXPECT_TRUE(re.match("bird"));
    EXPECT_FALSE(re.match("fish"));
}

TEST(RegexTest, GroupingWithRepetition)
{
    Regex re = mustCompile("(ab)+");
    EXPECT_TRUE(re.match("ab"));
    EXPECT_TRUE(re.match("abab"));
    EXPECT_FALSE(re.match("aba"));
}

TEST(RegexTest, CharacterClass)
{
    Regex re = mustCompile("[a-c]+");
    EXPECT_TRUE(re.match("abcba"));
    EXPECT_FALSE(re.match("abd"));
}

TEST(RegexTest, NegatedClass)
{
    Regex re = mustCompile("[^0-9]+");
    EXPECT_TRUE(re.match("abc"));
    EXPECT_FALSE(re.match("ab3"));
}

TEST(RegexTest, ClassEscapes)
{
    EXPECT_TRUE(mustCompile("\\d+").match("12345"));
    EXPECT_FALSE(mustCompile("\\d+").match("12a45"));
    EXPECT_TRUE(mustCompile("\\w+").match("abc_123"));
    EXPECT_TRUE(mustCompile("a\\.b").match("a.b"));
    EXPECT_FALSE(mustCompile("a\\.b").match("axb"));
}

TEST(RegexTest, EmptyAlternative)
{
    Regex re = mustCompile("a(b|)c");
    EXPECT_TRUE(re.match("abc"));
    EXPECT_TRUE(re.match("ac"));
}

TEST(RegexTest, SearchFindsSubstring)
{
    Regex re = mustCompile("FATAL");
    EXPECT_TRUE(re.search("RAS KERNEL FATAL data storage interrupt"));
    EXPECT_FALSE(re.search("RAS KERNEL INFO ok"));
}

TEST(RegexTest, SearchLogPattern)
{
    // A HARE-style log query: an error code pattern anywhere in line.
    Regex re = mustCompile("err(or)?=0x[0-9a-f]+");
    EXPECT_TRUE(re.search("dev eth0 error=0x1f4 dropped"));
    EXPECT_TRUE(re.search("err=0xdeadbeef"));
    EXPECT_FALSE(re.search("error=xyz"));
}

TEST(RegexTest, DfaStatesAreCached)
{
    Regex re = mustCompile("(a|b)*abb");
    EXPECT_TRUE(re.match("aabb"));
    size_t after_first = re.dfaStateCount();
    EXPECT_GT(after_first, 0u);
    // Re-matching similar input should reuse cached DFA states.
    EXPECT_TRUE(re.match("babb"));
    EXPECT_LE(re.dfaStateCount(), after_first + 2);
}

TEST(RegexTest, StateCountGrowsWithPattern)
{
    Regex small = mustCompile("ab");
    Regex big = mustCompile("(abc|def|ghi)+[0-9]*x*y+z?");
    EXPECT_GT(big.stateCount(), small.stateCount());
}

TEST(RegexErrorTest, SyntaxErrors)
{
    Regex re;
    EXPECT_FALSE(Regex::compile("(ab", &re).isOk());
    EXPECT_FALSE(Regex::compile("ab)", &re).isOk());
    EXPECT_FALSE(Regex::compile("*a", &re).isOk());
    EXPECT_FALSE(Regex::compile("a[bc", &re).isOk());
    EXPECT_FALSE(Regex::compile("a\\", &re).isOk());
}

TEST(RegexTest, EmptyPatternMatchesEmpty)
{
    Regex re = mustCompile("");
    EXPECT_TRUE(re.match(""));
    EXPECT_FALSE(re.match("a"));
    EXPECT_TRUE(re.search("anything"));
}

} // namespace
} // namespace mithril::regex
