/**
 * @file
 * Differential testing of the NFA/DFA engine against std::regex
 * (ECMAScript grammar) on the operator subset both support: literals,
 * '.', classes, ranges, negation, grouping, alternation, * + ?.
 * Random patterns are generated from that subset and evaluated over
 * random subject strings; both engines must agree on match() and
 * search() for every pair.
 */
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "common/rng.h"
#include "regex/regex.h"

namespace mithril::regex {
namespace {

/**
 * Random pattern from the shared operator subset.
 *
 * Quantifiers are applied only to single-character atoms, never to
 * groups: std::regex's backtracking matcher goes exponential on
 * nested quantified groups like ((a|b)+)+, which would hang the
 * differential oracle (our DFA engine handles them fine).
 */
std::string
randomPattern(Rng *rng, int depth = 0)
{
    auto quantifier = [&]() -> const char * {
        switch (rng->below(6)) {
          case 0: return "*";
          case 1: return "+";
          case 2: return "?";
          default: return "";
        }
    };
    std::string out;
    size_t pieces = 1 + rng->below(4);
    for (size_t i = 0; i < pieces; ++i) {
        switch (rng->below(depth > 1 ? 4 : 6)) {
          case 0:
            out += static_cast<char>('a' + rng->below(4));
            out += quantifier();
            break;
          case 1:
            out += '.';
            out += quantifier();
            break;
          case 2:
            out += "[ab]";
            out += quantifier();
            break;
          case 3:
            out += "[^c]";
            out += quantifier();
            break;
          case 4:
            out += "(" + randomPattern(rng, depth + 1) + ")";
            break;
          default:
            out += "(" + randomPattern(rng, depth + 1) + "|" +
                   randomPattern(rng, depth + 1) + ")";
            break;
        }
    }
    return out;
}

std::string
randomSubject(Rng *rng)
{
    std::string out;
    size_t len = rng->below(12);
    for (size_t i = 0; i < len; ++i) {
        out += static_cast<char>('a' + rng->below(5));
    }
    return out;
}

class RegexDifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RegexDifferentialTest, AgreesWithStdRegex)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        std::string pattern = randomPattern(&rng);

        Regex mine;
        Status st = Regex::compile(pattern, &mine);
        ASSERT_TRUE(st.isOk()) << pattern << ": " << st.toString();

        std::regex theirs;
        try {
            theirs = std::regex(pattern, std::regex::ECMAScript);
        } catch (const std::regex_error &) {
            continue;  // subset mismatch; skip rather than fail
        }

        for (int s = 0; s < 20; ++s) {
            std::string subject = randomSubject(&rng);
            bool mine_match = mine.match(subject);
            bool theirs_match = std::regex_match(subject, theirs);
            ASSERT_EQ(mine_match, theirs_match)
                << "match('" << pattern << "', '" << subject << "')";
            bool mine_search = mine.search(subject);
            bool theirs_search = std::regex_search(subject, theirs);
            ASSERT_EQ(mine_search, theirs_search)
                << "search('" << pattern << "', '" << subject << "')";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexDifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

} // namespace
} // namespace mithril::regex
