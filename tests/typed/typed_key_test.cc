/**
 * @file
 * Normalization unit tests for the typed-key parsers (DESIGN.md §15).
 * Strictness is the contract under test: one value has exactly one
 * key, so the posting lists never alias; malformed spellings are
 * rejected, never guessed at.
 */
#include "typed/typed_key.h"

#include <gtest/gtest.h>

namespace mithril::typed {
namespace {

// ---- IPv4 -------------------------------------------------------------

TEST(TypedKeyTest, Ip4ParsesDottedQuad)
{
    std::array<uint8_t, 4> o{};
    ASSERT_TRUE(parseIp4("10.1.2.3", &o));
    EXPECT_EQ(o, (std::array<uint8_t, 4>{10, 1, 2, 3}));
    ASSERT_TRUE(parseIp4("0.0.0.0", &o));
    EXPECT_EQ(o, (std::array<uint8_t, 4>{0, 0, 0, 0}));
    ASSERT_TRUE(parseIp4("255.255.255.255", &o));
    EXPECT_EQ(o, (std::array<uint8_t, 4>{255, 255, 255, 255}));
}

TEST(TypedKeyTest, Ip4RejectsOctetEdgeCases)
{
    std::array<uint8_t, 4> o{};
    EXPECT_FALSE(parseIp4("10.0.0.256", &o));   // octet overflow
    EXPECT_FALSE(parseIp4("10.0.0.01", &o));    // leading zero
    EXPECT_FALSE(parseIp4("010.0.0.1", &o));    // leading zero, first
    EXPECT_FALSE(parseIp4("10.0.0", &o));       // three octets
    EXPECT_FALSE(parseIp4("10.0.0.1.2", &o));   // five octets
    EXPECT_FALSE(parseIp4("10..0.1", &o));      // empty octet
    EXPECT_FALSE(parseIp4("10.0.0.1.", &o));    // trailing dot
    EXPECT_FALSE(parseIp4("10.0.0.x", &o));     // non-digit
    EXPECT_FALSE(parseIp4("", &o));
    EXPECT_FALSE(parseIp4("999.1.1.1", &o));
}

// ---- IPv6 -------------------------------------------------------------

TEST(TypedKeyTest, Ip6DoubleColonRoundTrips)
{
    // parse -> format must reproduce the RFC 5952 canonical spelling,
    // so every spelling of one address lands on one key and one text.
    std::array<uint8_t, 16> g{};
    ASSERT_TRUE(parseIp6("2001:db8::1", &g));
    EXPECT_EQ(formatIp6(g), "2001:db8::1");

    std::array<uint8_t, 16> expanded{};
    ASSERT_TRUE(parseIp6("2001:0db8:0000:0000:0000:0000:0000:0001",
                         &expanded));
    EXPECT_EQ(g, expanded);  // compressed == expanded, same key
    EXPECT_EQ(formatIp6(expanded), "2001:db8::1");

    ASSERT_TRUE(parseIp6("::", &g));
    EXPECT_EQ(g, (std::array<uint8_t, 16>{}));
    EXPECT_EQ(formatIp6(g), "::");

    ASSERT_TRUE(parseIp6("::1", &g));
    EXPECT_EQ(formatIp6(g), "::1");

    ASSERT_TRUE(parseIp6("fe80::", &g));
    EXPECT_EQ(formatIp6(g), "fe80::");
}

TEST(TypedKeyTest, Ip6EmbeddedDottedQuad)
{
    std::array<uint8_t, 16> g{};
    ASSERT_TRUE(parseIp6("::ffff:10.1.2.3", &g));
    EXPECT_EQ(g[10], 0xff);
    EXPECT_EQ(g[11], 0xff);
    EXPECT_EQ(g[12], 10);
    EXPECT_EQ(g[13], 1);
    EXPECT_EQ(g[14], 2);
    EXPECT_EQ(g[15], 3);
}

TEST(TypedKeyTest, Ip6RejectsMalformed)
{
    std::array<uint8_t, 16> g{};
    EXPECT_FALSE(parseIp6("2001::db8::1", &g));  // two zero runs
    EXPECT_FALSE(parseIp6("2001:db8:12345::", &g));  // 5-nibble group
    EXPECT_FALSE(parseIp6("1:2:3:4:5:6:7:8:9", &g));  // nine groups
    EXPECT_FALSE(parseIp6("1:2:3:4:5:6:7", &g));  // seven, no ::
    EXPECT_FALSE(parseIp6("10.1.2.3", &g));       // that's an IPv4
    EXPECT_FALSE(parseIp6("", &g));
}

// ---- MAC --------------------------------------------------------------

TEST(TypedKeyTest, MacSeparators)
{
    std::array<uint8_t, 6> a{};
    std::array<uint8_t, 6> b{};
    ASSERT_TRUE(parseMac("aa:bb:cc:dd:ee:ff", &a));
    ASSERT_TRUE(parseMac("AA-BB-CC-DD-EE-FF", &b));
    EXPECT_EQ(a, b);  // separator and case do not change the key
    EXPECT_EQ(formatMac(a), "aa:bb:cc:dd:ee:ff");

    EXPECT_FALSE(parseMac("aa:bb:cc:dd:ee", &a));       // five groups
    EXPECT_FALSE(parseMac("aa:bb-cc:dd:ee:ff", &a));    // mixed seps
    EXPECT_FALSE(parseMac("aab:bcc:dde:eff", &a));      // wrong shape
    EXPECT_FALSE(parseMac("aa:bb:cc:dd:ee:fg", &a));    // non-hex
}

// ---- hex ids ----------------------------------------------------------

TEST(TypedKeyTest, HexIdNormalization)
{
    std::string id;
    ASSERT_TRUE(parseHexId("DEADBEEF", &id));
    EXPECT_EQ(id, "deadbeef");  // lowercased
    ASSERT_TRUE(parseHexId("0xDeadBeef01", &id));
    EXPECT_EQ(id, "deadbeef01");  // 0x stripped

    EXPECT_FALSE(parseHexId("deadbee", &id));    // 7 nibbles: too short
    EXPECT_FALSE(parseHexId("12345678", &id));   // pure digits: a number
    EXPECT_FALSE(parseHexId("deadbeefx", &id));  // stray non-hex
    EXPECT_FALSE(parseHexId(std::string(65, 'a'), &id));  // > 64
    ASSERT_TRUE(parseHexId(std::string(64, 'a'), &id));   // == 64 ok
}

// ---- timestamps -------------------------------------------------------

TEST(TypedKeyTest, Rfc3339ToEpoch)
{
    uint64_t epoch = 0;
    ASSERT_TRUE(parseRfc3339("2026-08-09T12:34:56Z", &epoch));
    uint64_t expected =
        static_cast<uint64_t>(daysFromCivil(2026, 8, 9)) * 86400 +
        12 * 3600 + 34 * 60 + 56;
    EXPECT_EQ(epoch, expected);

    // Offsets shift back to UTC; fractional seconds truncate.
    uint64_t with_offset = 0;
    ASSERT_TRUE(
        parseRfc3339("2026-08-09T14:34:56+02:00", &with_offset));
    EXPECT_EQ(with_offset, expected);
    uint64_t with_frac = 0;
    ASSERT_TRUE(parseRfc3339("2026-08-09T12:34:56.789Z", &with_frac));
    EXPECT_EQ(with_frac, expected);

    EXPECT_FALSE(parseRfc3339("2026-13-09T12:34:56Z", &epoch));
    EXPECT_FALSE(parseRfc3339("2026-08-09 12:34:56", &epoch));
    EXPECT_FALSE(parseRfc3339("not-a-time", &epoch));
}

TEST(TypedKeyTest, SyslogTimeUsesFixedBaseYear)
{
    // Syslog headers omit the year; the fixed convention year 2000
    // keeps keys comparable within a corpus.
    uint64_t epoch = 0;
    ASSERT_TRUE(parseSyslogTime("Jun", "3", "22:02:50", &epoch));
    uint64_t expected =
        static_cast<uint64_t>(daysFromCivil(2000, 6, 3)) * 86400 +
        22 * 3600 + 2 * 60 + 50;
    EXPECT_EQ(epoch, expected);

    EXPECT_FALSE(parseSyslogTime("Jub", "3", "22:02:50", &epoch));
    EXPECT_FALSE(parseSyslogTime("Jun", "32", "22:02:50", &epoch));
    EXPECT_FALSE(parseSyslogTime("Jun", "3", "25:02:50", &epoch));
}

// ---- ordering ---------------------------------------------------------

TEST(TypedKeyTest, KeyOrderingIsNumeric)
{
    // Lexicographic byte order == numeric order: the property range
    // predicates stand on.
    EXPECT_LT(ip4Key({10, 0, 0, 1}), ip4Key({10, 0, 0, 2}));
    EXPECT_LT(ip4Key({10, 0, 0, 255}), ip4Key({10, 0, 1, 0}));
    EXPECT_LT(ip4Key({9, 255, 255, 255}), ip4Key({10, 0, 0, 0}));
    EXPECT_LT(timestampKey(1000), timestampKey(1ull << 33));
    // Kind-major: every ip4 key sorts apart from every timestamp key.
    EXPECT_LT(ip4Key({255, 255, 255, 255}), timestampKey(0));
}

TEST(TypedKeyTest, FormatKeyCanonical)
{
    EXPECT_EQ(formatKey(ip4Key({10, 1, 2, 3})), "10.1.2.3");
    EXPECT_EQ(formatKey(hexIdKey("deadbeef")), "deadbeef");
    EXPECT_EQ(formatKey(macKey({0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff})),
              "aa:bb:cc:dd:ee:ff");
}

} // namespace
} // namespace mithril::typed
